// Ablation — number of transmission attempts A per slotframe cycle
// (paper Eq. 4 uses A = 3: two on the primary path, one on the backup).
// Sweeps A in {2, 3, 4}: reliability vs latency vs energy.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("ablation_attempts",
                "Design choice: transmission attempts per cycle (Eq. 4)");
  const int runs = bench::default_runs(4);
  std::printf("flow sets per variant: %d, DiGS on Testbed A, 3 jammers\n",
              runs);

  for (const int attempts : {2, 3, 4}) {
    Cdf pdr;
    Cdf latency;
    Cdf energy;
    std::vector<TrialSpec> trials;
    for (int run = 0; run < runs; ++run) {
      ExperimentConfig config;
      config.suite = ProtocolSuite::kDigs;
      config.seed = 14'000 + run;
      config.num_flows = 8;
      config.warmup = seconds(static_cast<std::int64_t>(240));
      config.duration = seconds(static_cast<std::int64_t>(300));
      config.num_jammers = 3;
      config.jammer_start_after = seconds(static_cast<std::int64_t>(0));
      config.scheduler = ExperimentRunner::default_node_config().scheduler;
      config.scheduler.attempts = attempts;
      trials.push_back(TrialSpec{testbed_a(), config});
    }
    for (const ExperimentResult& result : run_trials(trials)) {
      pdr.add(result.overall_pdr);
      for (const double ms : result.latencies_ms) latency.add(ms);
      energy.add(result.energy_per_delivered_mj);
    }
    bench::section("A = " + std::to_string(attempts));
    std::printf(
        "  avg PDR=%.4f  worst=%.4f  median latency=%.1f ms  "
        "energy/packet=%.2f mJ\n",
        pdr.mean(), pdr.min(), latency.median(), energy.mean());
  }
  std::printf(
      "\nExpected: A=3 (paper) balances reliability against slot usage;\n"
      "A=2 loses the second primary try, A=4 spends more energy/slots for\n"
      "diminishing PDR returns.\n");
  return 0;
}
