// Ablation — slotframe length choices and combination conflicts
// (paper Section VI-B, Eq. 5-6): validates the analytic skip-probability
// model against the measured skip rate of real schedules, and shows why the
// paper picks pairwise-coprime lengths (557/47/151): non-coprime lengths
// starve fixed slots of lower-priority slotframes.
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "sched/conflict_analysis.h"
#include "sched/digs_scheduler.h"

namespace {

using namespace digs;

struct LengthTriple {
  std::uint16_t sync, routing, app;
};

void analyze(const LengthTriple& lengths) {
  SchedulerConfig config;
  config.sync_slotframe_len = lengths.sync;
  config.routing_slotframe_len = lengths.routing;
  config.app_slotframe_len = lengths.app;
  DigsScheduler scheduler(config);

  Schedule schedule;
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  static std::vector<ChildEntry> children{ChildEntry{NodeId{7}, true, {}}};
  view.children = children;
  scheduler.rebuild(schedule, view);

  const Slotframe* sync = schedule.slotframe(TrafficClass::kSync);
  const Slotframe* routing = schedule.slotframe(TrafficClass::kRouting);
  const Slotframe* app = schedule.slotframe(TrafficClass::kApplication);
  const std::vector<SlotframeLoad> loads{
      {sync->length, static_cast<int>(sync->cells.size()), 0},
      {routing->length, static_cast<int>(routing->cells.size()), 1},
      {app->length, static_cast<int>(app->cells.size()), 2},
  };

  const bool coprime = std::gcd(lengths.sync, lengths.routing) == 1 &&
                       std::gcd(lengths.sync, lengths.app) == 1 &&
                       std::gcd(lengths.routing, lengths.app) == 1;
  std::printf("\nlengths %u/%u/%u (%s)\n", lengths.sync, lengths.routing,
              lengths.app, coprime ? "pairwise coprime" : "NOT coprime");
  const std::uint64_t window = 200'000;
  for (int cls = 1; cls < 3; ++cls) {
    const double model = slotframe_skip_probability(loads[cls], loads);
    const double measured = measured_skip_rate(
        schedule, static_cast<TrafficClass>(cls), window);
    std::printf("  %-12s skip: model(Eq.6)=%.5f  measured=%.5f\n",
                to_string(static_cast<TrafficClass>(cls)), model, measured);
  }
}

}  // namespace

int main() {
  bench::header("ablation_slotframe_conflicts",
                "Section VI-B - slotframe combination conflicts (Eq. 5-6)");

  // Paper configurations and deliberately bad (non-coprime) alternatives.
  analyze({557, 47, 151});  // paper experiments
  analyze({61, 11, 7});     // paper example (Fig. 7)
  analyze({560, 40, 140});  // shared factors: chronic conflicts
  analyze({128, 64, 32});   // powers of two: app slot can be starved

  std::printf("\nShared routing slot contention (Eq. 5), N nodes, L=47:\n");
  for (const int nodes : {10, 47, 100, 200}) {
    for (const double load : {0.05, 0.2, 0.5}) {
      std::printf("  N=%3d T=%.2f  p_contention=%.4f\n", nodes, load,
                  digs::shared_slot_contention_probability(load, nodes, 47));
    }
  }
  std::printf(
      "\nExpected: measured skip rates match Eq. 6 for coprime lengths and\n"
      "are low (<3%%); non-coprime lengths lock the same slots together\n"
      "every cycle, permanently blocking lower-priority cells.\n");
  return 0;
}
