// Ablation — Trickle pacing (paper Section V): Imin controls how quickly
// topology changes propagate vs how much routing traffic the shared slot
// carries. Sweeps Imin and measures repair behaviour after jammers start,
// plus steady-state PDR.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("ablation_trickle",
                "Design choice: Trickle Imin (join-in pacing)");
  const int runs = bench::default_runs(3);
  std::printf("runs per variant: %d, Orchestra on Testbed A, 2 jammers\n",
              runs);

  for (const double imin_s : {0.5, 1.0, 2.0, 4.0}) {
    Cdf pdr;
    Cdf repair_s;
    std::vector<TrialSpec> trials;
    for (int run = 0; run < runs; ++run) {
      ExperimentConfig config;
      config.suite = ProtocolSuite::kOrchestra;  // repair-bound baseline
      config.seed = 15'000 + run;
      config.num_flows = 8;
      config.warmup = seconds(static_cast<std::int64_t>(240));
      config.duration = seconds(static_cast<std::int64_t>(300));
      config.num_jammers = 2;
      config.jammer_start_after = seconds(static_cast<std::int64_t>(60));
      TrickleConfig trickle;
      trickle.imin = SimDuration{static_cast<std::int64_t>(imin_s * 1e6)};
      trickle.doublings = 6;
      config.trickle = trickle;
      trials.push_back(TrialSpec{testbed_a(), config});
    }
    for (const ExperimentResult& result : run_trials(trials)) {
      pdr.add(result.overall_pdr);
      for (const double t : result.repair_times_s) repair_s.add(t);
    }
    bench::section("Imin = " + std::to_string(imin_s) + " s");
    std::printf("  avg PDR=%.4f  repairs: n=%zu median=%.1f s max=%.1f s\n",
                pdr.mean(), repair_s.count(),
                repair_s.empty() ? 0.0 : repair_s.median(),
                repair_s.empty() ? 0.0 : repair_s.max());
  }
  std::printf(
      "\nExpected: small Imin repairs faster (join-ins flow sooner after a\n"
      "reset) at the cost of more routing traffic in the shared slot;\n"
      "large Imin stretches repair, as the paper observes for RPL.\n");
  return 0;
}
