// Ablation — the paper's weighted ETX (Eq. 1-3) vs plain accumulated ETX
// as the advertised path cost. The weighted form accounts for the backup
// route's quality (attempt 3 uses the second-best parent), which should
// yield better parent choices and higher PDR under interference.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("ablation_weighted_etx",
                "Design choice: ETXw (Eq. 1-3) vs plain accumulated ETX");
  const int runs = bench::default_runs(4);
  std::printf("flow sets per variant: %d, DiGS on Testbed A, 3 jammers\n",
              runs);

  for (const bool weighted : {true, false}) {
    Cdf pdr;
    Cdf latency;
    std::vector<TrialSpec> trials;
    for (int run = 0; run < runs; ++run) {
      ExperimentConfig config;
      config.suite = ProtocolSuite::kDigs;
      config.seed = 13'000 + run;
      config.num_flows = 8;
      config.warmup = seconds(static_cast<std::int64_t>(240));
      config.duration = seconds(static_cast<std::int64_t>(300));
      config.num_jammers = 3;
      config.jammer_start_after = seconds(static_cast<std::int64_t>(0));
      config.use_weighted_etx = weighted;
      trials.push_back(TrialSpec{testbed_a(), config});
    }
    for (const ExperimentResult& result : run_trials(trials)) {
      pdr.add(result.overall_pdr);
      for (const double ms : result.latencies_ms) latency.add(ms);
    }
    bench::section(weighted ? "ETXw (paper Eq. 1-3)"
                            : "plain accumulated ETX");
    std::printf("  avg PDR=%.4f  worst=%.4f  median latency=%.1f ms\n",
                pdr.mean(), pdr.min(), latency.median());
  }
  std::printf(
      "\nExpected: the weighted form is at least as reliable; it prefers\n"
      "parents whose backup path is real rather than cosmetic.\n");
  return 0;
}
