// Shared helpers for the figure benches: consistent printing of CDFs,
// boxplots and paper-vs-measured rows, and reduced-scale run counts
// (the paper runs hundreds of flow sets on real testbeds; a bench binary
// runs a representative number and prints how many).
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/node.h"
#include "testbed/experiment.h"

namespace digs::bench {

/// Hardware concurrency as reported by the host, for BENCH json headers:
/// wall-clock numbers are only comparable across runs on similar hardware,
/// so every emitted file records the thread count it was measured with.
inline unsigned hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// City-scale square at constant density (312 m^2/device — sparser than
/// Testbed A, like an outdoor industrial district), path-loss exponent 3.5
/// so the decode radius stays around 114 m and the spatial grid spans many
/// cells. One AP per ~100 devices (min 2), laid out on an even internal
/// grid so every device is a couple of hops from some AP — the paper's
/// testbeds run ~1 AP per 25 devices; a city deployment would bring
/// backbone-connected gateways at a similar order. Shared by ext_scaling
/// (the city sweep) and micro_core (the busy-slot row): both must measure
/// the same floor.
inline TestbedLayout city_floor(int devices, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xC17F));
  TestbedLayout layout;
  layout.name = "city-" + std::to_string(devices);
  layout.path_loss_exponent = 3.5;
  layout.admission_rss_dbm = -84.0;
  const int aps = std::max(2, devices / 100);
  layout.num_access_points = static_cast<std::uint16_t>(aps);
  const double side = std::sqrt(312.0 * devices);
  // APs on the centers of a ceil(sqrt(aps))-column internal grid.
  const int ap_cols = static_cast<int>(std::ceil(std::sqrt(aps)));
  const int ap_rows = (aps + ap_cols - 1) / ap_cols;
  for (int a = 0; a < aps; ++a) {
    const double ax = ((a % ap_cols) + 0.5) * side / ap_cols;
    const double ay = ((a / ap_cols) + 0.5) * side / ap_rows;
    layout.positions.push_back(Position{ax, ay, 0});
  }
  for (int i = 0; i < devices; ++i) {
    layout.positions.push_back(
        Position{rng.uniform(0.0, side), rng.uniform(0.0, side), 0.0});
  }
  return layout;
}

/// Runs `fn(0..count-1)` on trial_threads() workers (override with
/// `threads`; DIGS_THREADS=1 disables threading) and returns the results
/// indexed by input — identical to the sequential loop regardless of the
/// worker count. For benches whose per-run product is not an
/// ExperimentResult (suite aggregates, repair traces); plain experiment
/// sweeps should use run_trials().
template <typename Fn>
std::vector<std::invoke_result_t<Fn, int>> parallel_map(int count, Fn fn,
                                                        std::size_t threads =
                                                            0) {
  if (threads == 0) threads = trial_threads();
  std::vector<std::invoke_result_t<Fn, int>> results(
      static_cast<std::size_t>(count));
  const std::size_t workers =
      std::min(threads, static_cast<std::size_t>(count));
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        results[i] = fn(i);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void paper_row(const std::string& metric, const std::string& paper,
                      double measured, const std::string& unit) {
  std::printf("  %-44s paper: %-16s measured: %10.3f %s\n", metric.c_str(),
              paper.c_str(), measured, unit.c_str());
}

inline void print_cdf(const Cdf& cdf, const std::string& label,
                      const std::string& unit) {
  std::fputs(format_cdf(cdf, label, unit, 11).c_str(), stdout);
}

inline void print_boxplot(const Cdf& cdf, const std::string& label) {
  std::fputs(format_boxplot(cdf.boxplot(), label).c_str(), stdout);
}

/// Number of repeated flow sets per configuration. The paper uses 300 (A)
/// and 220 (B); benches default to a smaller representative count so the
/// full suite finishes in minutes. Override with DIGS_BENCH_RUNS.
inline int default_runs(int fallback = 10) {
  if (const char* env = std::getenv("DIGS_BENCH_RUNS")) {
    const int runs = std::atoi(env);
    if (runs > 0) return runs;
  }
  return fallback;
}

}  // namespace digs::bench
