// Shared helpers for the figure benches: consistent printing of CDFs,
// boxplots and paper-vs-measured rows, and reduced-scale run counts
// (the paper runs hundreds of flow sets on real testbeds; a bench binary
// runs a representative number and prints how many).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/stats.h"
#include "core/node.h"
#include "testbed/experiment.h"

namespace digs::bench {

/// Runs `fn(0..count-1)` on trial_threads() workers (override with
/// `threads`; DIGS_THREADS=1 disables threading) and returns the results
/// indexed by input — identical to the sequential loop regardless of the
/// worker count. For benches whose per-run product is not an
/// ExperimentResult (suite aggregates, repair traces); plain experiment
/// sweeps should use run_trials().
template <typename Fn>
std::vector<std::invoke_result_t<Fn, int>> parallel_map(int count, Fn fn,
                                                        std::size_t threads =
                                                            0) {
  if (threads == 0) threads = trial_threads();
  std::vector<std::invoke_result_t<Fn, int>> results(
      static_cast<std::size_t>(count));
  const std::size_t workers =
      std::min(threads, static_cast<std::size_t>(count));
  if (workers <= 1) {
    for (int i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<int> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (int i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        results[i] = fn(i);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void paper_row(const std::string& metric, const std::string& paper,
                      double measured, const std::string& unit) {
  std::printf("  %-44s paper: %-16s measured: %10.3f %s\n", metric.c_str(),
              paper.c_str(), measured, unit.c_str());
}

inline void print_cdf(const Cdf& cdf, const std::string& label,
                      const std::string& unit) {
  std::fputs(format_cdf(cdf, label, unit, 11).c_str(), stdout);
}

inline void print_boxplot(const Cdf& cdf, const std::string& label) {
  std::fputs(format_boxplot(cdf.boxplot(), label).c_str(), stdout);
}

/// Number of repeated flow sets per configuration. The paper uses 300 (A)
/// and 220 (B); benches default to a smaller representative count so the
/// full suite finishes in minutes. Override with DIGS_BENCH_RUNS.
inline int default_runs(int fallback = 10) {
  if (const char* env = std::getenv("DIGS_BENCH_RUNS")) {
    const int runs = std::atoi(env);
    if (runs > 0) return runs;
  }
  return fallback;
}

}  // namespace digs::bench
