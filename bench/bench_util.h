// Shared helpers for the figure benches: consistent printing of CDFs,
// boxplots and paper-vs-measured rows, and reduced-scale run counts
// (the paper runs hundreds of flow sets on real testbeds; a bench binary
// runs a representative number and prints how many).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "core/node.h"

namespace digs::bench {

inline void header(const std::string& title, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

inline void section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

inline void paper_row(const std::string& metric, const std::string& paper,
                      double measured, const std::string& unit) {
  std::printf("  %-44s paper: %-16s measured: %10.3f %s\n", metric.c_str(),
              paper.c_str(), measured, unit.c_str());
}

inline void print_cdf(const Cdf& cdf, const std::string& label,
                      const std::string& unit) {
  std::fputs(format_cdf(cdf, label, unit, 11).c_str(), stdout);
}

inline void print_boxplot(const Cdf& cdf, const std::string& label) {
  std::fputs(format_boxplot(cdf.boxplot(), label).c_str(), stdout);
}

/// Number of repeated flow sets per configuration. The paper uses 300 (A)
/// and 220 (B); benches default to a smaller representative count so the
/// full suite finishes in minutes. Override with DIGS_BENCH_RUNS.
inline int default_runs(int fallback = 10) {
  if (const char* env = std::getenv("DIGS_BENCH_RUNS")) {
    const int runs = std::atoi(env);
    if (runs > 0) return runs;
  }
  return fallback;
}

}  // namespace digs::bench
