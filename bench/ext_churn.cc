// Extension study: node churn — repeated crash/recover cycles on a relay —
// across all three suites, with the runtime invariant monitor on. Measures
// time-to-rejoin per revival, the PDR dip around each crash, packets lost
// to stale routes, and whether any routing/schedule invariant was violated.
//
// DiGS must come through with zero invariant violations and a finite
// rejoin for every revival (the binary exits nonzero otherwise, so the
// bench doubles as an acceptance check). The WirelessHART baseline is
// expected to violate the rank rule while it waits out the Fig. 3 reaction
// window on stale routes — that contrast is the paper's motivation,
// quantified. Writes BENCH_churn.json.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct SuiteSummary {
  const char* key;
  int seeds = 0;
  int cycles_per_seed = 0;
  std::size_t revivals = 0;
  std::size_t rejoined = 0;
  Cdf rejoin_s;
  Cdf dip_depth;
  Cdf dip_duration_s;
  Cdf pdr;
  std::uint64_t stale_route_drops = 0;
  std::size_t invariant_violations = 0;
};

/// Crash/recover cycle spacing. The uptime must exceed the suite's
/// worst-case rejoin path or later cycles would crash a node that is still
/// rejoining: DiGS and Orchestra re-join locally within tens of seconds;
/// the WirelessHART baseline waits for the manager's detection delay plus
/// the Fig. 3 reaction time (~3.5 min at this scale), so its cycles are
/// spaced accordingly.
struct CyclePlan {
  SimDuration downtime = seconds(static_cast<std::int64_t>(60));
  SimDuration uptime;
  int cycles = 3;
};

CyclePlan plan_for(ProtocolSuite suite) {
  CyclePlan plan;
  plan.uptime = suite == ProtocolSuite::kWirelessHart
                    ? seconds(static_cast<std::int64_t>(420))
                    : seconds(static_cast<std::int64_t>(180));
  return plan;
}

SuiteSummary run_suite(ProtocolSuite suite, int seeds) {
  const CyclePlan plan = plan_for(suite);
  const SimDuration first_crash = seconds(static_cast<std::int64_t>(30));
  // Last recovery + one full uptime so the final revival can rejoin.
  const SimDuration span =
      first_crash +
      SimDuration{plan.cycles * (plan.downtime.us + plan.uptime.us)};

  std::vector<TrialSpec> trials;
  for (int s = 0; s < seeds; ++s) {
    TrialSpec trial;
    trial.layout = half_testbed_a();
    trial.config.suite = suite;
    trial.config.seed = 41'000 + s;
    trial.config.num_flows = 8;
    trial.config.flow_period = seconds(static_cast<std::int64_t>(5));
    trial.config.warmup = seconds(static_cast<std::int64_t>(150));
    trial.config.duration = span;
    trial.config.monitor_invariants = true;
    // Churn a fixed mid-network relay through crash/recover cycles.
    trial.config.faults.crash_cycle(first_crash, NodeId{10}, plan.downtime,
                                    plan.uptime, plan.cycles);
    trials.push_back(trial);
  }

  SuiteSummary summary;
  summary.key = to_string(suite);
  summary.seeds = seeds;
  summary.cycles_per_seed = plan.cycles;
  for (const ExperimentResult& result : run_trials(trials)) {
    summary.revivals += result.revivals;
    summary.rejoined += result.rejoin_times_s.size();
    for (const double t : result.rejoin_times_s) summary.rejoin_s.add(t);
    for (const auto& dip : result.fault_dips) {
      summary.dip_depth.add(dip.depth);
      summary.dip_duration_s.add(dip.duration_s);
    }
    summary.pdr.add(result.overall_pdr);
    summary.stale_route_drops += result.stale_route_drops;
    summary.invariant_violations += result.invariant_violations;
  }
  return summary;
}

void print_summary(const SuiteSummary& s) {
  bench::section(std::string("suite: ") + s.key);
  std::printf("  revivals: %zu (%d cycles x %d seeds), rejoined: %zu\n",
              s.revivals, s.cycles_per_seed, s.seeds, s.rejoined);
  if (s.rejoin_s.count() > 0) {
    std::printf("  time-to-rejoin (s): mean %.1f  max %.1f\n",
                s.rejoin_s.mean(), s.rejoin_s.max());
  }
  std::printf("  overall PDR: mean %.3f  worst seed %.3f\n", s.pdr.mean(),
              s.pdr.min());
  std::printf("  PDR dip per crash: depth mean %.3f  duration mean %.0f s\n",
              s.dip_depth.mean(), s.dip_duration_s.mean());
  std::printf("  stale-route drops: %llu, invariant violations: %zu\n",
              static_cast<unsigned long long>(s.stale_route_drops),
              s.invariant_violations);
}

void write_json(const std::vector<SuiteSummary>& summaries) {
  std::FILE* out = std::fopen("BENCH_churn.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write BENCH_churn.json\n");
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"methodology\": \"half_testbed_a (20 nodes, 2 APs), 8 flows @5s, "
      "150s warmup; node 10 crashes 30s into the measurement window and "
      "cycles through 3 crash(60s)/recover pairs; uptime between cycles is "
      "180s for DiGS/Orchestra and 420s for WirelessHART (the manager needs "
      "detection + the Fig. 3 reaction time before a revived node rejoins); "
      "invariant monitor on for every suite; per-suite numbers aggregate "
      "all seeds\",\n"
      "  \"hardware_threads\": %u,\n",
      bench::hardware_threads());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SuiteSummary& s = summaries[i];
    std::fprintf(
        out,
        "  \"%s\": {\n"
        "    \"seeds\": %d,\n"
        "    \"cycles_per_seed\": %d,\n"
        "    \"revivals\": %zu,\n"
        "    \"rejoined\": %zu,\n"
        "    \"rejoin_s_mean\": %.2f,\n"
        "    \"rejoin_s_max\": %.2f,\n"
        "    \"overall_pdr_mean\": %.4f,\n"
        "    \"overall_pdr_min\": %.4f,\n"
        "    \"dip_depth_mean\": %.4f,\n"
        "    \"dip_duration_s_mean\": %.1f,\n"
        "    \"stale_route_drops\": %llu,\n"
        "    \"invariant_violations\": %zu\n"
        "  }%s\n",
        s.key, s.seeds, s.cycles_per_seed, s.revivals, s.rejoined,
        s.rejoin_s.count() > 0 ? s.rejoin_s.mean() : -1.0,
        s.rejoin_s.count() > 0 ? s.rejoin_s.max() : -1.0, s.pdr.mean(),
        s.pdr.min(), s.dip_depth.mean(), s.dip_duration_s.mean(),
        static_cast<unsigned long long>(s.stale_route_drops),
        s.invariant_violations, i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_churn.json\n");
}

}  // namespace

int main() {
  bench::header("ext_churn",
                "Extension: crash/recover churn across the three suites, "
                "with the invariant monitor on");
  const int seeds = bench::default_runs(3);
  std::printf("seeds per suite: %d; half Testbed A, 8 flows; node 10 "
              "crashes and recovers 3 times\n",
              seeds);

  std::vector<SuiteSummary> summaries;
  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra,
        ProtocolSuite::kWirelessHart}) {
    summaries.push_back(run_suite(suite, seeds));
    print_summary(summaries.back());
  }
  write_json(summaries);

  // Acceptance: DiGS converges back to a consistent routing graph after
  // every cycle (zero violations) and every revived node rejoins.
  bool ok = true;
  for (const SuiteSummary& s : summaries) {
    if (s.rejoined != s.revivals) {
      std::printf("FAIL: %s left %zu of %zu revivals without a rejoin\n",
                  s.key, s.revivals - s.rejoined, s.revivals);
      ok = false;
    }
  }
  if (summaries[0].invariant_violations != 0) {
    std::printf("FAIL: DiGS recorded %zu invariant violations\n",
                summaries[0].invariant_violations);
    ok = false;
  }
  std::printf(
      "\nExpected shape: DiGS rejoins in tens of seconds with shallow dips\n"
      "and a clean invariant record; Orchestra rejoins locally but dips\n"
      "deeper; WirelessHART strands the revived node until the manager's\n"
      "reaction window elapses, and its stale interim routes are exactly\n"
      "what the rank-rule monitor flags.\n");
  return ok ? 0 : 1;
}
