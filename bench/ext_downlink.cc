// Extension study (no corresponding paper figure): the downlink graph of
// paper footnote 2. Measures downlink command delivery and latency on
// Testbed A, clean and under the Fig. 9 interference, and the energy cost
// of the downlink cells.
#include <cstdio>

#include "bench_util.h"
#include "core/network.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct Result {
  Cdf pdr;
  Cdf latency_ms;
  Cdf energy_mj;
};

/// One run's samples, merged into Result in submission order.
struct RunProduct {
  std::vector<double> pdrs;
  std::vector<double> latencies_ms;
  double energy_mj = -1.0;  // <0: no packet delivered this run
};

RunProduct run_one(std::size_t num_jammers, int r) {
  const TestbedLayout layout = testbed_a();
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 17'000 + r;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;
  config.node.mac.tx_power_dbm = layout.tx_power_dbm;
  config.medium.propagation.path_loss_exponent = layout.path_loss_exponent;
  Network net(config, layout.positions);

  for (std::size_t j = 0; j < num_jammers; ++j) {
    JammerConfig jammer;
    jammer.position = layout.jammer_positions[j];
    jammer.tx_power_dbm = -4.0;
    jammer.wifi_block_start = static_cast<int>((j * 4) % 13);
    net.add_jammer(jammer);
  }

  // 8 downlink command flows from the gateway to spread devices.
  const auto targets = pick_sources(layout, 8, 900 + r);
  for (std::size_t f = 0; f < targets.size(); ++f) {
    FlowSpec flow;
    flow.id = FlowId{static_cast<std::uint16_t>(f)};
    flow.source = NodeId{static_cast<std::uint16_t>(f % 2)};  // either AP
    flow.downlink_dest = targets[f];
    flow.period = seconds(static_cast<std::int64_t>(5));
    flow.start_offset = seconds(static_cast<std::int64_t>(300));
    net.add_flow(flow);
  }
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(300)));
  net.reset_energy();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(620)));

  const SimTime measure =
      SimTime{0} + seconds(static_cast<std::int64_t>(305));
  const SimTime end = SimTime{0} + seconds(static_cast<std::int64_t>(600));
  RunProduct product;
  std::uint64_t delivered = 0;
  for (const FlowRecord& flow : net.stats().flows()) {
    product.pdrs.push_back(net.stats().pdr(flow.id, measure, end));
    for (const PacketRecord& packet : flow.packets) {
      if (packet.generated >= measure && packet.received()) {
        product.latencies_ms.push_back(packet.latency().millis());
        ++delivered;
      }
    }
  }
  if (delivered > 0) {
    product.energy_mj =
        net.total_energy_mj() / static_cast<double>(delivered);
  }
  return product;
}

Result run(std::size_t num_jammers, int runs) {
  Result result;
  for (const RunProduct& product : bench::parallel_map(
           runs, [num_jammers](int r) { return run_one(num_jammers, r); })) {
    for (const double pdr : product.pdrs) result.pdr.add(pdr);
    for (const double ms : product.latencies_ms) result.latency_ms.add(ms);
    if (product.energy_mj >= 0.0) result.energy_mj.add(product.energy_mj);
  }
  return result;
}

}  // namespace

int main() {
  bench::header("ext_downlink",
                "Extension: downlink graph (paper footnote 2) on Testbed A");
  const int runs = bench::default_runs(4);
  std::printf("runs per setting: %d, 8 gateway->device command flows\n",
              runs);

  const Result clean = run(0, runs);
  bench::section("clean environment");
  std::printf("  per-flow PDR: mean=%.3f worst=%.3f\n", clean.pdr.mean(),
              clean.pdr.min());
  std::printf("  latency: median=%.0f ms p95=%.0f ms\n",
              clean.latency_ms.median(), clean.latency_ms.percentile(95));
  std::printf("  energy per delivered command: %.1f mJ\n",
              clean.energy_mj.mean());

  const Result jammed = run(3, runs);
  bench::section("3 WiFi-like jammers (the Fig. 9 interference)");
  std::printf("  per-flow PDR: mean=%.3f worst=%.3f\n", jammed.pdr.mean(),
              jammed.pdr.min());
  std::printf("  latency: median=%.0f ms p95=%.0f ms\n",
              jammed.latency_ms.median(), jammed.latency_ms.percentile(95));
  std::printf("  energy per delivered command: %.1f mJ\n",
              jammed.energy_mj.mean());

  std::printf(
      "\nDownlink rides a second Eq. 4 ladder (shifted half a slotframe)\n"
      "and storing-mode destination tables with DAO-sequence freshness.\n"
      "Unlike the uplink there is no backup-parent diversity downwards:\n"
      "when a device re-homes, its whole descent path must re-converge, so\n"
      "commands to churn-prone deep devices lose packets that sensor\n"
      "reports would not (flows to stable subtrees deliver ~100%%). This is\n"
      "the known hard part of storing-mode downward routing and a natural\n"
      "candidate for the paper's future work on redundant downlink graphs.\n");
  return 0;
}
