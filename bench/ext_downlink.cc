// Extension study: downlink determinism through node-disjoint multipath
// tunnels with packet replication, scored by a closed-loop control
// workload (simulated PID loops: quadratic control cost + actuation
// deadline misses + sensor->actuator latency tail). Six arms:
//
//   {replication on, off} x {clean, interference, relay-crash}
//
// where interference is the Fig. 9 WiFi-like jammer setup and relay-crash
// repeatedly (3 strikes, 30 s down / 30 s up) kills the relay carrying
// the deepest live primary tunnel path mid-measurement. Every arm runs
// with SlotSwapper schedule randomization AND the invariant monitor on,
// so the tunnel invariants (loop-freedom, disjointness honesty, Eq.
// 4-style replication conflict-freedom in the permuted frame) are
// audited through crash, repair, and every swap epoch.
//
// The bench doubles as an acceptance check (exits nonzero otherwise):
// with replication on, the relay crash must leave the p99.9
// sensor->actuator latency bounded (see kCrashTailBoundMs) and the control
// cost within a fixed factor of the clean arm, and must beat replication
// off on the crash arm (backup copies win deliveries; fewer deadline
// misses than single-path); zero tunnel invariant violations anywhere;
// and one replicated crash run must be bit-identical across the
// shard/thread matrix. Writes BENCH_downlink.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

enum class Arm { kClean, kInterference, kRelayCrash };

constexpr Arm kArms[] = {Arm::kClean, Arm::kInterference, Arm::kRelayCrash};

constexpr const char* arm_key(Arm arm) {
  switch (arm) {
    case Arm::kClean: return "clean";
    case Arm::kInterference: return "interference";
    case Arm::kRelayCrash: return "relay_crash";
  }
  return "?";
}

constexpr double kDeadlineMs = 5000.0;  // == control_deadline below
// Acceptance bounds on the p99.9 sensor->actuator latency. The tail is
// not the command path: the controller anchors each command on the
// latest *delivered* sensor sample, so a sensor-uplink stall of S
// seconds surfaces as an S-plus-transit latency even when the actuation
// command itself flies. The tunnel-queue age purge caps the command-side
// contribution at tunnel_queue_max_age; what remains on the clean arm is
// the worst uplink stall (~13-18 s here), gated at 4x the deadline —
// this fails without the purge (stranded copies reached 125 s). On the
// crash arm the victim's uplink subtree stalls for the 30 s outage plus
// rejoin, so the staleness tail is fault-bounded (identical in the
// replication-off arm) and gated at 2x the outage downtime instead.
constexpr double kCleanTailBoundMs = 4.0 * kDeadlineMs;
constexpr double kCrashTailBoundMs = 60'000.0;  // 2x the 30 s outage

struct ArmSummary {
  Cdf pdr;
  Cdf control_cost;
  Cdf latency_ms;  // pooled sensor->actuator latencies across seeds
  std::uint64_t actuations = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t replication_wins = 0;
  std::uint64_t replication_losses = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t single_path_fallbacks = 0;
  std::uint64_t tunnel_rebuilds = 0;
  Cdf repair_s;
  std::uint64_t swap_epochs = 0;
  std::uint64_t swap_epoch_audits = 0;
  std::uint64_t swap_epoch_violations = 0;
  std::uint64_t tunnel_violations = 0;

  [[nodiscard]] double p999_ms() const {
    return latency_ms.empty() ? 0.0 : latency_ms.percentile(99.9);
  }
  [[nodiscard]] double miss_rate() const {
    return actuations > 0 ? static_cast<double>(deadline_misses) /
                                static_cast<double>(actuations)
                          : 0.0;
  }
};

struct VariantSummary {
  bool replication = true;
  int seeds = 0;
  ArmSummary arms[3];
};

TrialSpec make_trial(bool replication, Arm arm, int seed_index) {
  TrialSpec trial;
  trial.layout = half_testbed_a();
  trial.config.suite = ProtocolSuite::kDigs;
  trial.config.seed = 53'000 + seed_index;
  // Background sensor traffic plus 2 closed control loops; the loops'
  // actuation flows are the downlink under test. Two loops at a 2 s
  // period is the densest control workload the 3-attempts-per-151-slot
  // tunnel ladders carry without saturating shared first-hop edges once
  // replication doubles the downlink load (4 loops at 1 s overflowed
  // queues and drowned the replication signal in congestion drops).
  trial.config.num_flows = 4;
  trial.config.flow_period = seconds(static_cast<std::int64_t>(5));
  trial.config.warmup = seconds(static_cast<std::int64_t>(120));
  trial.config.duration = seconds(static_cast<std::int64_t>(240));
  trial.config.enable_tunnels = true;
  trial.config.tunnel_replication = replication;
  trial.config.control_loops = 2;
  trial.config.control_period = seconds(static_cast<std::int64_t>(2));
  trial.config.control_deadline = seconds(static_cast<std::int64_t>(5));
  // Randomization + monitor on every arm: the tunnel cell ladders must
  // stay conflict-free through every swap epoch, and the monitor audits
  // the tunnel invariants the whole run (it forces the serial engine; the
  // shard matrix below pins bit-identity separately, monitor off).
  trial.config.randomize_schedule = true;
  trial.config.randomize_epoch = seconds(static_cast<std::int64_t>(30));
  trial.config.monitor_invariants = true;
  trial.config.shards = 1;
  trial.config.shard_threads = 1;
  switch (arm) {
    case Arm::kClean:
      break;
    case Arm::kInterference:
      // The Fig. 9 WiFi-like interference at the JamLab-calibrated power.
      trial.config.num_jammers = 2;
      break;
    case Arm::kRelayCrash:
      // Three crash/revive strikes against the relay actually carrying
      // the primary copies (re-picked from the live deepest primary path
      // at each strike): down at 60/120/180 s into measurement, 30 s
      // outage each. One strike is mostly absorbed by instant tunnel
      // re-derivation; three separate the replicated arm from single-path
      // above seed noise.
      trial.config.crash_tunnel_relay_after =
          seconds(static_cast<std::int64_t>(60));
      trial.config.crash_tunnel_relay_downtime =
          seconds(static_cast<std::int64_t>(30));
      trial.config.crash_tunnel_relay_cycles = 3;
      break;
  }
  return trial;
}

void accumulate(ArmSummary& a, const ExperimentResult& r) {
  a.pdr.add(r.overall_pdr);
  a.control_cost.add(r.control_cost);
  for (const double ms : r.sensor_actuator_latencies_ms) a.latency_ms.add(ms);
  a.actuations += r.actuations;
  a.deadline_misses += r.actuation_deadline_misses;
  a.replication_wins += r.replication_wins;
  a.replication_losses += r.replication_losses;
  a.duplicates_suppressed += r.duplicates_suppressed;
  a.single_path_fallbacks += r.single_path_fallbacks;
  a.tunnel_rebuilds += r.tunnel_rebuilds;
  for (const double s : r.tunnel_repair_times_s) a.repair_s.add(s);
  a.swap_epochs += r.swap_epochs;
  a.swap_epoch_audits += r.swap_epoch_audits;
  a.swap_epoch_violations += r.swap_epoch_violations;
  a.tunnel_violations += r.tunnel_violations;
}

void print_variant(const VariantSummary& v) {
  bench::section(std::string("replication ") + (v.replication ? "on" : "off"));
  for (const Arm arm : kArms) {
    const ArmSummary& a = v.arms[static_cast<int>(arm)];
    std::printf(
        "  %-13s cost %.3f  miss %llu/%llu  p99.9 %.0f ms  PDR %.3f\n",
        arm_key(arm), a.control_cost.mean(),
        static_cast<unsigned long long>(a.deadline_misses),
        static_cast<unsigned long long>(a.actuations), a.p999_ms(),
        a.pdr.mean());
    std::printf(
        "                wins %llu  losses %llu  suppressed %llu  "
        "fallbacks %llu  rebuilds %llu  repair mean %.1f s\n",
        static_cast<unsigned long long>(a.replication_wins),
        static_cast<unsigned long long>(a.replication_losses),
        static_cast<unsigned long long>(a.duplicates_suppressed),
        static_cast<unsigned long long>(a.single_path_fallbacks),
        static_cast<unsigned long long>(a.tunnel_rebuilds),
        a.repair_s.empty() ? 0.0 : a.repair_s.mean());
  }
}

void write_json(const std::vector<VariantSummary>& variants,
                bool shards_identical) {
  std::FILE* out = std::fopen("BENCH_downlink.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write BENCH_downlink.json\n");
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"methodology\": \"half_testbed_a (20 nodes, 2 APs); 4 uplink "
      "sensor flows @5s plus 2 closed PID loops at 2s period scored by "
      "quadratic control cost and a 5s sensor->actuator deadline; downlink "
      "actuation commands source-routed over two maximally node-disjoint "
      "AP->device tunnels (replicated at the ingress, deduplicated at the "
      "egress) when replication is on, primary tunnel only when off; "
      "queued tunnel copies older than 5s are purged (kStaleRoute); 120s "
      "warmup, 240s measurement; interference arm adds 2 WiFi-like jammers "
      "(the Fig. 9 setup, -4 dBm); relay-crash arm strikes the mid relay "
      "of the deepest live primary tunnel path 3 times (60/120/180s into "
      "measurement, 30s outage each, victim re-picked live per strike); "
      "every arm runs SlotSwapper randomization (30s epochs) with the "
      "invariant monitor auditing tunnel loop-freedom, disjointness and "
      "replication conflict-freedom in the permuted frame; arms compared "
      "at shards=1, bit-identity pinned separately across the shard "
      "matrix\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"shard_matrix_bit_identical\": %s,\n",
      bench::hardware_threads(), shards_identical ? "true" : "false");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const VariantSummary& v = variants[i];
    std::fprintf(out, "  \"replication_%s\": {\n    \"seeds\": %d,\n",
                 v.replication ? "on" : "off", v.seeds);
    for (std::size_t k = 0; k < 3; ++k) {
      const ArmSummary& a = v.arms[k];
      std::fprintf(
          out,
          "    \"%s\": { \"control_cost\": %.4f, \"actuations\": %llu, "
          "\"deadline_misses\": %llu, \"p999_sensor_actuator_ms\": %.1f, "
          "\"pdr_mean\": %.4f, \"replication_wins\": %llu, "
          "\"replication_losses\": %llu, \"duplicates_suppressed\": %llu, "
          "\"single_path_fallbacks\": %llu, \"tunnel_rebuilds\": %llu, "
          "\"repair_mean_s\": %.2f, \"swap_epochs\": %llu, "
          "\"swap_epoch_violations\": %llu, \"tunnel_violations\": %llu "
          "}%s\n",
          arm_key(kArms[k]), a.control_cost.mean(),
          static_cast<unsigned long long>(a.actuations),
          static_cast<unsigned long long>(a.deadline_misses), a.p999_ms(),
          a.pdr.mean(), static_cast<unsigned long long>(a.replication_wins),
          static_cast<unsigned long long>(a.replication_losses),
          static_cast<unsigned long long>(a.duplicates_suppressed),
          static_cast<unsigned long long>(a.single_path_fallbacks),
          static_cast<unsigned long long>(a.tunnel_rebuilds),
          a.repair_s.empty() ? 0.0 : a.repair_s.mean(),
          static_cast<unsigned long long>(a.swap_epochs),
          static_cast<unsigned long long>(a.swap_epoch_violations),
          static_cast<unsigned long long>(a.tunnel_violations),
          k + 1 < 3 ? "," : "");
    }
    std::fprintf(out, "  }%s\n", i + 1 < variants.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_downlink.json\n");
}

/// One replicated relay-crash run per (shards, threads) cell; every
/// observable metric — including the control workload's and the
/// replication scoreboard's — must be bit-identical to the serial cell.
bool shard_matrix_identical(bool smoke) {
  struct MatrixCell {
    std::size_t shards;
    std::size_t threads;
  };
  std::vector<MatrixCell> cells;
  if (smoke) {
    cells = {{1, 1}, {4, 4}};
  } else {
    cells = {{1, 1}, {8, 1}, {1, 4}, {8, 4}};
  }
  std::vector<TrialSpec> trials;
  for (const MatrixCell& cell : cells) {
    TrialSpec trial = make_trial(/*replication=*/true, Arm::kRelayCrash, 0);
    // The monitor is a diagnostic that forces the serial engine; the
    // matrix is about the sharded slot pipeline itself.
    trial.config.monitor_invariants = false;
    if (smoke) trial.config.duration = seconds(static_cast<std::int64_t>(90));
    trial.config.shards = cell.shards;
    trial.config.shard_threads = cell.threads;
    trials.push_back(trial);
  }
  const std::vector<ExperimentResult> results = run_trials(trials);
  bool ok = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const ExperimentResult& a = results[0];
    const ExperimentResult& b = results[i];
    const bool same =
        a.generated == b.generated && a.delivered == b.delivered &&
        a.flow_pdrs == b.flow_pdrs && a.control_cost == b.control_cost &&
        a.actuations == b.actuations &&
        a.actuation_deadline_misses == b.actuation_deadline_misses &&
        a.sensor_actuator_latencies_ms == b.sensor_actuator_latencies_ms &&
        a.replication_wins == b.replication_wins &&
        a.replication_losses == b.replication_losses &&
        a.duplicates_suppressed == b.duplicates_suppressed &&
        a.single_path_fallbacks == b.single_path_fallbacks &&
        a.swap_epochs == b.swap_epochs &&
        a.swaps_applied == b.swaps_applied;
    std::printf("  shards=%zu threads=%zu: delivered %llu/%llu, "
                "cost %.4f, misses %llu, wins %llu -> %s\n",
                cells[i].shards, cells[i].threads,
                static_cast<unsigned long long>(b.delivered),
                static_cast<unsigned long long>(b.generated), b.control_cost,
                static_cast<unsigned long long>(b.actuation_deadline_misses),
                static_cast<unsigned long long>(b.replication_wins),
                same ? "identical" : "DIVERGED");
    ok = ok && same;
  }
  return ok;
}

}  // namespace

int main() {
  bench::header("ext_downlink",
                "Extension: multipath tunnel replication vs a closed-loop "
                "control workload, clean / interference / relay-crash");
  // Smoke mode for the TSan preset: only the shard/thread matrix (tunnel
  // injection, replication bookkeeping and the plant workload under a real
  // worker pool), no arm sweep and no JSON.
  if (std::getenv("DIGS_DOWNLINK_SMOKE") != nullptr) {
    bench::section("shard/thread matrix smoke (replicated relay-crash)");
    const bool ok = shard_matrix_identical(/*smoke=*/true);
    std::printf(ok ? "smoke: matrix identical\n" : "FAIL: matrix diverged\n");
    return ok ? 0 : 1;
  }
  const int seeds = bench::default_runs(3);
  std::printf("seeds per arm: %d; half Testbed A, 4 sensor flows + 2 PID "
              "loops @2s, 5s deadline\n",
              seeds);

  std::vector<TrialSpec> trials;
  for (const bool replication : {true, false}) {
    for (const Arm arm : kArms) {
      for (int s = 0; s < seeds; ++s) {
        trials.push_back(make_trial(replication, arm, s));
      }
    }
  }
  const std::vector<ExperimentResult> results = run_trials(trials);

  std::vector<VariantSummary> variants;
  std::size_t t = 0;
  for (const bool replication : {true, false}) {
    VariantSummary variant;
    variant.replication = replication;
    variant.seeds = seeds;
    for (const Arm arm : kArms) {
      for (int s = 0; s < seeds; ++s, ++t) {
        accumulate(variant.arms[static_cast<int>(arm)], results[t]);
      }
    }
    variants.push_back(variant);
    print_variant(variants.back());
  }

  bench::section("shard/thread matrix (replicated relay-crash)");
  const bool shards_ok = shard_matrix_identical(/*smoke=*/false);

  write_json(variants, shards_ok);

  // Acceptance gates.
  const VariantSummary& on = variants[0];
  const VariantSummary& off = variants[1];
  const ArmSummary& on_clean = on.arms[static_cast<int>(Arm::kClean)];
  const ArmSummary& on_crash = on.arms[static_cast<int>(Arm::kRelayCrash)];
  const ArmSummary& off_crash = off.arms[static_cast<int>(Arm::kRelayCrash)];
  // The crash arm's control cost may exceed clean (the plant drifts while
  // the victim's whole subtree — sensors up, commands down — is dark for
  // three 30 s outages) but must stay within this factor: the backup
  // tunnel keeps commands flowing. Measured ~3.5x; 5x is the drift the
  // fault itself costs, anything beyond would mean commands stranding.
  constexpr double kCostFactor = 5.0;
  bool ok = true;
  if (!(on_clean.p999_ms() > 0.0 &&
        on_clean.p999_ms() <= kCleanTailBoundMs)) {
    std::printf("FAIL: replicated clean-arm p99.9 %.0f ms not bounded by "
                "%.0f ms (4x deadline; see kCleanTailBoundMs)\n",
                on_clean.p999_ms(), kCleanTailBoundMs);
    ok = false;
  }
  if (!(on_crash.p999_ms() > 0.0 && on_crash.p999_ms() <= kCrashTailBoundMs)) {
    std::printf("FAIL: replicated crash-arm p99.9 %.0f ms not bounded by "
                "%.0f ms (2x outage; see kCrashTailBoundMs)\n",
                on_crash.p999_ms(), kCrashTailBoundMs);
    ok = false;
  }
  if (!(on_crash.control_cost.mean() <=
        kCostFactor * on_clean.control_cost.mean())) {
    std::printf("FAIL: replicated crash-arm control cost %.4f above %.1fx "
                "clean %.4f\n",
                on_crash.control_cost.mean(), kCostFactor,
                on_clean.control_cost.mean());
    ok = false;
  }
  if (on_crash.replication_wins == 0) {
    std::printf("FAIL: crash arm recorded no replication wins — the backup "
                "tunnel never saved a delivery\n");
    ok = false;
  }
  if (!(on_crash.miss_rate() < off_crash.miss_rate())) {
    std::printf("FAIL: replicated crash-arm miss rate %.4f not below "
                "single-path %.4f\n",
                on_crash.miss_rate(), off_crash.miss_rate());
    ok = false;
  }
  for (const VariantSummary& v : variants) {
    for (const Arm arm : kArms) {
      const ArmSummary& a = v.arms[static_cast<int>(arm)];
      if (a.tunnel_violations != 0) {
        std::printf("FAIL: replication %s %s recorded %llu tunnel invariant "
                    "violations\n",
                    v.replication ? "on" : "off", arm_key(arm),
                    static_cast<unsigned long long>(a.tunnel_violations));
        ok = false;
      }
      if (a.swap_epochs == 0 || a.swap_epoch_audits != a.swap_epochs) {
        std::printf("FAIL: replication %s %s swap epochs %llu but audits "
                    "%llu\n",
                    v.replication ? "on" : "off", arm_key(arm),
                    static_cast<unsigned long long>(a.swap_epochs),
                    static_cast<unsigned long long>(a.swap_epoch_audits));
        ok = false;
      }
      if (a.swap_epoch_violations != 0) {
        std::printf("FAIL: replication %s %s recorded %llu schedule "
                    "conflicts at swap epochs\n",
                    v.replication ? "on" : "off", arm_key(arm),
                    static_cast<unsigned long long>(a.swap_epoch_violations));
        ok = false;
      }
    }
  }
  if (!shards_ok) {
    std::printf("FAIL: replicated relay-crash run diverged across the "
                "shard/thread matrix\n");
    ok = false;
  }
  std::printf(
      "\nExpected shape: clean and interference arms deliver nearly every\n"
      "actuation inside the deadline either way (DiGS link-margin retries\n"
      "already absorb the Fig. 9 jammers). The repeated relay crashes are\n"
      "where the replication pays: single-path commands blackhole through\n"
      "each outage's in-flight window and thin-DAG re-derivations, while\n"
      "replicated commands keep arriving over the node-disjoint backup —\n"
      "wins spike and the deadline miss rate stays below single-path. The\n"
      "p99.9 sensor->actuator tail is sensor-staleness-bound (the\n"
      "controller anchors on the latest delivered sample), so it is gated\n"
      "at 4x the deadline on the clean arm and 2x the forced outage on\n"
      "the crash arm; the tunnel-queue age purge is what keeps it from\n"
      "growing past either. Dedicated role-keyed tunnel cells\n"
      "keep the two copies collision-free through every SlotSwapper epoch\n"
      "(zero tunnel invariant violations).\n");
  return ok ? 0 : 1;
}
