// Extension study: reactive jamming vs schedule randomization — across all
// three suites. Four arms per suite at equal jammer duty (17.5% of the
// slot x channel grid):
//
//   clean                no jammers (reference ceiling)
//   oblivious            2 kWifiStreaming jammers (schedule-blind)
//   reactive             2 learning jammers that sniff per-(slot-offset,
//                        channel-offset) activity and jam the hottest cells
//   reactive+randomized  same attacker, but the network re-permutes its
//                        application slotframe every 30 s (SlotSwapper)
//
// The bench doubles as an acceptance check (exits nonzero otherwise):
// the reactive attacker must beat the oblivious one at equal duty (higher
// slot-hit rate AND lower victim PDR), randomization must claw back a
// gated share of the lost PDR for every suite, every swap epoch must pass
// the invariant monitor's conflict audit, and one jammed+randomized run
// must be bit-identical across the shard/thread matrix. Writes
// BENCH_jamming.json.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

enum class Arm { kClean, kOblivious, kReactive, kReactiveRandomized };

constexpr Arm kArms[] = {Arm::kClean, Arm::kOblivious, Arm::kReactive,
                         Arm::kReactiveRandomized};

constexpr const char* arm_key(Arm arm) {
  switch (arm) {
    case Arm::kClean: return "clean";
    case Arm::kOblivious: return "oblivious";
    case Arm::kReactive: return "reactive";
    case Arm::kReactiveRandomized: return "reactive_randomized";
  }
  return "?";
}

struct ArmSummary {
  Cdf pdr;
  std::uint64_t tx_attempts = 0;
  std::uint64_t tx_jammed = 0;
  std::uint64_t swap_epochs = 0;
  std::uint64_t swaps_applied = 0;
  std::uint64_t swaps_rejected = 0;
  std::uint64_t swap_epoch_audits = 0;
  std::uint64_t swap_epoch_violations = 0;

  [[nodiscard]] double hit_rate() const {
    return tx_attempts > 0
               ? static_cast<double>(tx_jammed) /
                     static_cast<double>(tx_attempts)
               : 0.0;
  }
};

struct SuiteSummary {
  const char* key;
  int seeds = 0;
  ArmSummary arms[4];
};

TrialSpec make_trial(ProtocolSuite suite, Arm arm, int seed_index) {
  TrialSpec trial;
  trial.layout = half_testbed_a();
  trial.config.suite = suite;
  trial.config.seed = 47'000 + seed_index;
  trial.config.num_flows = 8;
  trial.config.flow_period = seconds(static_cast<std::int64_t>(5));
  trial.config.warmup = seconds(static_cast<std::int64_t>(120));
  trial.config.duration = seconds(static_cast<std::int64_t>(240));
  // The arms are compared at shards=1 so the numbers do not depend on the
  // host environment; the shard matrix below pins bit-identity separately.
  trial.config.shards = 1;
  trial.config.shard_threads = 1;
  // Hotter than the JamLab-calibrated -4 dBm default: this study is about
  // schedule targeting, so the jammer gets enough power that a hit usually
  // kills the attempt — otherwise every arm hides behind link-margin
  // retries and the arms become indistinguishable.
  trial.config.jammer_tx_power_dbm = 2.0;
  switch (arm) {
    case Arm::kClean:
      break;
    case Arm::kOblivious:
      trial.config.num_jammers = 2;
      break;
    case Arm::kReactive:
      trial.config.num_reactive_jammers = 2;
      break;
    case Arm::kReactiveRandomized:
      trial.config.num_reactive_jammers = 2;
      trial.config.randomize_schedule = true;
      // At or under the attacker's 15.1 s learning epoch, so the learned
      // histogram is already one permutation stale by the time it is acted
      // on; a 30 s epoch lets the jammer be current half the time.
      trial.config.randomize_epoch = seconds(static_cast<std::int64_t>(15));
      // The swap-epoch audit is the gate on the defense's safety: every
      // reinstall must be conflict-free.
      trial.config.monitor_invariants = true;
      break;
  }
  return trial;
}

void print_suite(const SuiteSummary& s) {
  bench::section(std::string("suite: ") + s.key);
  for (const Arm arm : kArms) {
    const ArmSummary& a = s.arms[static_cast<int>(arm)];
    std::printf("  %-20s PDR mean %.3f  min %.3f  slot-hit rate %.3f\n",
                arm_key(arm), a.pdr.mean(), a.pdr.min(), a.hit_rate());
  }
  const ArmSummary& r = s.arms[static_cast<int>(Arm::kReactiveRandomized)];
  std::printf(
      "  randomization: %llu epochs, %llu swaps applied / %llu rejected, "
      "%llu audits, %llu violations\n",
      static_cast<unsigned long long>(r.swap_epochs),
      static_cast<unsigned long long>(r.swaps_applied),
      static_cast<unsigned long long>(r.swaps_rejected),
      static_cast<unsigned long long>(r.swap_epoch_audits),
      static_cast<unsigned long long>(r.swap_epoch_violations));
}

void write_json(const std::vector<SuiteSummary>& summaries,
                bool shards_identical) {
  std::FILE* out = std::fopen("BENCH_jamming.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write BENCH_jamming.json\n");
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"methodology\": \"half_testbed_a (20 nodes, 2 APs), 8 flows @5s, "
      "120s warmup, 240s measurement; 2 jammers at the layout's jammer "
      "positions, on from measurement start; the oblivious arm runs "
      "kWifiStreaming (17.5%% of the slot x channel grid), the reactive arms "
      "sniff per-(slot-offset, channel-offset) activity over 1510-slot "
      "epochs and jam the 423 hottest cells (equal duty); the randomized "
      "arm additionally re-permutes the application slotframe every 15s "
      "through the SlotSwapper with the invariant monitor auditing every "
      "reinstall; slot-hit rate is the fraction of data TX attempts that "
      "launched into an actively jammed (slot, channel); arms compared at "
      "shards=1, bit-identity pinned separately across the shard matrix\",\n"
      "  \"hardware_threads\": %u,\n"
      "  \"shard_matrix_bit_identical\": %s,\n",
      bench::hardware_threads(), shards_identical ? "true" : "false");
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SuiteSummary& s = summaries[i];
    std::fprintf(out, "  \"%s\": {\n    \"seeds\": %d,\n", s.key, s.seeds);
    for (const Arm arm : kArms) {
      const ArmSummary& a = s.arms[static_cast<int>(arm)];
      std::fprintf(out,
                   "    \"%s\": { \"pdr_mean\": %.4f, \"pdr_min\": %.4f, "
                   "\"slot_hit_rate\": %.4f },\n",
                   arm_key(arm), a.pdr.mean(), a.pdr.min(), a.hit_rate());
    }
    const ArmSummary& r = s.arms[static_cast<int>(Arm::kReactiveRandomized)];
    std::fprintf(
        out,
        "    \"swap_epochs\": %llu,\n"
        "    \"swaps_applied\": %llu,\n"
        "    \"swaps_rejected\": %llu,\n"
        "    \"swap_epoch_audits\": %llu,\n"
        "    \"swap_epoch_violations\": %llu\n"
        "  }%s\n",
        static_cast<unsigned long long>(r.swap_epochs),
        static_cast<unsigned long long>(r.swaps_applied),
        static_cast<unsigned long long>(r.swaps_rejected),
        static_cast<unsigned long long>(r.swap_epoch_audits),
        static_cast<unsigned long long>(r.swap_epoch_violations),
        i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_jamming.json\n");
}

/// One jammed + randomized DiGS run per (shards, threads) cell; every
/// observable metric must be bit-identical to the serial cell.
bool shard_matrix_identical() {
  struct Cell {
    std::size_t shards;
    std::size_t threads;
  };
  const Cell cells[] = {{1, 1}, {2, 2}, {4, 4}};
  std::vector<TrialSpec> trials;
  for (const Cell& cell : cells) {
    TrialSpec trial = make_trial(ProtocolSuite::kDigs,
                                 Arm::kReactiveRandomized, 0);
    // The monitor is a diagnostic, not part of the replayed slot pipeline;
    // keep the matrix about the engine itself.
    trial.config.monitor_invariants = false;
    trial.config.shards = cell.shards;
    trial.config.shard_threads = cell.threads;
    trials.push_back(trial);
  }
  const std::vector<ExperimentResult> results = run_trials(trials);
  bool ok = true;
  for (std::size_t i = 1; i < results.size(); ++i) {
    const ExperimentResult& a = results[0];
    const ExperimentResult& b = results[i];
    const bool same = a.generated == b.generated &&
                      a.delivered == b.delivered &&
                      a.flow_pdrs == b.flow_pdrs &&
                      a.victim_tx_attempts == b.victim_tx_attempts &&
                      a.victim_tx_jammed == b.victim_tx_jammed &&
                      a.swap_epochs == b.swap_epochs &&
                      a.swaps_applied == b.swaps_applied &&
                      a.swaps_rejected == b.swaps_rejected;
    std::printf("  shards=%zu threads=%zu: delivered %llu/%llu, "
                "hit %llu/%llu -> %s\n",
                cells[i].shards, cells[i].threads,
                static_cast<unsigned long long>(b.delivered),
                static_cast<unsigned long long>(b.generated),
                static_cast<unsigned long long>(b.victim_tx_jammed),
                static_cast<unsigned long long>(b.victim_tx_attempts),
                same ? "identical" : "DIVERGED");
    ok = ok && same;
  }
  return ok;
}

}  // namespace

int main() {
  bench::header("ext_jamming",
                "Extension: reactive jamming adversary vs SlotSwapper "
                "schedule randomization, three suites at equal jammer duty");
  // Smoke mode for the TSan preset: only the shard/thread matrix (the
  // randomization reinstall + jammer bookkeeping under a real worker
  // pool), no arm sweep and no JSON.
  if (std::getenv("DIGS_JAMMING_SMOKE") != nullptr) {
    bench::section("shard/thread matrix smoke (DiGS, reactive + randomized)");
    const bool ok = shard_matrix_identical();
    std::printf(ok ? "smoke: matrix identical\n"
                   : "FAIL: matrix diverged\n");
    return ok ? 0 : 1;
  }
  const int seeds = bench::default_runs(3);
  std::printf("seeds per arm: %d; half Testbed A, 8 flows; 2 jammers at "
              "17.5%% duty\n",
              seeds);

  const ProtocolSuite suites[] = {ProtocolSuite::kDigs,
                                  ProtocolSuite::kOrchestra,
                                  ProtocolSuite::kWirelessHart};
  std::vector<TrialSpec> trials;
  for (const ProtocolSuite suite : suites) {
    for (const Arm arm : kArms) {
      for (int s = 0; s < seeds; ++s) {
        trials.push_back(make_trial(suite, arm, s));
      }
    }
  }
  const std::vector<ExperimentResult> results = run_trials(trials);

  std::vector<SuiteSummary> summaries;
  std::size_t t = 0;
  for (const ProtocolSuite suite : suites) {
    SuiteSummary summary;
    summary.key = to_string(suite);
    summary.seeds = seeds;
    for (const Arm arm : kArms) {
      ArmSummary& a = summary.arms[static_cast<int>(arm)];
      for (int s = 0; s < seeds; ++s, ++t) {
        const ExperimentResult& r = results[t];
        a.pdr.add(r.overall_pdr);
        a.tx_attempts += r.victim_tx_attempts;
        a.tx_jammed += r.victim_tx_jammed;
        a.swap_epochs += r.swap_epochs;
        a.swaps_applied += r.swaps_applied;
        a.swaps_rejected += r.swaps_rejected;
        a.swap_epoch_audits += r.swap_epoch_audits;
        a.swap_epoch_violations += r.swap_epoch_violations;
      }
    }
    summaries.push_back(summary);
    print_suite(summaries.back());
  }

  bench::section("shard/thread matrix (DiGS, reactive + randomized)");
  const bool shards_ok = shard_matrix_identical();

  write_json(summaries, shards_ok);

  // Acceptance gates. The recovery margin is deliberately modest: the
  // randomized arm must recover at least this much of the PDR the reactive
  // attacker took (measured against the reactive arm, not the clean one —
  // the jammer still burns 17.5% of the grid, just blindly).
  constexpr double kRecoveryMargin = 0.02;
  bool ok = true;
  for (const SuiteSummary& s : summaries) {
    const ArmSummary& oblivious = s.arms[static_cast<int>(Arm::kOblivious)];
    const ArmSummary& reactive = s.arms[static_cast<int>(Arm::kReactive)];
    const ArmSummary& randomized =
        s.arms[static_cast<int>(Arm::kReactiveRandomized)];
    if (!(reactive.pdr.mean() < oblivious.pdr.mean())) {
      std::printf("FAIL: %s reactive PDR %.4f not below oblivious %.4f at "
                  "equal duty\n",
                  s.key, reactive.pdr.mean(), oblivious.pdr.mean());
      ok = false;
    }
    if (!(reactive.hit_rate() > oblivious.hit_rate())) {
      std::printf("FAIL: %s reactive slot-hit rate %.4f not above "
                  "oblivious %.4f\n",
                  s.key, reactive.hit_rate(), oblivious.hit_rate());
      ok = false;
    }
    if (!(randomized.pdr.mean() >= reactive.pdr.mean() + kRecoveryMargin)) {
      std::printf("FAIL: %s randomized PDR %.4f did not recover %.2f over "
                  "reactive %.4f\n",
                  s.key, randomized.pdr.mean(), kRecoveryMargin,
                  reactive.pdr.mean());
      ok = false;
    }
    if (randomized.swap_epochs == 0 ||
        randomized.swap_epoch_audits != randomized.swap_epochs) {
      std::printf("FAIL: %s swap epochs %llu but audits %llu\n", s.key,
                  static_cast<unsigned long long>(randomized.swap_epochs),
                  static_cast<unsigned long long>(
                      randomized.swap_epoch_audits));
      ok = false;
    }
    if (randomized.swap_epoch_violations != 0) {
      std::printf("FAIL: %s recorded %llu schedule conflicts at swap "
                  "epochs\n",
                  s.key,
                  static_cast<unsigned long long>(
                      randomized.swap_epoch_violations));
      ok = false;
    }
  }
  if (!shards_ok) {
    std::printf("FAIL: jammed + randomized run diverged across the "
                "shard/thread matrix\n");
    ok = false;
  }
  std::printf(
      "\nExpected shape: at equal duty the reactive attacker concentrates\n"
      "its budget on the cells the schedule actually uses (slot-hit rate\n"
      "several times the oblivious 0.175) and hurts PDR more; 15 s\n"
      "re-permutation makes the learned histogram stale before it pays\n"
      "off, pulling hit rate back towards blind chance and recovering\n"
      "most of the lost PDR — with every reinstall conflict-free.\n");
  return ok ? 0 : 1;
}
