// Extension study (no corresponding paper figure): how both suites scale
// with network size on one floor plan — the question motivating the paper
// ("hundreds of devices over an oil field"). Two regimes:
//
//  * Paper-scale sweep (18..148 devices): DiGS vs Orchestra at constant
//    density, formation time / reliability / latency — the protocol
//    question.
//  * City-scale sweep (1k/5k/10k devices): DiGS only, multiple APs, the
//    simulator question — does the cell-partitioned medium (sparse CSR
//    storage, coupling cutoff) plus the sharded slot pipeline
//    (DIGS_SHARDS x DIGS_SHARD_THREADS) actually carry a single trial to
//    10k nodes, and does sharding pay? The 5k row runs at 1 shard, at
//    8 shards / 1 worker thread (pipeline overhead), and — with >=4
//    hardware threads — at 8 shards / hw threads (speedup); the 10k row
//    repeats sharded with the profiler forced on to measure the pipeline's
//    serial fraction (Amdahl ceiling) and per-shard load imbalance. All
//    sharded runs must be bit-identical to the serial ones.
//
// Writes BENCH_scaling.json (rows carry the effective worker-thread count
// and, on profiled rows, the max/mean per-shard busy-time imbalance).
// Exit status is a gate: nonzero when a city row fails to complete, when
// any sharded run diverges from serial, when the 8-shard/1-thread 5k row
// costs more than 5% over serial, when the measured 10k serial fraction
// reaches 20%, or (only on hardware with enough cores to make the target
// meaningful) when a multi-thread speedup misses its threshold.
//
// DIGS_SCALING_SMOKE=1 runs a reduced city row (for the TSan preset in
// scripts/check.sh): ~300 devices, short windows, 1 shard vs DIGS_SHARDS,
// bit-identity gate only, no JSON.
//
// DIGS_SCALING_CITY_ONLY=1 skips the paper-scale sweep;
// DIGS_SCALING_MIN_DEVICES / DIGS_SCALING_MAX_DEVICES bound which city
// rows run. With DIGS_PROF=1 each city row gets its own phase breakdown
// (profiler reset per row) embedded in its JSON entry.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/prof.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

/// A constant-density floor: n devices over an area scaled so the mean
/// nearest-neighbor distance matches Testbed A.
TestbedLayout scaled_floor(int devices, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x5CA1E));
  TestbedLayout layout;
  layout.name = "scaled-" + std::to_string(devices);
  layout.num_access_points = 2;
  const double area = 31.25 * devices;  // Testbed A: 60x25 m for 48
  const double w = std::sqrt(area * 2.4);
  const double h = area / w;
  layout.positions.push_back(Position{w / 2 - 10, h / 2, 0});
  layout.positions.push_back(Position{w / 2 + 10, h / 2, 0});
  for (int i = 0; i < devices; ++i) {
    layout.positions.push_back(
        Position{rng.uniform(0.0, w), rng.uniform(0.0, h), 0.0});
  }
  return layout;
}

// City-scale layout: bench::city_floor() (shared with micro_core's
// busy-slot row, which must measure the same floor).
using bench::city_floor;

double median_or(const std::vector<double>& values, double fallback) {
  if (values.empty()) return fallback;
  Cdf cdf;
  for (const double v : values) cdf.add(v);
  return cdf.median();
}

double mean_or(const std::vector<double>& values, double fallback) {
  if (values.empty()) return fallback;
  Cdf cdf;
  for (const double v : values) cdf.add(v);
  return cdf.mean();
}

ExperimentConfig city_config(std::uint64_t seed, std::size_t shards) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = seed;
  config.num_flows = 16;
  config.flow_period = seconds(std::int64_t{5});
  config.warmup = seconds(std::int64_t{300});
  config.duration = seconds(std::int64_t{120});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  config.shards = shards;
  return config;
}

struct CityRow {
  int devices{0};
  std::size_t shards{1};
  std::size_t threads{1};  // effective worker threads (after clamping)
  double build_s{0};   // Network construction (reachability tables, CSR)
  double run_s{0};     // warmup + measurement + drain wall-clock
  double imbalance{0};  // max/mean per-shard busy ns (profiled rows only)
  ExperimentResult result;
  std::string prof;  // per-row DIGS_PROF phase breakdown (empty when off)
};

CityRow run_city(int devices, std::uint64_t seed, std::size_t shards,
                 std::size_t threads, const ExperimentConfig& base) {
  using clock = std::chrono::steady_clock;
  CityRow row;
  row.devices = devices;
  ExperimentConfig config = base;
  config.shards = shards;
  config.shard_threads = threads;
  const auto t0 = clock::now();
  ExperimentRunner runner(city_floor(devices, seed), config);
  const auto t1 = clock::now();
  // Scope the profiler (when DIGS_PROF=1) to this row alone, so each JSON
  // entry carries its own phase breakdown.
  const bool prof_on = prof::enabled();
  if (prof_on) prof::reset();
  row.result = runner.run();
  const auto t2 = clock::now();
  if (prof_on) row.prof = prof::json();
  Network& net = runner.network();
  row.shards = net.num_shards();
  row.threads = net.num_shard_threads();
  if (prof_on) {
    // Load imbalance across shards: busiest shard's cumulative region time
    // over the mean. 1.0 is perfect balance; the worker pool can at best
    // finish a slot in (imbalance / threads) of the summed shard work.
    const std::vector<std::uint64_t>& busy = net.shard_busy_ns();
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t ns : busy) {
      max = std::max(max, ns);
      sum += ns;
    }
    if (sum > 0) {
      row.imbalance = static_cast<double>(max) *
                      static_cast<double>(busy.size()) /
                      static_cast<double>(sum);
    }
  }
  row.build_s = std::chrono::duration<double>(t1 - t0).count();
  row.run_s = std::chrono::duration<double>(t2 - t1).count();
  return row;
}

void print_city_row(const CityRow& row) {
  std::printf("%8d %5zu %5zu | %8.3f %8.0f %8.1f | %8.1f %8.1f\n",
              row.devices, row.shards, row.threads, row.result.overall_pdr,
              median_or(row.result.latencies_ms, 0.0),
              mean_or(row.result.join_times_s, 0.0), row.build_s, row.run_s);
  std::fflush(stdout);
}

/// Exact comparison of the observables the shard-invariance contract pins:
/// sharded reception resolution merges in listener order, so every metric
/// must be bit-identical to the serial run.
bool identical(const ExperimentResult& a, const ExperimentResult& b) {
  return a.generated == b.generated && a.delivered == b.delivered &&
         a.overall_pdr == b.overall_pdr && a.flow_pdrs == b.flow_pdrs &&
         a.latencies_ms == b.latencies_ms && a.duty_cycle == b.duty_cycle &&
         a.energy_per_delivered_mj == b.energy_per_delivered_mj &&
         a.guard_misses == b.guard_misses &&
         a.desync_events == b.desync_events &&
         a.join_times_s == b.join_times_s;
}

int run_smoke() {
  bench::header("ext_scaling (smoke)",
                "Sharded city row under the sanitizer presets");
  ExperimentConfig config = city_config(90, 1);
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{30});
  const int devices = 288;
  const CityRow serial = run_city(devices, 90, 1, 1, config);
  // shards = threads = 0 defer to DIGS_SHARDS / DIGS_SHARD_THREADS, so the
  // env knob path (the one check.sh exercises under TSan, with a real
  // multi-thread worker pool) is the code under test.
  const CityRow sharded = run_city(devices, 90, 0, 0, config);
  std::printf("%8s %5s %5s | %8s %8s %8s | %8s %8s\n", "devices", "shrd",
              "thr", "PDR", "medLat", "join_s", "build_s", "run_s");
  print_city_row(serial);
  print_city_row(sharded);
  if (!identical(serial.result, sharded.result)) {
    std::printf("\nFAIL: sharded smoke run diverged from the serial run\n");
    return 1;
  }
  std::printf("\nsmoke OK: sharded run bit-identical to serial\n");
  return 0;
}

}  // namespace

int main() {
  if (const char* env = std::getenv("DIGS_SCALING_SMOKE");
      env != nullptr && env[0] == '1') {
    return run_smoke();
  }

  bench::header("ext_scaling",
                "Extension: scalability sweep at constant density");
  const bool city_only = [] {
    const char* env = std::getenv("DIGS_SCALING_CITY_ONLY");
    return env != nullptr && env[0] == '1';
  }();
  const int runs = bench::default_runs(3);
  std::printf("%d runs per size; 8 flows @ 5 s, no interference\n\n", runs);
  std::printf("%8s %12s | %-26s | %-26s\n", "", "", "DiGS", "Orchestra");
  std::printf("%8s %12s | %8s %8s %8s | %8s %8s %8s\n", "devices", "",
              "PDR", "medLat", "join_s", "PDR", "medLat", "join_s");

  static constexpr int kPaperSizes[] = {18, 48, 98, 148};
  const std::span<const int> paper_sizes =
      city_only ? std::span<const int>{} : std::span<const int>{kPaperSizes};
  for (const int devices : paper_sizes) {
    double row[2][3] = {};
    for (const ProtocolSuite suite :
         {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
      Cdf pdr;
      Cdf latency;
      Cdf join;
      std::vector<TrialSpec> trials;
      for (int run = 0; run < runs; ++run) {
        ExperimentConfig config;
        config.suite = suite;
        config.seed = 16'000 + run;
        config.num_flows = 8;
        config.flow_period = seconds(static_cast<std::int64_t>(5));
        config.warmup = seconds(static_cast<std::int64_t>(300));
        config.duration = seconds(static_cast<std::int64_t>(240));
        config.num_jammers = 0;
        trials.push_back(TrialSpec{scaled_floor(devices, 40 + run), config});
      }
      for (const ExperimentResult& result : run_trials(trials)) {
        pdr.add(result.overall_pdr);
        for (const double ms : result.latencies_ms) latency.add(ms);
        for (const double t : result.join_times_s) join.add(t);
      }
      const int idx = suite == ProtocolSuite::kDigs ? 0 : 1;
      row[idx][0] = pdr.mean();
      row[idx][1] = latency.median();
      row[idx][2] = join.mean();
    }
    std::printf("%8d %12s | %8.3f %8.0f %8.1f | %8.3f %8.0f %8.1f\n",
                devices, "", row[0][0], row[0][1], row[0][2], row[1][0],
                row[1][1], row[1][2]);
    std::fflush(stdout);
  }

  // --- city-scale rows: one DiGS trial each, sharding on 5k and 10k ---
  bench::section("city scale (DiGS, multiple APs, sparse medium)");
  std::printf("%8s %5s %5s | %8s %8s %8s | %8s %8s\n", "devices", "shrd",
              "thr", "PDR", "medLat", "join_s", "build_s", "run_s");

  const unsigned hw = std::thread::hardware_concurrency();
  int city_max = 10000;
  if (const char* env = std::getenv("DIGS_SCALING_MAX_DEVICES")) {
    const int cap = std::atoi(env);
    if (cap > 0) city_max = cap;
  }
  int city_min = 0;
  if (const char* env = std::getenv("DIGS_SCALING_MIN_DEVICES")) {
    const int floor = std::atoi(env);
    if (floor > 0) city_min = floor;
  }

  std::vector<CityRow> city_rows;
  bool ran_5k_pair = false;
  bool ran_5k_mt = false;
  bool shard_mismatch = false;
  double overhead_5k = 0.0;  // 8-shard/1-thread run_s over serial run_s
  double speedup_5k = 0.0;   // serial run_s over 8-shard/hw-thread run_s
  bool ran_10k_serial = false;
  bool ran_10k_sharded = false;
  bool mismatch_10k = false;
  double speedup_10k = 0.0;
  double serial_fraction_10k = -1.0;
  std::size_t threads_10k = 1;
  for (const int devices : {1000, 5000, 10000}) {
    if (devices > city_max || devices < city_min) continue;
    const ExperimentConfig config = city_config(90, 1);
    CityRow serial = run_city(devices, 90, 1, 1, config);
    print_city_row(serial);
    city_rows.push_back(serial);
    if (devices == 10000) ran_10k_serial = serial.result.generated > 0;
    if (devices == 5000) {
      // Pipeline overhead: 8 shards on ONE worker thread runs the exact
      // parallel code path (defer buffers, replay, per-shard arenas) with
      // no pool, so run_s over serial run_s is the pure cost of the
      // machinery. Gated at 5%.
      CityRow one_thread = run_city(devices, 90, 8, 1, config);
      print_city_row(one_thread);
      ran_5k_pair = true;
      shard_mismatch = !identical(serial.result, one_thread.result);
      overhead_5k =
          serial.run_s > 0 ? one_thread.run_s / serial.run_s : 0.0;
      city_rows.push_back(one_thread);
      if (hw >= 4) {
        CityRow mt = run_city(devices, 90, 8, hw, config);
        print_city_row(mt);
        ran_5k_mt = true;
        shard_mismatch =
            shard_mismatch || !identical(serial.result, mt.result);
        speedup_5k = mt.run_s > 0 ? serial.run_s / mt.run_s : 0.0;
        city_rows.push_back(mt);
      }
    }
    if (devices == 10000) {
      // Sharded 10k row with the profiler forced on: measures the serial
      // fraction of the parallel pipeline (the phases that cannot be
      // sharded — wake-heap drain, attempt buckets + on-air, reception
      // compaction, ACK resolution — over the whole slot body) and the
      // per-shard busy-time imbalance. On >=8-thread hardware it also
      // runs on the full pool and gates the end-to-end speedup.
      threads_10k = hw >= 8 ? static_cast<std::size_t>(hw) : 1;
      const bool prof_was_on = prof::enabled();
      prof::force_enabled(true);
      CityRow sharded = run_city(devices, 90, 8, threads_10k, config);
      prof::force_enabled(prof_was_on);
      const std::uint64_t slot_total = prof::total_ns(prof::kSlotTotal);
      const std::uint64_t serial_ns = prof::total_ns(prof::kWakePop) +
                                      prof::total_ns(prof::kBucketBuild) +
                                      prof::total_ns(prof::kMergeCompact) +
                                      prof::total_ns(prof::kAckResolve);
      if (slot_total > 0) {
        serial_fraction_10k = static_cast<double>(serial_ns) /
                              static_cast<double>(slot_total);
      }
      print_city_row(sharded);
      ran_10k_sharded = true;
      mismatch_10k = !identical(serial.result, sharded.result);
      speedup_10k = sharded.run_s > 0 ? serial.run_s / sharded.run_s : 0.0;
      city_rows.push_back(sharded);
    }
  }

  // Gate evaluation up front so the JSON can record the outcomes. The
  // bit-identity contract, the 1-thread overhead bound, the serial
  // fraction, and the multi-thread speedup targets are INDEPENDENT:
  // identity/overhead/serial-fraction must hold whenever their rows ran;
  // the speedup thresholds only gate where there are enough hardware
  // threads to make them meaningful.
  const bool ran_10k = city_max >= 10000 && city_min <= 10000;
  const bool fail_10k = ran_10k && !ran_10k_serial;
  const char* overhead_gate = "not_run";
  if (ran_5k_pair) overhead_gate = overhead_5k <= 1.05 ? "ok" : "fail";
  const char* speedup_gate_5k = "not_run";
  double speedup_threshold = 0.0;
  if (ran_5k_pair) {
    if (hw >= 4) {
      speedup_threshold = hw >= 8 ? 3.0 : 1.8;
      speedup_gate_5k = speedup_5k >= speedup_threshold ? "ok" : "fail";
    } else {
      speedup_gate_5k = "skipped_low_hw";
    }
  }
  const char* speedup_gate_10k = "not_run";
  if (ran_10k_sharded) {
    speedup_gate_10k = hw >= 8 ? (speedup_10k >= 4.0 ? "ok" : "fail")
                               : "skipped_low_hw";
  }
  const char* serial_fraction_gate = "not_run";
  if (serial_fraction_10k >= 0.0) {
    serial_fraction_gate = serial_fraction_10k < 0.20 ? "ok" : "fail";
  }

  std::FILE* out = std::fopen("BENCH_scaling.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"methodology\": \"constant density; paper-scale rows 18-148 "
        "devices (31.25 m^2/device, 2 APs, DiGS vs Orchestra); city rows "
        "1k/5k/10k devices (312 m^2/device, path-loss exponent 3.5, "
        "admission -84 dBm, one AP per 100 devices on an internal grid, "
        "DiGS only, 16 flows @5s, 300s warmup + 120s window); the 5k row "
        "repeats at 8 shards / 1 worker thread (pipeline overhead, gated "
        "at 5%% over serial) and, with >=4 hardware threads, at 8 shards "
        "/ hw threads (speedup); the 10k row repeats sharded with the "
        "profiler forced on to measure the pipeline's serial fraction "
        "(gated below 20%%) and per-shard busy-time imbalance (max/mean); "
        "every sharded run must be bit-identical to its serial run; "
        "threads is the effective worker count after clamping; build_s is "
        "Network construction (reachability + CSR tables), run_s the "
        "simulation wall-clock; prof fragments appear per row when "
        "profiled\",\n"
        "  \"hardware_threads\": %u,\n"
        "  \"shard_overhead_5k_threads1\": %.3f,\n"
        "  \"overhead_gate_5k\": \"%s\",\n"
        "  \"shard_bit_identical\": %s,\n"
        "  \"shard_speedup_5k\": %.3f,\n"
        "  \"speedup_gate_5k\": \"%s\",\n"
        "  \"shard_speedup_10k\": %.3f,\n"
        "  \"speedup_gate_10k\": \"%s\",\n"
        "  \"serial_fraction_10k\": %.4f,\n"
        "  \"serial_fraction_gate\": \"%s\",\n"
        "  \"city_rows\": [\n",
        hw, overhead_5k, overhead_gate,
        (ran_5k_pair || ran_10k_sharded)
            ? ((shard_mismatch || mismatch_10k) ? "false" : "true")
            : "null",
        speedup_5k, speedup_gate_5k, speedup_10k, speedup_gate_10k,
        serial_fraction_10k, serial_fraction_gate);
    for (std::size_t i = 0; i < city_rows.size(); ++i) {
      const CityRow& r = city_rows[i];
      std::fprintf(out,
                   "    {\"devices\": %d, \"shards\": %zu, \"threads\": %zu, "
                   "\"pdr\": %.4f, "
                   "\"median_latency_ms\": %.1f, \"mean_join_s\": %.1f, "
                   "\"build_s\": %.2f, \"run_s\": %.2f, \"imbalance\": %.3f",
                   r.devices, r.shards, r.threads, r.result.overall_pdr,
                   median_or(r.result.latencies_ms, 0.0),
                   mean_or(r.result.join_times_s, 0.0), r.build_s, r.run_s,
                   r.imbalance);
      if (!r.prof.empty()) std::fprintf(out, ", \"prof\": %s", r.prof.c_str());
      std::fprintf(out, "}%s\n", i + 1 < city_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_scaling.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_scaling.json\n");
  }

  std::printf(
      "\nBoth suites form autonomously at every size — no centralized\n"
      "manager in the loop (contrast bench/fig03: the WirelessHART manager\n"
      "already needs ~10 minutes at 50 nodes). Deeper networks stretch\n"
      "latency for both; DiGS's backup routes keep reliability flatter as\n"
      "the mesh grows. The city rows run on the sparse (CSR) medium with\n"
      "the spatial-grid coupling cutoff; intra-trial sharding splits each\n"
      "slot's reception resolution across DIGS_SHARDS cells.\n");

  // --- gates ---
  int status = 0;
  if (fail_10k) {
    std::printf("GATE FAIL: the 10k-device row did not complete\n");
    status = 1;
  }
  // Bit-identity reports its own verdict whenever a sharded run happened —
  // even when the speedup gates below are skipped on low-core hardware, a
  // shard divergence must never pass silently.
  if (ran_5k_pair || ran_10k_sharded) {
    if (shard_mismatch || mismatch_10k) {
      std::printf("GATE FAIL: a sharded run diverged from its serial run "
                  "(5k mismatch=%d, 10k mismatch=%d)\n",
                  shard_mismatch ? 1 : 0, mismatch_10k ? 1 : 0);
      status = 1;
    } else {
      std::printf("gate OK: every sharded run bit-identical to serial\n");
    }
  }
  // Pipeline overhead: the sharded machinery at ONE worker thread must be
  // nearly free, or single-core users pay for parallelism they don't get.
  if (std::string(overhead_gate) == "fail") {
    std::printf(
        "GATE FAIL: 5k 8-shard/1-thread run %.1f%% over serial (max 5%%)\n",
        (overhead_5k - 1.0) * 100.0);
    status = 1;
  } else if (ran_5k_pair) {
    std::printf("gate OK: 5k 8-shard/1-thread overhead %+.1f%% (max +5%%)\n",
                (overhead_5k - 1.0) * 100.0);
  }
  // The speedup targets need real cores: 8 shards on >=8 hardware threads
  // should hit 3x at 5k and 4x at 10k (bigger slots amortize the barriers
  // better); on a 4-7 thread box ask 5k for 1.8x; below that the bench
  // records the ratios but cannot gate on them.
  if (std::string(speedup_gate_5k) == "fail") {
    std::printf("GATE FAIL: 5k shard speedup %.2fx < %.1fx (hw=%u)\n",
                speedup_5k, speedup_threshold, hw);
    status = 1;
  } else if (std::string(speedup_gate_5k) == "ok") {
    std::printf("gate OK: 5k shard speedup %.2fx (threshold %.1fx)\n",
                speedup_5k, speedup_threshold);
  } else if (ran_5k_pair && !ran_5k_mt) {
    std::printf("5k speedup gate skipped: %u hardware thread(s)\n", hw);
  }
  if (std::string(speedup_gate_10k) == "fail") {
    std::printf("GATE FAIL: 10k shard speedup %.2fx < 4.0x (hw=%u)\n",
                speedup_10k, hw);
    status = 1;
  } else if (std::string(speedup_gate_10k) == "ok") {
    std::printf("gate OK: 10k shard speedup %.2fx (threshold 4.0x)\n",
                speedup_10k);
  } else if (ran_10k_sharded) {
    std::printf(
        "10k speedup gate skipped: %u hardware thread(s); measured %.2fx "
        "at %zu thread(s)\n",
        hw, speedup_10k, threads_10k);
  }
  // Amdahl: whatever the core count, the serial phases bound the pipeline.
  if (std::string(serial_fraction_gate) == "fail") {
    std::printf("GATE FAIL: 10k serial fraction %.1f%% >= 20%%\n",
                serial_fraction_10k * 100.0);
    status = 1;
  } else if (std::string(serial_fraction_gate) == "ok") {
    std::printf("gate OK: 10k serial fraction %.1f%% (< 20%%)\n",
                serial_fraction_10k * 100.0);
  }
  return status;
}
