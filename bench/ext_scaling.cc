// Extension study (no corresponding paper figure): how both suites scale
// with network size on one floor plan — the question motivating the paper
// ("hundreds of devices over an oil field"). Sweeps the device count at
// constant density and measures formation time, reliability and latency.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

/// A constant-density floor: n devices over an area scaled so the mean
/// nearest-neighbor distance matches Testbed A.
TestbedLayout scaled_floor(int devices, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x5CA1E));
  TestbedLayout layout;
  layout.name = "scaled-" + std::to_string(devices);
  layout.num_access_points = 2;
  const double area = 31.25 * devices;  // Testbed A: 60x25 m for 48
  const double w = std::sqrt(area * 2.4);
  const double h = area / w;
  layout.positions.push_back(Position{w / 2 - 10, h / 2, 0});
  layout.positions.push_back(Position{w / 2 + 10, h / 2, 0});
  for (int i = 0; i < devices; ++i) {
    layout.positions.push_back(
        Position{rng.uniform(0.0, w), rng.uniform(0.0, h), 0.0});
  }
  return layout;
}

}  // namespace

int main() {
  bench::header("ext_scaling",
                "Extension: scalability sweep at constant density");
  const int runs = bench::default_runs(3);
  std::printf("%d runs per size; 8 flows @ 5 s, no interference\n\n", runs);
  std::printf("%8s %12s | %-26s | %-26s\n", "", "", "DiGS", "Orchestra");
  std::printf("%8s %12s | %8s %8s %8s | %8s %8s %8s\n", "devices", "",
              "PDR", "medLat", "join_s", "PDR", "medLat", "join_s");

  for (const int devices : {18, 48, 98, 148}) {
    double row[2][3] = {};
    for (const ProtocolSuite suite :
         {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
      Cdf pdr;
      Cdf latency;
      Cdf join;
      std::vector<TrialSpec> trials;
      for (int run = 0; run < runs; ++run) {
        ExperimentConfig config;
        config.suite = suite;
        config.seed = 16'000 + run;
        config.num_flows = 8;
        config.flow_period = seconds(static_cast<std::int64_t>(5));
        config.warmup = seconds(static_cast<std::int64_t>(300));
        config.duration = seconds(static_cast<std::int64_t>(240));
        config.num_jammers = 0;
        trials.push_back(TrialSpec{scaled_floor(devices, 40 + run), config});
      }
      for (const ExperimentResult& result : run_trials(trials)) {
        pdr.add(result.overall_pdr);
        for (const double ms : result.latencies_ms) latency.add(ms);
        for (const double t : result.join_times_s) join.add(t);
      }
      const int idx = suite == ProtocolSuite::kDigs ? 0 : 1;
      row[idx][0] = pdr.mean();
      row[idx][1] = latency.median();
      row[idx][2] = join.mean();
    }
    std::printf("%8d %12s | %8.3f %8.0f %8.1f | %8.3f %8.0f %8.1f\n",
                devices, "", row[0][0], row[0][1], row[0][2], row[1][0],
                row[1][1], row[1][2]);
  }

  std::printf(
      "\nBoth suites form autonomously at every size — no centralized\n"
      "manager in the loop (contrast bench/fig03: the WirelessHART manager\n"
      "already needs ~10 minutes at 50 nodes). Deeper networks stretch\n"
      "latency for both; DiGS's backup routes keep reliability flatter as\n"
      "the mesh grows.\n");
  return 0;
}
