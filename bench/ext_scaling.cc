// Extension study (no corresponding paper figure): how both suites scale
// with network size on one floor plan — the question motivating the paper
// ("hundreds of devices over an oil field"). Two regimes:
//
//  * Paper-scale sweep (18..148 devices): DiGS vs Orchestra at constant
//    density, formation time / reliability / latency — the protocol
//    question.
//  * City-scale sweep (1k/5k/10k devices): DiGS only, multiple APs, the
//    simulator question — does the cell-partitioned medium (sparse CSR
//    storage, coupling cutoff) plus intra-trial sharding (DIGS_SHARDS)
//    actually carry a single trial to 10k nodes, and does sharding pay?
//    The 5k row runs twice (1 shard vs 8 shards); the runs must be
//    bit-identical and the wall-clock ratio is the sharding speedup.
//
// Writes BENCH_scaling.json. Exit status is a gate: nonzero when a city
// row fails to complete, when the 5k 1-vs-8-shard pair diverges, or (only
// on hardware with enough cores to make the target meaningful) when the
// sharding speedup misses the threshold.
//
// DIGS_SCALING_SMOKE=1 runs a reduced city row (for the TSan preset in
// scripts/check.sh): ~300 devices, short windows, 1 shard vs DIGS_SHARDS,
// bit-identity gate only, no JSON.
//
// DIGS_SCALING_CITY_ONLY=1 skips the paper-scale sweep;
// DIGS_SCALING_MIN_DEVICES / DIGS_SCALING_MAX_DEVICES bound which city
// rows run. With DIGS_PROF=1 each city row gets its own phase breakdown
// (profiler reset per row) embedded in its JSON entry.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/prof.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

/// A constant-density floor: n devices over an area scaled so the mean
/// nearest-neighbor distance matches Testbed A.
TestbedLayout scaled_floor(int devices, std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0x5CA1E));
  TestbedLayout layout;
  layout.name = "scaled-" + std::to_string(devices);
  layout.num_access_points = 2;
  const double area = 31.25 * devices;  // Testbed A: 60x25 m for 48
  const double w = std::sqrt(area * 2.4);
  const double h = area / w;
  layout.positions.push_back(Position{w / 2 - 10, h / 2, 0});
  layout.positions.push_back(Position{w / 2 + 10, h / 2, 0});
  for (int i = 0; i < devices; ++i) {
    layout.positions.push_back(
        Position{rng.uniform(0.0, w), rng.uniform(0.0, h), 0.0});
  }
  return layout;
}

// City-scale layout: bench::city_floor() (shared with micro_core's
// busy-slot row, which must measure the same floor).
using bench::city_floor;

double median_or(const std::vector<double>& values, double fallback) {
  if (values.empty()) return fallback;
  Cdf cdf;
  for (const double v : values) cdf.add(v);
  return cdf.median();
}

double mean_or(const std::vector<double>& values, double fallback) {
  if (values.empty()) return fallback;
  Cdf cdf;
  for (const double v : values) cdf.add(v);
  return cdf.mean();
}

ExperimentConfig city_config(std::uint64_t seed, std::size_t shards) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = seed;
  config.num_flows = 16;
  config.flow_period = seconds(std::int64_t{5});
  config.warmup = seconds(std::int64_t{300});
  config.duration = seconds(std::int64_t{120});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  config.shards = shards;
  return config;
}

struct CityRow {
  int devices{0};
  std::size_t shards{1};
  double build_s{0};  // Network construction (reachability tables, CSR)
  double run_s{0};    // warmup + measurement + drain wall-clock
  ExperimentResult result;
  std::string prof;  // per-row DIGS_PROF phase breakdown (empty when off)
};

CityRow run_city(int devices, std::uint64_t seed, std::size_t shards,
                 const ExperimentConfig& config) {
  using clock = std::chrono::steady_clock;
  CityRow row;
  row.devices = devices;
  row.shards = shards;
  const auto t0 = clock::now();
  ExperimentRunner runner(city_floor(devices, seed), config);
  const auto t1 = clock::now();
  // Scope the profiler (when DIGS_PROF=1) to this row alone, so each JSON
  // entry carries its own phase breakdown.
  const bool prof_on = prof::enabled();
  if (prof_on) prof::reset();
  row.result = runner.run();
  const auto t2 = clock::now();
  if (prof_on) row.prof = prof::json();
  row.build_s = std::chrono::duration<double>(t1 - t0).count();
  row.run_s = std::chrono::duration<double>(t2 - t1).count();
  return row;
}

void print_city_row(const CityRow& row) {
  std::printf("%8d %8zu | %8.3f %8.0f %8.1f | %8.1f %8.1f\n", row.devices,
              row.shards, row.result.overall_pdr,
              median_or(row.result.latencies_ms, 0.0),
              mean_or(row.result.join_times_s, 0.0), row.build_s, row.run_s);
  std::fflush(stdout);
}

/// Exact comparison of the observables the shard-invariance contract pins:
/// sharded reception resolution merges in listener order, so every metric
/// must be bit-identical to the serial run.
bool identical(const ExperimentResult& a, const ExperimentResult& b) {
  return a.generated == b.generated && a.delivered == b.delivered &&
         a.overall_pdr == b.overall_pdr && a.flow_pdrs == b.flow_pdrs &&
         a.latencies_ms == b.latencies_ms && a.duty_cycle == b.duty_cycle &&
         a.energy_per_delivered_mj == b.energy_per_delivered_mj &&
         a.guard_misses == b.guard_misses &&
         a.desync_events == b.desync_events &&
         a.join_times_s == b.join_times_s;
}

int run_smoke() {
  bench::header("ext_scaling (smoke)",
                "Sharded city row under the sanitizer presets");
  ExperimentConfig config = city_config(90, 1);
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{30});
  const int devices = 288;
  const CityRow serial = run_city(devices, 90, 1, config);
  // shards = 0 defers to DIGS_SHARDS, so the env knob path (the one
  // check.sh exercises under TSan) is the code under test.
  config.shards = 0;
  const CityRow sharded = run_city(devices, 90, 0, config);
  std::printf("%8s %8s | %8s %8s %8s | %8s %8s\n", "devices", "shards", "PDR",
              "medLat", "join_s", "build_s", "run_s");
  print_city_row(serial);
  print_city_row(sharded);
  if (!identical(serial.result, sharded.result)) {
    std::printf("\nFAIL: sharded smoke run diverged from the serial run\n");
    return 1;
  }
  std::printf("\nsmoke OK: sharded run bit-identical to serial\n");
  return 0;
}

}  // namespace

int main() {
  if (const char* env = std::getenv("DIGS_SCALING_SMOKE");
      env != nullptr && env[0] == '1') {
    return run_smoke();
  }

  bench::header("ext_scaling",
                "Extension: scalability sweep at constant density");
  const bool city_only = [] {
    const char* env = std::getenv("DIGS_SCALING_CITY_ONLY");
    return env != nullptr && env[0] == '1';
  }();
  const int runs = bench::default_runs(3);
  std::printf("%d runs per size; 8 flows @ 5 s, no interference\n\n", runs);
  std::printf("%8s %12s | %-26s | %-26s\n", "", "", "DiGS", "Orchestra");
  std::printf("%8s %12s | %8s %8s %8s | %8s %8s %8s\n", "devices", "",
              "PDR", "medLat", "join_s", "PDR", "medLat", "join_s");

  static constexpr int kPaperSizes[] = {18, 48, 98, 148};
  const std::span<const int> paper_sizes =
      city_only ? std::span<const int>{} : std::span<const int>{kPaperSizes};
  for (const int devices : paper_sizes) {
    double row[2][3] = {};
    for (const ProtocolSuite suite :
         {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
      Cdf pdr;
      Cdf latency;
      Cdf join;
      std::vector<TrialSpec> trials;
      for (int run = 0; run < runs; ++run) {
        ExperimentConfig config;
        config.suite = suite;
        config.seed = 16'000 + run;
        config.num_flows = 8;
        config.flow_period = seconds(static_cast<std::int64_t>(5));
        config.warmup = seconds(static_cast<std::int64_t>(300));
        config.duration = seconds(static_cast<std::int64_t>(240));
        config.num_jammers = 0;
        trials.push_back(TrialSpec{scaled_floor(devices, 40 + run), config});
      }
      for (const ExperimentResult& result : run_trials(trials)) {
        pdr.add(result.overall_pdr);
        for (const double ms : result.latencies_ms) latency.add(ms);
        for (const double t : result.join_times_s) join.add(t);
      }
      const int idx = suite == ProtocolSuite::kDigs ? 0 : 1;
      row[idx][0] = pdr.mean();
      row[idx][1] = latency.median();
      row[idx][2] = join.mean();
    }
    std::printf("%8d %12s | %8.3f %8.0f %8.1f | %8.3f %8.0f %8.1f\n",
                devices, "", row[0][0], row[0][1], row[0][2], row[1][0],
                row[1][1], row[1][2]);
    std::fflush(stdout);
  }

  // --- city-scale rows: one DiGS trial each, sharding on the 5k row ---
  bench::section("city scale (DiGS, multiple APs, sparse medium)");
  std::printf("%8s %8s | %8s %8s %8s | %8s %8s\n", "devices", "shards", "PDR",
              "medLat", "join_s", "build_s", "run_s");

  const unsigned hw = std::thread::hardware_concurrency();
  int city_max = 10000;
  if (const char* env = std::getenv("DIGS_SCALING_MAX_DEVICES")) {
    const int cap = std::atoi(env);
    if (cap > 0) city_max = cap;
  }
  int city_min = 0;
  if (const char* env = std::getenv("DIGS_SCALING_MIN_DEVICES")) {
    const int floor = std::atoi(env);
    if (floor > 0) city_min = floor;
  }

  std::vector<CityRow> city_rows;
  bool ran_5k_pair = false;
  bool shard_mismatch = false;
  double speedup = 0.0;
  for (const int devices : {1000, 5000, 10000}) {
    if (devices > city_max || devices < city_min) continue;
    const ExperimentConfig config = city_config(90, 1);
    CityRow serial = run_city(devices, 90, 1, config);
    print_city_row(serial);
    city_rows.push_back(serial);
    if (devices == 5000) {
      ExperimentConfig sharded_config = config;
      sharded_config.shards = 8;
      CityRow sharded = run_city(devices, 90, 8, sharded_config);
      print_city_row(sharded);
      ran_5k_pair = true;
      shard_mismatch = !identical(serial.result, sharded.result);
      speedup = sharded.run_s > 0 ? serial.run_s / sharded.run_s : 0.0;
      city_rows.push_back(sharded);
    }
  }

  // Gate evaluation up front so the JSON can record the outcomes. The 5k
  // bit-identity contract and the shard-speedup target are INDEPENDENT:
  // bit-identity must hold (and is always reported) when the pair ran; the
  // speedup threshold only gates where there are enough hardware threads to
  // make it meaningful.
  const bool ran_10k = city_max >= 10000 && city_min <= 10000;
  const bool fail_10k =
      ran_10k && (city_rows.empty() || city_rows.back().devices != 10000 ||
                  city_rows.back().result.generated == 0);
  const char* speedup_gate = "not_run";
  double speedup_threshold = 0.0;
  if (ran_5k_pair) {
    if (hw >= 4) {
      speedup_threshold = hw >= 8 ? 3.0 : 1.8;
      speedup_gate = speedup >= speedup_threshold ? "ok" : "fail";
    } else {
      speedup_gate = "skipped_low_hw";
    }
  }

  std::FILE* out = std::fopen("BENCH_scaling.json", "w");
  if (out != nullptr) {
    std::fprintf(
        out,
        "{\n"
        "  \"methodology\": \"constant density; paper-scale rows 18-148 "
        "devices (31.25 m^2/device, 2 APs, DiGS vs Orchestra); city rows "
        "1k/5k/10k devices (312 m^2/device, path-loss exponent 3.5, "
        "admission -84 dBm, one AP per 100 devices on an internal grid, "
        "DiGS only, 16 flows @5s, 300s warmup + 120s window); the 5k row "
        "repeats at DIGS_SHARDS=8 and must be "
        "bit-identical to the 1-shard run; build_s is Network construction "
        "(reachability + CSR tables), run_s the simulation wall-clock; "
        "prof fragments appear per row when DIGS_PROF=1\",\n"
        "  \"hardware_threads\": %u,\n"
        "  \"shard_speedup_5k\": %.3f,\n"
        "  \"shard_bit_identical_5k\": %s,\n"
        "  \"speedup_gate\": \"%s\",\n"
        "  \"city_rows\": [\n",
        hw, speedup,
        ran_5k_pair ? (shard_mismatch ? "false" : "true") : "null",
        speedup_gate);
    for (std::size_t i = 0; i < city_rows.size(); ++i) {
      const CityRow& r = city_rows[i];
      std::fprintf(out,
                   "    {\"devices\": %d, \"shards\": %zu, \"pdr\": %.4f, "
                   "\"median_latency_ms\": %.1f, \"mean_join_s\": %.1f, "
                   "\"build_s\": %.2f, \"run_s\": %.2f",
                   r.devices, r.shards, r.result.overall_pdr,
                   median_or(r.result.latencies_ms, 0.0),
                   mean_or(r.result.join_times_s, 0.0), r.build_s, r.run_s);
      if (!r.prof.empty()) std::fprintf(out, ", \"prof\": %s", r.prof.c_str());
      std::fprintf(out, "}%s\n", i + 1 < city_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_scaling.json\n");
  } else {
    std::fprintf(stderr, "could not write BENCH_scaling.json\n");
  }

  std::printf(
      "\nBoth suites form autonomously at every size — no centralized\n"
      "manager in the loop (contrast bench/fig03: the WirelessHART manager\n"
      "already needs ~10 minutes at 50 nodes). Deeper networks stretch\n"
      "latency for both; DiGS's backup routes keep reliability flatter as\n"
      "the mesh grows. The city rows run on the sparse (CSR) medium with\n"
      "the spatial-grid coupling cutoff; intra-trial sharding splits each\n"
      "slot's reception resolution across DIGS_SHARDS cells.\n");

  // --- gates ---
  int status = 0;
  if (fail_10k) {
    std::printf("GATE FAIL: the 10k-device row did not complete\n");
    status = 1;
  }
  // Bit-identity reports its own verdict whenever the 5k pair ran — even
  // when the speedup gate below is skipped on low-core hardware, a shard
  // divergence must never pass silently.
  if (ran_5k_pair) {
    if (shard_mismatch) {
      std::printf(
          "GATE FAIL: 5k row at 8 shards diverged from the 1-shard run\n");
      status = 1;
    } else {
      std::printf(
          "gate OK: 5k row at 8 shards bit-identical to the 1-shard run\n");
    }
  }
  // The speedup target needs real cores: 8 shards on >=8 hardware threads
  // should hit 3x; on a 4-7 thread box ask for 1.8x; below that the bench
  // records the ratio but cannot gate on it.
  if (std::string(speedup_gate) == "fail") {
    std::printf("GATE FAIL: 5k shard speedup %.2fx < %.1fx (hw=%u)\n",
                speedup, speedup_threshold, hw);
    status = 1;
  } else if (std::string(speedup_gate) == "ok") {
    std::printf("gate OK: 5k shard speedup %.2fx (threshold %.1fx)\n",
                speedup, speedup_threshold);
  } else if (ran_5k_pair) {
    std::printf(
        "speedup gate skipped: %u hardware thread(s); measured %.2fx\n", hw,
        speedup);
  }
  return status;
}
