// Extension study: imperfect time synchronization — a per-node oscillator
// drift sweep (0 / 10 / 40 / 80 ppm static tolerance, with a random-walk
// component an eighth of it) across all three suites. Measures how much of
// the drift the TSCH correction machinery absorbs: end-to-end PDR,
// guard-time misses, desynchronization events, keep-alive polls, and the
// correction rate.
//
// The paper (like most WSAN schedulers) assumes perfect slot alignment;
// this bench quantifies the margin behind that assumption. At 40 ppm —
// the 802.15.4 crystal budget — the worst-case relative drift between two
// nodes is 80 us/s against a 2200 us guard, so EB/ACK corrections arriving
// every few seconds keep nodes comfortably inside the window; DiGS must
// hold PDR near its drift-free level with no desync storm (the binary
// exits nonzero otherwise). 80 ppm halves the budget and shows the first
// cracks. Writes BENCH_sync.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

constexpr double kPpmSweep[] = {0.0, 10.0, 40.0, 80.0};

struct PointSummary {
  double ppm = 0.0;
  Cdf pdr;
  std::uint64_t desyncs = 0;
  std::uint64_t guard_misses = 0;
  std::uint64_t keepalives = 0;
  std::uint64_t corrections = 0;
};

struct SuiteSummary {
  const char* key;
  int seeds = 0;
  std::vector<PointSummary> points;
};

SuiteSummary run_suite(ProtocolSuite suite, int seeds) {
  // One flat trial list over (ppm, seed) so the sweep saturates the pool.
  std::vector<TrialSpec> trials;
  for (const double ppm : kPpmSweep) {
    for (int s = 0; s < seeds; ++s) {
      TrialSpec trial;
      trial.layout = half_testbed_a();
      trial.config.suite = suite;
      trial.config.seed = 42'000 + s;
      trial.config.num_flows = 8;
      trial.config.flow_period = seconds(static_cast<std::int64_t>(5));
      trial.config.warmup = seconds(static_cast<std::int64_t>(150));
      trial.config.duration = seconds(static_cast<std::int64_t>(300));
      trial.config.clock_ppm = ppm;
      trial.config.clock_walk_ppm = ppm / 8.0;
      trials.push_back(trial);
    }
  }

  SuiteSummary summary;
  summary.key = to_string(suite);
  summary.seeds = seeds;
  const std::vector<ExperimentResult> results = run_trials(trials);
  std::size_t i = 0;
  for (const double ppm : kPpmSweep) {
    PointSummary point;
    point.ppm = ppm;
    for (int s = 0; s < seeds; ++s, ++i) {
      const ExperimentResult& result = results[i];
      point.pdr.add(result.overall_pdr);
      point.desyncs += result.desync_events;
      point.guard_misses += result.guard_misses;
      point.keepalives += result.keepalives_sent;
      point.corrections += result.clock_corrections;
    }
    summary.points.push_back(point);
  }
  return summary;
}

void print_summary(const SuiteSummary& s) {
  bench::section(std::string("suite: ") + s.key);
  std::printf("  %6s %10s %10s %9s %12s %11s %12s\n", "ppm", "pdr_mean",
              "pdr_min", "desyncs", "guard_miss", "keepalives",
              "corrections");
  for (const PointSummary& p : s.points) {
    std::printf("  %6.0f %10.4f %10.4f %9llu %12llu %11llu %12llu\n", p.ppm,
                p.pdr.mean(), p.pdr.min(),
                static_cast<unsigned long long>(p.desyncs),
                static_cast<unsigned long long>(p.guard_misses),
                static_cast<unsigned long long>(p.keepalives),
                static_cast<unsigned long long>(p.corrections));
  }
}

void write_json(const std::vector<SuiteSummary>& summaries) {
  std::FILE* out = std::fopen("BENCH_sync.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write BENCH_sync.json\n");
    return;
  }
  std::fprintf(
      out,
      "{\n"
      "  \"methodology\": \"half_testbed_a (20 nodes, 2 APs), 8 flows @5s, "
      "150s warmup, 300s measurement; per-node oscillator drift swept over "
      "0/10/40/80 ppm static tolerance with a random walk of ppm/8 on top "
      "(walk step every 10s); nodes correct their clocks from time-source "
      "EBs and ACKs and fall back to keep-alive polls at half the guard "
      "budget; receptions outside the 2200us guard are lost; per-point "
      "numbers aggregate all seeds\",\n"
      "  \"hardware_threads\": %u,\n",
      bench::hardware_threads());
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const SuiteSummary& s = summaries[i];
    std::fprintf(out, "  \"%s\": {\n    \"seeds\": %d,\n    \"sweep\": [\n",
                 s.key, s.seeds);
    for (std::size_t p = 0; p < s.points.size(); ++p) {
      const PointSummary& point = s.points[p];
      std::fprintf(
          out,
          "      {\"ppm\": %.0f, \"overall_pdr_mean\": %.4f, "
          "\"overall_pdr_min\": %.4f, \"desync_events\": %llu, "
          "\"guard_misses\": %llu, \"keepalives_sent\": %llu, "
          "\"clock_corrections\": %llu}%s\n",
          point.ppm, point.pdr.mean(), point.pdr.min(),
          static_cast<unsigned long long>(point.desyncs),
          static_cast<unsigned long long>(point.guard_misses),
          static_cast<unsigned long long>(point.keepalives),
          static_cast<unsigned long long>(point.corrections),
          p + 1 < s.points.size() ? "," : "");
    }
    std::fprintf(out, "    ]\n  }%s\n",
                 i + 1 < summaries.size() ? "," : "");
  }
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("\nwrote BENCH_sync.json\n");
}

}  // namespace

int main() {
  bench::header("ext_sync",
                "Extension: oscillator drift sweep (0-80 ppm) across the "
                "three suites; guard misses, desyncs, keep-alive overhead");
  const int seeds = bench::default_runs(3);
  std::printf("seeds per (suite, ppm): %d; half Testbed A, 8 flows; drift "
              "0/10/40/80 ppm with walk = ppm/8\n",
              seeds);

  std::vector<SuiteSummary> summaries;
  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra,
        ProtocolSuite::kWirelessHart}) {
    summaries.push_back(run_suite(suite, seeds));
    print_summary(summaries.back());
  }
  write_json(summaries);

  // Acceptance: within the 802.15.4 crystal budget (<= 40 ppm) the
  // correction machinery must hold DiGS together — no desync storm (a
  // handful of desyncs across all seeds is churn, dozens is a storm) and
  // PDR within a few points of the drift-free baseline.
  bool ok = true;
  const SuiteSummary& digs_summary = summaries[0];
  const double baseline_pdr = digs_summary.points[0].pdr.mean();
  for (const PointSummary& point : digs_summary.points) {
    if (point.ppm > 40.0) continue;
    const auto budget =
        static_cast<std::uint64_t>(10 * digs_summary.seeds);
    if (point.desyncs > budget) {
      std::printf("FAIL: DiGS at %.0f ppm suffered a desync storm "
                  "(%llu desyncs > budget %llu)\n",
                  point.ppm, static_cast<unsigned long long>(point.desyncs),
                  static_cast<unsigned long long>(budget));
      ok = false;
    }
    if (point.pdr.mean() < baseline_pdr - 0.05) {
      std::printf("FAIL: DiGS at %.0f ppm lost more than 5 points of PDR "
                  "(%.4f vs %.4f)\n",
                  point.ppm, point.pdr.mean(), baseline_pdr);
      ok = false;
    }
  }
  std::printf(
      "\nExpected shape: at 0 ppm the drift subsystem is inactive (all\n"
      "clock columns zero). Through 40 ppm, EB/ACK corrections arrive far\n"
      "inside the guard budget, so PDR stays at the drift-free level with\n"
      "at most stray guard misses. At 80 ppm the budget halves and the\n"
      "keep-alive path starts doing real work; nodes whose corrections\n"
      "lapse desync, rescan, and rejoin instead of black-holing slots.\n");
  return ok ? 0 : 1;
}
