// Extension study: the paper's three systems side by side under the same
// node-failure scenario — DiGS, Orchestra, and the live centralized
// WirelessHART baseline (Network Manager with the Fig. 3 reaction time).
// This quantifies the paper's motivating claim end to end: the centralized
// manager leaves flows on stale routes for minutes, RPL repairs in tens of
// seconds, and DiGS fails over within a slotframe cycle.
#include <algorithm>
#include <array>
#include <cstdio>

#include "bench_util.h"
#include "core/network.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct Result {
  /// PDR of the stranded flow (the one whose parents died) in the three
  /// minutes after the kill.
  Cdf stranded_minute[3];
  /// Collateral: PDR of the other flows in the same period.
  Cdf collateral;
  int runs_counted = 0;
};

/// One run's samples; a run with AP-parented sources contributes nothing
/// (counted == false), exactly like the sequential loop's `continue`.
struct RunProduct {
  bool counted = false;
  std::array<std::vector<double>, 3> stranded_minute;
  std::vector<double> collateral;
};

RunProduct run_one(ProtocolSuite suite, int r) {
  RunProduct product;
  const TestbedLayout layout = testbed_a();
  NetworkConfig config;
  config.suite = suite;
  config.seed = 18'000 + r;
  config.node = ExperimentRunner::default_node_config();
  config.node.mac.tx_power_dbm = layout.tx_power_dbm;
  config.medium.propagation.path_loss_exponent = layout.path_loss_exponent;
  Network net(config, layout.positions);
  // Sources: the 8 devices farthest from the access points, so their
  // routes are genuinely multi-hop under every suite.
  std::vector<std::pair<double, NodeId>> by_distance;
  for (std::uint16_t i = 2; i < layout.num_nodes(); ++i) {
    const double d = std::min(distance(layout.positions[i],
                                       layout.positions[0]),
                              distance(layout.positions[i],
                                       layout.positions[1]));
    by_distance.emplace_back(-d, NodeId{i});
  }
  std::sort(by_distance.begin(), by_distance.end());
  std::vector<NodeId> sources;
  for (int f = 0; f < 8; ++f) sources.push_back(by_distance[f].second);
  for (std::size_t f = 0; f < sources.size(); ++f) {
    FlowSpec flow;
    flow.id = FlowId{static_cast<std::uint16_t>(f)};
    flow.source = sources[f];
    flow.period = seconds(static_cast<std::int64_t>(5));
    flow.start_offset = seconds(static_cast<std::int64_t>(250));
    net.add_flow(flow);
  }
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));

  // A single relay failure is cushioned by the pre-provisioned backup
  // parent under EVERY suite (that is graph routing working as designed;
  // see bench/fig11). The suites differ when a failure exceeds the
  // backup's coverage: kill BOTH current parents of the sources, so new
  // routes must be acquired — locally (DiGS, Orchestra) or from the
  // manager (WirelessHART, after the Fig. 3 reaction time).
  std::vector<NodeId> victims;
  for (const NodeId source : sources) {
    const NodeId bp = net.node(source).routing().best_parent();
    const NodeId sbp = net.node(source).routing().second_best_parent();
    if (bp.valid() && bp.value >= 2 &&
        (!sbp.valid() || sbp.value >= 2)) {
      victims.push_back(bp);
      if (sbp.valid()) victims.push_back(sbp);
      break;  // strand one far source completely
    }
  }
  if (victims.empty()) return product;  // AP-parented sources this run

  const NodeId stranded = sources.front();
  const SimTime kill_at =
      SimTime{0} + seconds(static_cast<std::int64_t>(360));
  net.run_until(kill_at);
  for (const NodeId victim : victims) net.set_node_alive(victim, false);
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(560)));
  product.counted = true;

  for (const FlowRecord& flow : net.stats().flows()) {
    bool source_killed = false;
    for (const NodeId victim : victims) {
      if (victim == flow.source) source_killed = true;
    }
    if (source_killed) continue;
    if (flow.source == stranded) {
      for (int w = 0; w < 3; ++w) {
        const SimTime from =
            kill_at + seconds(static_cast<std::int64_t>(60 * w));
        product.stranded_minute[w].push_back(net.stats().pdr(
            flow.id, from, from + seconds(static_cast<std::int64_t>(60))));
      }
    } else {
      product.collateral.push_back(net.stats().pdr(
          flow.id, kill_at,
          kill_at + seconds(static_cast<std::int64_t>(180))));
    }
  }
  return product;
}

Result run(ProtocolSuite suite, int runs) {
  Result result;
  for (const RunProduct& product : bench::parallel_map(
           runs, [suite](int r) { return run_one(suite, r); })) {
    if (!product.counted) continue;
    ++result.runs_counted;
    for (int w = 0; w < 3; ++w) {
      for (const double pdr : product.stranded_minute[w]) {
        result.stranded_minute[w].add(pdr);
      }
    }
    for (const double pdr : product.collateral) result.collateral.add(pdr);
  }
  return result;
}

}  // namespace

int main() {
  bench::header("ext_three_suites",
                "Extension: DiGS vs Orchestra vs centralized WirelessHART "
                "under node failure");
  const int runs = bench::default_runs(4);
  std::printf(
      "runs per suite: %d; Testbed A, 8 far-source flows; BOTH parents of\n"
      "one far source are killed simultaneously\n\n",
      runs);

  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra,
        ProtocolSuite::kWirelessHart}) {
    const Result result = run(suite, runs);
    bench::section(std::string("suite: ") + to_string(suite) + " (" +
                   std::to_string(result.runs_counted) + " runs)");
    std::printf(
        "  stranded flow PDR by minute after both parents die: "
        "%.2f -> %.2f -> %.2f\n",
        result.stranded_minute[0].mean(), result.stranded_minute[1].mean(),
        result.stranded_minute[2].mean());
    std::printf("  collateral flows PDR over the 3 minutes: %.3f (worst "
                "%.3f)\n",
                result.collateral.mean(), result.collateral.min());
  }

  std::printf(
      "\nThe paper's thesis in one table: the centralized manager leaves\n"
      "the stranded flow dead for its whole ~8-minute reaction window\n"
      "(Fig. 3) — though everything it did not touch stays perfectly\n"
      "stable; Orchestra re-parents locally within a minute but keeps\n"
      "losing packets to churn; DiGS re-acquires parents within seconds\n"
      "and is back to 100%% by the second minute. Single-parent-loss\n"
      "failures (bench/fig11) are absorbed by the pre-provisioned backup\n"
      "in every graph-routed suite — this bench removes that cushion.\n");
  return 0;
}
