// Fig. 3 — Time consumed by the centralized WirelessHART Network Manager to
// update routes and transmission schedule on four topologies:
//   Half Testbed A (20 nodes, paper 203 s), Full Testbed A (50, 506 s),
//   Half Testbed B (19, 191 s), Full Testbed B (44, 443 s).
//
// The route and schedule computations are performed for real on a global
// topology snapshot; the end-to-end reaction *time* (multi-hop collection +
// manager computation + multi-hop dissemination) uses the fitted reaction
// model (see src/manager/manager_model.h) calibrated on the paper's own
// anchor points, and the bench prints the collect/compute/disseminate
// breakdown and the scaling shape.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "manager/central_scheduler.h"
#include "manager/graph_router.h"
#include "manager/manager_model.h"
#include "testbed/layouts.h"

namespace {

struct Case {
  digs::TestbedLayout layout;
  double paper_seconds;
};

}  // namespace

int main() {
  using namespace digs;
  bench::header("fig03_manager_update",
                "Fig. 3 - centralized Network Manager reaction time");

  const std::vector<Case> cases{
      {half_testbed_a(), 203.0},
      {testbed_a(), 506.0},
      {half_testbed_b(), 191.0},
      {testbed_b(), 443.0},
  };

  // Calibrate the reaction model on the paper's anchors with depths taken
  // from our actual layouts.
  std::vector<ManagerAnchor> anchors;
  std::vector<GraphRoutingResult> all_routes;
  for (const Case& test_case : cases) {
    const auto topo = make_topology_snapshot(test_case.layout);
    auto routes = compute_graph_routes(topo);
    ManagerAnchor anchor;
    anchor.num_nodes = test_case.layout.num_nodes();
    anchor.total_depth =
        total_depth(routes, test_case.layout.num_access_points);
    anchor.measured_total_s = test_case.paper_seconds;
    anchors.push_back(anchor);
    all_routes.push_back(std::move(routes));
  }
  const auto model = ManagerReactionModel::fit(anchors);
  std::printf("fitted model: %.4f s per message-hop, %.5f s per node^2\n",
              model.per_hop_s(), model.compute_coeff_s());

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Case& test_case = cases[i];
    const auto topo = make_topology_snapshot(test_case.layout);
    const GraphRoutingResult& routes = all_routes[i];

    bench::section(test_case.layout.name);
    std::printf("  nodes=%u  reachable=%s  total_depth=%d  dag=%s\n",
                test_case.layout.num_nodes(),
                routes.fully_connected() ? "all" : "NOT ALL",
                anchors[i].total_depth,
                routes_are_dag(topo, routes) ? "yes" : "NO");

    // Real computation: routes (above) + central schedule for 8 flows.
    const auto sources = pick_sources(test_case.layout, 8, 42);
    std::vector<CentralFlow> flows;
    for (std::size_t f = 0; f < sources.size(); ++f) {
      flows.push_back({FlowId{static_cast<std::uint16_t>(f)}, sources[f]});
    }
    const auto wall0 = std::chrono::steady_clock::now();
    const auto schedule = compute_central_schedule(topo, routes, flows);
    const auto wall1 = std::chrono::steady_clock::now();
    std::printf(
        "  central schedule: %zu cells, superframe %u slots, "
        "conflict-free=%s (computed in %lld us on this host)\n",
        schedule.cells.size(), schedule.superframe_length,
        schedule.conflict_free() ? "yes" : "NO",
        static_cast<long long>(
            std::chrono::duration_cast<std::chrono::microseconds>(wall1 -
                                                                  wall0)
                .count()));

    const auto breakdown =
        model.predict(anchors[i].num_nodes, anchors[i].total_depth);
    std::printf(
        "  reaction: collect %.1f s + compute %.1f s + disseminate %.1f s\n",
        breakdown.collect_s, breakdown.compute_s, breakdown.disseminate_s);
    char paper[32];
    std::snprintf(paper, sizeof(paper), "%.0f s", test_case.paper_seconds);
    bench::paper_row("manager update time", paper, breakdown.total_s(), "s");
  }

  bench::section("scaling shape");
  std::printf(
      "  paper: 20->50 nodes means 203->506 s (x%.2f); model reproduces "
      "x%.2f\n",
      506.0 / 203.0,
      model.predict(anchors[1].num_nodes, anchors[1].total_depth).total_s() /
          model.predict(anchors[0].num_nodes, anchors[0].total_depth)
              .total_s());
  std::printf(
      "\nTakeaway: the centralized manager needs minutes to react at 20-50\n"
      "nodes, which is the scalability gap DiGS closes with distributed\n"
      "routing (Section V) and autonomous scheduling (Section VI).\n");
  return 0;
}
