// Fig. 4 — CDF of the time Orchestra (RPL + autonomous scheduling) needs to
// repair routes and schedule when 1-4 JamLab-style jammers switch on.
// Paper: repair time ranges 20-95 s with a median of 45 s.
//
// Repair time is measured as the longest per-flow outage after the jammers
// start: from the generation of the first lost packet to the next delivery.
// DiGS is run alongside for contrast (paper Section VII-A: DiGS provides
// seamless delivery during the repair).
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("fig04_repair_time",
                "Fig. 4 - Orchestra repair time under interference");

  const int runs = bench::default_runs(3);  // paper repeats 3x per setting
  std::printf("runs per jammer count: %d, 8 flows on Testbed A\n", runs);

  for (const ProtocolSuite suite :
       {ProtocolSuite::kOrchestra, ProtocolSuite::kDigs}) {
    bench::section(std::string("suite: ") + to_string(suite));
    for (int jammers = 1; jammers <= 4; ++jammers) {
      Cdf repair_cdf;
      int affected_flows = 0;
      int total_flows = 0;
      for (int run = 0; run < runs; ++run) {
        ExperimentConfig config;
        config.suite = suite;
        config.seed = 2000 + 17 * jammers + run;
        config.num_flows = 8;
        config.flow_period = seconds(static_cast<std::int64_t>(5));
        config.warmup = seconds(static_cast<std::int64_t>(240));
        config.duration = seconds(static_cast<std::int64_t>(300));
        config.num_jammers = static_cast<std::size_t>(jammers);
        config.jammer_start_after = seconds(static_cast<std::int64_t>(60));
        ExperimentRunner runner(testbed_a(), config);
        const ExperimentResult result = runner.run();
        total_flows += 8;
        for (const double t : result.repair_times_s) {
          repair_cdf.add(t);
          ++affected_flows;
        }
      }
      if (repair_cdf.empty()) {
        std::printf("  %d jammer(s): no flow lost a packet (no repair)\n",
                    jammers);
        continue;
      }
      std::printf("  %d jammer(s): %d/%d flows saw an outage\n", jammers,
                  affected_flows, total_flows);
      bench::print_cdf(repair_cdf, "repair time", "s");
      std::printf("    median=%.1f s  min=%.1f s  max=%.1f s\n",
                  repair_cdf.median(), repair_cdf.min(), repair_cdf.max());
    }
    if (suite == ProtocolSuite::kOrchestra) {
      std::printf(
          "  paper (Orchestra): repair 20-95 s, median 45 s across 1-4 "
          "jammers\n");
    } else {
      std::printf(
          "  paper (DiGS): seamless delivery - few/short outages expected\n");
    }
  }
  return 0;
}
