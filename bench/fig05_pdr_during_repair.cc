// Fig. 5 — Boxplots of per-flow PDR during the repair phase when 1-4
// jammers interfere with the Orchestra network.
// Paper: medians 0.90 / 0.87 / 0.845 / 0.825 with large variations.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("fig05_pdr_during_repair",
                "Fig. 5 - PDR of 8 flows during repair, 1-4 jammers");

  const int runs = bench::default_runs(3);
  const double paper_medians[4] = {0.90, 0.87, 0.845, 0.825};
  std::printf("runs per jammer count: %d, Orchestra on Testbed A\n", runs);

  for (int jammers = 1; jammers <= 4; ++jammers) {
    Cdf pdr;
    for (int run = 0; run < runs; ++run) {
      ExperimentConfig config;
      config.suite = ProtocolSuite::kOrchestra;
      config.seed = 3000 + 31 * jammers + run;
      config.num_flows = 8;
      config.flow_period = seconds(static_cast<std::int64_t>(5));
      config.warmup = seconds(static_cast<std::int64_t>(240));
      config.duration = seconds(static_cast<std::int64_t>(300));
      config.num_jammers = static_cast<std::size_t>(jammers);
      config.jammer_start_after = seconds(static_cast<std::int64_t>(60));
      ExperimentRunner runner(testbed_a(), config);
      runner.run();

      // PDR during the repair window: the first minute after the jammers
      // switch on, while routes and schedules are being repaired.
      const SimTime jam_start = runner.measure_start() +
                                seconds(static_cast<std::int64_t>(60));
      for (const double flow_pdr :
           repair_window_pdrs(runner.network().stats(), jam_start,
                              seconds(static_cast<std::int64_t>(60)))) {
        pdr.add(flow_pdr);
      }
    }
    bench::print_boxplot(pdr, std::to_string(jammers) + " jammer(s)");
    char paper[32];
    std::snprintf(paper, sizeof(paper), "median %.3f",
                  paper_medians[jammers - 1]);
    bench::paper_row("  PDR during repair", paper, pdr.median(), "");
  }
  std::printf(
      "\nExpected shape: PDR degrades and variance widens as jammers are\n"
      "added. Note: our jamming is spatially local (see EXPERIMENTS.md), so\n"
      "unaffected flows hold the median at 1.0 while the lower quartile and\n"
      "worst flow degrade - the paper's testbed spread the damage across\n"
      "more of its flows.\n");
  return 0;
}
