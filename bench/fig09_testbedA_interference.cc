// Fig. 9 — DiGS vs Orchestra on Testbed A (50 nodes, 8 flows, 3 WiFi-like
// jammers):
//  (a) CDF of flow-set PDR      — paper: DiGS +8.3% avg; 75.0% vs 12.5% of
//      flow sets above 95%; worst case 90.3% vs 76.0%.
//  (b) CDF of latency           — paper: median 601.3 vs 917.5 ms,
//      mean 649.5 vs 1214.1 ms.
//  (c,d) latency boxplots       — paper: DiGS has smaller variation.
//  (e) CDF of energy/packet     — paper: DiGS -0.056 mW per received packet.
//  (f) micro-benchmark          — delivery success of packets 74-84.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct SuiteResults {
  Cdf set_pdr;       // one sample per flow set (mean over flows)
  Cdf flow_pdr;      // one sample per flow
  Cdf latency_ms;    // all delivered packets
  Cdf energy_mj;     // one sample per flow set
};

ExperimentConfig base_config(ProtocolSuite suite, int run) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = 9000 + run;
  config.num_flows = 8;
  config.flow_period = seconds(static_cast<std::int64_t>(5));
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(300));
  config.num_jammers = 3;  // paper Fig. 8(a): 3 jammers
  config.jammer_start_after = seconds(static_cast<std::int64_t>(0));
  return config;
}

SuiteResults run_suite(ProtocolSuite suite, int runs) {
  std::vector<TrialSpec> trials;
  for (int run = 0; run < runs; ++run) {
    trials.push_back(TrialSpec{testbed_a(), base_config(suite, run)});
  }
  SuiteResults results;
  for (const ExperimentResult& result : run_trials(trials)) {
    results.set_pdr.add(result.overall_pdr);
    for (const double pdr : result.flow_pdrs) results.flow_pdr.add(pdr);
    for (const double ms : result.latencies_ms) results.latency_ms.add(ms);
    results.energy_mj.add(result.energy_per_delivered_mj);
  }
  return results;
}

void print_suite(const char* name, const SuiteResults& results) {
  bench::section(std::string("suite: ") + name);
  std::printf("(a) reliability\n");
  bench::print_cdf(results.set_pdr, "flow-set PDR", "");
  std::printf("    avg PDR=%.3f  worst-case=%.3f  sets>=95%%: %.1f%%\n",
              results.set_pdr.mean(), results.set_pdr.min(),
              100.0 * results.set_pdr.fraction_above(0.95));
  std::printf("(b) latency\n");
  bench::print_cdf(results.latency_ms, "latency", "ms");
  std::printf("    median=%.1f ms  mean=%.1f ms\n",
              results.latency_ms.median(), results.latency_ms.mean());
  std::printf("(c/d) latency boxplot\n");
  bench::print_boxplot(results.latency_ms, "latency (ms)");
  std::printf("(e) energy per delivered packet\n");
  bench::print_cdf(results.energy_mj, "energy/packet", "mJ");
}

void micro_benchmark_9f() {
  bench::section("(f) micro-benchmark: packets 74-84 under interference");
  // One long run per suite; jammers switch on mid-run (around packet ~60)
  // so packets 74..84 fall inside the disturbed phase, as in the paper.
  for (const ProtocolSuite suite :
       {ProtocolSuite::kOrchestra, ProtocolSuite::kDigs}) {
    ExperimentConfig config = base_config(suite, 4242);
    config.duration = seconds(static_cast<std::int64_t>(460));
    config.jammer_start_after = seconds(static_cast<std::int64_t>(300));
    ExperimentRunner runner(testbed_a(), config);
    runner.run();
    const auto& stats = runner.network().stats();
    std::printf("  %s (rows: flows, cols: seq 74..84; X = lost)\n",
                to_string(suite));
    for (const FlowRecord& flow : stats.flows()) {
      std::printf("    flow %2u: ", flow.id.value);
      for (std::uint32_t seq = 74; seq <= 84; ++seq) {
        std::printf("%c", stats.was_delivered(flow.id, seq) ? '.' : 'X');
      }
      std::printf("\n");
    }
  }
}

}  // namespace

int main() {
  bench::header("fig09_testbedA_interference",
                "Fig. 9 - DiGS vs Orchestra under interference, Testbed A");
  const int runs = bench::default_runs(6);
  std::printf("flow sets per suite: %d (paper: 300)\n", runs);

  const SuiteResults digs_results = run_suite(ProtocolSuite::kDigs, runs);
  const SuiteResults orch = run_suite(ProtocolSuite::kOrchestra, runs);
  print_suite("DiGS", digs_results);
  print_suite("Orchestra", orch);

  bench::section("paper-vs-measured deltas");
  bench::paper_row("avg PDR improvement (DiGS-Orchestra)", "+8.3%",
                   100.0 * (digs_results.set_pdr.mean() -
                            orch.set_pdr.mean()),
                   "%");
  bench::paper_row("worst-case PDR DiGS", "90.3%",
                   100.0 * digs_results.set_pdr.min(), "%");
  bench::paper_row("worst-case PDR Orchestra", "76.0%",
                   100.0 * orch.set_pdr.min(), "%");
  bench::paper_row("median latency DiGS", "601.3 ms",
                   digs_results.latency_ms.median(), "ms");
  bench::paper_row("median latency Orchestra", "917.5 ms",
                   orch.latency_ms.median(), "ms");
  bench::paper_row("mean latency DiGS", "649.5 ms",
                   digs_results.latency_ms.mean(), "ms");
  bench::paper_row("mean latency Orchestra", "1214.1 ms",
                   orch.latency_ms.mean(), "ms");
  bench::paper_row(
      "energy/packet delta (DiGS-Orchestra)", "-0.056 mW",
      digs_results.energy_mj.mean() - orch.energy_mj.mean(), "mJ");

  micro_benchmark_9f();
  return 0;
}
