// Fig. 10 — DiGS vs Orchestra on two-floor Testbed B (44 nodes, 6 flows,
// 3 jammers). Paper: DiGS worst-case PDR 93.2% (+7.6%), median 94.5%
// (+5.2%), p90 97.7% (+4.7%); worst-case latency -213.0 ms, median
// -232.7 ms; energy/packet -0.057 mW.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct SuiteResults {
  Cdf set_pdr;
  Cdf latency_ms;
  Cdf energy_mj;
};

SuiteResults run_suite(ProtocolSuite suite, int runs) {
  std::vector<TrialSpec> trials;
  for (int run = 0; run < runs; ++run) {
    ExperimentConfig config;
    config.suite = suite;
    config.seed = 10'000 + run;
    config.num_flows = 6;  // paper: 220 flow sets x 6 flows
    config.flow_period = seconds(static_cast<std::int64_t>(5));
    config.warmup = seconds(static_cast<std::int64_t>(240));
    config.duration = seconds(static_cast<std::int64_t>(300));
    config.num_jammers = 3;
    config.jammer_start_after = seconds(static_cast<std::int64_t>(0));
    // The slab shields half the two-floor mesh from any one jammer, so
    // Testbed B's jammers run hotter to bite the cross-floor funnels.
    config.jammer_tx_power_dbm = 4.0;
    trials.push_back(TrialSpec{testbed_b(), config});
  }
  SuiteResults results;
  for (const ExperimentResult& result : run_trials(trials)) {
    results.set_pdr.add(result.overall_pdr);
    for (const double ms : result.latencies_ms) results.latency_ms.add(ms);
    results.energy_mj.add(result.energy_per_delivered_mj);
  }
  return results;
}

}  // namespace

int main() {
  bench::header("fig10_testbedB_interference",
                "Fig. 10 - DiGS vs Orchestra under interference, Testbed B");
  const int runs = bench::default_runs(6);
  std::printf("flow sets per suite: %d (paper: 220)\n", runs);

  const SuiteResults digs_results = run_suite(ProtocolSuite::kDigs, runs);
  const SuiteResults orch = run_suite(ProtocolSuite::kOrchestra, runs);

  const auto print_suite = [](const char* name, const SuiteResults& r) {
    bench::section(std::string("suite: ") + name);
    std::printf("(a) reliability\n");
    bench::print_cdf(r.set_pdr, "flow-set PDR", "");
    std::printf("    worst=%.3f  median=%.3f  p90=%.3f\n", r.set_pdr.min(),
                r.set_pdr.median(), r.set_pdr.percentile(10));
    std::printf("(b) latency\n");
    bench::print_cdf(r.latency_ms, "latency", "ms");
    std::printf("(c) energy per delivered packet\n");
    bench::print_cdf(r.energy_mj, "energy/packet", "mJ");
  };
  print_suite("DiGS", digs_results);
  print_suite("Orchestra", orch);

  bench::section("paper-vs-measured");
  bench::paper_row("worst-case PDR DiGS", "93.2%",
                   100.0 * digs_results.set_pdr.min(), "%");
  bench::paper_row("worst-case PDR delta", "+7.6%",
                   100.0 * (digs_results.set_pdr.min() - orch.set_pdr.min()),
                   "%");
  bench::paper_row(
      "median PDR delta", "+5.2%",
      100.0 * (digs_results.set_pdr.median() - orch.set_pdr.median()), "%");
  bench::paper_row("median latency delta", "-232.7 ms",
                   digs_results.latency_ms.median() -
                       orch.latency_ms.median(),
                   "ms");
  bench::paper_row("worst-case latency delta", "-213.0 ms",
                   digs_results.latency_ms.max() - orch.latency_ms.max(),
                   "ms");
  bench::paper_row(
      "energy/packet delta", "-0.057 mW",
      digs_results.energy_mj.mean() - orch.energy_mj.mean(), "mJ");
  return 0;
}
