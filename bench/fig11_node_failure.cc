// Fig. 11 — Performance when router nodes fail on Testbed A.
// Paper: after turning off 4 nodes on the routing graph in turn, 6 of 8
// Orchestra flows become (temporarily) disconnected while all DiGS flows
// keep a 100% PDR through backup routes (a); the micro-benchmark (b) shows
// Orchestra losing packet ~34 and recovering after ~10 s; DiGS also saves
// 9.01 mW per received packet (c).
#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

/// Finds up to `count` nodes "on the routing graph" of the active flows
/// (the paper kills such nodes): walk each flow source's primary route and
/// collect the most-used non-AP relays.
std::vector<NodeId> find_relays(ProtocolSuite suite, int count,
                                std::uint64_t seed) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 8;
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(30));
  config.num_jammers = 0;
  ExperimentRunner runner(testbed_a(), config);
  runner.run();
  Network& net = runner.network();

  std::map<std::uint16_t, int> usage;
  for (const FlowRecord& flow : net.stats().flows()) {
    NodeId hop = net.node(flow.source).routing().best_parent();
    int guard = 0;
    while (hop.valid() && hop.value >= 2 && guard++ < 32) {
      ++usage[hop.value];
      hop = net.node(hop).routing().best_parent();
    }
  }
  std::vector<std::pair<int, NodeId>> ranked;
  for (const auto& [id, uses] : usage) {
    ranked.emplace_back(uses, NodeId{id});
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<NodeId> relays;
  for (int i = 0; i < count && i < static_cast<int>(ranked.size()); ++i) {
    relays.push_back(ranked[i].second);
  }
  return relays;
}

/// Everything one repetition contributes to the figure: aggregate samples
/// plus the per-flow delivery pattern for the (b) micro-benchmark (only the
/// last repetition's pattern is printed, matching the sequential loop).
struct RunProduct {
  std::vector<double> window_pdrs;  // one per (flow, failure) window
  int disconnected = 0;
  double energy_mj = 0.0;
  std::vector<std::pair<std::uint16_t, std::string>> delivery_30_45;
};

RunProduct run_one(ProtocolSuite suite, int run) {
  const std::uint64_t seed = 11'000 + run;
  // "4 nodes on the routing graph": relays on the current protocol's
  // own routes, found by a probe run.
  const auto relays = find_relays(suite, 4, seed);

  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 8;
  config.flow_period = seconds(static_cast<std::int64_t>(5));
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(400));
  config.num_jammers = 0;
  // Turn the 4 relays off in turn, 25 s apart (faster than a repair
  // completes, so the damage compounds as in the paper), starting
  // 100 s into the measurement window.
  for (std::size_t k = 0; k < relays.size(); ++k) {
    config.failures.push_back(FailureEvent{
        config.warmup + seconds(static_cast<std::int64_t>(100 + 25 * k)),
        relays[k], false});
  }
  ExperimentRunner runner(testbed_a(), config);
  const ExperimentResult result = runner.run();

  RunProduct product;
  product.energy_mj = result.energy_per_delivered_mj;
  const auto& stats = runner.network().stats();
  for (const FlowRecord& flow : stats.flows()) {
    // Flows sourced at a killed node are excluded (their loss is
    // trivial, not a routing property).
    bool source_killed = false;
    for (const FailureEvent& failure : config.failures) {
      if (failure.node == flow.source) source_killed = true;
    }
    if (source_killed) continue;
    // The paper measures delivery while the network absorbs each
    // failure: per-flow PDR over the minute following every kill.
    for (const FailureEvent& failure : config.failures) {
      const SimTime at = SimTime{0} + failure.at;
      const double pdr =
          stats.pdr(flow.id, at, at + seconds(static_cast<std::int64_t>(60)));
      product.window_pdrs.push_back(pdr);
      if (pdr < 0.999) ++product.disconnected;
    }
  }
  for (const FlowRecord& flow : stats.flows()) {
    std::string pattern;
    for (std::uint32_t seq = 30; seq <= 45; ++seq) {
      pattern.push_back(stats.was_delivered(flow.id, seq) ? '.' : 'X');
    }
    product.delivery_30_45.emplace_back(flow.id.value, pattern);
  }
  return product;
}

}  // namespace

int main() {
  bench::header("fig11_node_failure",
                "Fig. 11 - DiGS vs Orchestra with node failure, Testbed A");
  const int runs = bench::default_runs(4);  // paper repeats 34 times
  std::printf("repetitions per suite: %d (paper: 34)\n", runs);

  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
    Cdf flow_pdr;
    Cdf energy_mj;
    int disconnected_flows = 0;
    int total_flows = 0;

    const std::vector<RunProduct> products = bench::parallel_map(
        runs, [suite](int run) { return run_one(suite, run); });
    for (const RunProduct& product : products) {
      for (const double pdr : product.window_pdrs) flow_pdr.add(pdr);
      total_flows += static_cast<int>(product.window_pdrs.size());
      disconnected_flows += product.disconnected;
      energy_mj.add(product.energy_mj);
    }

    bench::section(std::string("suite: ") + to_string(suite));
    std::printf("(a) per-flow PDR in the minute after each failure\n");
    bench::print_boxplot(flow_pdr, "flow PDR");
    std::printf("    (flow, failure) windows below 100%%: %d / %d (%.1f%%)\n",
                disconnected_flows, total_flows,
                total_flows ? 100.0 * disconnected_flows / total_flows : 0.0);
    std::printf("(c) energy per delivered packet\n");
    bench::print_cdf(energy_mj, "energy/packet", "mJ");

    // (b) micro-benchmark around the first failure (packet ~34 at 5 s
    // period with failure 100+240 s after start).
    std::printf("(b) micro-benchmark: packets 30-45 of the last run\n");
    for (const auto& [flow_id, pattern] : products.back().delivery_30_45) {
      std::printf("    flow %2u: %s\n", flow_id, pattern.c_str());
    }
  }

  bench::section("paper expectation");
  std::printf(
      "  Orchestra: several flows disconnected until RPL repair (~10 s\n"
      "  outage around the failure); DiGS: near-100%% PDR via backup\n"
      "  parents, and a large energy-per-received-packet advantage.\n");
  return 0;
}
