// Fig. 12 — 150-node simulation (the paper's Cooja study): 150 nodes + 2
// APs in 300 m x 300 m, 20 flows at 10 s period, 5 disturbers toggling
// every 5 minutes. Paper: DiGS +16.3% average PDR; 53% vs 11% of flow sets
// above 95%; worst-case PDR 86.7% vs 63.0%; median latency 1560 vs 1950 ms;
// DiGS pays +0.056% radio duty cycle per received packet.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

namespace {

using namespace digs;

struct SuiteResults {
  Cdf set_pdr;
  Cdf latency_ms;
  Cdf duty_per_packet;
};

SuiteResults run_suite(ProtocolSuite suite, int runs) {
  std::vector<TrialSpec> trials;
  for (int run = 0; run < runs; ++run) {
    ExperimentConfig config;
    config.suite = suite;
    config.seed = 12'000 + run;
    config.num_flows = 20;
    config.flow_period = seconds(static_cast<std::int64_t>(10));
    config.warmup = seconds(static_cast<std::int64_t>(360));
    config.duration = seconds(static_cast<std::int64_t>(600));
    config.num_jammers = 5;
    config.jammer_start_after = seconds(static_cast<std::int64_t>(0));
    config.jammer_on = minutes(5);   // paper: on/off every 5 minutes
    config.jammer_off = minutes(5);
    // A Cooja disturber blocks every channel within its interference range
    // while on; the power (below the motes' 0 dBm) sets that range so the
    // damage matches the paper's "interfere nearby links".
    config.jammer_pattern = JammerPattern::kConstant;
    config.jammer_tx_power_dbm = -14.0;
    trials.push_back(TrialSpec{cooja_150(), config});
  }
  SuiteResults results;
  for (const ExperimentResult& result : run_trials(trials)) {
    results.set_pdr.add(result.overall_pdr);
    for (const double ms : result.latencies_ms) results.latency_ms.add(ms);
    results.duty_per_packet.add(result.duty_cycle_per_delivered);
  }
  return results;
}

}  // namespace

int main() {
  bench::header("fig12_cooja150",
                "Fig. 12 - 150-node simulation with 5 periodic disturbers");
  const int runs = bench::default_runs(3);
  std::printf("flow sets per suite: %d (paper: 300)\n", runs);

  const SuiteResults digs_results = run_suite(ProtocolSuite::kDigs, runs);
  const SuiteResults orch = run_suite(ProtocolSuite::kOrchestra, runs);

  const auto print_suite = [](const char* name, const SuiteResults& r) {
    bench::section(std::string("suite: ") + name);
    std::printf("(a) reliability\n");
    bench::print_cdf(r.set_pdr, "flow-set PDR", "");
    std::printf("    avg=%.3f worst=%.3f sets>=95%%: %.1f%%\n",
                r.set_pdr.mean(), r.set_pdr.min(),
                100.0 * r.set_pdr.fraction_above(0.95));
    std::printf("(b) latency\n");
    bench::print_cdf(r.latency_ms, "latency", "ms");
    std::printf("    median=%.0f ms  mean=%.0f ms\n", r.latency_ms.median(),
                r.latency_ms.mean());
    std::printf("(c) radio duty cycle per received packet\n");
    bench::print_cdf(r.duty_per_packet, "duty/packet", "%x100pkt");
  };
  print_suite("DiGS", digs_results);
  print_suite("Orchestra", orch);

  bench::section("paper-vs-measured");
  bench::paper_row(
      "avg PDR improvement", "+16.3%",
      100.0 * (digs_results.set_pdr.mean() - orch.set_pdr.mean()), "%");
  bench::paper_row("worst-case PDR DiGS", "86.7%",
                   100.0 * digs_results.set_pdr.min(), "%");
  bench::paper_row("worst-case PDR Orchestra", "63.0%",
                   100.0 * orch.set_pdr.min(), "%");
  bench::paper_row("median latency DiGS", "1560 ms",
                   digs_results.latency_ms.median(), "ms");
  bench::paper_row("median latency Orchestra", "1950 ms",
                   orch.latency_ms.median(), "ms");
  bench::paper_row("duty/packet delta", "+0.056%",
                   digs_results.duty_per_packet.mean() -
                       orch.duty_per_packet.mean(),
                   "");
  return 0;
}
