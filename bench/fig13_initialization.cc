// Fig. 13 — Network initialization time: CDF of the time for each of the 50
// Testbed A nodes to join (synchronize + select its preferred parents).
// Paper: DiGS slightly slower than Orchestra (max 24.1 s vs 23.0 s, mean
// 15.4 s vs 14.3 s) because each node must find one more parent.
#include <cstdio>

#include "bench_util.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;
  bench::header("fig13_initialization",
                "Fig. 13 - network initialization (join) time, Testbed A");

  const int runs = bench::default_runs(5);
  std::printf("runs per suite: %d (cold start each)\n", runs);

  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
    Cdf join_cdf;
    Cdf full_join_cdf;
    int never_joined = 0;
    std::vector<TrialSpec> trials;
    for (int run = 0; run < runs; ++run) {
      ExperimentConfig config;
      config.suite = suite;
      config.seed = 1000 + run;
      config.num_flows = 0;
      config.warmup = seconds(static_cast<std::int64_t>(300));
      config.duration = seconds(static_cast<std::int64_t>(1));
      config.num_jammers = 0;
      trials.push_back(TrialSpec{testbed_a(), config});
    }
    for (const ExperimentResult& result : run_trials(trials)) {
      for (const double t : result.join_times_s) join_cdf.add(t);
      for (const double t : result.full_join_times_s) full_join_cdf.add(t);
      never_joined +=
          static_cast<int>(48 - result.join_times_s.size());
    }
    bench::section(std::string("suite: ") + to_string(suite));
    bench::print_cdf(join_cdf, "join time (synchronized + parent set)", "s");
    std::printf("  mean=%.1f s  max=%.1f s  unjoined after 300 s: %d\n",
                join_cdf.mean(), join_cdf.max(), never_joined);
    if (suite == ProtocolSuite::kDigs) {
      std::printf(
          "  supplementary: time until BOTH parents held (n=%zu; nodes "
          "with\n  no eligible backup in radio range are absent): "
          "mean=%.1f s\n",
          full_join_cdf.count(), full_join_cdf.mean());
      bench::paper_row("mean join time", "15.4 s", join_cdf.mean(), "s");
      bench::paper_row("max join time", "24.1 s", join_cdf.max(), "s");
    } else {
      bench::paper_row("mean join time", "14.3 s", join_cdf.mean(), "s");
      bench::paper_row("max join time", "23.0 s", join_cdf.max(), "s");
    }
  }
  std::printf(
      "\nExpected shape: DiGS joins slightly slower than Orchestra (one\n"
      "extra preferred parent per node), both within the same order.\n");
  return 0;
}
