// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, PRR lookup, schedule resolution, medium SINR evaluation,
// and the centralized graph-route computation.
//
// The binary has a custom main: after the google-benchmark suite it times
// the 150-node idle-heavy scenario under both slot drivers (schedule-driven
// engine vs. per-slot polling) plus a city-scale busy-slot row (the
// formation-phase EB storm the cell-indexed reception pipeline targets) and
// writes slots/s + events/s to BENCH_slot_engine.json in the working
// directory so future PRs can track the trajectory.
//
// DIGS_PERF_SMOKE=1 skips everything except a reduced busy-slot row and
// gates it against the committed bench/perf_baseline.json (path override:
// DIGS_PERF_BASELINE): >20% below the baseline slots/s exits nonzero. The
// smoke takes best-of-3 to damp scheduler noise and always runs with the
// phase profiler on; the baseline stores the per-phase ns breakdown, so a
// failing gate names the worst-regressing DIGS_PROF phases (baseline vs
// current ns) instead of just the end-to-end ratio. The baseline should be
// (re)measured on the CI host via DIGS_PERF_WRITE_BASELINE=1.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/prof.h"
#include "manager/graph_router.h"
#include "phy/medium.h"
#include "phy/prr.h"
#include "sched/digs_scheduler.h"
#include "sim/simulator.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace {

using namespace digs;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(SimTime{(i * 7919) % 100000}, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_PrrTableLookup(benchmark::State& state) {
  PrrTable table(110);
  double sinr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.prr(sinr));
    sinr += 0.01;
    if (sinr > 20.0) sinr = -10.0;
  }
}
BENCHMARK(BM_PrrTableLookup);

void BM_PrrExact(benchmark::State& state) {
  double sinr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ieee802154_prr(sinr, 110));
    sinr += 0.01;
    if (sinr > 20.0) sinr = -10.0;
  }
}
BENCHMARK(BM_PrrExact);

void BM_ScheduleActiveCells(benchmark::State& state) {
  SchedulerConfig config;
  DigsScheduler scheduler(config);
  Schedule schedule;
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  std::vector<ChildEntry> children;
  for (std::uint16_t c = 10; c < 18; ++c) {
    children.push_back(ChildEntry{NodeId{c}, c % 2 == 0, {}});
  }
  view.children = children;
  scheduler.rebuild(schedule, view);
  std::uint64_t asn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.active_cells(asn++));
  }
}
BENCHMARK(BM_ScheduleActiveCells);

void BM_SchedulerRebuild(benchmark::State& state) {
  SchedulerConfig config;
  DigsScheduler scheduler(config);
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  std::vector<ChildEntry> children;
  for (std::uint16_t c = 10; c < 10 + state.range(0); ++c) {
    children.push_back(ChildEntry{NodeId{c}, c % 2 == 0, {}});
  }
  view.children = children;
  for (auto _ : state) {
    Schedule schedule;
    scheduler.rebuild(schedule, view);
    benchmark::DoNotOptimize(schedule.total_cells());
  }
}
BENCHMARK(BM_SchedulerRebuild)->Arg(2)->Arg(8)->Arg(32);

void BM_MediumReceptionProbability(benchmark::State& state) {
  const TestbedLayout layout = testbed_a();
  Medium medium(MediumConfig{}, layout.positions, 7);
  TransmissionAttempt tx;
  tx.sender = NodeId{10};
  tx.channel = 5;
  tx.frame_bytes = 110;
  tx.tx_power_dbm = layout.tx_power_dbm;
  std::vector<TransmissionAttempt> concurrent{tx};
  std::uint64_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.reception_probability(
        tx, NodeId{11}, slot++, SimTime{0}, concurrent));
  }
}
BENCHMARK(BM_MediumReceptionProbability);

void BM_CentralGraphRoutes(benchmark::State& state) {
  const TestbedLayout layout =
      state.range(0) == 50 ? testbed_a() : cooja_150();
  const TopologySnapshot topo = make_topology_snapshot(layout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_graph_routes(topo));
  }
}
BENCHMARK(BM_CentralGraphRoutes)->Arg(50)->Arg(152);

// --- slot-engine macro benchmark (custom main below) ---

struct SlotEngineRun {
  double wall_s{0};
  std::uint64_t slots{0};
  std::uint64_t events{0};
  double pdr{0};
};

// 150 nodes + 2 APs, 4 slow flows (30 s period): after formation nearly all
// slots are idle for nearly all nodes, which is exactly the regime the
// schedule-driven engine targets. Both drivers run the identical scenario
// (same seed, bit-identical results per the equivalence suite); only the
// steady-state window is timed — during formation every node scans every
// slot, so both drivers necessarily do the same full-network work there.
//
// The primary (idle-heavy) row uses the centralized WirelessHART suite:
// once routes and schedules are distributed, nodes transmit only in their
// scheduled flow/EB cells, so almost every slot is pure listening or sleep
// and the engine can skip or settle it. DiGS is the secondary row: its
// trickle beacons and shared routing cells keep a large fraction of slots
// transmission-capable, which bounds how much any schedule-driven driver
// can skip.
SlotEngineRun run_150(ProtocolSuite suite, bool use_slot_engine) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = 42;
  config.num_flows = 4;
  config.flow_period = seconds(static_cast<std::int64_t>(30));
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(1200));
  config.num_jammers = 0;
  config.use_slot_engine = use_slot_engine;
  ExperimentRunner runner(cooja_150(), config);
  Network& net = runner.network();

  net.start();
  net.run_for(config.warmup);  // formation (untimed)
  const std::uint64_t warm_slots = net.current_asn();
  const std::uint64_t warm_events = net.sim().events_executed();

  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(config.duration);
  const auto t1 = std::chrono::steady_clock::now();

  SlotEngineRun run;
  run.wall_s = std::chrono::duration<double>(t1 - t0).count();
  run.slots = net.current_asn() - warm_slots;
  run.events = net.sim().events_executed() - warm_events;
  run.pdr = net.stats().overall_pdr(SimTime{0} + config.warmup,
                                    SimTime{0} + config.warmup +
                                        config.duration);
  return run;
}

double slots_per_s(const SlotEngineRun& r) {
  return r.wall_s > 0 ? static_cast<double>(r.slots) / r.wall_s : 0.0;
}
double events_per_s(const SlotEngineRun& r) {
  return r.wall_s > 0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
}

struct SuiteRow {
  const char* key;
  SlotEngineRun polled;
  SlotEngineRun engine;
  double speedup;
};

SuiteRow measure_suite(const char* key, ProtocolSuite suite) {
  SuiteRow row;
  row.key = key;
  row.polled = run_150(suite, false);
  row.engine = run_150(suite, true);
  row.speedup = row.polled.wall_s > 0 && row.engine.wall_s > 0
                    ? row.polled.wall_s / row.engine.wall_s
                    : 0.0;

  const auto print_run = [&](const char* name, const SlotEngineRun& r) {
    std::printf(
        "%-14s %-7s wall=%.3f s  slots=%llu (%.3g slots/s)  events=%llu "
        "(%.3g events/s)  pdr=%.3f\n",
        key, name, r.wall_s, static_cast<unsigned long long>(r.slots),
        slots_per_s(r), static_cast<unsigned long long>(r.events),
        events_per_s(r), r.pdr);
  };
  print_run("polled", row.polled);
  print_run("engine", row.engine);
  std::printf("%-14s speedup (wall-clock, same simulated span): %.2fx\n", key,
              row.speedup);
  return row;
}

void write_suite_json(std::FILE* out, const SuiteRow& row, bool last) {
  std::fprintf(out,
               "  \"%s\": {\n"
               "    \"polled\": {\"wall_s\": %.4f, \"slots_per_s\": %.1f, "
               "\"events_per_s\": %.1f, \"events\": %llu},\n"
               "    \"engine\": {\"wall_s\": %.4f, \"slots_per_s\": %.1f, "
               "\"events_per_s\": %.1f, \"events\": %llu},\n"
               "    \"speedup\": %.3f,\n"
               "    \"pdr_identical\": %s\n"
               "  }%s\n",
               row.key, row.polled.wall_s, slots_per_s(row.polled),
               events_per_s(row.polled),
               static_cast<unsigned long long>(row.polled.events),
               row.engine.wall_s, slots_per_s(row.engine),
               events_per_s(row.engine),
               static_cast<unsigned long long>(row.engine.events), row.speedup,
               row.polled.pdr == row.engine.pdr ? "true" : "false", last ? "" : ",");
}

// --- city-scale busy-slot row ---
//
// The opposite regime from the idle-heavy 150-node scenario: a city floor
// during network formation, where nearly every node scans every slot and
// the wall-clock lives in the cell-indexed reception pipeline (bucket
// gather, CSR merge-join, batched fading). This is the row the perf-smoke
// regression gate watches.

struct BusySlotRun {
  int devices{0};
  double window_s{0};  // simulated seconds timed
  double wall_s{0};
  std::uint64_t slots{0};
  double slots_per_s{0};
  std::size_t shards{1};
  std::size_t shard_threads{1};  // effective worker count after clamping
  double imbalance{0};           // max/mean per-shard busy ns (prof only)
  std::string prof;  // DIGS_PROF phase breakdown (empty when off)
  std::uint64_t phase_ns[prof::kNumPhases] = {};  // raw totals (prof only)
};

BusySlotRun run_busy_slot(int devices, std::int64_t warmup_s,
                          std::int64_t window_s) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 90;
  config.num_flows = 8;
  config.flow_period = seconds(std::int64_t{5});
  config.num_jammers = 0;
  ExperimentRunner runner(bench::city_floor(devices, 90), config);
  Network& net = runner.network();
  net.start();
  // Untimed warmup: ride past the quiet opening (only the APs beacon, and
  // the engine skips transmitter-free slots entirely) into the EB storm,
  // where enough nodes have joined that every slot executes with most of
  // the network scanning — the regime the reception pipeline is built for.
  net.run_for(seconds(warmup_s));

  const bool prof_on = prof::enabled();
  if (prof_on) prof::reset();
  const std::uint64_t slots0 = net.current_asn();
  const auto t0 = std::chrono::steady_clock::now();
  net.run_for(seconds(window_s));
  const auto t1 = std::chrono::steady_clock::now();

  BusySlotRun run;
  run.devices = devices;
  run.window_s = static_cast<double>(window_s);
  run.wall_s = std::chrono::duration<double>(t1 - t0).count();
  run.slots = net.current_asn() - slots0;
  run.slots_per_s =
      run.wall_s > 0 ? static_cast<double>(run.slots) / run.wall_s : 0.0;
  run.shards = net.num_shards();
  run.shard_threads = net.num_shard_threads();
  if (prof_on) {
    run.prof = prof::json();
    for (int p = 0; p < prof::kNumPhases; ++p) {
      run.phase_ns[p] = prof::total_ns(static_cast<prof::Phase>(p));
    }
    // Busiest shard's cumulative region time over the mean (1.0 = perfect
    // balance); only meaningful when the run was actually sharded.
    const std::vector<std::uint64_t>& busy = net.shard_busy_ns();
    std::uint64_t max = 0;
    std::uint64_t sum = 0;
    for (const std::uint64_t ns : busy) {
      if (ns > max) max = ns;
      sum += ns;
    }
    if (sum > 0) {
      run.imbalance = static_cast<double>(max) *
                      static_cast<double>(busy.size()) /
                      static_cast<double>(sum);
    }
  }
  return run;
}

void print_busy_slot(const BusySlotRun& r) {
  std::printf(
      "busy_slot city-%d  window=%.0f s sim  wall=%.3f s  slots=%llu "
      "(%.3g slots/s)\n",
      r.devices, r.window_s, r.wall_s,
      static_cast<unsigned long long>(r.slots), r.slots_per_s);
  std::fflush(stdout);
}

void write_busy_slot_json(std::FILE* out, const BusySlotRun& r) {
  std::fprintf(out,
               "  \"busy_slot\": {\n"
               "    \"devices\": %d, \"window_s\": %.1f, \"wall_s\": %.4f, "
               "\"slots\": %llu, \"slots_per_s\": %.1f, "
               "\"shards\": %zu, \"shard_threads\": %zu, \"imbalance\": %.3f",
               r.devices, r.window_s, r.wall_s,
               static_cast<unsigned long long>(r.slots), r.slots_per_s,
               r.shards, r.shard_threads, r.imbalance);
  if (!r.prof.empty()) std::fprintf(out, ",\n    \"prof\": %s", r.prof.c_str());
  std::fprintf(out, "\n  }\n");
}

void report_slot_engine() {
  std::printf("\n--- slot engine: 150-node scenarios (steady state) ---\n");
  const SuiteRow idle =
      measure_suite("idle_heavy_wh", ProtocolSuite::kWirelessHart);
  const SuiteRow digs = measure_suite("beacon_heavy_digs", ProtocolSuite::kDigs);

  std::printf("\n--- busy slot: city-scale formation (EB storm) ---\n");
  const BusySlotRun busy = run_busy_slot(2000, 120, 60);
  print_busy_slot(busy);

  std::FILE* out = std::fopen("BENCH_slot_engine.json", "w");
  if (out == nullptr) {
    std::fprintf(stderr, "could not write BENCH_slot_engine.json\n");
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"scenario\": \"cooja150, 4 flows @30s, 240s formation "
               "(untimed) + 1200s steady state (timed); busy_slot row: "
               "city-2000 floor, 120s untimed warmup then 60s of the "
               "formation EB storm (timed)\",\n"
               "  \"hardware_threads\": %u,\n"
               "  \"nodes\": 152,\n"
               "  \"simulated_s\": %.1f,\n",
               bench::hardware_threads(),
               static_cast<double>(idle.polled.slots) * 0.01);
  write_suite_json(out, idle, false);
  write_suite_json(out, digs, false);
  write_busy_slot_json(out, busy);
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote BENCH_slot_engine.json\n");
}

// --- DIGS_PERF_SMOKE=1: reduced busy-slot row vs. committed baseline ---

/// Whole-file slurp (empty on failure). The baseline is written by this
/// binary (flat keys, unique names), so substring scans are sufficient —
/// no JSON library in the container.
std::string read_file(const char* path) {
  std::FILE* in = std::fopen(path, "r");
  if (in == nullptr) return {};
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, in)) > 0) {
    text.append(buf, got);
  }
  std::fclose(in);
  return text;
}

/// Extracts the number following `"key":`; -1 when absent.
double find_number(const std::string& text, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::atof(text.c_str() + pos + needle.size());
}

int run_perf_smoke() {
  const char* baseline_path = "perf_baseline.json";
  if (const char* env = std::getenv("DIGS_PERF_BASELINE")) {
    baseline_path = env;
  }
  // The smoke always profiles: both the committed baseline and the current
  // run carry the same per-phase clock overhead, and a failing gate can
  // then attribute the regression to a slot-loop phase.
  prof::force_enabled(true);
  std::printf("perf smoke: city busy-slot row, best of 3\n");
  BusySlotRun best;
  for (int i = 0; i < 3; ++i) {
    const BusySlotRun run = run_busy_slot(500, 90, 120);
    print_busy_slot(run);
    if (run.slots_per_s > best.slots_per_s) best = run;
  }

  if (std::getenv("DIGS_PERF_WRITE_BASELINE") != nullptr) {
    std::FILE* out = std::fopen(baseline_path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "could not write %s\n", baseline_path);
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"scenario\": \"city-500 floor, 90s untimed warmup then "
                 "120s of the formation EB storm, best of 3, profiler on "
                 "(DIGS_PERF_SMOKE)\",\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"slots_per_s\": %.1f,\n"
                 "  \"prof_ns\": {",
                 bench::hardware_threads(), best.slots_per_s);
    for (int p = 0; p < prof::kNumPhases; ++p) {
      std::fprintf(out, "%s\"%s\": %llu", p == 0 ? "" : ", ",
                   prof::phase_name(static_cast<prof::Phase>(p)),
                   static_cast<unsigned long long>(best.phase_ns[p]));
    }
    std::fprintf(out, "}\n}\n");
    std::fclose(out);
    std::printf("wrote baseline %s (%.3g slots/s)\n", baseline_path,
                best.slots_per_s);
    return 0;
  }

  const std::string baseline_text = read_file(baseline_path);
  const double baseline = find_number(baseline_text, "slots_per_s");
  if (baseline <= 0) {
    std::fprintf(stderr,
                 "perf smoke: no baseline at %s (run with "
                 "DIGS_PERF_WRITE_BASELINE=1 to create it); skipping gate\n",
                 baseline_path);
    return 0;
  }
  const double ratio = best.slots_per_s / baseline;
  std::printf("perf smoke: %.3g slots/s vs baseline %.3g (%.2fx)\n",
              best.slots_per_s, baseline, ratio);
  if (ratio < 0.8) {
    std::fprintf(stderr,
                 "perf smoke FAILED: busy-slot throughput regressed >20%% "
                 "(%.2fx of baseline)\n",
                 ratio);
    // Attribute the regression: rank the slot-loop phases by absolute ns
    // growth over the baseline breakdown (the windows are identical, so
    // raw ns are comparable) and name the worst offenders.
    struct PhaseDelta {
      const char* name;
      double base_ns;
      double cur_ns;
    };
    std::vector<PhaseDelta> deltas;
    for (int p = 0; p < prof::kNumPhases; ++p) {
      const auto phase = static_cast<prof::Phase>(p);
      if (phase == prof::kSlotTotal) continue;  // the sum, not a phase
      const double base_ns = find_number(baseline_text, prof::phase_name(phase));
      if (base_ns < 0) continue;  // pre-prof_ns baseline format
      deltas.push_back(PhaseDelta{prof::phase_name(phase), base_ns,
                                  static_cast<double>(best.phase_ns[p])});
    }
    if (deltas.empty()) {
      std::fprintf(stderr,
                   "(baseline has no prof_ns breakdown; regenerate it with "
                   "DIGS_PERF_WRITE_BASELINE=1 for phase attribution)\n");
    } else {
      std::sort(deltas.begin(), deltas.end(),
                [](const PhaseDelta& a, const PhaseDelta& b) {
                  return a.cur_ns - a.base_ns > b.cur_ns - b.base_ns;
                });
      std::fprintf(stderr, "worst-regressing phases (baseline -> current):\n");
      const std::size_t top = std::min<std::size_t>(5, deltas.size());
      for (std::size_t i = 0; i < top; ++i) {
        const PhaseDelta& d = deltas[i];
        std::fprintf(stderr, "  %-14s %12.0f ns -> %12.0f ns (%+.0f%%)\n",
                     d.name, d.base_ns, d.cur_ns,
                     d.base_ns > 0
                         ? 100.0 * (d.cur_ns - d.base_ns) / d.base_ns
                         : 0.0);
      }
    }
    return 1;
  }
  std::printf("perf smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (const char* env = std::getenv("DIGS_PERF_SMOKE");
      env != nullptr && env[0] == '1') {
    return run_perf_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  report_slot_engine();
  return 0;
}
