// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// event queue, PRR lookup, schedule resolution, medium SINR evaluation,
// and the centralized graph-route computation.
#include <benchmark/benchmark.h>

#include "manager/graph_router.h"
#include "phy/medium.h"
#include "phy/prr.h"
#include "sched/digs_scheduler.h"
#include "sim/simulator.h"
#include "testbed/layouts.h"

namespace {

using namespace digs;

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const auto n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int counter = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule_at(SimTime{(i * 7919) % 100000}, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(10000);

void BM_PrrTableLookup(benchmark::State& state) {
  PrrTable table(110);
  double sinr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.prr(sinr));
    sinr += 0.01;
    if (sinr > 20.0) sinr = -10.0;
  }
}
BENCHMARK(BM_PrrTableLookup);

void BM_PrrExact(benchmark::State& state) {
  double sinr = -10.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ieee802154_prr(sinr, 110));
    sinr += 0.01;
    if (sinr > 20.0) sinr = -10.0;
  }
}
BENCHMARK(BM_PrrExact);

void BM_ScheduleActiveCells(benchmark::State& state) {
  SchedulerConfig config;
  DigsScheduler scheduler(config);
  Schedule schedule;
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  std::vector<ChildEntry> children;
  for (std::uint16_t c = 10; c < 18; ++c) {
    children.push_back(ChildEntry{NodeId{c}, c % 2 == 0, {}});
  }
  view.children = children;
  scheduler.rebuild(schedule, view);
  std::uint64_t asn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(schedule.active_cells(asn++));
  }
}
BENCHMARK(BM_ScheduleActiveCells);

void BM_SchedulerRebuild(benchmark::State& state) {
  SchedulerConfig config;
  DigsScheduler scheduler(config);
  RoutingView view;
  view.id = NodeId{5};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.second_best_parent = NodeId{1};
  std::vector<ChildEntry> children;
  for (std::uint16_t c = 10; c < 10 + state.range(0); ++c) {
    children.push_back(ChildEntry{NodeId{c}, c % 2 == 0, {}});
  }
  view.children = children;
  for (auto _ : state) {
    Schedule schedule;
    scheduler.rebuild(schedule, view);
    benchmark::DoNotOptimize(schedule.total_cells());
  }
}
BENCHMARK(BM_SchedulerRebuild)->Arg(2)->Arg(8)->Arg(32);

void BM_MediumReceptionProbability(benchmark::State& state) {
  const TestbedLayout layout = testbed_a();
  Medium medium(MediumConfig{}, layout.positions, 7);
  TransmissionAttempt tx;
  tx.sender = NodeId{10};
  tx.channel = 5;
  tx.frame_bytes = 110;
  tx.tx_power_dbm = layout.tx_power_dbm;
  std::vector<TransmissionAttempt> concurrent{tx};
  std::uint64_t slot = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(medium.reception_probability(
        tx, NodeId{11}, slot++, SimTime{0}, concurrent));
  }
}
BENCHMARK(BM_MediumReceptionProbability);

void BM_CentralGraphRoutes(benchmark::State& state) {
  const TestbedLayout layout =
      state.range(0) == 50 ? testbed_a() : cooja_150();
  const TopologySnapshot topo = make_topology_snapshot(layout);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_graph_routes(topo));
  }
}
BENCHMARK(BM_CentralGraphRoutes)->Arg(50)->Arg(152);

}  // namespace
