file(REMOVE_RECURSE
  "CMakeFiles/ablation_attempts.dir/ablation_attempts.cc.o"
  "CMakeFiles/ablation_attempts.dir/ablation_attempts.cc.o.d"
  "ablation_attempts"
  "ablation_attempts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attempts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
