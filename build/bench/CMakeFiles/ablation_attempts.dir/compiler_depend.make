# Empty compiler generated dependencies file for ablation_attempts.
# This may be replaced when dependencies are built.
