file(REMOVE_RECURSE
  "CMakeFiles/ablation_slotframe_conflicts.dir/ablation_slotframe_conflicts.cc.o"
  "CMakeFiles/ablation_slotframe_conflicts.dir/ablation_slotframe_conflicts.cc.o.d"
  "ablation_slotframe_conflicts"
  "ablation_slotframe_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slotframe_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
