# Empty compiler generated dependencies file for ablation_slotframe_conflicts.
# This may be replaced when dependencies are built.
