file(REMOVE_RECURSE
  "CMakeFiles/ablation_trickle.dir/ablation_trickle.cc.o"
  "CMakeFiles/ablation_trickle.dir/ablation_trickle.cc.o.d"
  "ablation_trickle"
  "ablation_trickle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_trickle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
