# Empty dependencies file for ablation_trickle.
# This may be replaced when dependencies are built.
