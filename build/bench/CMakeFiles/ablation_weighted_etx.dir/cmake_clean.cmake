file(REMOVE_RECURSE
  "CMakeFiles/ablation_weighted_etx.dir/ablation_weighted_etx.cc.o"
  "CMakeFiles/ablation_weighted_etx.dir/ablation_weighted_etx.cc.o.d"
  "ablation_weighted_etx"
  "ablation_weighted_etx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_weighted_etx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
