# Empty compiler generated dependencies file for ablation_weighted_etx.
# This may be replaced when dependencies are built.
