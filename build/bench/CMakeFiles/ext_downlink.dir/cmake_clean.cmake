file(REMOVE_RECURSE
  "CMakeFiles/ext_downlink.dir/ext_downlink.cc.o"
  "CMakeFiles/ext_downlink.dir/ext_downlink.cc.o.d"
  "ext_downlink"
  "ext_downlink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_downlink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
