# Empty compiler generated dependencies file for ext_downlink.
# This may be replaced when dependencies are built.
