file(REMOVE_RECURSE
  "CMakeFiles/ext_three_suites.dir/ext_three_suites.cc.o"
  "CMakeFiles/ext_three_suites.dir/ext_three_suites.cc.o.d"
  "ext_three_suites"
  "ext_three_suites.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_three_suites.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
