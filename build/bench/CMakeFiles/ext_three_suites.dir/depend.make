# Empty dependencies file for ext_three_suites.
# This may be replaced when dependencies are built.
