file(REMOVE_RECURSE
  "CMakeFiles/fig03_manager_update.dir/fig03_manager_update.cc.o"
  "CMakeFiles/fig03_manager_update.dir/fig03_manager_update.cc.o.d"
  "fig03_manager_update"
  "fig03_manager_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_manager_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
