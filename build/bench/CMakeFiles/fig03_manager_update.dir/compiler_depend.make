# Empty compiler generated dependencies file for fig03_manager_update.
# This may be replaced when dependencies are built.
