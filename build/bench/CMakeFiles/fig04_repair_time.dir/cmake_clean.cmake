file(REMOVE_RECURSE
  "CMakeFiles/fig04_repair_time.dir/fig04_repair_time.cc.o"
  "CMakeFiles/fig04_repair_time.dir/fig04_repair_time.cc.o.d"
  "fig04_repair_time"
  "fig04_repair_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_repair_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
