# Empty dependencies file for fig04_repair_time.
# This may be replaced when dependencies are built.
