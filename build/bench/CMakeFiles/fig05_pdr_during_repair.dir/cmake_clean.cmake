file(REMOVE_RECURSE
  "CMakeFiles/fig05_pdr_during_repair.dir/fig05_pdr_during_repair.cc.o"
  "CMakeFiles/fig05_pdr_during_repair.dir/fig05_pdr_during_repair.cc.o.d"
  "fig05_pdr_during_repair"
  "fig05_pdr_during_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_pdr_during_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
