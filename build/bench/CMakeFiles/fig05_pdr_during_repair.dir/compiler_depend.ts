# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig05_pdr_during_repair.
