# Empty dependencies file for fig05_pdr_during_repair.
# This may be replaced when dependencies are built.
