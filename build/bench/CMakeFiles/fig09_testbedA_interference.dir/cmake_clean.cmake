file(REMOVE_RECURSE
  "CMakeFiles/fig09_testbedA_interference.dir/fig09_testbedA_interference.cc.o"
  "CMakeFiles/fig09_testbedA_interference.dir/fig09_testbedA_interference.cc.o.d"
  "fig09_testbedA_interference"
  "fig09_testbedA_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_testbedA_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
