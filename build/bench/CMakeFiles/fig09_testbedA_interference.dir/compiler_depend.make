# Empty compiler generated dependencies file for fig09_testbedA_interference.
# This may be replaced when dependencies are built.
