file(REMOVE_RECURSE
  "CMakeFiles/fig10_testbedB_interference.dir/fig10_testbedB_interference.cc.o"
  "CMakeFiles/fig10_testbedB_interference.dir/fig10_testbedB_interference.cc.o.d"
  "fig10_testbedB_interference"
  "fig10_testbedB_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_testbedB_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
