# Empty dependencies file for fig10_testbedB_interference.
# This may be replaced when dependencies are built.
