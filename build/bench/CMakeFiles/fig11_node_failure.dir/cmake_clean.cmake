file(REMOVE_RECURSE
  "CMakeFiles/fig11_node_failure.dir/fig11_node_failure.cc.o"
  "CMakeFiles/fig11_node_failure.dir/fig11_node_failure.cc.o.d"
  "fig11_node_failure"
  "fig11_node_failure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_node_failure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
