# Empty compiler generated dependencies file for fig11_node_failure.
# This may be replaced when dependencies are built.
