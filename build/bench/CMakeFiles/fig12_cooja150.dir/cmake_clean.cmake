file(REMOVE_RECURSE
  "CMakeFiles/fig12_cooja150.dir/fig12_cooja150.cc.o"
  "CMakeFiles/fig12_cooja150.dir/fig12_cooja150.cc.o.d"
  "fig12_cooja150"
  "fig12_cooja150.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_cooja150.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
