# Empty dependencies file for fig12_cooja150.
# This may be replaced when dependencies are built.
