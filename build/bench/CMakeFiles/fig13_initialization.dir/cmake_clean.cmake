file(REMOVE_RECURSE
  "CMakeFiles/fig13_initialization.dir/fig13_initialization.cc.o"
  "CMakeFiles/fig13_initialization.dir/fig13_initialization.cc.o.d"
  "fig13_initialization"
  "fig13_initialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_initialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
