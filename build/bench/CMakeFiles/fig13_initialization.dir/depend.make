# Empty dependencies file for fig13_initialization.
# This may be replaced when dependencies are built.
