file(REMOVE_RECURSE
  "CMakeFiles/actuation_loop.dir/actuation_loop.cpp.o"
  "CMakeFiles/actuation_loop.dir/actuation_loop.cpp.o.d"
  "actuation_loop"
  "actuation_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/actuation_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
