# Empty dependencies file for actuation_loop.
# This may be replaced when dependencies are built.
