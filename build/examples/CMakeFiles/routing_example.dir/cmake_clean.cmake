file(REMOVE_RECURSE
  "CMakeFiles/routing_example.dir/routing_example.cpp.o"
  "CMakeFiles/routing_example.dir/routing_example.cpp.o.d"
  "routing_example"
  "routing_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
