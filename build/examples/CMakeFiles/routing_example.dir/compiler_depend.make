# Empty compiler generated dependencies file for routing_example.
# This may be replaced when dependencies are built.
