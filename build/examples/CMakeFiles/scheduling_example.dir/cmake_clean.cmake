file(REMOVE_RECURSE
  "CMakeFiles/scheduling_example.dir/scheduling_example.cpp.o"
  "CMakeFiles/scheduling_example.dir/scheduling_example.cpp.o.d"
  "scheduling_example"
  "scheduling_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
