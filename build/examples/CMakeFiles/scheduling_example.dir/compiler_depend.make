# Empty compiler generated dependencies file for scheduling_example.
# This may be replaced when dependencies are built.
