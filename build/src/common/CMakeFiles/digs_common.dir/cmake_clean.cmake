file(REMOVE_RECURSE
  "CMakeFiles/digs_common.dir/log.cc.o"
  "CMakeFiles/digs_common.dir/log.cc.o.d"
  "CMakeFiles/digs_common.dir/rng.cc.o"
  "CMakeFiles/digs_common.dir/rng.cc.o.d"
  "CMakeFiles/digs_common.dir/stats.cc.o"
  "CMakeFiles/digs_common.dir/stats.cc.o.d"
  "libdigs_common.a"
  "libdigs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
