file(REMOVE_RECURSE
  "libdigs_common.a"
)
