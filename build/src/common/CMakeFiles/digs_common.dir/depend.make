# Empty dependencies file for digs_common.
# This may be replaced when dependencies are built.
