file(REMOVE_RECURSE
  "CMakeFiles/digs_core.dir/central_manager.cc.o"
  "CMakeFiles/digs_core.dir/central_manager.cc.o.d"
  "CMakeFiles/digs_core.dir/network.cc.o"
  "CMakeFiles/digs_core.dir/network.cc.o.d"
  "CMakeFiles/digs_core.dir/node.cc.o"
  "CMakeFiles/digs_core.dir/node.cc.o.d"
  "libdigs_core.a"
  "libdigs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
