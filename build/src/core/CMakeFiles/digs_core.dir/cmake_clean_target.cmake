file(REMOVE_RECURSE
  "libdigs_core.a"
)
