# Empty compiler generated dependencies file for digs_core.
# This may be replaced when dependencies are built.
