file(REMOVE_RECURSE
  "CMakeFiles/digs_energy.dir/energy_meter.cc.o"
  "CMakeFiles/digs_energy.dir/energy_meter.cc.o.d"
  "libdigs_energy.a"
  "libdigs_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
