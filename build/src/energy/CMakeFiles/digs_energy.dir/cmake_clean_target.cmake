file(REMOVE_RECURSE
  "libdigs_energy.a"
)
