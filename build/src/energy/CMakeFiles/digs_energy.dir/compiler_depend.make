# Empty compiler generated dependencies file for digs_energy.
# This may be replaced when dependencies are built.
