
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mac/schedule.cc" "src/mac/CMakeFiles/digs_mac.dir/schedule.cc.o" "gcc" "src/mac/CMakeFiles/digs_mac.dir/schedule.cc.o.d"
  "/root/repo/src/mac/tsch_mac.cc" "src/mac/CMakeFiles/digs_mac.dir/tsch_mac.cc.o" "gcc" "src/mac/CMakeFiles/digs_mac.dir/tsch_mac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/digs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/digs_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
