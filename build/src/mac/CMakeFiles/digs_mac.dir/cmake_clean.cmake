file(REMOVE_RECURSE
  "CMakeFiles/digs_mac.dir/schedule.cc.o"
  "CMakeFiles/digs_mac.dir/schedule.cc.o.d"
  "CMakeFiles/digs_mac.dir/tsch_mac.cc.o"
  "CMakeFiles/digs_mac.dir/tsch_mac.cc.o.d"
  "libdigs_mac.a"
  "libdigs_mac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_mac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
