file(REMOVE_RECURSE
  "libdigs_mac.a"
)
