# Empty dependencies file for digs_mac.
# This may be replaced when dependencies are built.
