
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/manager/central_scheduler.cc" "src/manager/CMakeFiles/digs_manager.dir/central_scheduler.cc.o" "gcc" "src/manager/CMakeFiles/digs_manager.dir/central_scheduler.cc.o.d"
  "/root/repo/src/manager/graph_router.cc" "src/manager/CMakeFiles/digs_manager.dir/graph_router.cc.o" "gcc" "src/manager/CMakeFiles/digs_manager.dir/graph_router.cc.o.d"
  "/root/repo/src/manager/manager_model.cc" "src/manager/CMakeFiles/digs_manager.dir/manager_model.cc.o" "gcc" "src/manager/CMakeFiles/digs_manager.dir/manager_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/digs_phy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
