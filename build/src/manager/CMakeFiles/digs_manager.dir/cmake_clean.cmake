file(REMOVE_RECURSE
  "CMakeFiles/digs_manager.dir/central_scheduler.cc.o"
  "CMakeFiles/digs_manager.dir/central_scheduler.cc.o.d"
  "CMakeFiles/digs_manager.dir/graph_router.cc.o"
  "CMakeFiles/digs_manager.dir/graph_router.cc.o.d"
  "CMakeFiles/digs_manager.dir/manager_model.cc.o"
  "CMakeFiles/digs_manager.dir/manager_model.cc.o.d"
  "libdigs_manager.a"
  "libdigs_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
