file(REMOVE_RECURSE
  "libdigs_manager.a"
)
