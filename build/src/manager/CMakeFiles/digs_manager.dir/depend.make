# Empty dependencies file for digs_manager.
# This may be replaced when dependencies are built.
