file(REMOVE_RECURSE
  "CMakeFiles/digs_net.dir/etx.cc.o"
  "CMakeFiles/digs_net.dir/etx.cc.o.d"
  "CMakeFiles/digs_net.dir/neighbor_table.cc.o"
  "CMakeFiles/digs_net.dir/neighbor_table.cc.o.d"
  "libdigs_net.a"
  "libdigs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
