file(REMOVE_RECURSE
  "libdigs_net.a"
)
