# Empty dependencies file for digs_net.
# This may be replaced when dependencies are built.
