
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/phy/jammer.cc" "src/phy/CMakeFiles/digs_phy.dir/jammer.cc.o" "gcc" "src/phy/CMakeFiles/digs_phy.dir/jammer.cc.o.d"
  "/root/repo/src/phy/medium.cc" "src/phy/CMakeFiles/digs_phy.dir/medium.cc.o" "gcc" "src/phy/CMakeFiles/digs_phy.dir/medium.cc.o.d"
  "/root/repo/src/phy/propagation.cc" "src/phy/CMakeFiles/digs_phy.dir/propagation.cc.o" "gcc" "src/phy/CMakeFiles/digs_phy.dir/propagation.cc.o.d"
  "/root/repo/src/phy/prr.cc" "src/phy/CMakeFiles/digs_phy.dir/prr.cc.o" "gcc" "src/phy/CMakeFiles/digs_phy.dir/prr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
