file(REMOVE_RECURSE
  "CMakeFiles/digs_phy.dir/jammer.cc.o"
  "CMakeFiles/digs_phy.dir/jammer.cc.o.d"
  "CMakeFiles/digs_phy.dir/medium.cc.o"
  "CMakeFiles/digs_phy.dir/medium.cc.o.d"
  "CMakeFiles/digs_phy.dir/propagation.cc.o"
  "CMakeFiles/digs_phy.dir/propagation.cc.o.d"
  "CMakeFiles/digs_phy.dir/prr.cc.o"
  "CMakeFiles/digs_phy.dir/prr.cc.o.d"
  "libdigs_phy.a"
  "libdigs_phy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_phy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
