file(REMOVE_RECURSE
  "libdigs_phy.a"
)
