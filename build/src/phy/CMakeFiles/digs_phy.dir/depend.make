# Empty dependencies file for digs_phy.
# This may be replaced when dependencies are built.
