
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/digs_routing.cc" "src/routing/CMakeFiles/digs_routing.dir/digs_routing.cc.o" "gcc" "src/routing/CMakeFiles/digs_routing.dir/digs_routing.cc.o.d"
  "/root/repo/src/routing/rpl_routing.cc" "src/routing/CMakeFiles/digs_routing.dir/rpl_routing.cc.o" "gcc" "src/routing/CMakeFiles/digs_routing.dir/rpl_routing.cc.o.d"
  "/root/repo/src/routing/trickle.cc" "src/routing/CMakeFiles/digs_routing.dir/trickle.cc.o" "gcc" "src/routing/CMakeFiles/digs_routing.dir/trickle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/digs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/digs_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
