file(REMOVE_RECURSE
  "CMakeFiles/digs_routing.dir/digs_routing.cc.o"
  "CMakeFiles/digs_routing.dir/digs_routing.cc.o.d"
  "CMakeFiles/digs_routing.dir/rpl_routing.cc.o"
  "CMakeFiles/digs_routing.dir/rpl_routing.cc.o.d"
  "CMakeFiles/digs_routing.dir/trickle.cc.o"
  "CMakeFiles/digs_routing.dir/trickle.cc.o.d"
  "libdigs_routing.a"
  "libdigs_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
