file(REMOVE_RECURSE
  "libdigs_routing.a"
)
