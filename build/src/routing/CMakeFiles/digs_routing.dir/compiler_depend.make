# Empty compiler generated dependencies file for digs_routing.
# This may be replaced when dependencies are built.
