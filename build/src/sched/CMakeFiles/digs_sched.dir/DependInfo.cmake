
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/conflict_analysis.cc" "src/sched/CMakeFiles/digs_sched.dir/conflict_analysis.cc.o" "gcc" "src/sched/CMakeFiles/digs_sched.dir/conflict_analysis.cc.o.d"
  "/root/repo/src/sched/digs_scheduler.cc" "src/sched/CMakeFiles/digs_sched.dir/digs_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/digs_sched.dir/digs_scheduler.cc.o.d"
  "/root/repo/src/sched/orchestra_scheduler.cc" "src/sched/CMakeFiles/digs_sched.dir/orchestra_scheduler.cc.o" "gcc" "src/sched/CMakeFiles/digs_sched.dir/orchestra_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/digs_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/digs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/digs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/digs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/digs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
