file(REMOVE_RECURSE
  "CMakeFiles/digs_sched.dir/conflict_analysis.cc.o"
  "CMakeFiles/digs_sched.dir/conflict_analysis.cc.o.d"
  "CMakeFiles/digs_sched.dir/digs_scheduler.cc.o"
  "CMakeFiles/digs_sched.dir/digs_scheduler.cc.o.d"
  "CMakeFiles/digs_sched.dir/orchestra_scheduler.cc.o"
  "CMakeFiles/digs_sched.dir/orchestra_scheduler.cc.o.d"
  "libdigs_sched.a"
  "libdigs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
