file(REMOVE_RECURSE
  "libdigs_sched.a"
)
