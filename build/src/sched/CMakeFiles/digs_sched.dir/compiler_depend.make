# Empty compiler generated dependencies file for digs_sched.
# This may be replaced when dependencies are built.
