file(REMOVE_RECURSE
  "CMakeFiles/digs_sim.dir/simulator.cc.o"
  "CMakeFiles/digs_sim.dir/simulator.cc.o.d"
  "libdigs_sim.a"
  "libdigs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
