file(REMOVE_RECURSE
  "libdigs_sim.a"
)
