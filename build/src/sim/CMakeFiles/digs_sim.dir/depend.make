# Empty dependencies file for digs_sim.
# This may be replaced when dependencies are built.
