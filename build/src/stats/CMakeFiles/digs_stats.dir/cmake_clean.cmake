file(REMOVE_RECURSE
  "CMakeFiles/digs_stats.dir/flow_stats.cc.o"
  "CMakeFiles/digs_stats.dir/flow_stats.cc.o.d"
  "libdigs_stats.a"
  "libdigs_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
