file(REMOVE_RECURSE
  "libdigs_stats.a"
)
