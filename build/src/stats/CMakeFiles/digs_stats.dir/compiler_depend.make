# Empty compiler generated dependencies file for digs_stats.
# This may be replaced when dependencies are built.
