file(REMOVE_RECURSE
  "CMakeFiles/digs_testbed.dir/experiment.cc.o"
  "CMakeFiles/digs_testbed.dir/experiment.cc.o.d"
  "CMakeFiles/digs_testbed.dir/layouts.cc.o"
  "CMakeFiles/digs_testbed.dir/layouts.cc.o.d"
  "libdigs_testbed.a"
  "libdigs_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/digs_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
