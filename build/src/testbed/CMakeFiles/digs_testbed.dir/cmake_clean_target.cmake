file(REMOVE_RECURSE
  "libdigs_testbed.a"
)
