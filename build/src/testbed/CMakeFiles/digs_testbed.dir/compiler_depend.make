# Empty compiler generated dependencies file for digs_testbed.
# This may be replaced when dependencies are built.
