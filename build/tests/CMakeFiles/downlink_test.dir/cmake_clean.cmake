file(REMOVE_RECURSE
  "CMakeFiles/downlink_test.dir/downlink_test.cc.o"
  "CMakeFiles/downlink_test.dir/downlink_test.cc.o.d"
  "downlink_test"
  "downlink_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/downlink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
