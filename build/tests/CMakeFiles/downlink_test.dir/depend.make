# Empty dependencies file for downlink_test.
# This may be replaced when dependencies are built.
