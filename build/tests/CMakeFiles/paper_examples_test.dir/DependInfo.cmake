
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/paper_examples_test.cc" "tests/CMakeFiles/paper_examples_test.dir/paper_examples_test.cc.o" "gcc" "tests/CMakeFiles/paper_examples_test.dir/paper_examples_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/digs_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/digs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/digs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/mac/CMakeFiles/digs_mac.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/digs_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/digs_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/digs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/digs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/manager/CMakeFiles/digs_manager.dir/DependInfo.cmake"
  "/root/repo/build/src/phy/CMakeFiles/digs_phy.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/digs_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/digs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
