file(REMOVE_RECURSE
  "CMakeFiles/wirelesshart_test.dir/wirelesshart_test.cc.o"
  "CMakeFiles/wirelesshart_test.dir/wirelesshart_test.cc.o.d"
  "wirelesshart_test"
  "wirelesshart_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wirelesshart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
