# Empty dependencies file for wirelesshart_test.
# This may be replaced when dependencies are built.
