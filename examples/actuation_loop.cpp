// Closed-loop control over the DiGS downlink-graph extension (paper
// footnote 2): sensors report uplink to the gateway, the controller issues
// commands downlink to actuators, and a sensor triggers an actuator
// directly via common-ancestor routing — the full WirelessHART
// sensor-actuator pattern, with every route and schedule computed by the
// devices themselves.
#include <cstdio>

#include "core/network.h"
#include "testbed/experiment.h"

int main() {
  using namespace digs;

  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 99;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;  // the footnote-2 extension
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;

  // A small plant floor: two APs at the gateway, sensors on the left,
  // actuators on the right.
  std::vector<Position> positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // access points
      {4.0, 6.0, 0.0},   {4.0, 14.0, 0.0},   // sensors (2, 3)
      {17.0, 8.0, 0.0},  {17.0, 14.0, 0.0},  // relays  (4, 5)
      {31.0, 6.0, 0.0},  {31.0, 14.0, 0.0},  // actuators (6, 7)
      {9.0, 10.0, 0.0},  {27.0, 10.0, 0.0},  // relays  (8, 9)
  };
  Network net(config, positions);

  // Uplink sensing: sensor 2 -> gateway, 2 s period.
  FlowSpec sensing;
  sensing.id = FlowId{0};
  sensing.source = NodeId{2};
  sensing.period = seconds(static_cast<std::int64_t>(2));
  sensing.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(sensing);

  // Downlink actuation: gateway (AP 0) -> actuator 6, 2 s period.
  FlowSpec command;
  command.id = FlowId{1};
  command.source = NodeId{0};
  command.downlink_dest = NodeId{6};
  command.period = seconds(static_cast<std::int64_t>(2));
  command.start_offset = seconds(static_cast<std::int64_t>(181));
  net.add_flow(command);

  // Device-to-device interlock: sensor 3 -> actuator 7 via the common
  // ancestor (climbs until an ancestor knows the destination's subtree).
  FlowSpec interlock;
  interlock.id = FlowId{2};
  interlock.source = NodeId{3};
  interlock.downlink_dest = NodeId{7};
  interlock.period = seconds(static_cast<std::int64_t>(2));
  interlock.start_offset = seconds(static_cast<std::int64_t>(182));
  net.add_flow(interlock);

  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(480)));

  std::printf("Closed-loop control over self-computed graph routes:\n\n");
  const SimTime measure = SimTime{0} + seconds(static_cast<std::int64_t>(185));
  const char* names[] = {"sensing  (2 -> gateway)   ",
                         "actuation (gateway -> 6)  ",
                         "interlock (3 -> 7, d2d)   "};
  for (std::uint16_t f = 0; f < 3; ++f) {
    Cdf latency;
    const FlowRecord* record = net.stats().flow(FlowId{f});
    for (const PacketRecord& packet : record->packets) {
      if (packet.generated >= measure && packet.received()) {
        latency.add(packet.latency().millis());
      }
    }
    std::printf("  %s PDR %.1f%%  latency median %.0f ms, p95 %.0f ms\n",
                names[f],
                100.0 * net.stats().pdr(FlowId{f}, measure),
                latency.median(), latency.percentile(95));
  }

  std::printf(
      "\nThe downlink routes come from destination advertisements each node\n"
      "sends its best parent (the storing-mode analogue the paper's\n"
      "footnote 2 sketches); downlink cells mirror Eq. 4 shifted by half a\n"
      "slotframe. A command for a device in the other AP's subtree crosses\n"
      "the wired gateway backbone, exactly like a WirelessHART gateway.\n");
  return 0;
}
