// Factory monitoring under WiFi interference — the scenario motivating the
// paper: an oil field / plant floor where process sensors report through a
// WSAN that coexists with WiFi backhaul. Runs the same workload under DiGS
// and under Orchestra, switches three WiFi-like jammers on mid-experiment,
// and compares reliability, latency and energy.
#include <cstdio>

#include "testbed/experiment.h"

namespace {

using namespace digs;

ExperimentResult run_suite(ProtocolSuite suite) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = 2024;
  config.num_flows = 8;                                  // 8 process sensors
  config.flow_period = seconds(static_cast<std::int64_t>(5));
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(300));
  config.num_jammers = 3;  // WiFi APs streaming nearby
  config.jammer_pattern = JammerPattern::kWifiStreaming;
  config.jammer_start_after = seconds(static_cast<std::int64_t>(60));
  ExperimentRunner runner(testbed_a(), config);
  return runner.run();
}

}  // namespace

int main() {
  std::printf(
      "Factory monitoring: 50-node plant floor, 8 sensor flows @ 5 s,\n"
      "3 WiFi-like interferers switch on after 60 s of measurement.\n\n");

  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
    const ExperimentResult result = run_suite(suite);
    Cdf latency;
    for (const double ms : result.latencies_ms) latency.add(ms);
    Cdf pdr;
    for (const double p : result.flow_pdrs) pdr.add(p);

    std::printf("%s:\n", to_string(suite));
    std::printf("  delivery: %llu/%llu packets (PDR %.1f%%), worst flow "
                "%.1f%%\n",
                static_cast<unsigned long long>(result.delivered),
                static_cast<unsigned long long>(result.generated),
                100.0 * result.overall_pdr, 100.0 * pdr.min());
    std::printf("  latency: median %.0f ms, p95 %.0f ms\n", latency.median(),
                latency.percentile(95));
    std::printf("  energy: %.2f mJ per delivered packet, duty cycle "
                "%.2f%%\n",
                result.energy_per_delivered_mj, 100.0 * result.duty_cycle);
    if (!result.repair_times_s.empty()) {
      Cdf repair;
      for (const double t : result.repair_times_s) repair.add(t);
      std::printf("  outages after interference: %zu flows, median %.1f s, "
                  "max %.1f s\n",
                  repair.count(), repair.median(), repair.max());
    } else {
      std::printf("  outages after interference: none (seamless delivery)\n");
    }
    std::printf("\n");
  }

  std::printf(
      "Takeaway: graph routing's redundant second-best parent lets DiGS\n"
      "absorb interference that forces Orchestra into visible repair\n"
      "windows - exactly the paper's Fig. 9 result.\n");
  return 0;
}
