// Node-failure resilience — the paper's Fig. 11 scenario as a runnable
// example: a relay node dies mid-operation; DiGS keeps delivering through
// backup parents while the single-parent baseline must repair first.
// Prints a per-packet timeline around the failure for one affected flow.
#include <cstdio>

#include "testbed/experiment.h"

namespace {

using namespace digs;

struct Outcome {
  double pdr;
  std::size_t outages;
  double worst_outage_s;
  FlowId affected_flow;
  std::unique_ptr<ExperimentRunner> runner;
};

Outcome run_suite(ProtocolSuite suite) {
  const std::uint64_t seed = 77;

  // Probe run: find the busiest relay (most children) once formed.
  NodeId relay = kNoNode;
  {
    ExperimentConfig probe;
    probe.suite = suite;
    probe.seed = seed;
    probe.num_flows = 6;
    probe.warmup = seconds(static_cast<std::int64_t>(240));
    probe.duration = seconds(static_cast<std::int64_t>(10));
    ExperimentRunner runner(testbed_a(), probe);
    runner.run();
    int most = -1;
    Network& net = runner.network();
    for (std::uint16_t i = 2; i < net.size(); ++i) {
      const int kids = static_cast<int>(
          net.node(NodeId{i}).routing().children().size());
      if (kids > most) {
        most = kids;
        relay = NodeId{i};
      }
    }
  }

  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 6;
  config.flow_period = seconds(static_cast<std::int64_t>(5));
  config.warmup = seconds(static_cast<std::int64_t>(240));
  config.duration = seconds(static_cast<std::int64_t>(300));
  config.failures.push_back(FailureEvent{
      config.warmup + seconds(static_cast<std::int64_t>(120)), relay,
      false});
  auto runner = std::make_unique<ExperimentRunner>(testbed_a(), config);
  const ExperimentResult result = runner->run();

  Outcome outcome;
  outcome.pdr = result.overall_pdr;
  outcome.outages = result.repair_times_s.size();
  outcome.worst_outage_s = 0.0;
  for (const double t : result.repair_times_s) {
    outcome.worst_outage_s = std::max(outcome.worst_outage_s, t);
  }
  // Pick the flow with the lowest PDR for the timeline.
  double worst = 2.0;
  const auto& stats = runner->network().stats();
  for (const FlowRecord& flow : stats.flows()) {
    if (flow.source == relay) continue;
    const double pdr = stats.pdr(flow.id, runner->measure_start());
    if (pdr < worst) {
      worst = pdr;
      outcome.affected_flow = flow.id;
    }
  }
  std::printf("%s: killed relay node %u at t+120 s\n", to_string(suite),
              relay.value);
  outcome.runner = std::move(runner);
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "Failure resilience: the busiest relay on a 50-node floor dies two\n"
      "minutes into the measurement window.\n\n");

  for (const ProtocolSuite suite :
       {ProtocolSuite::kDigs, ProtocolSuite::kOrchestra}) {
    const Outcome outcome = run_suite(suite);
    std::printf("  overall PDR %.1f%%; %zu flows saw an outage (worst "
                "%.1f s)\n",
                100.0 * outcome.pdr, outcome.outages,
                outcome.worst_outage_s);
    if (outcome.affected_flow.valid()) {
      const auto& stats = outcome.runner->network().stats();
      std::printf("  packets 20..40 of the most affected flow "
                  "(failure near packet 24, '.'=delivered, X=lost):\n    ");
      for (std::uint32_t seq = 20; seq <= 40; ++seq) {
        std::printf("%c",
                    stats.was_delivered(outcome.affected_flow, seq) ? '.'
                                                                    : 'X');
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf(
      "Takeaway: with graph routing the backup parent is pre-provisioned\n"
      "in the schedule (attempt-3 cells), so failover needs no repair\n"
      "phase - the paper's Fig. 11 mechanism.\n");
  return 0;
}
