// Quickstart: build a small industrial WSAN, run DiGS (distributed graph
// routing + autonomous scheduling), and print the routes and end-to-end
// statistics.
//
//   $ ./build/examples/quickstart
//
// This walks the minimal public API: TestbedLayout -> ExperimentConfig ->
// ExperimentRunner -> ExperimentResult, then peeks into per-node routing
// state through the Network.
#include <cstdio>

#include "testbed/experiment.h"

int main() {
  using namespace digs;

  // 1. Describe the deployment: two access points wired to the gateway and
  //    ten battery-powered field devices on one floor.
  TestbedLayout layout;
  layout.name = "quickstart-12";
  layout.num_access_points = 2;
  layout.tx_power_dbm = -10.0;
  layout.positions = {
      {5.0, 10.0, 0.0},  {35.0, 10.0, 0.0},  // access points (ids 0, 1)
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {24.0, 16.0, 0.0},
      {30.0, 10.0, 0.0}, {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
      {20.0, 11.0, 0.0},
  };

  // 2. Configure the experiment: the DiGS suite, four sensor flows
  //    reporting every 2 s, 2 minutes of formation and 2 minutes measured.
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 7;
  config.num_flows = 4;
  config.flow_period = seconds(static_cast<std::int64_t>(2));
  config.warmup = seconds(static_cast<std::int64_t>(150));
  config.duration = seconds(static_cast<std::int64_t>(120));
  config.num_jammers = 0;

  // 3. Run.
  ExperimentRunner runner(layout, config);
  const ExperimentResult result = runner.run();

  // 4. Inspect what the distributed protocol built: every field device
  //    chose a best and second-best parent on its own (Algorithm 1).
  std::printf("node | rank | best parent | backup parent | children\n");
  std::printf("-----+------+-------------+---------------+---------\n");
  Network& net = runner.network();
  for (std::uint16_t i = 0; i < net.size(); ++i) {
    const auto& routing = net.node(NodeId{i}).routing();
    char bp[8] = "-";
    char sbp[8] = "-";
    if (routing.best_parent().valid()) {
      std::snprintf(bp, sizeof(bp), "%u", routing.best_parent().value);
    }
    if (routing.second_best_parent().valid()) {
      std::snprintf(sbp, sizeof(sbp), "%u",
                    routing.second_best_parent().value);
    }
    std::printf(" %3u | %4u | %11s | %13s | %zu\n", i, routing.rank(), bp,
                sbp, routing.children().size());
  }

  // 5. End-to-end results.
  std::printf("\npackets generated: %llu, delivered: %llu (PDR %.1f%%)\n",
              static_cast<unsigned long long>(result.generated),
              static_cast<unsigned long long>(result.delivered),
              100.0 * result.overall_pdr);
  if (!result.latencies_ms.empty()) {
    Cdf latency;
    for (const double ms : result.latencies_ms) latency.add(ms);
    std::printf("latency: median %.0f ms, p90 %.0f ms\n", latency.median(),
                latency.percentile(90));
  }
  std::printf("radio duty cycle: %.2f%%, energy per packet: %.2f mJ\n",
              100.0 * result.duty_cycle, result.energy_per_delivered_mj);
  std::printf("\nNext: see examples/factory_monitoring.cpp for interference\n"
              "and examples/failure_resilience.cpp for node failures.\n");
  return 0;
}
