// Reproduces the paper's routing example (Section V-A, Fig. 6): two access
// points (AP1, AP2) and four field devices (#3, #4, #5, #6). Join-in
// messages are exchanged directly through the protocol objects so the ETX
// values can be controlled exactly, and the resulting graph routes are
// printed next to the paper's expected result:
//
//   primary paths:  #3 -> #4 -> #6 -> AP2,  #5 -> AP1
//   backup paths:   #3 -> #5, #4 -> #5, #5 -> AP2, #6 -> AP1
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "routing/digs_routing.h"
#include "sim/simulator.h"

namespace {

using namespace digs;

// Link ETX values chosen to produce the paper's Fig. 6 outcome.
// (The figure annotates links with ETX; the text fixes the selections.)
// Keys are (higher id, lower id).
const std::map<std::pair<int, int>, double> kLinkEtx = {
    {{5, 0}, 1.0},  // #5 - AP1 (good)
    {{5, 1}, 1.6},  // #5 - AP2
    {{6, 1}, 1.0},  // #6 - AP2 (good)
    {{6, 0}, 1.8},  // #6 - AP1
    {{6, 5}, 1.2},  // #5 - #6 (same rank: never used for routing)
    {{6, 4}, 1.0},  // #4 - #6 (best for #4)
    {{5, 4}, 1.7},  // #4 - #5 (backup for #4)
    {{4, 3}, 1.0},  // #3 - #4 (best for #3)
    {{5, 3}, 2.6},  // #3 - #5 (backup for #3)
};

struct ExampleNode {
  NodeId id;
  NeighborTable table;
  std::unique_ptr<DigsRouting> routing;
  std::vector<Frame> outbox;
};

double link_etx(NodeId a, NodeId b) {
  const auto key = std::make_pair(std::max(a.value, b.value),
                                  std::min(a.value, b.value));
  const auto it = kLinkEtx.find({key.first, key.second});
  return it == kLinkEtx.end() ? -1.0 : it->second;
}

/// RSS that seeds exactly the wanted ETX under the paper's mapping
/// (-60 dBm -> 1, -90 dBm -> 3, linear in between).
double rss_for_etx(double etx) { return -60.0 - (etx - 1.0) * 15.0; }

}  // namespace

int main() {
  Simulator sim;
  std::map<std::uint16_t, ExampleNode> nodes;

  // Ids: 0 = AP1, 1 = AP2, 3..6 = field devices (2 unused to keep the
  // paper's numbering).
  for (const std::uint16_t id : {0, 1, 3, 4, 5, 6}) {
    ExampleNode& node = nodes[id];
    node.id = NodeId{id};
    RoutingProtocol::Env env;
    env.send_routing = [&nodes, id](const Frame& frame) {
      nodes[id].outbox.push_back(frame);
    };
    env.on_topology_changed = [](SimTime) {};
    DigsRoutingConfig config;
    config.trickle.imin = milliseconds(100);
    node.routing = std::make_unique<DigsRouting>(
        sim, node.id, /*is_access_point=*/id < 2, node.table, config,
        Rng(id + 1), env);
    node.routing->start(sim.now());
  }

  // Message pump: deliver every queued join-in / joined-callback to the
  // radio neighbors (links present in kLinkEtx), seeding link ETX from the
  // controlled RSS. A fixed number of 1 s rounds covers several Trickle
  // intervals (suppression makes some rounds quiet).
  const auto pump = [&] {
    for (int round = 0; round < 15; ++round) {
      sim.run_until(sim.now() + seconds(static_cast<std::int64_t>(1)));
      for (auto& [id, node] : nodes) {
        std::vector<Frame> outbox;
        outbox.swap(node.outbox);
        for (const Frame& frame : outbox) {
          for (auto& [other_id, other] : nodes) {
            if (other_id == id) continue;
            const double etx = link_etx(node.id, other.id);
            if (etx < 0.0) continue;  // not neighbors
            if (!frame.is_broadcast() && frame.dst != other.id) continue;
            const double rss = rss_for_etx(etx);
            if (frame.type == FrameType::kJoinIn) {
              const auto& payload = frame.as<JoinInPayload>();
              other.table.on_heard(frame.src, rss, payload.rank,
                                   payload.etxw, sim.now());
            } else {
              other.table.on_heard_rss(frame.src, rss, sim.now());
            }
            other.routing->handle_frame(frame, rss, sim.now());
          }
        }
      }
    }
  };
  pump();

  std::printf("Fig. 6 routing example - generated graph routes:\n\n");
  std::printf("node | rank | best parent | second best parent\n");
  std::printf("-----+------+-------------+-------------------\n");
  const auto name = [](NodeId id) -> std::string {
    if (!id.valid()) return "-";
    if (id.value == 0) return "AP1";
    if (id.value == 1) return "AP2";
    return "#" + std::to_string(id.value);
  };
  for (const std::uint16_t id : {3, 4, 5, 6}) {
    const auto& routing = *nodes[id].routing;
    std::printf("  #%u | %4u | %11s | %18s\n", id, routing.rank(),
                name(routing.best_parent()).c_str(),
                name(routing.second_best_parent()).c_str());
  }

  std::printf("\npaper expectation:\n");
  std::printf("   #5 | rank 2 | AP1 | AP2\n");
  std::printf("   #6 | rank 2 | AP2 | AP1\n");
  std::printf("   #4 | rank 3 | #6  | #5\n");
  std::printf("   #3 | rank 4 | #4  | #5\n");
  std::printf(
      "\nNote the #5 - #6 link is never selected: both have rank 2, and\n"
      "equal-rank links are excluded to avoid loops (paper Section V-A).\n");
  return 0;
}
