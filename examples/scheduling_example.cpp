// Reproduces the paper's scheduling example (Section VI-A, Fig. 7): two
// access points (#1, #2) and two field devices (#3, #4) with primary paths
// #3 -> #1, #4 -> #2 and backup paths #3 -> #2, #4 -> #1. Slotframe lengths
// are 61 (synchronization), 11 (routing) and 7 (application); the combined
// schedule spans 61 * 11 * 7 = 4697 slots and is resolved per slot by
// traffic priority (sync > routing > application).
#include <cstdio>
#include <string>
#include <vector>

#include "sched/digs_scheduler.h"

namespace {

using namespace digs;

std::string describe(const Cell& cell) {
  std::string out = cell.option == CellOption::kTx      ? "TX"
                    : cell.option == CellOption::kRx    ? "RX"
                                                        : "SH";
  out += "/";
  out += to_string(cell.traffic);
  if (cell.peer.valid()) {
    out += "->#" + std::to_string(cell.peer.value + 1);  // paper numbering
  }
  if (cell.attempt > 0) {
    out += " (attempt " + std::to_string(cell.attempt) + ")";
  }
  return out;
}

}  // namespace

int main() {
  // Paper numbering #1..#4 maps to ids 0..3 (APs first).
  SchedulerConfig config;
  config.sync_slotframe_len = 61;
  config.routing_slotframe_len = 11;
  config.app_slotframe_len = 7;
  config.attempts = 3;
  DigsScheduler scheduler(config);

  // Field device #3 (id 2): best parent #1 (id 0), backup #2 (id 1).
  // Field device #4 (id 3): best parent #2 (id 1), backup #1 (id 0).
  struct NodeSpec {
    NodeId id;
    bool is_ap;
    NodeId bp, sbp;
    std::vector<ChildEntry> children;
  };
  const std::vector<NodeSpec> specs{
      {NodeId{0}, true, kNoNode, kNoNode,
       {{NodeId{2}, true, {}}, {NodeId{3}, false, {}}}},
      {NodeId{1}, true, kNoNode, kNoNode,
       {{NodeId{3}, true, {}}, {NodeId{2}, false, {}}}},
      {NodeId{2}, false, NodeId{0}, NodeId{1}, {}},
      {NodeId{3}, false, NodeId{1}, NodeId{0}, {}},
  };

  std::printf("Fig. 7 scheduling example - per-node slotframes:\n");
  std::vector<Schedule> schedules(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const NodeSpec& spec = specs[i];
    RoutingView view;
    view.id = spec.id;
    view.is_access_point = spec.is_ap;
    view.num_access_points = 2;
    view.best_parent = spec.bp;
    view.second_best_parent = spec.sbp;
    view.children = spec.children;
    scheduler.rebuild(schedules[i], view);

    std::printf("\n node #%u (%s):\n", spec.id.value + 1,
                spec.is_ap ? "access point" : "field device");
    for (const TrafficClass traffic :
         {TrafficClass::kSync, TrafficClass::kRouting,
          TrafficClass::kApplication}) {
      const Slotframe* frame = schedules[i].slotframe(traffic);
      std::printf("   %-11s (len %3u):", to_string(traffic), frame->length);
      for (const Cell& cell : frame->cells) {
        std::printf("  slot %u: %s", cell.slot_offset,
                    describe(cell).c_str());
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\ncombined schedule: %d x %d x %d = %d slots per hyperperiod\n",
      config.sync_slotframe_len, config.routing_slotframe_len,
      config.app_slotframe_len,
      config.sync_slotframe_len * config.routing_slotframe_len *
          config.app_slotframe_len);

  // Show the first 30 slots of node #3's combined schedule, resolved per
  // slot by priority, as Fig. 7(e) does.
  std::printf("\nnode #3 combined schedule, ASN 0..29:\n");
  for (std::uint64_t asn = 0; asn < 30; ++asn) {
    const auto cells = schedules[2].active_cells(asn);
    if (cells.empty()) continue;
    std::printf("  ASN %2llu: %s\n",
                static_cast<unsigned long long>(asn),
                describe(cells.front()).c_str());
  }
  std::printf(
      "\nConflicts (e.g. a sync and a routing cell on the same ASN) are\n"
      "resolved locally by priority; no traffic is constantly blocked\n"
      "because 61, 11 and 7 are pairwise coprime (paper Section VI-B).\n");
  return 0;
}
