#!/usr/bin/env bash
# Full robustness gate in one command: build + ctest on every preset
# (default, ASan+UBSan, TSan), then the bench acceptance gates
# (ext_churn exits nonzero on invariant violations or failed rejoins,
# ext_sync on a desync storm / PDR loss within the 40 ppm crystal budget,
# ext_scaling on a failed city-scale row, a shard-determinism mismatch,
# excessive 1-thread pipeline overhead, a too-high serial fraction, or a
# missed sharding-speedup threshold on multi-core hardware; ext_jamming
# on a jamming PDR collapse or swap-epoch schedule conflicts; ext_downlink
# on an unbounded actuation-latency tail, tunnel invariant violations, or
# replication failing to beat single-path through relay crashes).
#
# Usage: scripts/check.sh [preset...]   (default: default sanitize tsan)
# Extra knobs pass through the environment: DIGS_BENCH_RUNS, DIGS_THREADS.
set -euo pipefail

cd "$(dirname "$0")/.."

presets=("$@")
if [ ${#presets[@]} -eq 0 ]; then
  presets=(default sanitize tsan)
fi

for preset in "${presets[@]}"; do
  echo "==> preset: ${preset}"
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j
  ctest --preset "${preset}"
done

# The bench gates run from the default-preset build tree; they write their
# JSON next to the binaries so the checked-in copies only change on purpose.
# Skipped when the default preset was excluded from this invocation.
if printf '%s\n' "${presets[@]}" | grep -qx default; then
  echo "==> gate: perf smoke (busy-slot throughput vs bench/perf_baseline.json)"
  # Reduced city busy-slot row, best of 3, profiler on; fails on >20%
  # regression against the committed baseline and then prints the
  # worst-regressing DIGS_PROF phases (name, baseline ns, current ns) so
  # the offending slot-loop phase is named, not just the ratio.
  # Re-baseline on a new CI host with DIGS_PERF_WRITE_BASELINE=1 (writes
  # the file the gate reads).
  (cd build/bench &&
   DIGS_PERF_SMOKE=1 DIGS_PERF_BASELINE=../../bench/perf_baseline.json \
   ./micro_core)
  echo "==> gate: ext_churn"
  (cd build/bench && ./ext_churn)
  echo "==> gate: ext_sync"
  (cd build/bench && ./ext_sync)
  echo "==> gate: ext_scaling"
  (cd build/bench && ./ext_scaling)
  echo "==> gate: ext_jamming"
  (cd build/bench && ./ext_jamming)
  echo "==> gate: ext_downlink"
  (cd build/bench && ./ext_downlink)
else
  echo "==> bench gates skipped (default preset not selected)"
fi

# Sharded slot pipeline under TSan: a reduced city-scale row at
# DIGS_SHARDS=4 with a real 4-worker persistent pool (DIGS_SHARD_THREADS=4
# is forced — the default would clamp to the host's core count and leave
# the pool idle on small CI boxes, losing all TSan coverage of the
# fork-join barriers, defer buffers, and replay). The smoke skips the JSON
# and only checks that the sharded run stays bit-identical to the serial
# one; races in the shard pool, the deferred side-effect replay, or the
# per-listener merge show up here, not in the single-threaded gates.
if printf '%s\n' "${presets[@]}" | grep -qx tsan; then
  echo "==> gate: ext_scaling sharded smoke (tsan, 4-thread pool)"
  (cd build-tsan/bench &&
   DIGS_SCALING_SMOKE=1 DIGS_SHARDS=4 DIGS_SHARD_THREADS=4 ./ext_scaling)
  # The jamming matrix under TSan drives the schedule-randomization
  # reinstall and the reactive jammer's slot observation through the same
  # 4-worker pool (cells force shards/threads in-config); bit-identity
  # doubles as the race detector's workload.
  echo "==> gate: ext_jamming sharded smoke (tsan, 4-thread pool)"
  (cd build-tsan/bench &&
   DIGS_JAMMING_SMOKE=1 DIGS_SHARD_THREADS=4 ./ext_jamming)
  # Tunnel replication + relay crash/repair under TSan: source-routed
  # injection at the AP, duplicate suppression, plant bookkeeping and the
  # mid-run tunnel re-derivations all cross the sharded slot pipeline;
  # the smoke pins the 4x4 cell bit-identical to serial.
  echo "==> gate: ext_downlink sharded smoke (tsan, 4-thread pool)"
  (cd build-tsan/bench &&
   DIGS_DOWNLINK_SMOKE=1 DIGS_SHARDS=4 DIGS_SHARD_THREADS=4 ./ext_downlink)
fi

echo "==> all presets and gates passed"
