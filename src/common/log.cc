#include "common/log.h"

namespace digs::detail {

LogLevel& global_log_level() {
  static LogLevel level = LogLevel::kWarn;
  return level;
}

}  // namespace digs::detail
