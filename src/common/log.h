// Minimal leveled logging. Off (Warn) by default so experiment binaries stay
// quiet; tests and debugging can raise the level per-process.
#pragma once

#include <cstdio>
#include <string_view>
#include <utility>

namespace digs {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

namespace detail {
LogLevel& global_log_level();
}

inline void set_log_level(LogLevel level) {
  detail::global_log_level() = level;
}
inline LogLevel log_level() { return detail::global_log_level(); }

/// printf-style logging; compiled in always, gated at runtime.
template <typename... Args>
void log(LogLevel level, const char* fmt, Args&&... args) {
  if (level < detail::global_log_level()) return;
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO", "WARN",
                                           "ERROR"};
  std::fprintf(stderr, "[%s] ", kNames[static_cast<int>(level)]);
  if constexpr (sizeof...(Args) == 0) {
    std::fputs(fmt, stderr);
  } else {
    std::fprintf(stderr, fmt, std::forward<Args>(args)...);
  }
  std::fputc('\n', stderr);
}

#define DIGS_LOG_DEBUG(...) ::digs::log(::digs::LogLevel::kDebug, __VA_ARGS__)
#define DIGS_LOG_INFO(...) ::digs::log(::digs::LogLevel::kInfo, __VA_ARGS__)
#define DIGS_LOG_WARN(...) ::digs::log(::digs::LogLevel::kWarn, __VA_ARGS__)

}  // namespace digs
