#include "common/oscillator.h"

#include <algorithm>
#include <cassert>

namespace digs {

Oscillator::Oscillator(const OscillatorConfig& config, Rng rng)
    : walk_ppm_(config.walk_ppm),
      max_rate_ppm_(config.max_rate_ppm()),
      period_us_(std::max<std::int64_t>(config.walk_period.us, 1)),
      enabled_(config.enabled()) {
  if (!enabled_) return;
  static_rate_ppm_ = rng.uniform(-config.ppm, config.ppm);
  walk_seed_ = rng.next();
  epoch_rate_ppm_.push_back(static_rate_ppm_);
  epoch_prefix_us_.push_back(0.0);
}

void Oscillator::ensure_epoch(std::size_t k) const {
  while (epoch_rate_ppm_.size() <= k) {
    const std::size_t prev = epoch_rate_ppm_.size() - 1;
    // The walk offset from the static rate takes a bounded uniform step per
    // epoch, clamped to +/-walk_ppm. Each step is a stateless hash of
    // (walk_seed, epoch), so the sequence is a pure function of the seed.
    double walk = epoch_rate_ppm_[prev] - static_rate_ppm_;
    if (walk_ppm_ > 0.0) {
      const double step =
          (hashed_uniform(hash_mix(walk_seed_, prev)) * 2.0 - 1.0) *
          (walk_ppm_ * 0.25);
      walk = std::clamp(walk + step, -walk_ppm_, walk_ppm_);
    }
    epoch_rate_ppm_.push_back(static_rate_ppm_ + walk);
    epoch_prefix_us_.push_back(
        epoch_prefix_us_[prev] +
        epoch_rate_ppm_[prev] * 1e-6 * static_cast<double>(period_us_));
  }
}

double Oscillator::elapsed_drift_us(SimTime t) const {
  if (!enabled_) return 0.0;
  assert(t.us >= 0);
  const auto k = static_cast<std::size_t>(t.us / period_us_);
  ensure_epoch(k);
  const std::int64_t into_epoch = t.us - static_cast<std::int64_t>(k) * period_us_;
  return epoch_prefix_us_[k] +
         epoch_rate_ppm_[k] * 1e-6 * static_cast<double>(into_epoch);
}

double Oscillator::rate_ppm_at(SimTime t) const {
  if (!enabled_) return 0.0;
  assert(t.us >= 0);
  const auto k = static_cast<std::size_t>(t.us / period_us_);
  ensure_epoch(k);
  return epoch_rate_ppm_[k];
}

}  // namespace digs
