// Per-node oscillator (crystal) model for imperfect time synchronization.
//
// A node's local clock runs at (1 + rate) times real time, where rate is a
// per-node constant drawn uniformly in [-ppm, +ppm] plus a slow bounded
// random walk (temperature-style wander) that re-steps every walk_period.
// What the rest of the simulator consumes is the ACCUMULATED drift
// elapsed_drift_us(t): how far this clock has wandered from the reference
// clock after t microseconds of real time, assuming no corrections.
//
// Determinism contract: elapsed_drift_us(t) is a pure function of
// (seed, config, t) — the walk is derived from stateless hashes per epoch
// and integrated through a closed-form prefix table, so the value is
// independent of the query pattern. The wake-heap slot engine and the
// polled slot loop query clocks at different times; path-independence here
// is what keeps them bit-identical under drift (DESIGN.md §11).
//
// A default-constructed Oscillator is disabled and reports zero drift; it
// is what every node gets when OscillatorConfig::ppm is 0 (the default), so
// the drift subsystem costs one branch per query in existing setups.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace digs {

/// Knobs for the per-node oscillator. Defaults model a perfect crystal
/// (drift disabled); typical 802.15.4 hardware sits at 10-40 ppm.
struct OscillatorConfig {
  /// Static frequency tolerance: each node draws a constant rate uniformly
  /// in [-ppm, +ppm]. 0 disables the static component.
  double ppm{0.0};
  /// Amplitude bound of the random-walk component: the wandering part of
  /// the rate stays within [-walk_ppm, +walk_ppm] around the static rate.
  double walk_ppm{0.0};
  /// How often the random walk takes a step.
  SimDuration walk_period{seconds(static_cast<std::int64_t>(10))};

  [[nodiscard]] bool enabled() const { return ppm > 0.0 || walk_ppm > 0.0; }
  /// Worst-case |rate| of one clock; the worst-case RELATIVE rate between
  /// two nodes is twice this.
  [[nodiscard]] double max_rate_ppm() const { return ppm + walk_ppm; }
};

class Oscillator {
 public:
  /// Disabled oscillator: zero drift, no allocation.
  Oscillator() = default;

  /// Draws this node's static rate and walk seed from `rng` (callers pass a
  /// per-node fork, making the oscillator deterministic per (seed, node)).
  Oscillator(const OscillatorConfig& config, Rng rng);

  [[nodiscard]] bool enabled() const { return enabled_; }
  [[nodiscard]] double max_rate_ppm() const { return max_rate_ppm_; }

  /// Accumulated clock error after `t` of real time (microseconds of local
  /// clock ahead (+) or behind (-) the reference), with no corrections.
  [[nodiscard]] double elapsed_drift_us(SimTime t) const;

  /// Instantaneous rate (ppm) in effect at `t`; diagnostic.
  [[nodiscard]] double rate_ppm_at(SimTime t) const;

 private:
  /// Grows the epoch caches so index k is valid. Epochs are appended in
  /// order, each derived from the previous plus a stateless hashed step, so
  /// cached values never depend on which queries arrived first.
  void ensure_epoch(std::size_t k) const;

  double static_rate_ppm_{0.0};
  double walk_ppm_{0.0};
  double max_rate_ppm_{0.0};
  std::int64_t period_us_{1};
  std::uint64_t walk_seed_{0};
  bool enabled_{false};
  /// epoch_rate_ppm_[k]: rate during [k*period, (k+1)*period).
  mutable std::vector<double> epoch_rate_ppm_;
  /// epoch_prefix_us_[k]: drift accumulated over epochs [0, k).
  mutable std::vector<double> epoch_prefix_us_;
};

}  // namespace digs
