#include "common/prof.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <sstream>

namespace digs::prof {
namespace {

struct Counter {
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> calls{0};
};

Counter g_counters[kNumPhases];

constexpr const char* kPhaseNames[kNumPhases] = {
    "wake_pop",      "plan_gather",   "bucket_build", "begin_listener",
    "decode",        "shard_resolve", "merge_compact", "ack_resolve",
    "deliver",       "energy_settle", "wake_refresh",  "barrier_wait",
    "worker_idle",   "slot_total",
};

// -1 = not yet decided from the environment; 0/1 = cached decision.
std::atomic<int> g_enabled{-1};

}  // namespace

const char* phase_name(Phase phase) { return kPhaseNames[phase]; }

bool enabled() {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state >= 0) return state != 0;
  const char* env = std::getenv("DIGS_PROF");
  const bool on = env != nullptr && env[0] != '\0' && env[0] != '0';
  // Another thread may race to the same env-derived answer; both write the
  // identical value, so a plain exchange is fine.
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

void force_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void add(Phase phase, std::uint64_t ns) {
  g_counters[phase].ns.fetch_add(ns, std::memory_order_relaxed);
  g_counters[phase].calls.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t total_ns(Phase phase) {
  return g_counters[phase].ns.load(std::memory_order_relaxed);
}

std::uint64_t calls(Phase phase) {
  return g_counters[phase].calls.load(std::memory_order_relaxed);
}

std::uint64_t summed_phase_ns() {
  std::uint64_t sum = 0;
  for (int p = 0; p < kNumPhases; ++p) {
    if (!is_wall_phase(static_cast<Phase>(p))) continue;
    sum += total_ns(static_cast<Phase>(p));
  }
  return sum;
}

void reset() {
  for (auto& counter : g_counters) {
    counter.ns.store(0, std::memory_order_relaxed);
    counter.calls.store(0, std::memory_order_relaxed);
  }
}

std::string json() {
  std::ostringstream out;
  out << "{\"enabled\": " << (enabled() ? "true" : "false")
      << ", \"phases\": {";
  for (int p = 0; p < kNumPhases; ++p) {
    if (p != 0) out << ", ";
    const auto phase = static_cast<Phase>(p);
    out << '"' << kPhaseNames[p] << "\": {\"ns\": " << total_ns(phase)
        << ", \"calls\": " << calls(phase) << '}';
  }
  out << "}, \"summed_phase_ns\": " << summed_phase_ns() << '}';
  return out.str();
}

}  // namespace digs::prof
