// Slot-loop phase profiler (DIGS_PROF=1).
//
// The simulator's wall-clock lives almost entirely in the per-slot loop, so
// perf PRs need a *phase* breakdown (wake-heap pop, attempt gather, bucket
// build, begin_listener, decode, merge barrier, ...) rather than end-to-end
// deltas. This module accumulates per-phase wall nanoseconds and call counts
// into process-global relaxed atomics, so trials running on the parallel
// trial runner (and shards inside a trial) all fold into one breakdown.
//
// Cost model: everything is gated on one cached bool read from the
// DIGS_PROF environment variable at first use. When off (the default), the
// instrumentation sites reduce to a predictable not-taken branch — no clock
// calls, no atomic traffic — and simulation *results* are unaffected either
// way (the profiler only ever measures time). The acceptance contract is
// pinned by tests/prof_test.cc: results are bit-identical with the profiler
// on and off, and the phase totals cover the slot-loop wall time.
#pragma once

#include <cstdint>
#include <string>

namespace digs::prof {

/// Slot-loop phases, in pipeline order. kSlotTotal is the whole slot body
/// (the denominator the phases are checked against), not a summed phase.
/// kBarrierWait/kWorkerIdle are *detail* phases: they overlap the wall
/// phases (a barrier wait happens inside kShardResolve/kDeliver/... on the
/// calling thread; worker idle overlaps whatever the caller is doing), so
/// they are excluded from summed_phase_ns() — the wall phases alone must
/// still cover kSlotTotal.
enum Phase : int {
  kWakePop = 0,     // wake-heap drain + participant/listener set build
  kPlanGather,      // settle + plan_slot over participants + attempt gather
  kBucketBuild,     // per-cell attempt bucket construction
  kBeginListener,   // candidate gather + RSS/mW accumulators (serial path)
  kDecode,          // per-candidate decode checks + draws (serial path)
  kShardResolve,    // sharded reception fan-out + slot-synchronous barrier
  kMergeCompact,    // listener-order compaction of per-shard results
  kAckResolve,      // ACK buckets + reverse-link resolution
  kDeliver,         // frame delivery + TX outcome reporting
  kEnergySettle,    // per-participant energy accounting + end_slot
  kWakeRefresh,     // post-slot wake recomputation + engine re-arm
  kBarrierWait,     // detail: caller waiting on the fork-join barrier
  kWorkerIdle,      // detail: pool workers out of tasks / between regions
  kSlotTotal,       // whole slot body (engine_tick / slot_tick), not summed
  kNumPhases,
};

/// True for the chained wall phases whose totals sum to kSlotTotal; false
/// for kSlotTotal itself and the overlapping detail phases.
[[nodiscard]] constexpr bool is_wall_phase(Phase phase) {
  return phase != kSlotTotal && phase != kBarrierWait && phase != kWorkerIdle;
}

/// Short stable key for each phase (JSON field names).
[[nodiscard]] const char* phase_name(Phase phase);

/// True when DIGS_PROF=1 was set at first call (cached). Hot paths should
/// read it once per scope into a local bool.
[[nodiscard]] bool enabled();

/// Test hook: overrides the cached DIGS_PROF decision.
void force_enabled(bool on);

/// Monotonic timestamp in ns (only meaningful for differences).
[[nodiscard]] std::uint64_t now_ns();

/// Adds `ns` to `phase` and bumps its call count. Thread-safe (relaxed
/// atomics; counters are totals, no ordering needed).
void add(Phase phase, std::uint64_t ns);

/// Chained phase boundary: charges [mark, now) to `phase` and returns now,
/// so consecutive phases share one clock read and leave no gap between
/// them (what keeps the phase sum tight against the slot total).
[[nodiscard]] inline std::uint64_t lap(Phase phase, std::uint64_t mark) {
  const std::uint64_t now = now_ns();
  add(phase, now - mark);
  return now;
}

[[nodiscard]] std::uint64_t total_ns(Phase phase);
[[nodiscard]] std::uint64_t calls(Phase phase);

/// Sum of the wall phases (everything except kSlotTotal and the
/// overlapping kBarrierWait/kWorkerIdle detail phases).
[[nodiscard]] std::uint64_t summed_phase_ns();

/// Zeroes every counter (benches call this to scope a breakdown to one run).
void reset();

/// JSON object literal for bench output: {"enabled": ..., "phases": {...}}.
/// When disabled, the phases map is present but all-zero.
[[nodiscard]] std::string json();

/// RAII phase timer: no-ops (no clock call) unless constructed enabled.
class ScopedTimer {
 public:
  ScopedTimer(Phase phase, bool on) : phase_(phase), on_(on) {
    if (on_) start_ = now_ns();
  }
  ~ScopedTimer() {
    if (on_) add(phase_, now_ns() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Phase phase_;
  bool on_;
  std::uint64_t start_{0};
};

}  // namespace digs::prof
