#include "common/rng.h"

namespace digs {

double hashed_normal(std::uint64_t h) {
  // Two independent 53-bit uniforms from successive splitmix64 steps, then
  // Box-Muller. Quality is ample for dB-scale fading.
  const std::uint64_t a = splitmix64(h);
  const std::uint64_t b = splitmix64(a);
  double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  if (u1 <= 1e-300) u1 = 1e-300;
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double inverse_normal_cdf(double p) {
  // Acklam's rational approximation. Central region is a pure polynomial
  // ratio; only the ~4.85% tail mass pays a log + sqrt.
  constexpr double a[6] = {-3.969683028665376e+01, 2.209460984245205e+02,
                           -2.759285104469687e+02, 1.383577518672690e+02,
                           -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[5] = {-5.447609879822406e+01, 1.615858368580409e+02,
                           -1.556989798598866e+02, 6.680131188771972e+01,
                           -1.328068155288572e+01};
  constexpr double c[6] = {-7.784894002430293e-03, -3.223964580411365e-01,
                           -2.400758277161838e+00, -2.549732539343734e+00,
                           4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[4] = {7.784695709041462e-03, 3.224671290700398e-01,
                           2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kPLow = 0.02425;
  if (p < 1e-300) p = 1e-300;  // p == 0 would yield NaN through the tail fit
  if (p > 1.0 - 1e-16) p = 1.0 - 1e-16;
  if (p < kPLow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - kPLow) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace digs
