#include "common/rng.h"

namespace digs {

double hashed_normal(std::uint64_t h) {
  // Two independent 53-bit uniforms from successive splitmix64 steps, then
  // Box-Muller. Quality is ample for dB-scale fading.
  const std::uint64_t a = splitmix64(h);
  const std::uint64_t b = splitmix64(a);
  double u1 = static_cast<double>(a >> 11) * 0x1.0p-53;
  const double u2 = static_cast<double>(b >> 11) * 0x1.0p-53;
  if (u1 <= 1e-300) u1 = 1e-300;
  constexpr double kTwoPi = 6.283185307179586;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

}  // namespace digs
