// Deterministic random number generation.
//
// Every stochastic component of the simulator owns an Rng seeded from the
// experiment seed and a purpose tag, so a run is a pure function of
// (seed, config). The generator is xoshiro256** seeded via splitmix64 —
// fast, high-quality, and reproducible across platforms (unlike libstdc++
// distributions, whose output is implementation-defined; we implement our
// own transforms).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

namespace digs {

/// splitmix64 step, used for seeding and for stateless per-entity hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Mixes several values into one 64-bit hash. Used for deterministic
/// per-(link, channel, slot) fading draws without storing state.
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a) {
  return splitmix64(a);
}

/// hash_mix(a, rest...) with the `rest...` suffix already mixed: when
/// `tail == hash_mix(rest...)`, this returns exactly hash_mix(a, rest...).
/// Lets per-pair loops hoist a loop-invariant suffix (e.g. the fading
/// (tag, channel, block) triple) down to a single splitmix64 per element.
[[nodiscard]] constexpr std::uint64_t hash_mix_tail(std::uint64_t a,
                                                    std::uint64_t tail) {
  return splitmix64(a ^ (tail * 0x9e3779b97f4a7c15ULL));
}

template <typename... Rest>
[[nodiscard]] constexpr std::uint64_t hash_mix(std::uint64_t a, Rest... rest) {
  return hash_mix_tail(a, hash_mix(static_cast<std::uint64_t>(rest)...));
}

/// Deterministic xoshiro256** PRNG with distribution helpers.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) {
    std::uint64_t s = seed;
    for (auto& word : state_) {
      s = splitmix64(s);
      word = s;
    }
  }

  /// Derives a child generator; `purpose` decorrelates streams that share a
  /// root seed (e.g. "fading", "traffic", "jammer").
  [[nodiscard]] Rng fork(std::string_view purpose) const {
    std::uint64_t h = state_[0] ^ (state_[3] << 1);
    for (char c : purpose) h = splitmix64(h ^ static_cast<std::uint8_t>(c));
    return Rng{h};
  }
  [[nodiscard]] Rng fork(std::uint64_t tag) const {
    return Rng{splitmix64(state_[0] ^ splitmix64(tag))};
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto l = static_cast<std::uint64_t>(m);
    if (l < n) {
      const std::uint64_t t = (0 - n) % n;
      while (l < t) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, throughput is irrelevant here).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  }

  double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with the given mean.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 1e-300) u = uniform();
    return -mean * std::log(u);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stateless standard-normal sample derived from a hash; used for per-slot
/// fading so the channel needs no per-link temporal state.
[[nodiscard]] double hashed_normal(std::uint64_t h);

/// Stateless uniform in [0, 1) derived from a hash. Used for per-(slot,
/// listener, sender) reception draws: keying each Bernoulli draw by its pair
/// makes the draw independent of visit order, so a resolver may skip
/// provably-impossible pairs without shifting any other draw.
[[nodiscard]] inline double hashed_uniform(std::uint64_t h) {
  return static_cast<double>(splitmix64(h) >> 11) * 0x1.0p-53;
}

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.2e-9 — far below the resolution of any simulated
/// physical effect). ~4x faster than a Box-Muller draw: the central 95% of
/// inputs needs no transcendental call at all.
[[nodiscard]] double inverse_normal_cdf(double p);

/// Stateless standard-normal sample from a hash via one uniform and
/// inverse_normal_cdf(). Used on the per-slot fading path, where the draw
/// count scales with listeners x transmitters; hashed_normal() (Box-Muller)
/// remains for the one-time static draws.
[[nodiscard]] inline double hashed_normal_fast(std::uint64_t h) {
  return inverse_normal_cdf(hashed_uniform(h));
}

}  // namespace digs
