#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace digs {

void Summary::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Summary::merge(const Summary& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  mean_ += delta * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Cdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Cdf::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  const double idx = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Cdf::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double Cdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double Cdf::fraction_above(double threshold) const {
  return samples_.empty() ? 0.0 : 1.0 - at(threshold);
}

BoxplotRow Cdf::boxplot() const {
  BoxplotRow row;
  row.min = percentile(0);
  row.q1 = percentile(25);
  row.median = percentile(50);
  row.q3 = percentile(75);
  row.max = percentile(100);
  row.n = samples_.size();
  return row;
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points < 2) return out;
  ensure_sorted();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(percentile(p), p / 100.0);
  }
  return out;
}

std::string format_cdf(const Cdf& cdf, std::string_view label,
                       std::string_view unit, std::size_t points) {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  CDF of %.*s (n=%zu):\n",
                static_cast<int>(label.size()), label.data(), cdf.count());
  out += buf;
  for (const auto& [value, frac] : cdf.curve(points)) {
    std::snprintf(buf, sizeof(buf), "    p%-5.1f %10.3f %.*s\n", frac * 100.0,
                  value, static_cast<int>(unit.size()), unit.data());
    out += buf;
  }
  return out;
}

std::string format_boxplot(const BoxplotRow& row, std::string_view label) {
  char buf[200];
  std::snprintf(buf, sizeof(buf),
                "  %-24.*s min=%8.3f q1=%8.3f med=%8.3f q3=%8.3f max=%8.3f "
                "(n=%zu)\n",
                static_cast<int>(label.size()), label.data(), row.min, row.q1,
                row.median, row.q3, row.max, row.n);
  return std::string{buf};
}

}  // namespace digs
