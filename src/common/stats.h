// Descriptive statistics used by the evaluation harness: running summaries,
// empirical CDFs / percentiles, and five-number boxplot summaries matching
// the figures in the paper.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace digs {

/// Streaming summary: count / mean / variance via Welford, min / max.
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another summary into this one.
  void merge(const Summary& other);

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Five-number summary used for boxplots (Figs. 5, 9(c), 9(d), 11(a)).
struct BoxplotRow {
  double min{0};
  double q1{0};
  double median{0};
  double q3{0};
  double max{0};
  std::size_t n{0};
};

/// Collected samples with percentile / CDF queries. Samples are stored and
/// sorted lazily on first query.
class Cdf {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void add_all(const std::vector<double>& xs);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Percentile in [0, 100] by linear interpolation between order statistics.
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }
  [[nodiscard]] double min() const { return percentile(0.0); }
  [[nodiscard]] double max() const { return percentile(100.0); }
  [[nodiscard]] double mean() const;

  /// Empirical CDF value P(X <= x).
  [[nodiscard]] double at(double x) const;

  /// Fraction of samples strictly above the threshold.
  [[nodiscard]] double fraction_above(double threshold) const;

  [[nodiscard]] BoxplotRow boxplot() const;

  /// Evenly spaced (value, cumulative fraction) pairs suitable for plotting;
  /// `points` rows spanning the sample range.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(
      std::size_t points = 20) const;

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_{true};
};

/// Renders a CDF as aligned text rows "value  fraction" for bench output.
[[nodiscard]] std::string format_cdf(const Cdf& cdf, std::string_view label,
                                     std::string_view unit,
                                     std::size_t points = 11);

/// Renders a boxplot row as one line of text.
[[nodiscard]] std::string format_boxplot(const BoxplotRow& row,
                                         std::string_view label);

}  // namespace digs
