// Simulated time.
//
// SimTime is an absolute point on the simulation clock; SimDuration a signed
// span. Both count microseconds in int64, which covers ~292k years — far
// beyond any experiment. TSCH slots are 10 ms (paper Section III).
#pragma once

#include <compare>
#include <cstdint>

namespace digs {

/// A signed span of simulated time, in microseconds.
struct SimDuration {
  std::int64_t us{0};

  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t microseconds)
      : us(microseconds) {}

  [[nodiscard]] constexpr double seconds() const { return us * 1e-6; }
  [[nodiscard]] constexpr double millis() const { return us * 1e-3; }

  friend constexpr bool operator==(SimDuration, SimDuration) = default;
  friend constexpr auto operator<=>(SimDuration, SimDuration) = default;
  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration{a.us + b.us};
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration{a.us - b.us};
  }
  friend constexpr SimDuration operator*(SimDuration a, std::int64_t k) {
    return SimDuration{a.us * k};
  }
  friend constexpr SimDuration operator*(std::int64_t k, SimDuration a) {
    return SimDuration{a.us * k};
  }
  friend constexpr std::int64_t operator/(SimDuration a, SimDuration b) {
    return a.us / b.us;
  }
};

/// An absolute point on the simulation clock, in microseconds since start.
struct SimTime {
  std::int64_t us{0};

  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t microseconds) : us(microseconds) {}

  [[nodiscard]] constexpr double seconds() const { return us * 1e-6; }
  [[nodiscard]] constexpr double millis() const { return us * 1e-3; }

  friend constexpr bool operator==(SimTime, SimTime) = default;
  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime{t.us + d.us};
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime{t.us - d.us};
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration{a.us - b.us};
  }
};

constexpr SimDuration microseconds(std::int64_t n) { return SimDuration{n}; }
constexpr SimDuration milliseconds(std::int64_t n) {
  return SimDuration{n * 1000};
}
constexpr SimDuration seconds(std::int64_t n) {
  return SimDuration{n * 1'000'000};
}
constexpr SimDuration seconds(double s) {
  return SimDuration{static_cast<std::int64_t>(s * 1e6)};
}
constexpr SimDuration minutes(std::int64_t n) {
  return SimDuration{n * 60'000'000};
}

/// Duration of one TSCH time slot (IEEE 802.15.4e / WirelessHART: 10 ms).
inline constexpr SimDuration kSlotDuration = milliseconds(10);

}  // namespace digs
