// Strong identifier types shared across the stack.
//
// NodeId identifies an access point or field device. Access points occupy the
// lowest ids (by convention ids [0, num_access_points)), matching the paper's
// scheduling formula s = A*(NodeID - N_AP) - A + p which assumes field-device
// ids start right after the access points.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace digs {

/// Identifier of a network device (access point or field device).
/// Jammers/interferers are PHY-level entities and do not get NodeIds.
struct NodeId {
  std::uint16_t value{kInvalid};

  static constexpr std::uint16_t kInvalid =
      std::numeric_limits<std::uint16_t>::max();

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint16_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }

  friend constexpr bool operator==(NodeId a, NodeId b) = default;
  friend constexpr auto operator<=>(NodeId a, NodeId b) = default;
};

/// An invalid (unset) node id.
inline constexpr NodeId kNoNode{};

/// IEEE 802.15.4 channel index within the hopping sequence, range [0, 16).
using ChannelOffset = std::uint8_t;

/// Physical 802.15.4 channel (11..26 in the 2.4 GHz band); we index 0..15.
using PhysicalChannel = std::uint8_t;

/// Number of 2.4 GHz IEEE 802.15.4 channels used for hopping.
inline constexpr int kNumChannels = 16;

/// Rank advertised by nodes with no route (RPL INFINITE_RANK analogue).
inline constexpr std::uint16_t kInfiniteRank = 0xffff;

/// Why a data packet was abandoned before delivery. Threaded from the drop
/// site (MAC queue, forwarding path, or failure injection) into the flow
/// statistics so recovery experiments can attribute losses — in particular
/// packets blackholed by stale routes after a fault.
enum class DropReason : std::uint8_t {
  kQueueOverflow,      // MAC application queue was full
  kAttemptsExhausted,  // retransmission budget spent
  kHopLimit,           // exceeded max_hops (routing-loop protection)
  kNoRoute,            // no usable route at an access point / gateway
  kStaleRoute,         // descended into a stale branch and had to be cut
  kSourceDead,         // generated at a powered-off source
  kPowerLoss,          // queued at a node when its power was cut
  kDuplicate,          // replicated tunnel copy suppressed by the seen-set
  kOther,
};
inline constexpr std::size_t kNumDropReasons =
    static_cast<std::size_t>(DropReason::kOther) + 1;

[[nodiscard]] constexpr const char* to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kQueueOverflow: return "queue_overflow";
    case DropReason::kAttemptsExhausted: return "attempts_exhausted";
    case DropReason::kHopLimit: return "hop_limit";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kStaleRoute: return "stale_route";
    case DropReason::kSourceDead: return "source_dead";
    case DropReason::kPowerLoss: return "power_loss";
    case DropReason::kDuplicate: return "duplicate";
    case DropReason::kOther: return "other";
  }
  return "?";
}

/// Identifier of an end-to-end data flow.
struct FlowId {
  std::uint16_t value{std::numeric_limits<std::uint16_t>::max()};

  constexpr FlowId() = default;
  constexpr explicit FlowId(std::uint16_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const {
    return value != std::numeric_limits<std::uint16_t>::max();
  }

  friend constexpr bool operator==(FlowId a, FlowId b) = default;
  friend constexpr auto operator<=>(FlowId a, FlowId b) = default;
};

}  // namespace digs

template <>
struct std::hash<digs::NodeId> {
  std::size_t operator()(digs::NodeId id) const noexcept {
    return std::hash<std::uint16_t>{}(id.value);
  }
};

template <>
struct std::hash<digs::FlowId> {
  std::size_t operator()(digs::FlowId id) const noexcept {
    return std::hash<std::uint16_t>{}(id.value);
  }
};
