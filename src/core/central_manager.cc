#include "core/central_manager.h"

#include <vector>

#include "core/network.h"
#include "net/etx.h"
#include "routing/centralized_routing.h"

namespace digs {

CentralManager::CentralManager(Network& network,
                               const CentralManagerConfig& config)
    : network_(network),
      config_(config),
      model_(ManagerReactionModel::fit(ManagerReactionModel::paper_anchors())) {}

void CentralManager::start() {
  pending_ = network_.sim().schedule_after(
      config_.initial_install_after, [this] { recompute_and_install(); });
}

SimDuration CentralManager::reaction_time() const {
  // Depth from the last computed routes would be circular; estimate from
  // the alive node count with the mean depth of the calibration anchors
  // (~2.2 hops/device), matching how the Fig. 3 bench reports it.
  int alive = 0;
  for (std::uint16_t i = 0; i < network_.size(); ++i) {
    if (network_.node(NodeId{i}).alive()) ++alive;
  }
  const int depth = static_cast<int>(2.2 * alive);
  return SimDuration{static_cast<std::int64_t>(
      model_.predict(alive, depth).total_s() * 1e6)};
}

void CentralManager::notify_dynamics() {
  if (pending_.pending()) return;  // coalesce into the in-flight update
  SimDuration delay = config_.detection_delay;
  if (config_.model_reaction_time) delay = delay + reaction_time();
  pending_ = network_.sim().schedule_after(
      delay, [this] { recompute_and_install(); });
}

void CentralManager::recompute_and_install() {
  const SimTime now = network_.sim().now();
  const std::uint16_t n = static_cast<std::uint16_t>(network_.size());
  const std::uint16_t aps = network_.config().num_access_points;

  // Global topology snapshot over alive nodes (the manager has collected
  // health/topology reports; the reaction-time model already charged the
  // time that takes).
  TopologySnapshot topo;
  topo.num_nodes = n;
  topo.num_access_points = aps;
  topo.etx.assign(n, std::vector<double>(n, TopologySnapshot::kNoLink));
  for (std::uint16_t a = 0; a < n; ++a) {
    if (!network_.node(NodeId{a}).alive()) continue;
    for (std::uint16_t b = static_cast<std::uint16_t>(a + 1); b < n; ++b) {
      if (!network_.node(NodeId{b}).alive()) continue;
      const double rss =
          network_.medium().mean_rss_dbm(NodeId{a}, NodeId{b}, 8,
                                         network_.config().node.mac.tx_power_dbm);
      if (rss < config_.min_rss_dbm) continue;
      const double etx = etx_from_rss(rss);
      topo.etx[a][b] = etx;
      topo.etx[b][a] = etx;
    }
  }
  const GraphRoutingResult routes = compute_graph_routes(topo);

  // Child tables are the inverse of the parent assignments.
  std::vector<std::vector<ChildEntry>> children(n);
  for (std::uint16_t v = aps; v < n; ++v) {
    const GraphRoute& route = routes.routes[v];
    if (route.best_parent.valid()) {
      children[route.best_parent.value].push_back(
          ChildEntry{NodeId{v}, true, now});
    }
    if (route.second_best_parent.valid()) {
      children[route.second_best_parent.value].push_back(
          ChildEntry{NodeId{v}, false, now});
    }
  }

  for (std::uint16_t v = 0; v < n; ++v) {
    if (!network_.node(NodeId{v}).alive()) continue;
    auto* routing = dynamic_cast<CentralizedRouting*>(
        &network_.node(NodeId{v}).routing());
    if (routing == nullptr) continue;
    const GraphRoute& route = routes.routes[v];
    routing->set_assignment(
        route.best_parent, route.second_best_parent,
        static_cast<std::uint16_t>(v < aps ? kAccessPointRank
                                           : route.depth + 1),
        std::move(children[v]), now);
  }
  ++installs_;
  last_install_ = now;
}

}  // namespace digs
