// The centralized WirelessHART Network Manager running live against a
// Network: it computes graph routes globally (src/manager) and installs
// them on the devices — but only after the reaction time the paper's Fig. 3
// measures (collect + compute + disseminate, here taken from the fitted
// ManagerReactionModel). Between a dynamic event and the install, devices
// operate on stale routes; that window is what DiGS eliminates.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "manager/graph_router.h"
#include "manager/manager_model.h"
#include "sim/simulator.h"

namespace digs {

class Network;

struct CentralManagerConfig {
  /// Initial provisioning delay after network start: the first route
  /// installation (commissioning is not the reaction path under study).
  SimDuration initial_install_after = seconds(static_cast<std::int64_t>(60));
  /// Delay until the manager learns of a dynamic event (path-failure
  /// alarms travel over the mesh).
  SimDuration detection_delay = seconds(static_cast<std::int64_t>(15));
  /// When true, the fitted Fig. 3 reaction time elapses between detection
  /// and installation of new routes; when false the manager reacts
  /// instantly (an idealized lower bound, useful for ablations).
  bool model_reaction_time = true;
  /// RSS floor for links the manager considers usable.
  double min_rss_dbm = -89.0;
};

class CentralManager {
 public:
  CentralManager(Network& network, const CentralManagerConfig& config);

  /// Schedules the initial route computation + installation.
  void start();

  /// A dynamic event occurred (node failure/restart). The manager reacts
  /// after detection + reaction time; overlapping events coalesce into the
  /// pending update.
  void notify_dynamics();

  /// Reaction time predicted for the current network (Fig. 3 model).
  [[nodiscard]] SimDuration reaction_time() const;

  [[nodiscard]] std::uint64_t installs() const { return installs_; }
  [[nodiscard]] SimTime last_install() const { return last_install_; }

 private:
  /// Builds the alive-topology snapshot, computes routes, installs them.
  void recompute_and_install();

  Network& network_;
  CentralManagerConfig config_;
  ManagerReactionModel model_;
  EventHandle pending_;
  std::uint64_t installs_{0};
  SimTime last_install_{-1};
};

}  // namespace digs
