#include "core/fault_script.h"

#include "core/network.h"
#include "phy/jammer.h"
#include "phy/reactive_jammer.h"

namespace digs {

std::vector<SimDuration> FaultScript::disturbance_offsets() const {
  std::vector<SimDuration> out;
  for (const FaultEvent& e : events_) {
    if (e.kind != FaultEvent::Kind::kRecover) out.push_back(e.at);
  }
  return out;
}

void FaultScript::install(Network& net) const {
  for (const FaultEvent& event : events_) {
    switch (event.kind) {
      case FaultEvent::Kind::kCrash:
        net.sim().schedule_after(event.at, [&net, node = event.node] {
          net.set_node_alive(node, false);
        });
        break;
      case FaultEvent::Kind::kRecover:
        net.sim().schedule_after(event.at, [&net, node = event.node] {
          net.set_node_alive(node, true);
        });
        break;
      case FaultEvent::Kind::kBlackout:
        net.sim().schedule_after(
            event.at, [&net, a = event.link_a, b = event.link_b] {
              net.medium().set_link_blackout(a, b, true);
            });
        net.sim().schedule_after(
            event.at + event.duration,
            [&net, a = event.link_a, b = event.link_b] {
              net.medium().set_link_blackout(a, b, false);
            });
        break;
      case FaultEvent::Kind::kClockJump:
        net.sim().schedule_after(
            event.at, [&net, node = event.node, off = event.clock_offset_us] {
              net.inject_clock_jump(node, off);
            });
        break;
      case FaultEvent::Kind::kBurst: {
        JammerConfig jam;
        jam.position = event.position;
        jam.tx_power_dbm = event.power_dbm;
        jam.pattern = JammerPattern::kConstant;
        jam.start = net.sim().now() + event.at;
        jam.on_duration = event.duration;
        // One-shot: park the off-phase far beyond any experiment horizon.
        jam.off_duration = seconds(static_cast<std::int64_t>(1) << 40);
        net.add_jammer(jam);
        break;
      }
      case FaultEvent::Kind::kReactiveJammer: {
        ReactiveJammerConfig jam;
        jam.position = event.position;
        jam.tx_power_dbm = event.power_dbm;
        jam.top_k = event.jam_top_k;
        jam.sniff_threshold_dbm = event.sniff_dbm;
        jam.period_slots = event.period_slots;
        jam.epoch_slots = event.epoch_slots;
        jam.start = net.sim().now() + event.at;
        net.add_reactive_jammer(jam);
        break;
      }
    }
  }
}

}  // namespace digs
