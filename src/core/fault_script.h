// Declarative fault timeline for robustness experiments: node crashes AND
// recoveries, transient link blackouts (a pair's PRR forced to zero for a
// window), access-point failover (crash an AP; traffic re-homes to the
// survivor through the same crash/recover events), and burst-interference
// windows. A script is built fluently, stored in an ExperimentConfig, and
// installed onto a running Network, where each event becomes a simulator
// event at its offset. All offsets are relative to install time (the
// experiment runner installs at warmup end, matching the paper's
// disturbance-after-convergence methodology).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

class Network;

struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,     // node loses power (cold restart on recovery)
    kRecover,   // node powers back up, rejoins from scratch
    kBlackout,   // link (a, b) receives nothing for `duration`
    kBurst,      // constant interferer at `position` for `duration`
    kClockJump,  // node's clock steps by `clock_offset_us` instantly
    kReactiveJammer,  // learning jammer at `position` from `at` onwards
  };
  Kind kind;
  SimDuration at{};  // offset from install()
  NodeId node;       // kCrash / kRecover / kClockJump
  NodeId link_a;     // kBlackout endpoints
  NodeId link_b;
  SimDuration duration{};      // kBlackout / kBurst window length
  Position position;           // kBurst / kReactiveJammer location
  double power_dbm{10.0};      // kBurst / kReactiveJammer TX power
  double clock_offset_us{0.0};  // kClockJump step size (signed)
  // kReactiveJammer shape (see ReactiveJammerConfig for semantics).
  std::uint32_t jam_top_k{423};
  double sniff_dbm{-90.0};
  std::uint32_t period_slots{151};
  std::uint32_t epoch_slots{1510};
};

class FaultScript {
 public:
  FaultScript& crash(SimDuration at, NodeId node) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kCrash;
    e.at = at;
    e.node = node;
    events_.push_back(e);
    return *this;
  }

  FaultScript& recover(SimDuration at, NodeId node) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kRecover;
    e.at = at;
    e.node = node;
    events_.push_back(e);
    return *this;
  }

  /// `cycles` crash/recover pairs: crash at `first_crash`, recover after
  /// `downtime`, next crash after a further `uptime`, and so on.
  FaultScript& crash_cycle(SimDuration first_crash, NodeId node,
                           SimDuration downtime, SimDuration uptime,
                           int cycles) {
    SimDuration t = first_crash;
    for (int i = 0; i < cycles; ++i) {
      crash(t, node);
      recover(t + downtime, node);
      t = t + downtime + uptime;
    }
    return *this;
  }

  /// Forces the (a, b) link PRR to zero in both directions for `duration`.
  FaultScript& blackout(SimDuration at, NodeId a, NodeId b,
                        SimDuration duration) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kBlackout;
    e.at = at;
    e.link_a = a;
    e.link_b = b;
    e.duration = duration;
    events_.push_back(e);
    return *this;
  }

  /// Steps `node`'s clock by `offset_us` microseconds at `at` (brown-out
  /// or oscillator glitch). The node keeps running; whether it recovers
  /// via its next time-source correction or desyncs past the guard is the
  /// behaviour under test.
  FaultScript& clock_jump(SimDuration at, NodeId node, double offset_us) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kClockJump;
    e.at = at;
    e.node = node;
    e.clock_offset_us = offset_us;
    events_.push_back(e);
    return *this;
  }

  /// Constant carrier at `where` for `duration` (JamLab-style burst).
  FaultScript& burst(SimDuration at, Position where, double power_dbm,
                     SimDuration duration) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kBurst;
    e.at = at;
    e.duration = duration;
    e.position = where;
    e.power_dbm = power_dbm;
    events_.push_back(e);
    return *this;
  }

  /// Reactive jammer at `where` switched on at `at`: sniffs per-(slot,
  /// channel-offset) activity over `epoch_slots`-slot epochs and jams the
  /// `top_k` hottest cells of each following epoch (ReactiveJammer).
  FaultScript& reactive_jammer(SimDuration at, Position where,
                               double power_dbm, std::uint32_t top_k = 423,
                               double sniff_dbm = -90.0,
                               std::uint32_t period_slots = 151,
                               std::uint32_t epoch_slots = 1510) {
    FaultEvent e;
    e.kind = FaultEvent::Kind::kReactiveJammer;
    e.at = at;
    e.position = where;
    e.power_dbm = power_dbm;
    e.jam_top_k = top_k;
    e.sniff_dbm = sniff_dbm;
    e.period_slots = period_slots;
    e.epoch_slots = epoch_slots;
    events_.push_back(e);
    return *this;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

  /// Offsets at which something starts going wrong (crashes, blackout and
  /// burst starts — not recoveries). Repair-time measurement anchors here.
  [[nodiscard]] std::vector<SimDuration> disturbance_offsets() const;

  /// Schedules every event on the network's simulator, offsets relative to
  /// the current simulated time. Burst events register their jammer
  /// immediately (jammers are stateless; the macro on/off window gates
  /// them), everything else becomes a timed simulator event.
  void install(Network& net) const;

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace digs
