#include "core/invariant_monitor.h"

#include <algorithm>
#include <cmath>

#include "core/network.h"
#include "routing/digs_routing.h"
#include "sched/conflict_analysis.h"

namespace digs {

NetworkInvariantMonitor::NetworkInvariantMonitor(Network& net)
    : net_(net), sweep_(net.sim(), kSweepPeriod, [this] {
        audit_network(net_.sim().now());
      }) {}

void NetworkInvariantMonitor::start() { sweep_.start(); }

std::size_t NetworkInvariantMonitor::count(InvariantKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(violations_.begin(), violations_.end(),
                    [&](const InvariantViolation& v) { return v.kind == kind; }));
}

void NetworkInvariantMonitor::record(InvariantKind kind, NodeId node,
                                     NodeId other, SimTime now) {
  if (!recorded_.insert(key(kind, node, other)).second) return;
  InvariantViolation v;
  v.kind = kind;
  v.node = node;
  v.other = other;
  v.asn = net_.current_asn();
  v.at = now;
  violations_.push_back(v);
}

void NetworkInvariantMonitor::on_topology_changed(NodeId node, SimTime now) {
  audit_node(node.value, now);
}

void NetworkInvariantMonitor::audit_network(SimTime now) {
  for (std::size_t i = 0; i < net_.size(); ++i) audit_node(i, now);
  audit_uplink_slot_uniqueness(now);
  audit_tunnels(now);
}

void NetworkInvariantMonitor::on_swap_epoch(SimTime now) {
  ++swap_epoch_audits_;
  const std::size_t before = violations_.size();
  audit_network(now);
  // Attribute only schedule conflicts to the swap: the permutation touches
  // nothing but slot offsets, so a routing-side violation surfacing here is
  // a graced suspicion whose maturation merely coincided with this audit
  // (the 5 s sweep would have recorded it moments later anyway).
  for (std::size_t i = before; i < violations_.size(); ++i) {
    if (violations_[i].kind == InvariantKind::kScheduleConflict ||
        violations_[i].kind == InvariantKind::kTunnelConflict) {
      ++violations_at_swap_epochs_;
    }
  }
}

void NetworkInvariantMonitor::audit_node(std::size_t i, SimTime now) {
  const NodeId id{static_cast<std::uint16_t>(i)};
  graced_scratch_.clear();
  immediate_scratch_.clear();
  if (net_.node(id).alive()) {
    collect_rank_and_cycle(i, graced_scratch_);
    collect_staleness(i, now, graced_scratch_, immediate_scratch_);
    collect_schedule_conflicts(i, immediate_scratch_);
    collect_sync_drift(i, now, graced_scratch_);
  }
  // A suspicion for this node that is no longer observed is a transient
  // that resolved itself: forget it so a later recurrence restarts its
  // grace clock from scratch.
  std::erase_if(suspects_, [&](const auto& entry) {
    if (key_node(entry.first) != id) return false;
    return std::none_of(
        graced_scratch_.begin(), graced_scratch_.end(),
        [&](const GracedCondition& c) { return c.key == entry.first; });
  });
  for (const GracedCondition& c : graced_scratch_) {
    const auto [it, inserted] = suspects_.try_emplace(c.key, now);
    if (!inserted && now - it->second >= c.grace) {
      record(static_cast<InvariantKind>(c.key >> 32), id,
             NodeId{static_cast<std::uint16_t>(c.key & 0xFFFF)}, now);
    }
  }
  for (const std::uint64_t k : immediate_scratch_) {
    record(static_cast<InvariantKind>(k >> 32), id,
           NodeId{static_cast<std::uint16_t>(k & 0xFFFF)}, now);
  }
}

void NetworkInvariantMonitor::collect_rank_and_cycle(
    std::size_t i, std::vector<GracedCondition>& graced) const {
  const NodeId id{static_cast<std::uint16_t>(i)};
  const Node& node = net_.node(id);
  const RoutingProtocol& routing = node.routing();
  const std::uint16_t rank = routing.rank();
  if (node.is_access_point() || rank == kInfiniteRank) return;

  for (const NodeId parent :
       {routing.best_parent(), routing.second_best_parent()}) {
    if (!parent.valid() || parent.value >= net_.size()) continue;
    // A dead parent has no rank: failure detection is traffic-driven by
    // design (a silent backup parent's death is only noticed when attempts
    // fall through to it), so holding one is measured by the recovery
    // metrics, not flagged as a graph inconsistency.
    if (!net_.node(parent).alive()) continue;
    // Ground truth, not the node's (possibly outdated) neighbor-table view:
    // the monitor asks whether the route is CURRENTLY consistent, and the
    // grace period absorbs the propagation delay of rank changes.
    const std::uint16_t parent_rank = net_.node(parent).routing().rank();
    if (parent_rank >= rank) {
      graced.push_back({key(InvariantKind::kRankRule, id, parent),
                        kTransientGrace});
    }
  }

  // Follow the best-parent chain; returning to the start is a routing loop.
  NodeId cur = routing.best_parent();
  for (std::size_t steps = 0; steps < net_.size() && cur.valid(); ++steps) {
    if (cur == id) {
      graced.push_back(
          {key(InvariantKind::kParentCycle, id, kNoNode), kTransientGrace});
      break;
    }
    if (cur.value >= net_.size() || net_.node(cur).is_access_point()) break;
    cur = net_.node(cur).routing().best_parent();
  }
}

void NetworkInvariantMonitor::collect_staleness(
    std::size_t i, SimTime now, std::vector<GracedCondition>& graced,
    std::vector<std::uint64_t>& immediate) const {
  const NodeId id{static_cast<std::uint16_t>(i)};
  const Node& node = net_.node(id);
  const ProtocolSuite suite = net_.config().suite;
  // The WirelessHART manager owns the child tables (installed, not
  // refreshed); timeout semantics do not apply.
  if (suite == ProtocolSuite::kWirelessHart) return;

  const NodeConfig& cfg = net_.config().node;
  const SimDuration child_timeout = suite == ProtocolSuite::kDigs
                                        ? cfg.digs_routing.child_timeout
                                        : cfg.rpl_routing.child_timeout;
  for (const ChildEntry& child : node.routing().children()) {
    if (now - child.last_refresh > child_timeout + kPruneGrace) {
      immediate.push_back(key(InvariantKind::kStaleChild, id, child.id));
    }
  }

  const auto* routing = dynamic_cast<const DigsRouting*>(&node.routing());
  if (routing == nullptr || !routing->config().enable_downlink) return;
  const SimDuration descendant_timeout =
      routing->config().descendant_timeout;
  const std::span<const ChildEntry> children = node.routing().children();
  for (const DigsRouting::DescendantView& d : routing->descendant_entries()) {
    if (now - d.refreshed > descendant_timeout + kPruneGrace) {
      immediate.push_back(key(InvariantKind::kStaleDescendant, id, d.dest));
      continue;
    }
    const bool via_is_child =
        std::any_of(children.begin(), children.end(),
                    [&](const ChildEntry& c) { return c.id == d.via; });
    if (!via_is_child) {
      // The prune timer drops routes whose via-child left within one
      // period; persisting longer than that means the eviction is broken.
      graced.push_back(
          {key(InvariantKind::kStaleDescendant, id, d.dest), kPruneGrace});
    }
  }
}

void NetworkInvariantMonitor::collect_schedule_conflicts(
    std::size_t i, std::vector<std::uint64_t>& immediate) const {
  const NodeId id{static_cast<std::uint16_t>(i)};
  const Schedule& schedule = net_.node(id).mac().schedule();
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const Slotframe* frame =
        schedule.slotframe(static_cast<TrafficClass>(t));
    if (frame == nullptr) continue;
    const std::vector<Cell>& cells = frame->cells;
    for (std::size_t a = 0; a < cells.size(); ++a) {
      if (cells[a].option != CellOption::kTx) continue;
      for (std::size_t b = a + 1; b < cells.size(); ++b) {
        if (cells[b].option != CellOption::kTx) continue;
        if (cells[a].slot_offset != cells[b].slot_offset) continue;
        // Uplink and downlink ladders legitimately overlap (the downlink
        // ladder is the uplink one shifted by half the frame, so some
        // pair of offsets coincides); the MAC deterministically picks one
        // cell per slot. A conflict is two same-direction dedicated TX
        // cells fighting for the slot towards DIFFERENT peers.
        if (cells[a].downlink != cells[b].downlink) continue;
        // Tunnel cells are exempt here: the primary- and backup-role
        // ladders are each Eq. 4-injective but not mutually so, so a parent
        // serving children in both roles may hold overlapping tunnel TX
        // offsets by construction (the MAC deterministically picks one, and
        // the invariant that matters — the two copies of one packet never
        // colliding — is audited per destination by audit_tunnels).
        if (cells[a].tunnel || cells[b].tunnel) continue;
        if (cells[a].peer == cells[b].peer) continue;
        immediate.push_back(
            key(InvariantKind::kScheduleConflict, id, cells[b].peer));
      }
    }
  }
}

void NetworkInvariantMonitor::collect_sync_drift(
    std::size_t i, SimTime now, std::vector<GracedCondition>& graced) const {
  const NodeId id{static_cast<std::uint16_t>(i)};
  const Node& node = net_.node(id);
  if (node.is_access_point() || !node.mac().synced()) return;

  // Drifting relative to an alive, synced time source while still holding
  // dedicated TX cells means the schedule promises airtime the node can no
  // longer hit: its frames arrive outside every receiver's guard window.
  // The keep-alive policy should correct the clock (or desync the node,
  // dropping its cells) long before this persists past the grace.
  const NodeId source = node.mac().time_source();
  if (!source.valid() || source.value >= net_.size()) return;
  const Node& src = net_.node(source);
  if (!src.alive() || !src.mac().synced()) return;
  if (!node.mac().clock_active() && !src.mac().clock_active()) return;

  const double offset_gap = std::fabs(node.mac().clock_offset_us(now) -
                                      src.mac().clock_offset_us(now));
  if (offset_gap <= static_cast<double>(SlotTiming::rx_guard().us)) return;

  bool holds_tx_cell = false;
  for (int t = 0; t < kNumTrafficClasses && !holds_tx_cell; ++t) {
    const Slotframe* frame =
        node.mac().schedule().slotframe(static_cast<TrafficClass>(t));
    if (frame == nullptr) continue;
    for (const Cell& cell : frame->cells) {
      if (cell.option == CellOption::kTx && cell.peer.valid()) {
        holds_tx_cell = true;
        break;
      }
    }
  }
  if (!holds_tx_cell) return;

  graced.push_back({key(InvariantKind::kSyncDrift, id, source),
                    kTransientGrace});
}

void NetworkInvariantMonitor::audit_uplink_slot_uniqueness(SimTime now) {
  const NetworkConfig& cfg = net_.config();
  // Only the DiGS cell layout (paper Eq. 4) promises cross-node uniqueness,
  // and only while the attempt ladder fits the slotframe without wrapping.
  if (cfg.suite == ProtocolSuite::kOrchestra) return;
  const SchedulerConfig& sched = cfg.node.scheduler;
  const std::size_t field_devices = net_.size() - cfg.num_access_points;
  if (static_cast<std::size_t>(sched.attempts) * field_devices >=
      sched.app_slotframe_len) {
    return;
  }

  // slot offset -> first alive field device transmitting uplink there.
  std::vector<NodeId> owner(sched.app_slotframe_len, kNoNode);
  for (std::size_t i = cfg.num_access_points; i < net_.size(); ++i) {
    const NodeId id{static_cast<std::uint16_t>(i)};
    const Node& node = net_.node(id);
    if (!node.alive()) continue;
    const Slotframe* frame =
        node.mac().schedule().slotframe(TrafficClass::kApplication);
    if (frame == nullptr) continue;
    for (const Cell& cell : frame->cells) {
      if (cell.option != CellOption::kTx || cell.downlink) continue;
      if (cell.slot_offset >= owner.size()) continue;
      NodeId& slot_owner = owner[cell.slot_offset];
      if (!slot_owner.valid()) {
        slot_owner = id;
      } else if (slot_owner != id) {
        record(InvariantKind::kScheduleConflict, slot_owner, id, now);
      }
    }
  }
}

void NetworkInvariantMonitor::audit_tunnels(SimTime now) {
  const TunnelManager* tunnels = net_.tunnel_manager();
  if (tunnels == nullptr) return;
  const DigsScheduler sched(net_.config().node.scheduler);
  const std::uint16_t naps = net_.config().num_access_points;
  const std::vector<std::uint16_t>& perm = net_.app_slot_permutation();
  std::vector<std::uint8_t> seen(net_.size(), 0);
  for (const NodeId dest : tunnels->destinations()) {
    const TunnelPair* pair = tunnels->pair(dest);
    if (pair == nullptr || !pair->valid()) continue;
    // Loop-freedom: a source route visiting any node twice would orbit
    // until the hop limit (the climb's visited set makes this impossible;
    // the audit proves the stored state, not the construction).
    for (const TunnelPath* path : {&pair->primary, &pair->backup}) {
      if (!path->valid()) continue;
      std::fill(seen.begin(), seen.end(), 0);
      for (const NodeId hop : path->hops) {
        if (hop.value >= seen.size()) continue;
        if (seen[hop.value] != 0) {
          record(InvariantKind::kTunnelLoop, dest, hop, now);
        }
        seen[hop.value] = 1;
      }
    }
    // The disjointness flag must be honest: a pair advertised as
    // node-disjoint shares no interior node (endpoints exempt — the
    // destination is common by definition, and the ingress APs may be too).
    if (pair->disjoint) {
      for (std::size_t a = 1; a + 1 < pair->primary.hops.size(); ++a) {
        for (std::size_t b = 1; b + 1 < pair->backup.hops.size(); ++b) {
          if (pair->primary.hops[a] == pair->backup.hops[b]) {
            record(InvariantKind::kTunnelDisjoint, dest,
                   pair->primary.hops[a], now);
          }
        }
      }
    }
    // Eq. 4-style replication conflict-freedom, checked through the current
    // SlotSwapper permutation: the two copies of one packet never contest a
    // (slot, channel) from different links — in the permuted frame too.
    if (!tunnel_pair_conflict_free(*pair, sched, naps, perm)) {
      record(InvariantKind::kTunnelConflict, dest, kNoNode, now);
    }
  }
}

}  // namespace digs
