// Runtime network-invariant monitor: audits the routing graph and the
// installed TSCH schedules after every topology change and on a periodic
// sweep, recording violations instead of asserting — faults are injected on
// purpose, and the interesting question is whether the protocols converge
// back to a consistent state, not whether they pass through inconsistent
// ones (distance-vector routing legitimately does, briefly).
//
// Checks:
//   - Rank rule / DAG-ness: no node routes through an alive parent of equal
//     or higher rank, and following best parents never returns to the start.
//     Both are transiently violated during repair (a parent's rank can rise
//     before the child hears about it), so they only count as violations
//     when they PERSIST for kTransientGrace. Dead parents are exempt:
//     failure detection is traffic-driven by design, and routing towards a
//     crashed node shows up in the recovery metrics (repair time,
//     stale-route drops), not as a graph inconsistency.
//   - Child / descendant staleness: no child-table entry older than the
//     protocol's child timeout plus one prune period, and no downlink
//     descendant entry whose via-child left the child table more than one
//     prune period ago. These catch eviction bugs (the prune timers should
//     make such entries impossible).
//   - Schedule conflicts: within one node, two dedicated TX cells of the
//     same (class, direction) towards different peers on the same slot
//     offset; across nodes, two field devices sharing an uplink TX slot
//     offset where paper Eq. 4 guarantees injectivity (only checked while
//     attempts * num_field_devices < app_slotframe_len, the regime the
//     guarantee covers — and only for the DiGS cell layout; Orchestra's
//     47-slot shared frame collides by design).
//   - Sync drift: no node keeps dedicated TX cells while its clock offset
//     relative to its (alive, synced) time source exceeds the RX guard —
//     scheduled airtime it can no longer hit. Transiently legal (the
//     keep-alive loop or a desync heals it), so graced like rank rule.
//
// Zero-cost when disabled: the Network only constructs the monitor (and
// sets the per-node audit hook) when NetworkConfig::monitor_invariants is
// true; otherwise the per-topology-change cost is one unset-std::function
// branch.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace digs {

class Network;

enum class InvariantKind : std::uint8_t {
  kRankRule,          // routes through an equal-or-higher-rank parent
  kParentCycle,       // best-parent chain returns to the node
  kStaleChild,        // child entry outlived timeout + prune period
  kStaleDescendant,   // descendant entry stale or via a departed child
  kScheduleConflict,  // dedicated TX cells collide on a slot offset
  kSyncDrift,         // holds dedicated TX cells while drifted past guard
  kTunnelLoop,        // a tunnel path visits the same node twice
  kTunnelDisjoint,    // pair flagged disjoint but interiors intersect
  kTunnelConflict,    // replicated copies collide on a (slot, channel)
};

[[nodiscard]] constexpr const char* to_string(InvariantKind kind) {
  switch (kind) {
    case InvariantKind::kRankRule: return "rank_rule";
    case InvariantKind::kParentCycle: return "parent_cycle";
    case InvariantKind::kStaleChild: return "stale_child";
    case InvariantKind::kStaleDescendant: return "stale_descendant";
    case InvariantKind::kScheduleConflict: return "schedule_conflict";
    case InvariantKind::kSyncDrift: return "sync_drift";
    case InvariantKind::kTunnelLoop: return "tunnel_loop";
    case InvariantKind::kTunnelDisjoint: return "tunnel_disjoint";
    case InvariantKind::kTunnelConflict: return "tunnel_conflict";
  }
  return "?";
}

struct InvariantViolation {
  InvariantKind kind;
  /// The node whose state violates the invariant.
  NodeId node;
  /// The offending counterpart (parent, child, descendant destination, or
  /// conflicting peer); kNoNode when the violation has no counterpart.
  NodeId other;
  std::uint64_t asn{0};
  SimTime at;
};

class NetworkInvariantMonitor {
 public:
  /// Persistence grace for conditions that are legal transients of
  /// distance-vector repair (rank inversions, momentary parent cycles).
  static constexpr SimDuration kTransientGrace =
      seconds(static_cast<std::int64_t>(60));
  /// Slack covering one 30 s prune-timer period (plus the ordering of
  /// prune_children before prune_descendants within one firing).
  static constexpr SimDuration kPruneGrace =
      seconds(static_cast<std::int64_t>(31));
  /// Period of the full-network sweep that matures pending suspicions even
  /// when no further topology change fires.
  static constexpr SimDuration kSweepPeriod =
      seconds(static_cast<std::int64_t>(5));

  explicit NetworkInvariantMonitor(Network& net);

  /// Starts the periodic sweep (call once the network is started).
  void start();

  /// Audits one node right after its routing/schedule state changed.
  void on_topology_changed(NodeId node, SimTime now);

  /// Audits every alive node plus the cross-node schedule check now
  /// (also what the periodic sweep runs).
  void audit_network(SimTime now);

  /// Full-network audit right after a schedule-randomization epoch
  /// reinstalled every node's slotframes — the moment a broken permutation
  /// would surface as schedule conflicts. Counts the audits and any
  /// SCHEDULE-CONFLICT violations newly recorded during them (routing-side
  /// suspicions maturing at the same instant are the sweep's business, not
  /// the swap's: the permutation touches nothing but slot offsets).
  void on_swap_epoch(SimTime now);

  /// Swap-epoch audits run, and schedule conflicts first detected by one
  /// (0 when randomization never ran or every epoch was clean).
  [[nodiscard]] std::uint64_t swap_epoch_audits() const {
    return swap_epoch_audits_;
  }
  [[nodiscard]] std::uint64_t violations_at_swap_epochs() const {
    return violations_at_swap_epochs_;
  }

  /// Every violation recorded so far, in detection order. Each
  /// (kind, node, other) triple is recorded at most once.
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::size_t count(InvariantKind kind) const;

 private:
  [[nodiscard]] static std::uint64_t key(InvariantKind kind, NodeId node,
                                         NodeId other) {
    return (static_cast<std::uint64_t>(kind) << 32) |
           (static_cast<std::uint64_t>(node.value) << 16) |
           static_cast<std::uint64_t>(other.value);
  }
  [[nodiscard]] static NodeId key_node(std::uint64_t k) {
    return NodeId{static_cast<std::uint16_t>((k >> 16) & 0xFFFF)};
  }

  void audit_node(std::size_t i, SimTime now);
  void audit_uplink_slot_uniqueness(SimTime now);
  /// Multipath tunnel invariants, audited over every registered
  /// destination's stored pair: loop-freedom (no node appears twice on a
  /// path), the disjointness flag's honesty (flagged pairs really share no
  /// interior node), and replication conflict-freedom (the role-keyed cell
  /// ladders of primary and backup never collide on a (slot, channel), even
  /// through the current SlotSwapper permutation). No-op without tunnels.
  void audit_tunnels(SimTime now);
  void record(InvariantKind kind, NodeId node, NodeId other, SimTime now);

  /// A condition that must persist for `grace` before counting.
  struct GracedCondition {
    std::uint64_t key;
    SimDuration grace;
  };

  /// Collect the conditions currently true for node i.
  void collect_rank_and_cycle(std::size_t i,
                              std::vector<GracedCondition>& graced) const;
  void collect_staleness(std::size_t i, SimTime now,
                         std::vector<GracedCondition>& graced,
                         std::vector<std::uint64_t>& immediate) const;
  void collect_schedule_conflicts(
      std::size_t i, std::vector<std::uint64_t>& immediate) const;
  void collect_sync_drift(std::size_t i, SimTime now,
                          std::vector<GracedCondition>& graced) const;

  Network& net_;
  PeriodicTimer sweep_;
  std::vector<InvariantViolation> violations_;
  std::uint64_t swap_epoch_audits_{0};
  std::uint64_t violations_at_swap_epochs_{0};
  /// Graced conditions currently observed -> first time they were seen.
  std::unordered_map<std::uint64_t, SimTime> suspects_;
  /// (kind, node, other) triples already recorded (dedup).
  std::unordered_set<std::uint64_t> recorded_;
  // Per-audit scratch.
  std::vector<GracedCondition> graced_scratch_;
  std::vector<std::uint64_t> immediate_scratch_;
};

}  // namespace digs
