#include "core/network.h"

#include <algorithm>
#include <cstdlib>
#include <iterator>
#include <numeric>
#include <thread>

#include "common/prof.h"
#include "core/invariant_monitor.h"

namespace digs {

namespace {

/// Below this many listeners a busy slot resolves serially even with
/// shards configured: the fan-out overhead exceeds the work. Results are
/// unaffected either way (the merge order is listener order in both paths).
constexpr std::size_t kMinParallelListeners = 4;

/// Below this many slot participants the slot keeps the serial body even
/// with sharding on: region fan-out, defer buffers, and replay cost more
/// than the work they spread. Purely a cost gate — the serial and parallel
/// bodies are bit-identical, so the decision can vary slot by slot.
constexpr std::size_t kMinParallelSlotNodes = 8;

std::size_t resolve_shards(std::size_t configured) {
  std::size_t shards = configured;
  if (shards == 0) {
    if (const char* env = std::getenv("DIGS_SHARDS")) {
      shards = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (shards == 0) shards = 1;
  return std::min<std::size_t>(shards, 64);
}

std::size_t resolve_shard_threads(std::size_t configured, std::size_t shards) {
  std::size_t threads = configured;
  if (threads == 0) {
    if (const char* env = std::getenv("DIGS_SHARD_THREADS")) {
      threads = static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
    }
  }
  if (threads == 0) {
    // Default: one worker per shard, capped at the hardware — extra threads
    // beyond either bound only add scheduling noise, never speed.
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::min<std::size_t>(shards, hw == 0 ? 1 : hw);
  }
  return std::clamp<std::size_t>(threads, 1, shards);
}

}  // namespace

thread_local Network::ShardCtx* Network::t_shard_ctx_ = nullptr;

Network::~Network() = default;

Network::Network(const NetworkConfig& config, std::vector<Position> positions)
    : config_(config),
      medium_(config.medium, std::move(positions), config.seed),
      rng_(hash_mix(config.seed, 0xAE7)),
      draw_seed_(hash_mix(config.seed, 0xD0A1)),
      ack_seed_(hash_mix(config.seed, 0xACC5)),
      joined_at_(medium_.num_nodes(), SimTime{-1}),
      fully_joined_at_(medium_.num_nodes(), SimTime{-1}),
      clocks_active_(config.node.mac.oscillator.enabled()) {
  medium_.build_reachability(config.node.mac.tx_power_dbm);
  num_shards_ = resolve_shards(config.shards);
  assign_shards();
  shard_threads_ =
      num_shards_ > 1
          ? resolve_shard_threads(config.shard_threads, num_shards_)
          : 1;
  if (shard_threads_ > 1) {
    pool_ = std::make_unique<ShardPool>(shard_threads_ - 1);
  }
  // The monitor's audits hook into topology changes mid-slot and assume
  // serial hook order; with it on, sharding still accelerates reception
  // resolution but the node phases stay serial.
  node_parallel_ = num_shards_ > 1 && !config.monitor_invariants;
  shard_reception_.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shard_reception_.emplace_back(medium_);
  }
  shard_guard_misses_.assign(num_shards_, 0);
  shard_members_.resize(num_shards_);
  shard_listener_li_.resize(num_shards_);
  shard_tx_.resize(num_shards_);
  shard_rx_.resize(num_shards_);
  defer_bufs_.resize(num_shards_);
  shard_ctx_.resize(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shard_ctx_[s].defer = &defer_bufs_[s];
  }
  shard_busy_ns_.assign(num_shards_, 0);
  // Hot struct-of-arrays storage, sized before any Node is constructed so
  // the pointers handed to nodes stay stable for the network's lifetime.
  alive_.assign(medium_.num_nodes(), 1);
  meters_.assign(medium_.num_nodes(), EnergyMeter{config.node.power});
  best_parent_.assign(medium_.num_nodes(), kNoNode);
  Node::Hooks hooks;
  // The stats collector dedups first-wins per (flow, seq), so it must see
  // records in serial arrival order: inside a parallel region the hooks
  // divert into the shard's side-buffer under the current site key and
  // drain_shard_ctxs() replays them sorted — the serial order.
  hooks.on_data_delivered = [this](NodeId /*ap*/, const DataPayload& payload,
                                   SimTime now) {
    if (ShardCtx* ctx = t_shard_ctx_) {
      ctx->stats.push_back(StatOp{ctx->defer->next_key(), payload.flow,
                                  payload.seq, now, DropReason::kOther,
                                  /*delivered=*/true, payload.tunnel,
                                  /*at_final_dst=*/true});
      return;
    }
    apply_delivered(payload.flow, payload.seq, now, payload.tunnel);
  };
  hooks.on_data_lost = [this](NodeId node, const DataPayload& payload,
                              DropReason reason, SimTime now) {
    if (ShardCtx* ctx = t_shard_ctx_) {
      ctx->stats.push_back(StatOp{ctx->defer->next_key(), payload.flow,
                                  payload.seq, now, reason,
                                  /*delivered=*/false, payload.tunnel,
                                  node == payload.final_dst});
      return;
    }
    apply_dropped(payload.flow, payload.seq, now, reason, payload.tunnel,
                  node == payload.final_dst);
  };
  hooks.on_joined = [this](NodeId id, SimTime now) {
    joined_at_[id.value] = now;
  };
  hooks.on_became_joined = [this](NodeId id, SimTime now) {
    const std::int32_t pending = pending_revive_[id.value];
    if (pending < 0) return;  // a first join, not a post-revival rejoin
    revivals_[static_cast<std::size_t>(pending)].rejoined_at = now;
    pending_revive_[id.value] = -1;
  };
  hooks.on_fully_joined = [this](NodeId id, SimTime now) {
    fully_joined_at_[id.value] = now;
  };
  hooks.gateway_route = [this](const DataPayload& payload, SimTime now) {
    // Wired backbone: inject at the access point holding the FRESHEST
    // route to the destination (a re-homed device may transiently appear
    // in both AP subtrees; the newer DAO-sequence wins).
    std::int64_t best_freshness = -1;
    std::uint16_t best_ap = 0;
    for (std::uint16_t ap = 0; ap < config_.num_access_points; ++ap) {
      if (!nodes_[ap]->alive()) continue;
      const std::int64_t freshness =
          nodes_[ap]->routing().downlink_freshness(payload.final_dst);
      if (freshness > best_freshness) {
        best_freshness = freshness;
        best_ap = ap;
      }
    }
    if (best_freshness < 0) return false;
    return nodes_[best_ap]->inject_downlink(payload, now);
  };
  hooks.on_wakeup_changed = [this](NodeId id) { on_node_wake_dirty(id); };
  hooks.on_parent_changed = [this](NodeId id, NodeId parent) {
    best_parent_[id.value] = parent;
  };
  if (config_.monitor_invariants) {
    hooks.on_topology_audit = [this](NodeId id, SimTime now) {
      if (monitor_) monitor_->on_topology_changed(id, now);
    };
  }
  if (config_.randomization.enabled) {
    // Every schedule rebuild (initial, topology-driven, or the epoch
    // reinstall itself) re-applies the network's current permutation, so a
    // node that re-derives its slotframe mid-epoch stays consistent with
    // the rest of the network.
    hooks.app_slot_permutation =
        [this]() -> const std::vector<std::uint16_t>* {
      return app_slot_perm_.empty() ? nullptr : &app_slot_perm_;
    };
  }

  pending_revive_.assign(medium_.num_nodes(), -1);
  nodes_.reserve(medium_.num_nodes());
  for (std::size_t i = 0; i < medium_.num_nodes(); ++i) {
    const NodeId id{static_cast<std::uint16_t>(i)};
    const bool is_ap = i < config_.num_access_points;
    nodes_.push_back(std::make_unique<Node>(
        sim_, id, is_ap, config_.suite, config_.node,
        config_.num_access_points, rng_.fork(hash_mix(0x40DE, i)), hooks,
        &alive_[i], &meters_[i]));
  }
  if (config_.suite == ProtocolSuite::kWirelessHart) {
    manager_ = std::make_unique<CentralManager>(*this, config_.manager);
  }
  if (config_.monitor_invariants) {
    monitor_ = std::make_unique<NetworkInvariantMonitor>(*this);
  }
  if (config_.node.enable_tunnels) {
    // Pure control plane over a read-only routing view; derivations only
    // run from serial seams (injection, the maintenance timer, fault
    // handling), never from inside a parallel region.
    TunnelManager::Env env;
    env.best_parent = [this](NodeId id) {
      if (id.value >= nodes_.size() || alive_[id.value] == 0) return kNoNode;
      return nodes_[id.value]->routing().best_parent();
    };
    env.second_best_parent = [this](NodeId id) {
      if (id.value >= nodes_.size() || alive_[id.value] == 0) return kNoNode;
      return nodes_[id.value]->routing().second_best_parent();
    };
    env.alive = [this](NodeId id) {
      return id.value < nodes_.size() && alive_[id.value] != 0;
    };
    env.num_access_points = config_.num_access_points;
    env.num_nodes = medium_.num_nodes();
    tunnels_ = std::make_unique<TunnelManager>(std::move(env));
  }
}

void Network::assign_shards() {
  const std::size_t n = medium_.num_nodes();
  shard_of_node_.assign(n, 0);
  if (num_shards_ <= 1) return;
  const SpatialGrid& grid = medium_.grid();
  if (grid.built() && grid.active() &&
      grid.num_cells() >= 2 * num_shards_) {
    // Cell-based assignment: a shard's listeners share grid cells, so its
    // CSR rows and attempt subsets stay cache-adjacent.
    for (std::size_t i = 0; i < n; ++i) {
      shard_of_node_[i] = static_cast<std::uint16_t>(
          grid.cell_of(static_cast<std::uint16_t>(i)) % num_shards_);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      shard_of_node_[i] = static_cast<std::uint16_t>(i % num_shards_);
    }
  }
  // Access points are pinned to shard 0: an AP's frame delivery can run
  // gateway_route, which reads every AP's routing state and injects into
  // the freshest one — keeping all APs on one shard makes every AP-state
  // access serial within a region. Assignment affects load balance only,
  // never results.
  for (std::uint16_t ap = 0; ap < config_.num_access_points && ap < n; ++ap) {
    shard_of_node_[ap] = 0;
  }
}

void Network::add_flow(const FlowSpec& flow) {
  stats_.register_flow(flow.id, flow.source);
  flows_.push_back(flow);
  flow_seq_.push_back(0);
}

void Network::start() {
  if (started_) return;
  started_ = true;
  const SimTime now = sim_.now();
  start_ = now;

  const std::size_t n = nodes_.size();
  slots_charged_.assign(n, 0);
  kinds_.assign(n, SlotPlan::Kind::kSleep);
  channels_.assign(n, 0);
  listen_time_.assign(n, SimDuration{0});
  tx_time_.assign(n, SimDuration{0});
  clock_offset_us_.assign(n, 0.0);
  plans_.assign(n, SlotPlan{});
  all_ids_.resize(n);
  std::iota(all_ids_.begin(), all_ids_.end(), std::uint16_t{0});

  for (auto& node : nodes_) node->start(now);
  if (manager_) manager_->start();
  if (monitor_) monitor_->start();

  // Slot driver. The engine's wakeup table is built only now, after every
  // node installed its initial slotframes (install notifications before this
  // point are ignored because next_wake_ is empty).
  if (config_.use_slot_engine) {
    next_wake_.assign(n, kNeverOccupied);
    wake_heaps_.assign(num_shards_, WakeHeap{});
    scanning_.assign(n, 0);
    scanners_.clear();
    listen_buckets_.clear();
    registered_.assign(n, {});
    for (std::size_t i = 0; i < n; ++i) {
      update_listen_registration(i);
      refresh_wake(i, 0);
    }
    arm_engine();
  } else {
    sim_.schedule_after(kSlotDuration, [this] { slot_tick(); });
  }

  // Flow generators.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    sim_.schedule_after(flows_[i].start_offset,
                        [this, i] { generate_flow_packet(i); });
  }

  // Schedule randomization epoch driver. The timer fires as an ordinary
  // simulator event between slots, so the whole epoch (permutation draw +
  // every node's reinstall) is atomic with respect to the slot loop.
  if (config_.randomization.enabled) {
    SlotSwapperConfig swapper;
    swapper.frame_len = config_.suite == ProtocolSuite::kOrchestra
                            ? config_.node.scheduler.orchestra_unicast_len
                            : config_.node.scheduler.app_slotframe_len;
    swapper.swaps_per_epoch = config_.randomization.swaps_per_epoch;
    swapper.max_retries = config_.randomization.max_retries;
    swapper.seed = hash_mix(config_.seed, 0x5107, config_.randomization.seed);
    slot_swapper_ = std::make_unique<SlotSwapper>(swapper);
    swap_timer_ = std::make_unique<PeriodicTimer>(
        sim_, config_.randomization.epoch,
        [this] { advance_randomization_epoch(); });
    swap_timer_->start();
  }

  // Tunnel maintenance: re-derive every registered destination roughly once
  // a second, so repairs are detected (and timed) even while the control
  // traffic that would lazily refresh them is sparse.
  if (tunnels_) {
    tunnel_timer_ = std::make_unique<PeriodicTimer>(
        sim_, seconds(static_cast<std::int64_t>(1)), [this] {
          const SimTime now = sim_.now();
          tunnels_->maintain(now);
          // Purge stranded tunnel copies: a route stack frozen at the
          // ingress can outlive the cells it was laid over (churn moved a
          // relay's tunnel ladder away), and an aged command is useless to
          // its control loop. Bounds the delivered-latency tail.
          for (const auto& nd : nodes_) {
            if (nd->alive()) {
              nd->mac().expire_tunnel_packets(
                  config_.node.tunnel_queue_max_age, now);
            }
          }
        });
    tunnel_timer_->start();
  }
}

void Network::run_until(SimTime until) {
  sim_.run_until(until);
  if (started_) settle_all();
}

void Network::generate_flow_packet(std::size_t flow_index) {
  const FlowSpec& flow = flows_[flow_index];
  const std::uint32_t seq = flow_seq_[flow_index]++;
  const SimTime now = sim_.now();
  stats_.on_generated(flow.id, seq, now);
  Node& source = node(flow.source);
  if (!source.alive()) {
    stats_.on_dropped(flow.id, seq, now, DropReason::kSourceDead);
  } else if (source.is_access_point() && flow.downlink_dest.valid() &&
             tunnels_ &&
             inject_tunnel_downlink(flow.id, seq, flow.downlink_dest, now)) {
    // Replicated down the node-disjoint tunnels; the egress dedup keeps the
    // first-wins stats semantics identical to a single-copy delivery.
  } else {
    if (source.is_access_point() && flow.downlink_dest.valid() && tunnels_) {
      // Tunnels are on but no valid tunnel exists for this destination right
      // now (not joined, partitioned, or a non-DiGS suite without tunnel
      // cells): degrade to ordinary table routing, counted, never asserted.
      ++single_path_fallbacks_;
    }
    source.generate_packet(flow.id, seq, now, flow.downlink_dest);
  }
  sim_.schedule_after(flow.period,
                      [this, flow_index] { generate_flow_packet(flow_index); });
}

void Network::apply_delivered(FlowId flow, std::uint32_t seq, SimTime at,
                              std::uint8_t tunnel) {
  // A delivery whose first arriving copy rode the backup tunnel is a
  // replication win: the primary copy lost the race (or the path).
  const bool first = !stats_.was_delivered(flow, seq);
  stats_.on_delivered(flow, seq, at);
  if (first && tunnel == 2) ++replication_wins_;
}

void Network::apply_dropped(FlowId flow, std::uint32_t seq, SimTime at,
                            DropReason reason, std::uint8_t tunnel,
                            bool at_final_dst) {
  if (reason == DropReason::kDuplicate && tunnel != 0) {
    ++duplicates_suppressed_;
    // Suppressed at the egress itself: the other copy already delivered,
    // so this one was pure redundancy (the replication-loss counter).
    if (at_final_dst) ++replication_losses_;
  }
  stats_.on_dropped(flow, seq, at, reason);
}

bool Network::inject_tunnel_downlink(FlowId flow, std::uint32_t seq,
                                     NodeId dest, SimTime now) {
  // Only the DiGS scheduler installs tunnel cell ladders; source-routing a
  // copy on any other suite would strand it in the MAC queue forever. The
  // caller's fallback path (table routing) handles those suites.
  if (!tunnels_ || config_.suite != ProtocolSuite::kDigs) return false;
  const TunnelPair& pair = tunnels_->refresh(dest, now);
  if (!pair.valid()) return false;
  const NodeId ingress = pair.primary.hops.front();
  if (ingress.value >= nodes_.size() || alive_[ingress.value] == 0) {
    return false;
  }
  DataPayload payload;
  payload.flow = flow;
  payload.seq = seq;
  payload.origin = ingress;
  payload.final_dst = dest;
  payload.created = now;
  payload.route = pair.primary.hops;
  payload.route_hop = 0;
  payload.tunnel = 1;
  bool injected = nodes_[ingress.value]->inject_tunnel(payload, now);
  if (config_.tunnel_replication && pair.replicated()) {
    const NodeId backup_ingress = pair.backup.hops.front();
    if (backup_ingress.value < nodes_.size() &&
        alive_[backup_ingress.value] != 0) {
      DataPayload copy = payload;
      copy.origin = backup_ingress;
      copy.route = pair.backup.hops;
      copy.tunnel = 2;
      injected = nodes_[backup_ingress.value]->inject_tunnel(copy, now) ||
                 injected;
    }
  } else if (config_.tunnel_replication) {
    // Replication requested but only one path exists right now (e.g. the
    // second-best parent is down or coincides with the primary's exit).
    ++single_path_fallbacks_;
  }
  return injected;
}

bool Network::send_downlink(FlowId flow, std::uint32_t seq, NodeId dest,
                            SimTime now) {
  if (inject_tunnel_downlink(flow, seq, dest, now)) return true;
  if (tunnels_) ++single_path_fallbacks_;
  // Wired-backbone rule: inject at the alive AP holding the freshest
  // downlink route to the destination (same policy as gateway_route).
  std::int64_t best_freshness = -1;
  std::uint16_t best_ap = 0;
  for (std::uint16_t ap = 0; ap < config_.num_access_points; ++ap) {
    if (!nodes_[ap]->alive()) continue;
    const std::int64_t freshness =
        nodes_[ap]->routing().downlink_freshness(dest);
    if (freshness > best_freshness) {
      best_freshness = freshness;
      best_ap = ap;
    }
  }
  if (best_freshness < 0) return false;
  DataPayload payload;
  payload.flow = flow;
  payload.seq = seq;
  payload.origin = NodeId{best_ap};
  payload.final_dst = dest;
  payload.created = now;
  return nodes_[best_ap]->inject_downlink(payload, now);
}

void Network::observe_on_air(std::uint64_t asn, SimTime slot_start) {
  const bool reactive = medium_.num_reactive_jammers() > 0;
  if (!reactive && medium_.num_jammers() == 0) return;
  // Reactive jammers sniff every attempt on the air this slot (energy
  // detection at their own position — see Medium::observe_slot_attempts).
  // Runs once per executed slot at the serial on-air seam, so the sniffer's
  // histogram and epoch rollovers are identical at every shard/thread
  // setting and in both slot drivers.
  if (reactive) medium_.observe_slot_attempts(asn, slot_start, on_air_);
  // Victim slot-hit coverage: which data-frame attempts launched into a
  // (slot, channel) cell some jammer was actively blasting. Geometry-free
  // on purpose — it measures the jammer's schedule-targeting efficiency,
  // the quantity schedule randomization is supposed to destroy.
  for (std::size_t t = 0; t < transmitters_.size(); ++t) {
    if (transmitters_[t].plan.frame.type != FrameType::kData) continue;
    ++victim_tx_attempts_;
    if (medium_.any_jammer_active(on_air_[t].channel, asn, slot_start)) {
      ++victim_tx_jammed_;
    }
  }
}

void Network::advance_randomization_epoch() {
  if (!slot_swapper_) return;
  // Precedence edges from the live routing graph and the pre-permutation
  // (base) schedules: for each field device forwarding through a field-
  // device parent, the child's uplink TX offsets must still be able to
  // precede the parent's within one slotframe cycle wherever the base
  // schedule ordered them (AP parents sink traffic and impose nothing).
  const std::size_t n = nodes_.size();
  std::vector<std::vector<std::uint16_t>> uplink_tx(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i] == 0) continue;
    for (const Cell& cell : nodes_[i]->base_app_slotframe().cells) {
      if (cell.option == CellOption::kTx && !cell.downlink) {
        uplink_tx[i].push_back(cell.slot_offset);
      }
    }
  }
  std::vector<PrecedenceEdge> edges;
  for (std::size_t i = config_.num_access_points; i < n; ++i) {
    if (alive_[i] == 0 || uplink_tx[i].empty()) continue;
    const RoutingProtocol& routing = nodes_[i]->routing();
    for (const NodeId parent :
         {routing.best_parent(), routing.second_best_parent()}) {
      if (!parent.valid() || parent.value < config_.num_access_points) {
        continue;
      }
      if (parent.value >= n || alive_[parent.value] == 0) continue;
      if (uplink_tx[parent.value].empty()) continue;
      PrecedenceEdge edge;
      edge.child_tx = uplink_tx[i];
      edge.parent_tx = uplink_tx[parent.value];
      edges.push_back(std::move(edge));
    }
  }
  app_slot_perm_ = slot_swapper_->advance_epoch(swap_epoch_++, edges);
  // Atomic reinstall: every alive node re-derives its schedule through the
  // new permutation inside this one event, in id order, via the ordinary
  // install path (occupancy listeners and the wake engine see a normal
  // schedule change). Slots never interleave with a half-switched network.
  for (std::size_t i = 0; i < n; ++i) {
    if (alive_[i] != 0) nodes_[i]->refresh_schedule();
  }
  if (monitor_) monitor_->on_swap_epoch(sim_.now());
}

void Network::set_node_alive(NodeId id, bool alive) {
  const auto i = static_cast<std::size_t>(id.value);
  const SimTime now = sim_.now();
  if (started_ && nodes_[i]->alive() != alive) {
    // The slot firing exactly at this instant runs after this injection
    // event (it was scheduled later), so it excludes a dying node and
    // includes a reviving one: account strictly-before in both directions.
    if (!alive) {
      settle_node_to(i, slots_before(now));
    } else {
      slots_charged_[i] = slots_before(now);
    }
  }
  if (nodes_[i]->alive() != alive) {
    if (alive) {
      // Open the rejoin measurement BEFORE restarting the node: a revived
      // access point rejoins instantly inside set_alive.
      pending_revive_[i] = static_cast<std::int32_t>(revivals_.size());
      revivals_.push_back(ReviveRecord{id, now, SimTime{-1}});
    } else {
      pending_revive_[i] = -1;  // an open record stays never-rejoined
    }
  }
  node(id).set_alive(alive, now);  // revival refreshes the wakeup via the
                                   // MAC's unsynced notification
  if (engine_active()) {
    if (alive) {
      // Not reachable through the MAC's notifications alone: a node that
      // died while already unsynced revives without a sync transition.
      on_node_wake_dirty(id);
    } else {
      set_scanner(i, false);
      clear_listen_registration(i);
      next_wake_[i] = kNeverOccupied;
      arm_engine();
    }
  }
  if (manager_) manager_->notify_dynamics();
  // Crisp repair anchors: a crash (or revival) that breaks or heals a
  // tunnel is observed at the injection instant, not a maintenance period
  // later.
  if (tunnels_) tunnels_->maintain(now);
}

void Network::inject_clock_jump(NodeId id, double offset_us) {
  if (id.value >= nodes_.size()) return;
  Node& nd = node(id);
  if (nd.is_access_point()) return;  // APs are the clock reference
  nd.mac().inject_clock_offset(offset_us, sim_.now());
  // From here on, offsets must be queried and RX guards enforced — even if
  // every oscillator is disabled (the jumped node's offset is now nonzero).
  clocks_active_ = true;
  // No wake update needed: a jump moves no deadline (the drift projections
  // are anchored at the last correction and a step does not change them).
}

std::size_t Network::joined_count() const {
  std::size_t n = 0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    if (joined_at_[i].us >= 0) ++n;
  }
  return n;
}

double Network::total_energy_mj() const {
  // Logical constness: settling only converts accrued-but-unrecorded sleep
  // time into meter state; it never changes what a reading means.
  const_cast<Network*>(this)->settle_all();
  double mj = 0.0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    mj += meters_[i].energy_mj();
  }
  return mj;
}

double Network::mean_duty_cycle() const {
  const_cast<Network*>(this)->settle_all();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    sum += meters_[i].duty_cycle();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void Network::reset_energy() {
  settle_all();  // pending sleep belongs to the window being discarded
  for (EnergyMeter& meter : meters_) meter.reset();
}

std::uint64_t Network::current_asn() const {
  if (!config_.use_slot_engine) return asn_;
  if (!started_) return 0;
  return slots_completed(sim_.now());
}

// --- slot engine ---

std::uint64_t Network::slots_completed(SimTime t) const {
  const std::int64_t d = t.us - start_.us;
  return d <= 0 ? 0 : static_cast<std::uint64_t>(d / kSlotDuration.us);
}

std::uint64_t Network::slots_before(SimTime t) const {
  const std::int64_t d = t.us - start_.us;
  return d <= 0 ? 0 : static_cast<std::uint64_t>((d - 1) / kSlotDuration.us);
}

std::uint64_t Network::asn_floor(SimTime t) const {
  const std::int64_t d = t.us - start_.us;
  if (d <= kSlotDuration.us) return 0;
  return static_cast<std::uint64_t>((d + kSlotDuration.us - 1) /
                                        kSlotDuration.us -
                                    1);
}

void Network::set_scanner(std::size_t i, bool scanning) {
  if (scanning_.empty() || (scanning_[i] != 0) == scanning) return;
  scanning_[i] = scanning ? 1 : 0;
  if (ShardCtx* ctx = t_shard_ctx_) {
    // Inside a parallel region (the wake-refresh fan-out): the per-node
    // flag flip above is safe (each node belongs to one shard), but the
    // shared sorted vector edit is deferred and applied at the drain. The
    // flag can't serve as the membership test there, so the drain re-checks
    // membership; a sorted set's final content is order-independent.
    ctx->scans.push_back(ScanOp{static_cast<std::uint16_t>(i), scanning});
    return;
  }
  const auto v = static_cast<std::uint16_t>(i);
  const auto it = std::lower_bound(scanners_.begin(), scanners_.end(), v);
  if (scanning) {
    scanners_.insert(it, v);
  } else if (it != scanners_.end() && *it == v) {
    scanners_.erase(it);
  }
}

void Network::update_listen_registration(std::size_t i) {
  if (registered_.empty()) return;
  const Schedule& sched = nodes_[i]->mac().schedule();
  const auto v = static_cast<std::uint16_t>(i);
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const auto traffic = static_cast<TrafficClass>(t);
    const std::uint16_t length = sched.frame_length(traffic);
    const auto offsets = sched.listen_offsets(traffic);
    RegisteredFrame& reg = registered_[i][t];
    if (reg.length == length &&
        std::equal(reg.offsets.begin(), reg.offsets.end(), offsets.begin(),
                   offsets.end())) {
      continue;  // unchanged pattern; buckets already match
    }
    // Remove the old membership, then insert the new one.
    for (auto& bucket : listen_buckets_) {
      if (bucket.traffic != traffic || bucket.length != reg.length) continue;
      for (const std::uint16_t offset : reg.offsets) {
        auto& slot = bucket.nodes[offset];
        const auto it = std::lower_bound(slot.begin(), slot.end(), v);
        if (it != slot.end() && *it == v) slot.erase(it);
      }
      break;
    }
    reg.length = length;
    reg.offsets.assign(offsets.begin(), offsets.end());
    if (length == 0 || reg.offsets.empty()) continue;
    BucketFrame* frame = nullptr;
    for (auto& bucket : listen_buckets_) {
      if (bucket.traffic == traffic && bucket.length == length) {
        frame = &bucket;
        break;
      }
    }
    if (frame == nullptr) {
      listen_buckets_.push_back(BucketFrame{traffic, length, {}});
      frame = &listen_buckets_.back();
      frame->nodes.resize(length);
    }
    for (const std::uint16_t offset : reg.offsets) {
      auto& slot = frame->nodes[offset];
      slot.insert(std::lower_bound(slot.begin(), slot.end(), v), v);
    }
  }
}

void Network::clear_listen_registration(std::size_t i) {
  if (registered_.empty()) return;
  const auto v = static_cast<std::uint16_t>(i);
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    RegisteredFrame& reg = registered_[i][t];
    for (auto& bucket : listen_buckets_) {
      if (bucket.traffic != static_cast<TrafficClass>(t) ||
          bucket.length != reg.length) {
        continue;
      }
      for (const std::uint16_t offset : reg.offsets) {
        auto& slot = bucket.nodes[offset];
        const auto it = std::lower_bound(slot.begin(), slot.end(), v);
        if (it != slot.end() && *it == v) slot.erase(it);
      }
      break;
    }
    reg = RegisteredFrame{};
  }
}

std::uint64_t Network::next_registered_listen(std::size_t i,
                                              std::uint64_t from) const {
  std::uint64_t next = kNeverOccupied;
  for (const RegisteredFrame& reg : registered_[i]) {
    next = std::min(next, Schedule::next_in(reg.offsets, reg.length, from));
  }
  return next;
}

void Network::apply_wake_change(std::size_t i, std::uint64_t settle_target,
                                std::uint64_t refresh_from) {
  // Settle with the *old* registered pattern: the slots up to the change
  // used it. Only then mirror the new pattern into the buckets.
  if (nodes_[i]->alive()) settle_node_to(i, settle_target);
  update_listen_registration(i);
  refresh_wake(i, refresh_from);
}

void Network::refresh_wake(std::size_t i, std::uint64_t from) {
  const Node& nd = *nodes_[i];
  if (alive_[i] == 0) {
    set_scanner(i, false);
    next_wake_[i] = kNeverOccupied;
    return;
  }
  const TschMac& mac = nd.mac();
  if (!mac.synced()) {
    // Scanners carry no heap entry: they listen in exactly the slots the
    // engine executes (a transmission requires some synced node's TX-capable
    // cell, which is a scheduled wake) and are settled lazily over the rest.
    set_scanner(i, true);
    next_wake_[i] = kNeverOccupied;
    return;
  }
  set_scanner(i, false);
  std::uint64_t wake = mac.next_tx_capable_asn(from);
  if (!nd.is_access_point()) {
    // First slot whose end_slot() sees now >= deadline: the node must wake
    // there to act on it even if its schedule is idle. The deadline is the
    // earlier of the sync timeout and the drift budget (keep-alive due /
    // resync failure) — end_slot() handles all three.
    // slot_end(k) = start_ + (k+2)*slot >= deadline.
    const SimTime deadline =
        std::min(mac.sync_deadline(), mac.drift_deadline());
    const std::int64_t lead = deadline.us - (start_.us + kSlotDuration.us);
    const std::int64_t k =
        lead <= 0 ? -1 : (lead + kSlotDuration.us - 1) / kSlotDuration.us - 1;
    const std::uint64_t timeout_wake =
        (k < 0 || static_cast<std::uint64_t>(k) < from)
            ? from
            : static_cast<std::uint64_t>(k);
    wake = std::min(wake, timeout_wake);
  }
  next_wake_[i] = wake;
  if (wake == kNeverOccupied) return;
  wake_heaps_[shard_of_node_[i]].push(wake, static_cast<std::uint16_t>(i));
}

void Network::arm_engine() {
  if (in_slot_ || engine_yielded_) return;  // re-armed after the slot runs
  // Arm at the minimum across the per-shard heaps (each pruned of stale
  // tops first) — the same instant the single global heap would yield.
  std::uint64_t target = kNeverOccupied;
  for (WakeHeap& heap : wake_heaps_) {
    while (!heap.empty()) {
      const WakeHeap::Entry& top = heap.top();
      if (next_wake_[top.node] != top.asn || alive_[top.node] == 0) {
        heap.pop();  // stale
        continue;
      }
      break;
    }
    if (!heap.empty()) target = std::min(target, heap.top().asn);
  }
  if (target == kNeverOccupied) {
    engine_event_.cancel();
    armed_asn_ = kNeverOccupied;
    return;
  }
  if (engine_event_.pending() && armed_asn_ == target) return;
  engine_event_.cancel();
  armed_asn_ = target;
  engine_event_ = sim_.schedule_at(slot_time(target), [this] { engine_tick(); });
}

void Network::engine_tick() {
  if (!engine_yielded_ && sim_.has_pending_at(sim_.now())) {
    // Yield once: re-scheduling at the same instant gives this event the
    // newest sequence number, so anything else due now (flow generators on
    // slot boundaries, failure injections, protocol timers) runs first —
    // exactly the order the polled loop produces, whose tick is armed only
    // one slot ahead and therefore always newest. When nothing else is due
    // at this instant the yield would be a no-op, so it is skipped and the
    // common case costs one simulator event per woken slot.
    engine_yielded_ = true;
    engine_event_ = sim_.schedule_at(sim_.now(), [this] { engine_tick(); });
    return;
  }
  engine_yielded_ = false;
  const bool pf = prof::enabled();
  const std::uint64_t slot_t0 = pf ? prof::now_ns() : 0;
  std::uint64_t mark = slot_t0;
  const std::uint64_t asn = armed_asn_;
  armed_asn_ = kNeverOccupied;

  participants_.clear();
  // Drain every shard heap that is due, then sort + dedup the union: the
  // slot-synchronous merge barrier. The merged set (and hence everything
  // downstream) is independent of shard count and heap iteration order.
  for (WakeHeap& heap : wake_heaps_) {
    while (!heap.empty() && heap.top().asn <= asn) {
      const WakeHeap::Entry entry = heap.pop();
      if (entry.asn != asn) continue;                  // stale (past)
      if (next_wake_[entry.node] != entry.asn) continue;  // stale (moved)
      if (alive_[entry.node] == 0) continue;
      participants_.push_back(entry.node);
    }
  }
  std::sort(participants_.begin(), participants_.end());
  participants_.erase(
      std::unique(participants_.begin(), participants_.end()),
      participants_.end());

  // Full slot set: the TX-capable (heap-due) nodes, every node listening at
  // this ASN per the reverse listen index, and all scanners (they might
  // hear a frame in any executed slot). Every source is already sorted and
  // duplicate-free (participants_ above, the per-offset bucket lists, and
  // scanners_ by construction), so pairwise set_union replaces the former
  // concatenate+sort+unique — same set, linear instead of O(n log n), which
  // matters when thousands of scanners join every executed slot.
  slot_nodes_.assign(participants_.begin(), participants_.end());
  for (const BucketFrame& bucket : listen_buckets_) {
    const auto& at = bucket.nodes[asn % bucket.length];
    if (at.empty()) continue;
    merge_scratch_.clear();
    std::set_union(slot_nodes_.begin(), slot_nodes_.end(), at.begin(),
                   at.end(), std::back_inserter(merge_scratch_));
    slot_nodes_.swap(merge_scratch_);
  }
  if (!scanners_.empty()) {
    merge_scratch_.clear();
    std::set_union(slot_nodes_.begin(), slot_nodes_.end(), scanners_.begin(),
                   scanners_.end(), std::back_inserter(merge_scratch_));
    slot_nodes_.swap(merge_scratch_);
  }

  // Settle before planning: a scanner that syncs *during* this slot must
  // have its skipped slots charged as scan listening, not sleep. On the
  // parallel pipeline the settle pass is fused into the plan region (each
  // shard settles its own members right before planning them — the same
  // per-node order, and settling is node-local).
  const bool par = parallel_slot(slot_nodes_.size());
  if (!par) {
    for (const std::uint16_t i : slot_nodes_) {
      if (alive_[i] != 0) settle_node_to(i, asn);
    }
  }
  if (pf) mark = prof::lap(prof::kWakePop, mark);

  last_processed_asn_ = static_cast<std::int64_t>(asn);
  in_slot_ = true;
  dirty_.clear();
  process_slot(asn, sim_.now(), slot_nodes_, pf ? &mark : nullptr,
               /*settle_first=*/par);
  in_slot_ = false;

  // Only the heap-due nodes need a recomputed TX wake: pure listeners'
  // wakes are untouched (their sync deadline moving later on an EB heard
  // here only makes the old heap entry conservatively early), and any node
  // whose queues or slotframes changed this slot notified into dirty_.
  if (parallel_slot(participants_.size())) {
    // Per-shard refresh: each task writes only its members' next_wake_
    // entries and pushes into its own shard's heap; scanner-set edits are
    // deferred and merged at the drain.
    for (std::size_t s = 0; s < num_shards_; ++s) shard_members_[s].clear();
    for (const std::uint16_t i : participants_) {
      shard_members_[shard_of_node_[i]].push_back(i);
    }
    run_region([this, asn](std::size_t s) {
      for (const std::uint32_t i : shard_members_[s]) {
        refresh_wake(i, asn + 1);
      }
    });
    drain_shard_ctxs();
  } else {
    for (const std::uint16_t i : participants_) refresh_wake(i, asn + 1);
  }
  for (const std::uint16_t i : dirty_) apply_wake_change(i, asn + 1, asn + 1);
  arm_engine();
  if (pf) {
    const std::uint64_t now = prof::now_ns();
    prof::add(prof::kWakeRefresh, now - mark);
    prof::add(prof::kSlotTotal, now - slot_t0);
  }
}

void Network::on_node_wake_dirty(NodeId id) {
  if (!engine_active() || next_wake_.empty()) return;
  if (ShardCtx* ctx = t_shard_ctx_) {
    // Raised on a shard task: collect per shard, concatenated into dirty_
    // at the drain. Concatenation order across shards differs from the
    // serial push order, which is result-neutral: apply_wake_change is
    // idempotent per node and its cross-node effects land in sorted sets
    // (listen buckets, scanners) and a tie-broken heap.
    ctx->dirty.push_back(id.value);
    return;
  }
  if (in_slot_) {
    dirty_.push_back(id.value);
    return;
  }
  std::uint64_t from = asn_floor(sim_.now());
  const auto floor_asn = static_cast<std::uint64_t>(last_processed_asn_ + 1);
  if (from < floor_asn) from = floor_asn;
  // Slots strictly before this instant used the old listen pattern; the
  // slot whose tick is exactly now (if any) runs after this event and uses
  // the new one — same order as the polled loop, whose tick is always the
  // newest event at its instant.
  apply_wake_change(id.value, slots_before(sim_.now()), from);
  arm_engine();
}

void Network::settle_node_to(std::size_t i, std::uint64_t target) {
  if (slots_charged_.empty()) return;  // not started
  if (target <= slots_charged_[i]) return;
  const std::uint64_t from = slots_charged_[i];
  const std::uint64_t n = target - from;
  Node& nd = *nodes_[i];
  EnergyMeter& meter = meters_[i];
  const SimDuration span{kSlotDuration.us * static_cast<std::int64_t>(n)};
  if (!nd.mac().synced()) {
    // Scanning the whole window: full-slot listens, and the scan-dwell
    // counter advances exactly as if plan_slot had run in each slot. Sync
    // state is constant across the window — it only changes inside executed
    // slots, which settle first.
    nd.mac().advance_scan(n);
    meter.charge(RadioState::kListen, span);
  } else {
    // Skipped slots where the registered pattern listens cost one RX guard
    // each (nothing was on the air there — any transmitter would have made
    // the slot TX-capable and hence executed); the rest of the window slept.
    std::uint64_t listens = 0;
    if (!registered_.empty()) {
      for (std::uint64_t w = next_registered_listen(i, from); w < target;
           w = next_registered_listen(i, w + 1)) {
        ++listens;
      }
    }
    if (listens > 0) {
      const SimDuration guard{SlotTiming::rx_guard().us *
                              static_cast<std::int64_t>(listens)};
      meter.charge(RadioState::kListen, guard);
      meter.charge(RadioState::kSleep, span - guard);
    } else {
      meter.charge(RadioState::kSleep, span);
    }
  }
  slots_charged_[i] = target;
}

void Network::settle_all() {
  if (!started_) return;
  const std::uint64_t target = slots_completed(sim_.now());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (alive_[i] != 0) settle_node_to(i, target);
  }
}

// --- polled driver ---

void Network::slot_tick() {
  const SimTime slot_start = sim_.now();
  const std::uint64_t asn = asn_++;
  const bool pf = prof::enabled();
  std::uint64_t mark = pf ? prof::now_ns() : 0;
  const std::uint64_t slot_t0 = mark;
  process_slot(asn, slot_start, all_ids_, pf ? &mark : nullptr);
  // mark comes back as the energy-settle end timestamp, so the slot total
  // is exactly the phase sum here (no trailing clock read).
  if (pf) prof::add(prof::kSlotTotal, mark - slot_t0);
  sim_.schedule_after(kSlotDuration, [this] { slot_tick(); });
}

// --- shared per-slot arithmetic ---

void Network::resolve_listener(SlotReception& reception, std::size_t li,
                               std::uint64_t slot_draw_seed,
                               std::uint64_t& guard_misses,
                               std::uint64_t* prof_mark) {
  const SlotListener& listener = listeners_[li];
  std::int32_t best_tx = -1;
  double best_rss = -1e9;
  // The accumulator pass visits only the listener's cell-neighborhood
  // attempts; its candidate list is exactly the co-channel, non-self,
  // grid-coupled subset the former full scan kept, in the same ascending
  // attempt order, so the decode loop below sees the identical sequence.
  const std::span<const std::uint32_t> cands = reception.begin_listener_gather(
      listener.id, listener.channel, listener.clock_offset_us,
      listener.guard_us);
  // Reachability pre-scan: the decode loop below skips every
  // non-maybe_reachable candidate before decoding it, and a skipped pair
  // leaves no trace — no guard miss, no rx_result_ write. So when NO
  // candidate is reachable the whole listener is the empty outcome, and the
  // interference accumulation (the expensive fading/mW passes) can be
  // skipped wholesale without changing any double.
  bool any_reachable = false;
  for (const std::uint32_t t : cands) {
    if (medium_.maybe_reachable(on_air_[t].sender, listener.id)) {
      any_reachable = true;
      break;
    }
  }
  if (any_reachable) reception.accumulate_gathered();
  if (prof_mark != nullptr) {
    const std::uint64_t now = prof::now_ns();
    prof::add(prof::kBeginListener, now - *prof_mark);
    *prof_mark = now;
  }
  if (!any_reachable) return;
  // Batched decode: one sequential walk over the gathered candidate arrays
  // (maybe_reachable prune -> guard -> sensitivity -> blackout -> SINR ->
  // hashed draw -> strongest-RSS capture), identical doubles and guard-miss
  // accounting to calling reception.decode(t) per candidate here.
  const SlotReception::DecodeOutcome outcome =
      reception.decode_candidates(slot_draw_seed);
  guard_misses += outcome.guard_misses;
  best_tx = outcome.best_tx;
  best_rss = outcome.best_rss;
  if (prof_mark != nullptr) {
    const std::uint64_t now = prof::now_ns();
    prof::add(prof::kDecode, now - *prof_mark);
    *prof_mark = now;
  }
  if (best_tx >= 0) rx_result_[li] = RxResult{best_tx, best_rss};
}

void Network::resolve_receptions(std::uint64_t asn, SimTime slot_start,
                                 std::uint64_t* prof_mark) {
  // A listener can decode at most one frame per slot; if several pass the
  // SINR draw (rare near/far capture), the strongest wins. Every per-pair
  // draw is hashed from (asn, listener, sender) and every per-listener
  // outcome lands in its own rx_result_ slot, so the resolution order —
  // serial, or parallel across shards — cannot affect any result; the
  // merge into receptions_ is always listener order.
  receptions_.clear();
  const std::size_t num_listeners = listeners_.size();
  // On a quiet slot prof_mark is left untouched: the caller's next lap
  // absorbs this sliver, so nothing escapes the phase sum.
  if (transmitters_.empty() || num_listeners == 0) return;
  const bool pf = prof_mark != nullptr;
  std::uint64_t mark = pf ? *prof_mark : 0;
  rx_result_.assign(num_listeners, RxResult{});
  // One bucket build per slot, shared read-only by every shard's resolver
  // (and the standalone serial one): O(T) once instead of per shard.
  cell_index_.build(medium_.grid(), on_air_);
  const std::uint64_t slot_draw_seed = hash_mix(draw_seed_, asn);
  if (num_shards_ > 1 && num_listeners >= kMinParallelListeners) {
    // Partition the listener indices by shard once, serially, in O(L):
    // each task then walks only its own list. (The former per-shard filter
    // over the full list cost O(shards * L) — the dominant overhead of
    // high shard counts on few threads.)
    for (std::size_t s = 0; s < num_shards_; ++s) {
      shard_listener_li_[s].clear();
    }
    for (std::size_t li = 0; li < num_listeners; ++li) {
      shard_listener_li_[shard_of_node_[listeners_[li].id.value]].push_back(
          static_cast<std::uint32_t>(li));
    }
    if (pf) {
      const std::uint64_t now = prof::now_ns();
      prof::add(prof::kBucketBuild, now - mark);
      mark = now;
    }
    run_region([&, asn, slot_start, slot_draw_seed](std::size_t s) {
      // Per-shard resolver instance and guard counter: shards share no
      // mutable state.
      SlotReception& reception = shard_reception_[s];
      reception.begin_slot(asn, slot_start, on_air_, &cell_index_);
      std::uint64_t misses = 0;
      for (const std::uint32_t li : shard_listener_li_[s]) {
        // Nothing on the air couples to this listener on its channel: its
        // candidate list would come back empty (no decode, no draw, no
        // guard miss), so skipping it wholesale is bit-identical — and in
        // a city-scale deployment most listeners are far from every
        // same-channel transmitter.
        if (cell_index_.empty_near(listeners_[li].id.value,
                                   listeners_[li].channel)) {
          continue;
        }
        resolve_listener(reception, li, slot_draw_seed, misses);
      }
      shard_guard_misses_[s] = misses;
    });
    // Guard misses sum across shards (integer addition commutes, so the
    // total matches the serial listener-order count).
    for (const std::uint64_t misses : shard_guard_misses_) {
      guard_misses_ += misses;
    }
    if (pf) {
      const std::uint64_t now = prof::now_ns();
      prof::add(prof::kShardResolve, now - mark);
      mark = now;
    }
  } else {
    SlotReception& reception = shard_reception_[0];
    reception.begin_slot(asn, slot_start, on_air_, &cell_index_);
    if (pf) {
      const std::uint64_t now = prof::now_ns();
      prof::add(prof::kBucketBuild, now - mark);
      mark = now;
    }
    std::uint64_t misses = 0;
    for (std::size_t li = 0; li < num_listeners; ++li) {
      // Same wholesale skip as the sharded path: an empty same-channel
      // neighborhood means an empty candidate list and an untouched
      // rx_result_ slot.
      if (cell_index_.empty_near(listeners_[li].id.value,
                                 listeners_[li].channel)) {
        continue;
      }
      resolve_listener(reception, li, slot_draw_seed, misses,
                       pf ? &mark : nullptr);
    }
    guard_misses_ += misses;
  }
  for (std::size_t li = 0; li < num_listeners; ++li) {
    const RxResult& result = rx_result_[li];
    if (result.tx_index < 0) continue;
    receptions_.push_back(SlotRx{listeners_[li].id,
                                 static_cast<std::size_t>(result.tx_index),
                                 result.rss_dbm});
  }
  if (pf) {
    const std::uint64_t now = prof::now_ns();
    prof::add(prof::kMergeCompact, now - mark);
    *prof_mark = now;
  }
}

bool Network::parallel_slot(std::size_t num_participants) const {
  return node_parallel_ && num_participants >= kMinParallelSlotNodes;
}

void Network::run_region(const std::function<void(std::size_t)>& fn) {
  const bool pf = prof::enabled();
  auto task = [&](std::size_t s) {
    const std::uint64_t t0 = pf ? prof::now_ns() : 0;
    ShardCtx& ctx = shard_ctx_[s];
    t_shard_ctx_ = &ctx;
    Simulator::set_defer_buffer(ctx.defer);
    fn(s);
    Simulator::set_defer_buffer(nullptr);
    t_shard_ctx_ = nullptr;
    if (pf) shard_busy_ns_[s] += prof::now_ns() - t0;
  };
  if (pool_) {
    pool_->run(num_shards_, task);
  } else {
    for (std::size_t s = 0; s < num_shards_; ++s) task(s);
  }
}

void Network::drain_shard_ctxs() {
  // 1) Simulator ops, globally sorted by site key: the exact serial event
  //    sequence, including seq numbers (nothing else schedules between a
  //    region's barrier and this replay).
  sim_.replay_deferred(defer_bufs_.data(), num_shards_);
  // 2) Stat records, same key space: the collector's first-wins dedup sees
  //    serial arrival order.
  bool any_stats = false;
  for (const ShardCtx& ctx : shard_ctx_) {
    if (!ctx.stats.empty()) {
      any_stats = true;
      break;
    }
  }
  if (any_stats) {
    stat_replay_.clear();
    for (ShardCtx& ctx : shard_ctx_) {
      for (StatOp& op : ctx.stats) stat_replay_.push_back(&op);
    }
    std::stable_sort(stat_replay_.begin(), stat_replay_.end(),
                     [](const StatOp* a, const StatOp* b) {
                       return a->key < b->key;
                     });
    for (const StatOp* op : stat_replay_) {
      if (op->delivered) {
        apply_delivered(op->flow, op->seq, op->at, op->tunnel);
      } else {
        apply_dropped(op->flow, op->seq, op->at, op->reason, op->tunnel,
                      op->at_final_dst);
      }
    }
    stat_replay_.clear();
  }
  // 3) Scanner-set edits (membership-checked: the per-node flag already
  //    flipped inside the region) and dirty-wake concatenation, in shard
  //    order — both order-neutral (sorted set / idempotent per node).
  for (ShardCtx& ctx : shard_ctx_) {
    for (const ScanOp& op : ctx.scans) {
      const auto it =
          std::lower_bound(scanners_.begin(), scanners_.end(), op.node);
      if (op.scanning) {
        if (it == scanners_.end() || *it != op.node) {
          scanners_.insert(it, op.node);
        }
      } else if (it != scanners_.end() && *it == op.node) {
        scanners_.erase(it);
      }
    }
    ctx.scans.clear();
    if (!ctx.dirty.empty()) {
      dirty_.insert(dirty_.end(), ctx.dirty.begin(), ctx.dirty.end());
      ctx.dirty.clear();
    }
    ctx.stats.clear();
  }
}

void Network::process_slot(std::uint64_t asn, SimTime slot_start,
                           const std::vector<std::uint16_t>& participants,
                           std::uint64_t* prof_mark, bool settle_first) {
  if (parallel_slot(participants.size())) {
    process_slot_parallel(asn, slot_start, participants, prof_mark,
                          settle_first);
    return;
  }
  // settle_first only accompanies the parallel decision, which is a pure
  // function of the same inputs — the serial body never owes a settle.
  const bool pf = prof_mark != nullptr;
  std::uint64_t mark = pf ? *prof_mark : 0;
  transmitters_.clear();
  listeners_.clear();

  const std::size_t num_participants = participants.size();
  for (std::size_t pi = 0; pi < num_participants; ++pi) {
    const std::uint16_t idx = participants[pi];
    // Pull the plan-state lines of a node a few steps ahead: participants'
    // TschMac objects are scattered across the heap and each plan_slot()
    // otherwise stalls on its first member load.
    if (pi + 4 < num_participants) {
      nodes_[participants[pi + 4]]->mac().prefetch_plan_state();
    }
    if (alive_[idx] == 0) continue;
    Node& node = *nodes_[idx];
    SlotPlan plan = node.mac().plan_slot(asn, slot_start);
    kinds_[idx] = plan.kind;
    channels_[idx] = plan.channel;
    // Snapshot the participant's slot-start clock offset once, right after
    // its own plan_slot (other nodes' planning cannot move it): reused by
    // the listener guard and the on-air attempts, and the only clock query
    // the parallel resolver ever sees — shards read the array, never
    // TschMac. Same anchor instant as the former per-site queries, so the
    // doubles are identical.
    if (clocks_active_) {
      clock_offset_us_[idx] = node.mac().clock_offset_us(slot_start);
    }
    switch (plan.kind) {
      case SlotPlan::Kind::kTx:
        transmitters_.push_back(PlannedTx{node.id(), std::move(plan)});
        break;
      case SlotPlan::Kind::kRx:
      case SlotPlan::Kind::kScan: {
        SlotListener listener{node.id(), plan.channel};
        if (clocks_active_ && plan.kind == SlotPlan::Kind::kRx) {
          // Dedicated RX cells only open the guard window; scan slots
          // listen for the whole slot and stay guard-exempt (that is how a
          // drifted-out node can still capture an EB and resynchronize).
          listener.clock_offset_us = clock_offset_us_[idx];
          listener.guard_us =
              static_cast<double>(SlotTiming::rx_guard().us);
        }
        listeners_.push_back(listener);
        break;
      }
      case SlotPlan::Kind::kSleep:
        break;
    }
  }

  // All frames on the air this slot (for SINR interference terms).
  on_air_.clear();
  on_air_.reserve(transmitters_.size());
  for (const PlannedTx& tx : transmitters_) {
    TransmissionAttempt attempt;
    attempt.sender = tx.sender;
    attempt.channel = tx.plan.channel;
    attempt.frame_bytes = tx.plan.frame.length_bytes;
    attempt.tx_power_dbm = config_.node.mac.tx_power_dbm;
    if (clocks_active_) {
      attempt.clock_offset_us = clock_offset_us_[tx.sender.value];
    }
    on_air_.push_back(attempt);
  }
  observe_on_air(asn, slot_start);
  if (pf) mark = prof::lap(prof::kPlanGather, mark);

  // Reception resolution through the cell-indexed per-slot resolver: each
  // attempt's received power at a listener is computed once, and per-pair
  // interference falls out of the listener's total-power accumulator. A
  // listener can decode at most one frame per slot; if several pass the SINR
  // draw (rare near/far capture), the strongest wins. Draws are keyed by
  // (asn, listener, sender), so skipping a pruned pair — its mean RSS is
  // provably too far below sensitivity for any fading excursion to decode —
  // affects no other pair's outcome (and its own draw would fail anyway:
  // probability is exactly 0).
  resolve_receptions(asn, slot_start, pf ? &mark : nullptr);

  // ACK resolution: a unicast frame decoded by its destination triggers an
  // ACK on the reverse link. ACKs occupy the tail of the slot; concurrent
  // ACKs on the same channel interfere with each other and jammers apply.
  // ACK draws use their own key space so they can never collide with a data
  // draw of the same (asn, listener, sender).
  frame_acked_.assign(transmitters_.size(), 0);
  dst_received_.assign(transmitters_.size(), 0);
  ack_on_air_.clear();
  for (const SlotRx& rx : receptions_) {
    const PlannedTx& tx = transmitters_[rx.tx_index];
    if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
      dst_received_[rx.tx_index] = 1;
      TransmissionAttempt ack;
      ack.sender = rx.receiver;
      ack.channel = tx.plan.channel;
      ack.frame_bytes = FrameSizes::kAck;
      ack.tx_power_dbm = config_.node.mac.tx_power_dbm;
      ack_on_air_.push_back(ack);
    }
  }
  {
    // The reverse-link walk reuses the same cell pruning as the data path:
    // an index over the slot's ACK attempts cuts each check's interference
    // sum to the acker's neighborhood (identical doubles — uncoupled ACKs
    // contribute exactly 0.0 there too).
    ack_cells_.build(medium_.grid(), ack_on_air_);
    std::size_t ack_index = 0;
    for (std::size_t t = 0; t < transmitters_.size(); ++t) {
      if (!dst_received_[t]) continue;
      const TransmissionAttempt& ack = ack_on_air_[ack_index++];
      const NodeId ack_rx = transmitters_[t].sender;
      if (!medium_.maybe_reachable(ack.sender, ack_rx)) continue;
      const double p = medium_.reception_probability(
          ack, ack_rx, asn, slot_start, ack_on_air_, 0.0,
          std::numeric_limits<double>::infinity(), &ack_cells_);
      if (!(p > 0.0)) continue;
      const double draw = hashed_uniform(
          hash_mix(ack_seed_, asn, ack_rx.value, ack.sender.value));
      frame_acked_[t] = draw < p ? 1 : 0;
    }
  }
  if (pf) mark = prof::lap(prof::kAckResolve, mark);

  // Deliver frames, then report TX outcomes. Completion is credited at the
  // end of the slot: the frame and its ACK occupy the slot body.
  const SimTime slot_done = slot_start + kSlotDuration;
  for (const SlotRx& rx : receptions_) {
    const PlannedTx& tx = transmitters_[rx.tx_index];
    // The sender's slot-start offset rides along: an EB from the time
    // source corrects the receiver's clock to it.
    node(rx.receiver).mac().on_receive(tx.plan.frame, rx.rss_dbm, asn,
                                       slot_done,
                                       on_air_[rx.tx_index].clock_offset_us);
  }
  for (std::size_t t = 0; t < transmitters_.size(); ++t) {
    double acker_offset_us = 0.0;
    if (clocks_active_ && frame_acked_[t] != 0) {
      // The acker is the unicast destination (it decoded the frame, so its
      // id is valid and alive); its offset feeds the ACK-borne correction.
      acker_offset_us = node(transmitters_[t].plan.frame.dst)
                            .mac()
                            .clock_offset_us(slot_start);
    }
    node(transmitters_[t].sender)
        .mac()
        .on_tx_outcome(frame_acked_[t] != 0, asn, slot_done, acker_offset_us);
  }
  if (pf) mark = prof::lap(prof::kDeliver, mark);

  // Energy accounting: every participant accounts exactly one slot (absent
  // nodes sleep the whole slot; their energy is settled lazily).
  for (const std::uint16_t i : participants) {
    if (alive_[i] == 0) continue;
    listen_time_[i] = SimDuration{0};
    tx_time_[i] = SimDuration{0};
    switch (kinds_[i]) {
      case SlotPlan::Kind::kScan:
        listen_time_[i] = kSlotDuration;
        break;
      case SlotPlan::Kind::kRx:
        listen_time_[i] = SlotTiming::rx_guard();
        break;
      default:
        break;
    }
  }
  for (std::size_t t = 0; t < transmitters_.size(); ++t) {
    const PlannedTx& tx = transmitters_[t];
    const auto i = static_cast<std::size_t>(tx.sender.value);
    tx_time_[i] =
        tx_time_[i] + SlotTiming::frame_duration(tx.plan.frame.length_bytes);
    if (tx.plan.expects_ack) {
      listen_time_[i] = listen_time_[i] + SlotTiming::ack_wait() +
                        SlotTiming::ack_duration();
    }
  }
  for (const SlotRx& rx : receptions_) {
    const PlannedTx& tx = transmitters_[rx.tx_index];
    const auto i = static_cast<std::size_t>(rx.receiver.value);
    listen_time_[i] =
        listen_time_[i] +
        SlotTiming::frame_duration(tx.plan.frame.length_bytes);
    if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
      tx_time_[i] = tx_time_[i] + SlotTiming::ack_duration();
    }
  }
  for (const std::uint16_t i : participants) {
    if (alive_[i] == 0) continue;
    // Sleep for any skipped slots before this one. The common case (node
    // charged through the previous slot) is decided here without the call.
    if (asn > slots_charged_[i]) settle_node_to(i, asn);
    EnergyMeter& meter = meters_[i];
    SimDuration active = listen_time_[i] + tx_time_[i];
    if (active > kSlotDuration) active = kSlotDuration;
    if (tx_time_[i].us > 0) meter.charge(RadioState::kTransmit, tx_time_[i]);
    if (listen_time_[i].us > 0) {
      meter.charge(RadioState::kListen, listen_time_[i]);
    }
    meter.charge(RadioState::kSleep, kSlotDuration - active);
    slots_charged_[i] = asn + 1;
  }

  // End-of-slot housekeeping. Scanner slots are skipped without touching the
  // node: a participant that planned kScan either stayed unsynced (end_slot
  // returns at its first branch) or synced inside this very slot, in which
  // case on_receive just projected every deadline past slot_end — end_slot
  // is a no-op for it either way.
  const SimTime slot_end = slot_start + kSlotDuration;
  for (const std::uint16_t i : participants) {
    if (alive_[i] == 0 || kinds_[i] == SlotPlan::Kind::kScan) continue;
    nodes_[i]->mac().end_slot(asn, slot_end);
  }
  if (pf) {
    const std::uint64_t now = prof::now_ns();
    prof::add(prof::kEnergySettle, now - mark);
    *prof_mark = now;
  }
}

void Network::process_slot_parallel(
    std::uint64_t asn, SimTime slot_start,
    const std::vector<std::uint16_t>& participants, std::uint64_t* prof_mark,
    bool settle_first) {
  const bool pf = prof_mark != nullptr;
  std::uint64_t mark = pf ? *prof_mark : 0;
  const std::size_t num_participants = participants.size();

  // Partition the participant ranks by shard (serial, O(P)); the lists are
  // the work units of every region below. Ranks (not ids) ride along so
  // end_slot sites reproduce the serial participant order.
  for (std::size_t s = 0; s < num_shards_; ++s) shard_members_[s].clear();
  for (std::size_t pi = 0; pi < num_participants; ++pi) {
    shard_members_[shard_of_node_[participants[pi]]].push_back(
        static_cast<std::uint32_t>(pi));
  }

  // --- Region A: settle + plan + clock snapshot, per shard. Planning is
  // node-local; the rare hook or timer op it raises defers under the
  // participant-rank site, so the post-barrier replay is the serial order.
  run_region([&, asn, slot_start, settle_first](std::size_t s) {
    Simulator::DeferBuffer& defer = defer_bufs_[s];
    const std::vector<std::uint32_t>& members = shard_members_[s];
    const std::size_t m = members.size();
    for (std::size_t j = 0; j < m; ++j) {
      const std::uint16_t idx = participants[members[j]];
      if (j + 4 < m) {
        nodes_[participants[members[j + 4]]]->mac().prefetch_plan_state();
      }
      if (alive_[idx] == 0) continue;
      defer.set_site(members[j]);
      // Settle with the same per-node order as the serial path (settle
      // immediately before the node's own plan; settling is node-local, so
      // cross-node interleaving is immaterial).
      if (settle_first) settle_node_to(idx, asn);
      Node& nd = *nodes_[idx];
      SlotPlan plan = nd.mac().plan_slot(asn, slot_start);
      kinds_[idx] = plan.kind;
      channels_[idx] = plan.channel;
      if (clocks_active_) {
        clock_offset_us_[idx] = nd.mac().clock_offset_us(slot_start);
      }
      if (plan.kind == SlotPlan::Kind::kTx) plans_[idx] = std::move(plan);
    }
  });
  drain_shard_ctxs();

  // Serial gather in participant order: bit-identical transmitter/listener
  // lists to the serial plan loop.
  transmitters_.clear();
  listeners_.clear();
  for (std::size_t pi = 0; pi < num_participants; ++pi) {
    const std::uint16_t idx = participants[pi];
    if (alive_[idx] == 0) continue;
    switch (kinds_[idx]) {
      case SlotPlan::Kind::kTx:
        transmitters_.push_back(PlannedTx{NodeId{idx}, std::move(plans_[idx])});
        break;
      case SlotPlan::Kind::kRx:
      case SlotPlan::Kind::kScan: {
        SlotListener listener{NodeId{idx}, channels_[idx]};
        if (clocks_active_ && kinds_[idx] == SlotPlan::Kind::kRx) {
          listener.clock_offset_us = clock_offset_us_[idx];
          listener.guard_us = static_cast<double>(SlotTiming::rx_guard().us);
        }
        listeners_.push_back(listener);
        break;
      }
      case SlotPlan::Kind::kSleep:
        break;
    }
  }

  on_air_.clear();
  on_air_.reserve(transmitters_.size());
  for (const PlannedTx& tx : transmitters_) {
    TransmissionAttempt attempt;
    attempt.sender = tx.sender;
    attempt.channel = tx.plan.channel;
    attempt.frame_bytes = tx.plan.frame.length_bytes;
    attempt.tx_power_dbm = config_.node.mac.tx_power_dbm;
    if (clocks_active_) {
      attempt.clock_offset_us = clock_offset_us_[tx.sender.value];
    }
    on_air_.push_back(attempt);
  }
  observe_on_air(asn, slot_start);  // serial: identical to the serial body
  if (pf) mark = prof::lap(prof::kPlanGather, mark);

  resolve_receptions(asn, slot_start, pf ? &mark : nullptr);

  // ACK resolution: serial and identical to the serial body (hashed draws,
  // modest work — the slot's cross-shard synchronization point anyway).
  frame_acked_.assign(transmitters_.size(), 0);
  dst_received_.assign(transmitters_.size(), 0);
  ack_on_air_.clear();
  for (const SlotRx& rx : receptions_) {
    const PlannedTx& tx = transmitters_[rx.tx_index];
    if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
      dst_received_[rx.tx_index] = 1;
      TransmissionAttempt ack;
      ack.sender = rx.receiver;
      ack.channel = tx.plan.channel;
      ack.frame_bytes = FrameSizes::kAck;
      ack.tx_power_dbm = config_.node.mac.tx_power_dbm;
      ack_on_air_.push_back(ack);
    }
  }
  {
    ack_cells_.build(medium_.grid(), ack_on_air_);
    std::size_t ack_index = 0;
    for (std::size_t t = 0; t < transmitters_.size(); ++t) {
      if (!dst_received_[t]) continue;
      const TransmissionAttempt& ack = ack_on_air_[ack_index++];
      const NodeId ack_rx = transmitters_[t].sender;
      if (!medium_.maybe_reachable(ack.sender, ack_rx)) continue;
      const double p = medium_.reception_probability(
          ack, ack_rx, asn, slot_start, ack_on_air_, 0.0,
          std::numeric_limits<double>::infinity(), &ack_cells_);
      if (!(p > 0.0)) continue;
      const double draw = hashed_uniform(
          hash_mix(ack_seed_, asn, ack_rx.value, ack.sender.value));
      frame_acked_[t] = draw < p ? 1 : 0;
    }
  }
  if (pf) mark = prof::lap(prof::kAckResolve, mark);

  // Partition receptions by receiver shard and transmissions by sender
  // shard (serial, O(R + T)): the deliver/outcome/energy work units.
  const std::size_t num_rx = receptions_.size();
  const std::size_t num_tx = transmitters_.size();
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shard_tx_[s].clear();
    shard_rx_[s].clear();
  }
  for (std::size_t r = 0; r < num_rx; ++r) {
    shard_rx_[shard_of_node_[receptions_[r].receiver.value]].push_back(
        static_cast<std::uint32_t>(r));
  }
  for (std::size_t t = 0; t < num_tx; ++t) {
    shard_tx_[shard_of_node_[transmitters_[t].sender.value]].push_back(
        static_cast<std::uint32_t>(t));
  }

  const SimTime slot_done = slot_start + kSlotDuration;
  // Site layout across the fused region, mirroring the serial statement
  // order: receptions at [0, R), TX outcomes at [R, R+T), end_slot at
  // R+T+pi. Keys are disjoint, so one sorted replay is the serial order.
  auto deliver_rx = [&, asn, slot_done](std::size_t s) {
    Simulator::DeferBuffer& defer = defer_bufs_[s];
    for (const std::uint32_t r : shard_rx_[s]) {
      defer.set_site(r);
      const SlotRx& rx = receptions_[r];
      node(rx.receiver)
          .mac()
          .on_receive(transmitters_[rx.tx_index].plan.frame, rx.rss_dbm, asn,
                      slot_done, on_air_[rx.tx_index].clock_offset_us);
    }
  };
  auto report_outcomes = [&, asn, slot_done, num_rx](std::size_t s) {
    Simulator::DeferBuffer& defer = defer_bufs_[s];
    for (const std::uint32_t t : shard_tx_[s]) {
      defer.set_site(num_rx + t);
      node(transmitters_[t].sender)
          .mac()
          .on_tx_outcome(frame_acked_[t] != 0, asn, slot_done, 0.0);
    }
  };
  auto energy_and_end = [&, asn, slot_done, num_rx, num_tx](std::size_t s) {
    Simulator::DeferBuffer& defer = defer_bufs_[s];
    const std::vector<std::uint32_t>& members = shard_members_[s];
    for (const std::uint32_t pi : members) {
      const std::uint16_t i = participants[pi];
      if (alive_[i] == 0) continue;
      listen_time_[i] = SimDuration{0};
      tx_time_[i] = SimDuration{0};
      switch (kinds_[i]) {
        case SlotPlan::Kind::kScan:
          listen_time_[i] = kSlotDuration;
          break;
        case SlotPlan::Kind::kRx:
          listen_time_[i] = SlotTiming::rx_guard();
          break;
        default:
          break;
      }
    }
    for (const std::uint32_t t : shard_tx_[s]) {
      const PlannedTx& tx = transmitters_[t];
      const auto i = static_cast<std::size_t>(tx.sender.value);
      tx_time_[i] =
          tx_time_[i] + SlotTiming::frame_duration(tx.plan.frame.length_bytes);
      if (tx.plan.expects_ack) {
        listen_time_[i] = listen_time_[i] + SlotTiming::ack_wait() +
                          SlotTiming::ack_duration();
      }
    }
    for (const std::uint32_t r : shard_rx_[s]) {
      const SlotRx& rx = receptions_[r];
      const PlannedTx& tx = transmitters_[rx.tx_index];
      const auto i = static_cast<std::size_t>(rx.receiver.value);
      listen_time_[i] =
          listen_time_[i] +
          SlotTiming::frame_duration(tx.plan.frame.length_bytes);
      if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
        tx_time_[i] = tx_time_[i] + SlotTiming::ack_duration();
      }
    }
    for (const std::uint32_t pi : members) {
      const std::uint16_t i = participants[pi];
      if (alive_[i] == 0) continue;
      if (asn > slots_charged_[i]) settle_node_to(i, asn);
      EnergyMeter& meter = meters_[i];
      SimDuration active = listen_time_[i] + tx_time_[i];
      if (active > kSlotDuration) active = kSlotDuration;
      if (tx_time_[i].us > 0) meter.charge(RadioState::kTransmit, tx_time_[i]);
      if (listen_time_[i].us > 0) {
        meter.charge(RadioState::kListen, listen_time_[i]);
      }
      meter.charge(RadioState::kSleep, kSlotDuration - active);
      slots_charged_[i] = asn + 1;
    }
    for (const std::uint32_t pi : members) {
      const std::uint16_t i = participants[pi];
      if (alive_[i] == 0 || kinds_[i] == SlotPlan::Kind::kScan) continue;
      defer.set_site(num_rx + num_tx + pi);
      nodes_[i]->mac().end_slot(asn, slot_done);
    }
  };

  if (!clocks_active_) {
    // --- Region B (fused): deliver + TX outcomes + energy + end_slot in
    // one fork-join. Receivers never transmit in the same slot and
    // on_tx_outcome touches only the transmitter when clocks are cold, so
    // every mutation inside the region is per-node (= per-shard).
    run_region([&](std::size_t s) {
      deliver_rx(s);
      report_outcomes(s);
      energy_and_end(s);
    });
    drain_shard_ctxs();
    if (pf) {
      mark = prof::lap(prof::kDeliver, mark);
      mark = prof::lap(prof::kEnergySettle, mark);
    }
  } else {
    // --- Region B1: deliveries only. The ACK-borne clock correction makes
    // on_tx_outcome read the acker's post-receive clock state — a
    // cross-shard read — so the outcome loop stays serial here.
    run_region(deliver_rx);
    drain_shard_ctxs();
    for (std::size_t t = 0; t < num_tx; ++t) {
      double acker_offset_us = 0.0;
      if (frame_acked_[t] != 0) {
        acker_offset_us = node(transmitters_[t].plan.frame.dst)
                              .mac()
                              .clock_offset_us(slot_start);
      }
      node(transmitters_[t].sender)
          .mac()
          .on_tx_outcome(frame_acked_[t] != 0, asn, slot_done,
                         acker_offset_us);
    }
    if (pf) mark = prof::lap(prof::kDeliver, mark);
    // --- Region B2: energy + end_slot.
    run_region(energy_and_end);
    drain_shard_ctxs();
    if (pf) mark = prof::lap(prof::kEnergySettle, mark);
  }
  if (pf) *prof_mark = mark;
}

}  // namespace digs
