#include "core/network.h"

#include <algorithm>

namespace digs {

Network::Network(const NetworkConfig& config, std::vector<Position> positions)
    : config_(config),
      medium_(config.medium, std::move(positions), config.seed),
      rng_(hash_mix(config.seed, 0xAE7)),
      joined_at_(medium_.num_nodes(), SimTime{-1}),
      fully_joined_at_(medium_.num_nodes(), SimTime{-1}) {
  Node::Hooks hooks;
  hooks.on_data_delivered = [this](NodeId /*ap*/, const DataPayload& payload,
                                   SimTime now) {
    stats_.on_delivered(payload.flow, payload.seq, now);
  };
  hooks.on_data_lost = [this](NodeId /*node*/, const DataPayload& payload,
                              SimTime now) {
    stats_.on_dropped(payload.flow, payload.seq, now);
  };
  hooks.on_joined = [this](NodeId id, SimTime now) {
    joined_at_[id.value] = now;
  };
  hooks.on_fully_joined = [this](NodeId id, SimTime now) {
    fully_joined_at_[id.value] = now;
  };
  hooks.gateway_route = [this](const DataPayload& payload, SimTime now) {
    // Wired backbone: inject at the access point holding the FRESHEST
    // route to the destination (a re-homed device may transiently appear
    // in both AP subtrees; the newer DAO-sequence wins).
    std::int64_t best_freshness = -1;
    std::uint16_t best_ap = 0;
    for (std::uint16_t ap = 0; ap < config_.num_access_points; ++ap) {
      if (!nodes_[ap]->alive()) continue;
      const std::int64_t freshness =
          nodes_[ap]->routing().downlink_freshness(payload.final_dst);
      if (freshness > best_freshness) {
        best_freshness = freshness;
        best_ap = ap;
      }
    }
    if (best_freshness < 0) return false;
    return nodes_[best_ap]->inject_downlink(payload, now);
  };

  nodes_.reserve(medium_.num_nodes());
  for (std::size_t i = 0; i < medium_.num_nodes(); ++i) {
    const NodeId id{static_cast<std::uint16_t>(i)};
    const bool is_ap = i < config_.num_access_points;
    nodes_.push_back(std::make_unique<Node>(
        sim_, id, is_ap, config_.suite, config_.node,
        config_.num_access_points, rng_.fork(hash_mix(0x40DE, i)), hooks));
  }
  if (config_.suite == ProtocolSuite::kWirelessHart) {
    manager_ = std::make_unique<CentralManager>(*this, config_.manager);
  }
}

void Network::add_flow(const FlowSpec& flow) {
  stats_.register_flow(flow.id, flow.source);
  flows_.push_back(flow);
  flow_seq_.push_back(0);
}

void Network::start() {
  if (started_) return;
  started_ = true;
  const SimTime now = sim_.now();
  for (auto& node : nodes_) node->start(now);
  if (manager_) manager_->start();

  // Slot loop.
  sim_.schedule_after(kSlotDuration, [this] { slot_tick(); });

  // Flow generators.
  (void)now;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    sim_.schedule_after(flows_[i].start_offset,
                        [this, i] { generate_flow_packet(i); });
  }
}

void Network::generate_flow_packet(std::size_t flow_index) {
  const FlowSpec& flow = flows_[flow_index];
  const std::uint32_t seq = flow_seq_[flow_index]++;
  const SimTime now = sim_.now();
  stats_.on_generated(flow.id, seq, now);
  Node& source = node(flow.source);
  if (source.alive()) {
    source.generate_packet(flow.id, seq, now, flow.downlink_dest);
  } else {
    stats_.on_dropped(flow.id, seq, now);
  }
  sim_.schedule_after(flow.period,
                      [this, flow_index] { generate_flow_packet(flow_index); });
}

void Network::set_node_alive(NodeId id, bool alive) {
  node(id).set_alive(alive, sim_.now());
  if (manager_) manager_->notify_dynamics();
}

std::size_t Network::joined_count() const {
  std::size_t n = 0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    if (joined_at_[i].us >= 0) ++n;
  }
  return n;
}

double Network::total_energy_mj() const {
  double mj = 0.0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    mj += nodes_[i]->meter().energy_mj();
  }
  return mj;
}

double Network::mean_duty_cycle() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = config_.num_access_points; i < nodes_.size(); ++i) {
    sum += nodes_[i]->meter().duty_cycle();
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

void Network::reset_energy() {
  for (auto& node : nodes_) node->meter().reset();
}

void Network::slot_tick() {
  const SimTime slot_start = sim_.now();
  const std::uint64_t asn = asn_++;

  struct PlannedTx {
    NodeId sender;
    SlotPlan plan;
  };
  struct Listener {
    NodeId id;
    PhysicalChannel channel;
  };

  std::vector<PlannedTx> transmitters;
  std::vector<Listener> listeners;
  std::vector<SlotPlan::Kind> kinds(nodes_.size(), SlotPlan::Kind::kSleep);
  std::vector<PhysicalChannel> channels(nodes_.size(), 0);

  for (auto& node_ptr : nodes_) {
    Node& node = *node_ptr;
    if (!node.alive()) continue;
    SlotPlan plan = node.mac().plan_slot(asn, slot_start);
    kinds[node.id().value] = plan.kind;
    channels[node.id().value] = plan.channel;
    switch (plan.kind) {
      case SlotPlan::Kind::kTx:
        transmitters.push_back(PlannedTx{node.id(), std::move(plan)});
        break;
      case SlotPlan::Kind::kRx:
      case SlotPlan::Kind::kScan:
        listeners.push_back(Listener{node.id(), plan.channel});
        break;
      case SlotPlan::Kind::kSleep:
        break;
    }
  }

  // All frames on the air this slot (for SINR interference terms).
  std::vector<TransmissionAttempt> on_air;
  on_air.reserve(transmitters.size());
  for (const PlannedTx& tx : transmitters) {
    TransmissionAttempt attempt;
    attempt.sender = tx.sender;
    attempt.channel = tx.plan.channel;
    attempt.frame_bytes = tx.plan.frame.length_bytes;
    attempt.tx_power_dbm = config_.node.mac.tx_power_dbm;
    on_air.push_back(attempt);
  }

  // Reception resolution. A listener can decode at most one frame per slot;
  // if several pass the SINR draw (rare near/far capture), the strongest
  // wins.
  struct Reception {
    NodeId receiver;
    std::size_t tx_index;
    double rss_dbm;
  };
  std::vector<Reception> receptions;
  Rng draw_rng = rng_.fork(hash_mix(0xD0A1, asn));

  for (const Listener& listener : listeners) {
    int best_tx = -1;
    double best_rss = -1e9;
    for (std::size_t t = 0; t < transmitters.size(); ++t) {
      const TransmissionAttempt& attempt = on_air[t];
      if (attempt.channel != listener.channel) continue;
      if (attempt.sender == listener.id) continue;
      if (!medium_.try_receive(attempt, listener.id, asn, slot_start, on_air,
                               draw_rng)) {
        continue;
      }
      const double rss = medium_.rss_dbm(attempt.sender, listener.id,
                                         attempt.channel, asn,
                                         attempt.tx_power_dbm);
      if (rss > best_rss) {
        best_rss = rss;
        best_tx = static_cast<int>(t);
      }
    }
    if (best_tx >= 0) {
      receptions.push_back(
          Reception{listener.id, static_cast<std::size_t>(best_tx), best_rss});
    }
  }

  // ACK resolution: a unicast frame decoded by its destination triggers an
  // ACK on the reverse link. ACKs occupy the tail of the slot; concurrent
  // ACKs on the same channel interfere with each other and jammers apply.
  std::vector<bool> frame_acked(transmitters.size(), false);
  std::vector<bool> dst_received(transmitters.size(), false);
  std::vector<TransmissionAttempt> ack_on_air;
  for (const Reception& rx : receptions) {
    const PlannedTx& tx = transmitters[rx.tx_index];
    if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
      dst_received[rx.tx_index] = true;
      TransmissionAttempt ack;
      ack.sender = rx.receiver;
      ack.channel = tx.plan.channel;
      ack.frame_bytes = FrameSizes::kAck;
      ack.tx_power_dbm = config_.node.mac.tx_power_dbm;
      ack_on_air.push_back(ack);
    }
  }
  {
    std::size_t ack_index = 0;
    for (std::size_t t = 0; t < transmitters.size(); ++t) {
      if (!dst_received[t]) continue;
      const TransmissionAttempt& ack = ack_on_air[ack_index++];
      frame_acked[t] = medium_.try_receive(ack, transmitters[t].sender, asn,
                                           slot_start, ack_on_air, draw_rng);
    }
  }

  // Deliver frames, then report TX outcomes. Completion is credited at the
  // end of the slot: the frame and its ACK occupy the slot body.
  const SimTime slot_done = slot_start + kSlotDuration;
  for (const Reception& rx : receptions) {
    const PlannedTx& tx = transmitters[rx.tx_index];
    node(rx.receiver).mac().on_receive(tx.plan.frame, rx.rss_dbm, asn,
                                       slot_done);
  }
  for (std::size_t t = 0; t < transmitters.size(); ++t) {
    node(transmitters[t].sender)
        .mac()
        .on_tx_outcome(frame_acked[t], asn, slot_done);
  }

  // Energy accounting: every alive node accounts exactly one slot.
  std::vector<SimDuration> listen_time(nodes_.size(), SimDuration{0});
  std::vector<SimDuration> tx_time(nodes_.size(), SimDuration{0});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    switch (kinds[i]) {
      case SlotPlan::Kind::kScan:
        listen_time[i] = kSlotDuration;
        break;
      case SlotPlan::Kind::kRx:
        listen_time[i] = SlotTiming::rx_guard();
        break;
      default:
        break;
    }
  }
  for (std::size_t t = 0; t < transmitters.size(); ++t) {
    const PlannedTx& tx = transmitters[t];
    const auto i = static_cast<std::size_t>(tx.sender.value);
    tx_time[i] =
        tx_time[i] + SlotTiming::frame_duration(tx.plan.frame.length_bytes);
    if (tx.plan.expects_ack) {
      listen_time[i] = listen_time[i] + SlotTiming::ack_wait() +
                       SlotTiming::ack_duration();
    }
  }
  for (const Reception& rx : receptions) {
    const PlannedTx& tx = transmitters[rx.tx_index];
    const auto i = static_cast<std::size_t>(rx.receiver.value);
    listen_time[i] =
        listen_time[i] +
        SlotTiming::frame_duration(tx.plan.frame.length_bytes);
    if (tx.plan.expects_ack && tx.plan.frame.dst == rx.receiver) {
      tx_time[i] = tx_time[i] + SlotTiming::ack_duration();
    }
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i]->alive()) continue;
    EnergyMeter& meter = nodes_[i]->meter();
    SimDuration active = listen_time[i] + tx_time[i];
    if (active > kSlotDuration) active = kSlotDuration;
    if (tx_time[i].us > 0) meter.charge(RadioState::kTransmit, tx_time[i]);
    if (listen_time[i].us > 0) {
      meter.charge(RadioState::kListen, listen_time[i]);
    }
    meter.charge(RadioState::kSleep, kSlotDuration - active);
  }

  // End-of-slot housekeeping.
  const SimTime slot_end = slot_start + kSlotDuration;
  for (auto& node_ptr : nodes_) {
    if (node_ptr->alive()) node_ptr->mac().end_slot(asn, slot_end);
  }

  sim_.schedule_after(kSlotDuration, [this] { slot_tick(); });
}

}  // namespace digs
