// The simulated WSAN: owns the simulator, the shared medium, every node,
// the application flows, and the per-slot TSCH loop that moves frames
// between nodes.
//
// The loop is slotted (TSCH is slot-synchronous): at every 10 ms boundary it
// collects each alive node's SlotPlan, resolves transmissions on the medium
// (SINR with co-channel transmitters and jammers), draws ACKs on the reverse
// links, delivers frames, reports transmission outcomes, and meters radio
// energy so each node accounts exactly one slot of radio time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/central_manager.h"
#include "core/node.h"
#include "phy/medium.h"
#include "sim/simulator.h"
#include "stats/flow_stats.h"

namespace digs {

struct NetworkConfig {
  ProtocolSuite suite = ProtocolSuite::kDigs;
  std::uint16_t num_access_points = 2;
  NodeConfig node;
  MediumConfig medium;
  /// Manager behaviour for the kWirelessHart suite.
  CentralManagerConfig manager;
  std::uint64_t seed = 1;
};

/// A periodic application flow from a field device towards the APs.
struct FlowSpec {
  FlowId id;
  NodeId source;
  SimDuration period = seconds(static_cast<std::int64_t>(5));
  /// Offset of the first packet after Network::start().
  SimDuration start_offset = seconds(static_cast<std::int64_t>(0));
  /// Valid: a downlink / device-to-device flow towards this destination
  /// (requires the DiGS downlink extension to be enabled).
  NodeId downlink_dest;
};

class Network {
 public:
  /// `positions[i]` is the position of node i; nodes
  /// [0, num_access_points) are the access points.
  Network(const NetworkConfig& config, std::vector<Position> positions);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Medium& medium() { return medium_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_[id.value]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[id.value]; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  void add_jammer(const JammerConfig& jammer) { medium_.add_jammer(jammer); }

  /// Registers a flow; packet generation starts at `first_packet` once the
  /// network is started.
  void add_flow(const FlowSpec& flow);

  /// Starts all nodes and the slot loop at the current simulator time.
  void start();

  void run_until(SimTime until) { sim_.run_until(until); }
  void run_for(SimDuration duration) {
    sim_.run_until(sim_.now() + duration);
  }

  /// Failure injection.
  void set_node_alive(NodeId id, bool alive);

  /// The Network Manager (kWirelessHart suite only; nullptr otherwise).
  [[nodiscard]] CentralManager* manager() { return manager_.get(); }

  [[nodiscard]] FlowStatsCollector& stats() { return stats_; }
  [[nodiscard]] const FlowStatsCollector& stats() const { return stats_; }

  /// Join milestones (Fig. 13): time each field device first selected a
  /// best parent / its full parent set, indexed by node id (<0 = never).
  [[nodiscard]] const std::vector<SimTime>& join_times() const {
    return joined_at_;
  }
  [[nodiscard]] const std::vector<SimTime>& full_join_times() const {
    return fully_joined_at_;
  }
  [[nodiscard]] std::size_t joined_count() const;

  /// Total radio energy across field devices (mJ).
  [[nodiscard]] double total_energy_mj() const;
  /// Mean radio duty cycle across field devices.
  [[nodiscard]] double mean_duty_cycle() const;

  /// Resets energy meters (to scope energy to a measurement window).
  void reset_energy();

  [[nodiscard]] std::uint64_t current_asn() const { return asn_; }

 private:
  void slot_tick();
  void generate_flow_packet(std::size_t flow_index);

  NetworkConfig config_;
  Simulator sim_;
  Medium medium_;
  Rng rng_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<CentralManager> manager_;
  std::vector<FlowSpec> flows_;
  std::vector<std::uint32_t> flow_seq_;
  FlowStatsCollector stats_;
  std::vector<SimTime> joined_at_;
  std::vector<SimTime> fully_joined_at_;
  std::uint64_t asn_{0};
  bool started_{false};
};

}  // namespace digs
