// The simulated WSAN: owns the simulator, the shared medium, every node,
// the application flows, and the per-slot TSCH loop that moves frames
// between nodes.
//
// The loop is slotted (TSCH is slot-synchronous): at every 10 ms boundary it
// collects each participating node's SlotPlan, resolves transmissions on the
// medium (SINR with co-channel transmitters and jammers), draws ACKs on the
// reverse links, delivers frames, reports transmission outcomes, and meters
// radio energy so each node accounts exactly one slot of radio time.
//
// Two drivers share that per-slot arithmetic (process_slot):
//   - the schedule-driven slot engine (default): a min-heap of per-node
//     next-active ASNs wakes only the nodes whose schedule, scan state, or
//     sync timeout can make them act, and the simulation jumps over slots
//     where every node sleeps. Sleep energy for the skipped slots is settled
//     lazily in exact per-slot integer amounts, so results are bit-identical
//     to polling.
//   - the polled loop (use_slot_engine = false): one event per slot asking
//     every alive node, kept as the reference implementation for the
//     equivalence tests.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/central_manager.h"
#include "core/node.h"
#include "core/wake_heap.h"
#include "phy/medium.h"
#include "phy/reception.h"
#include "routing/tunnel.h"
#include "sched/slot_swapper.h"
#include "sim/shard_pool.h"
#include "sim/simulator.h"
#include "stats/flow_stats.h"

namespace digs {

struct NetworkConfig {
  ProtocolSuite suite = ProtocolSuite::kDigs;
  std::uint16_t num_access_points = 2;
  NodeConfig node;
  MediumConfig medium;
  /// Manager behaviour for the kWirelessHart suite.
  CentralManagerConfig manager;
  std::uint64_t seed = 1;
  /// Schedule-driven slot engine (default) vs. the reference polled loop
  /// that visits every node every slot. Both produce bit-identical results;
  /// the flag exists for the equivalence tests and for debugging.
  bool use_slot_engine = true;
  /// Runs the NetworkInvariantMonitor: audits DAG-ness, table consistency
  /// and schedule conflict-freedom after every topology change and on a
  /// periodic sweep. Off by default — when off, no monitor is constructed
  /// and the per-change cost is one unset-hook branch.
  bool monitor_invariants = false;
  /// Intra-trial spatial shards: busy slots resolve their receptions in
  /// parallel across this many shards (nodes are assigned by grid cell when
  /// the spatial grid is active, round-robin otherwise), with a
  /// slot-synchronous barrier and a deterministic listener-order merge, so
  /// results are bit-identical at every shard count. 0 reads the
  /// DIGS_SHARDS environment variable; unset/1 keeps today's serial path
  /// with no threads and no synchronization.
  std::size_t shards = 0;
  /// Worker threads driving the sharded slot pipeline, decoupled from the
  /// shard count: many cell-shards can load-balance over few cores (the
  /// claim order affects wall-clock only, never results). 0 reads the
  /// DIGS_SHARD_THREADS environment variable; still 0 defaults to
  /// min(shards, hardware threads). Clamped to [1, shards]; at 1 every
  /// phase runs inline on the caller with no pool and no synchronization.
  std::size_t shard_threads = 0;
  /// SlotSwapper-style schedule randomization (see sched/slot_swapper.h):
  /// every `epoch` the network draws a fresh validated permutation of the
  /// application slotframe's slot offsets and reinstalls every alive node's
  /// schedule through it, invalidating a reactive jammer's learned activity
  /// histogram. Off by default — no swapper, no timer, no per-rebuild cost.
  struct SlotRandomization {
    bool enabled = false;
    SimDuration epoch = seconds(static_cast<std::int64_t>(30));
    std::uint64_t seed = 1;
    std::uint32_t swaps_per_epoch = 48;
    std::uint32_t max_retries = 8;
  };
  SlotRandomization randomization;
  /// Replicate tunneled downlink packets over both node-disjoint paths
  /// (when node.enable_tunnels built them). Off sends the primary copy only
  /// — the ablation arm of the downlink-determinism bench. Ignored while
  /// tunnels are disabled.
  bool tunnel_replication = true;
};

/// A periodic application flow from a field device towards the APs.
struct FlowSpec {
  FlowId id;
  NodeId source;
  SimDuration period = seconds(static_cast<std::int64_t>(5));
  /// Offset of the first packet after Network::start().
  SimDuration start_offset = seconds(static_cast<std::int64_t>(0));
  /// Valid: a downlink / device-to-device flow towards this destination
  /// (requires the DiGS downlink extension to be enabled).
  NodeId downlink_dest;
};

class NetworkInvariantMonitor;

/// One node revival and when (whether) the revived node rejoined the
/// routing graph. A record whose node crashes again before rejoining stays
/// open forever (it never rejoined within that up-window).
struct ReviveRecord {
  NodeId node;
  SimTime revived_at;
  SimTime rejoined_at{-1};  // < 0: not (yet) rejoined
};

class Network {
 public:
  /// `positions[i]` is the position of node i; nodes
  /// [0, num_access_points) are the access points.
  Network(const NetworkConfig& config, std::vector<Position> positions);
  ~Network();

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] Medium& medium() { return medium_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_[id.value]; }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_[id.value]; }
  [[nodiscard]] const NetworkConfig& config() const { return config_; }

  void add_jammer(const JammerConfig& jammer) { medium_.add_jammer(jammer); }
  void add_reactive_jammer(const ReactiveJammerConfig& jammer) {
    medium_.add_reactive_jammer(jammer);
  }

  /// Registers a flow; packet generation starts at `first_packet` once the
  /// network is started.
  void add_flow(const FlowSpec& flow);

  /// Starts all nodes and the slot loop at the current simulator time.
  void start();

  void run_until(SimTime until);
  void run_for(SimDuration duration) { run_until(sim_.now() + duration); }

  /// Failure injection.
  void set_node_alive(NodeId id, bool alive);

  /// Injects a (possibly replicated) source-routed downlink packet for
  /// `flow` towards `dest` through the tunnel subsystem: re-derives the
  /// destination's tunnel pair from the live DAG, stamps the primary copy
  /// with its route stack at the ingress AP, and — when tunnel_replication
  /// is on and a backup path exists — a second copy down the backup tunnel.
  /// Returns false when no tunnel transport applies (tunnels disabled,
  /// non-DiGS suite, or no valid primary right now); the caller falls back
  /// to ordinary table-routed injection. Serial seams only.
  bool inject_tunnel_downlink(FlowId flow, std::uint32_t seq, NodeId dest,
                              SimTime now);

  /// Gateway-side downlink send: tunnels first (replicated when possible),
  /// otherwise table routing injected at the alive AP with the freshest
  /// downlink route (the wired-backbone rule), counting the single-path
  /// fallback. Returns false when nothing could be injected at all (no
  /// tunnel and no AP knows the destination) — the caller records the drop.
  /// Serial seams only.
  bool send_downlink(FlowId flow, std::uint32_t seq, NodeId dest, SimTime now);

  /// The multipath tunnel manager (only when config.node.enable_tunnels).
  [[nodiscard]] TunnelManager* tunnel_manager() { return tunnels_.get(); }
  [[nodiscard]] const TunnelManager* tunnel_manager() const {
    return tunnels_.get();
  }

  // --- tunnel replication observability ---

  /// Deliveries whose FIRST arriving copy rode the backup tunnel: the
  /// replication saved a packet the primary failed to deliver first.
  [[nodiscard]] std::uint64_t replication_wins() const {
    return replication_wins_;
  }
  /// Redundant copies that reached the egress destination after the other
  /// copy had already delivered (the replication cost nothing but airtime).
  [[nodiscard]] std::uint64_t replication_losses() const {
    return replication_losses_;
  }
  /// Every replicated copy suppressed by a node's duplicate filter
  /// (egress or an earlier shared hop).
  [[nodiscard]] std::uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  /// Tunnel injections that went out unreplicated (no backup path — e.g. a
  /// suite without second-best parents, or a partitioned DAG) plus
  /// downlink generations that fell back to table routing entirely.
  [[nodiscard]] std::uint64_t single_path_fallbacks() const {
    return single_path_fallbacks_;
  }

  /// Fault injection: instantaneously shifts one node's clock by
  /// `offset_us` (activating the drift subsystem if it was off, so the
  /// resync path can be exercised even at ppm = 0). No-op on access points.
  void inject_clock_jump(NodeId id, double offset_us);

  /// Receptions lost to the guard-time miss model (TX/RX clock offsets
  /// farther apart than the receiver's guard), network-wide since start.
  [[nodiscard]] std::uint64_t guard_misses() const { return guard_misses_; }

  /// The Network Manager (kWirelessHart suite only; nullptr otherwise).
  [[nodiscard]] CentralManager* manager() { return manager_.get(); }

  /// The invariant monitor (only when config.monitor_invariants).
  [[nodiscard]] NetworkInvariantMonitor* invariant_monitor() {
    return monitor_.get();
  }
  [[nodiscard]] const NetworkInvariantMonitor* invariant_monitor() const {
    return monitor_.get();
  }

  /// Every revival injected via set_node_alive(id, true), in order, with
  /// the rejoin instant filled in once the revived node selects a parent
  /// again (time-to-rejoin = rejoined_at - revived_at).
  [[nodiscard]] const std::vector<ReviveRecord>& revivals() const {
    return revivals_;
  }

  [[nodiscard]] FlowStatsCollector& stats() { return stats_; }
  [[nodiscard]] const FlowStatsCollector& stats() const { return stats_; }

  /// Join milestones (Fig. 13): time each field device first selected a
  /// best parent / its full parent set, indexed by node id (<0 = never).
  [[nodiscard]] const std::vector<SimTime>& join_times() const {
    return joined_at_;
  }
  [[nodiscard]] const std::vector<SimTime>& full_join_times() const {
    return fully_joined_at_;
  }
  [[nodiscard]] std::size_t joined_count() const;

  /// Total radio energy across field devices (mJ).
  [[nodiscard]] double total_energy_mj() const;
  /// Mean radio duty cycle across field devices.
  [[nodiscard]] double mean_duty_cycle() const;

  /// Resets energy meters (to scope energy to a measurement window).
  void reset_energy();

  /// Slots completed since start. Identical in both drivers: the engine
  /// derives it from simulated time, the polled loop counts ticks.
  [[nodiscard]] std::uint64_t current_asn() const;

  /// Resolved intra-trial shard count (config.shards / DIGS_SHARDS).
  [[nodiscard]] std::size_t num_shards() const { return num_shards_; }
  /// Resolved worker-thread count for the sharded slot pipeline
  /// (config.shard_threads / DIGS_SHARD_THREADS; 1 when unsharded).
  [[nodiscard]] std::size_t num_shard_threads() const {
    return shard_threads_;
  }
  /// Cumulative busy nanoseconds per shard across every parallel region
  /// since start (all-zero unless DIGS_PROF is on). max/mean over this
  /// vector is the load-imbalance ratio the scaling benches record.
  [[nodiscard]] const std::vector<std::uint64_t>& shard_busy_ns() const {
    return shard_busy_ns_;
  }
  /// Shard owning node `i` (constant after construction).
  [[nodiscard]] std::size_t shard_of(NodeId id) const {
    return shard_of_node_[id.value];
  }
  /// The node's current best parent from the hot struct-of-arrays mirror
  /// (kNoNode while unjoined or dead).
  [[nodiscard]] NodeId best_parent_of(NodeId id) const {
    return best_parent_[id.value];
  }

  // --- schedule randomization / jamming observability ---

  /// The current epoch's slot permutation (empty = identity / off).
  [[nodiscard]] const std::vector<std::uint16_t>& app_slot_permutation()
      const {
    return app_slot_perm_;
  }
  /// Randomization epochs completed, and the swapper's accepted/rejected
  /// transposition counters (0 when randomization is off).
  [[nodiscard]] std::uint64_t swap_epochs() const {
    return slot_swapper_ ? slot_swapper_->epochs() : 0;
  }
  [[nodiscard]] std::uint64_t swaps_applied() const {
    return slot_swapper_ ? slot_swapper_->swaps_applied() : 0;
  }
  [[nodiscard]] std::uint64_t swaps_rejected() const {
    return slot_swapper_ ? slot_swapper_->swaps_rejected() : 0;
  }
  /// Jammer slot-hit coverage: data-frame transmission attempts since
  /// start, and how many of them launched into a (slot, channel) some
  /// jammer was actively blasting. Counted only while jammers exist.
  [[nodiscard]] std::uint64_t victim_tx_attempts() const {
    return victim_tx_attempts_;
  }
  [[nodiscard]] std::uint64_t victim_tx_jammed() const {
    return victim_tx_jammed_;
  }

 private:
  // --- shared per-slot arithmetic ---

  /// Executes TSCH slot `asn` for `participants` (node indices in ascending
  /// id order). The polled loop passes every node; the engine passes the
  /// woken subset — since absent nodes are exactly the sleepers, plans,
  /// medium resolution, RNG draws, deliveries, and energy are identical.
  /// `prof_mark`, when non-null (profiler on), carries the caller's chained
  /// phase timestamp in and out so phase boundaries share clock reads and
  /// the DIGS_PROF phase sum stays gap-free against the slot total.
  /// `settle_first` folds the engine's lazy-settle pass into the plan
  /// region (only set on the parallel path, where the engine skipped its
  /// own settle loop).
  void process_slot(std::uint64_t asn, SimTime slot_start,
                    const std::vector<std::uint16_t>& participants,
                    std::uint64_t* prof_mark = nullptr,
                    bool settle_first = false);
  /// The sharded full-slot pipeline: settle+plan, deliver+outcomes, energy
  /// and end_slot run per shard in fused fork-join regions; every hook and
  /// simulator side effect is deferred into per-shard buffers and replayed
  /// in serial program order after each barrier, so results (and event
  /// sequence numbers) are bit-identical to the serial body above.
  void process_slot_parallel(std::uint64_t asn, SimTime slot_start,
                             const std::vector<std::uint16_t>& participants,
                             std::uint64_t* prof_mark, bool settle_first);
  /// True when this slot should run the parallel pipeline: sharding is on,
  /// no invariant monitor (its audits assume serial hook order), and the
  /// slot is busy enough to amortize the region machinery. Both paths are
  /// bit-identical, so the decision is purely a cost gate.
  [[nodiscard]] bool parallel_slot(std::size_t num_participants) const;

  /// Reception resolution for one busy slot: fills rx_result_ (one slot per
  /// listener) and compacts it into receptions_ in listener order — the
  /// deterministic merge that makes N-shard output bit-identical to serial.
  /// Parallel across shards when num_shards_ > 1 and the slot is busy
  /// enough; shards only read shared slot state and write disjoint
  /// rx_result_ entries and their own SlotReception scratch.
  void resolve_receptions(std::uint64_t asn, SimTime slot_start,
                          std::uint64_t* prof_mark = nullptr);
  /// The per-listener decode loop (exact legacy arithmetic), driven by the
  /// SlotReception's cell-gathered candidate list, writing the winning
  /// attempt to rx_result_[li] and counting guard misses into
  /// `guard_misses` (per-shard counter, summed after the barrier).
  /// `prof_mark`, when non-null, chains the begin_listener/decode phase
  /// timestamps (serial path only; shard workers are timed wholesale).
  void resolve_listener(SlotReception& reception, std::size_t li,
                        std::uint64_t slot_draw_seed,
                        std::uint64_t& guard_misses,
                        std::uint64_t* prof_mark = nullptr);
  /// Partitions nodes into num_shards_ shards: by grid cell when the
  /// spatial grid is active (keeps a shard's listeners cache-adjacent),
  /// round-robin otherwise. Assignment affects load balance only — never
  /// results.
  void assign_shards();

  void slot_tick();  // polled driver
  void generate_flow_packet(std::size_t flow_index);

  /// Serial-order stat application shared by the direct hook path and the
  /// deferred-replay path: updates FlowStats and the replication counters
  /// with identical first-wins semantics in both.
  void apply_delivered(FlowId flow, std::uint32_t seq, SimTime at,
                       std::uint8_t tunnel);
  void apply_dropped(FlowId flow, std::uint32_t seq, SimTime at,
                     DropReason reason, std::uint8_t tunnel,
                     bool at_final_dst);

  /// Serial pre-resolution seam, run once per executed slot right after the
  /// on-air attempt list is gathered (both drivers, both slot bodies): feeds
  /// the slot's attempts to the medium's reactive-jammer sniffers and counts
  /// data-frame attempts launched into actively-jammed (slot, channel)
  /// cells. No-op (one branch) when no jammers exist.
  void observe_on_air(std::uint64_t asn, SimTime slot_start);
  /// Randomization epoch driver (PeriodicTimer event): rebuilds the
  /// precedence edges from the live routing graph and the pre-permutation
  /// schedules, advances the SlotSwapper, and atomically reinstalls every
  /// alive node's schedule through the new permutation in id order.
  void advance_randomization_epoch();

  // --- slot engine ---

  [[nodiscard]] bool engine_active() const {
    return config_.use_slot_engine && started_;
  }
  [[nodiscard]] SimTime slot_time(std::uint64_t asn) const {
    return SimTime{start_.us +
                   kSlotDuration.us * static_cast<std::int64_t>(asn + 1)};
  }
  /// Slots whose tick instant is <= t (the polled loop's asn_ at time t).
  [[nodiscard]] std::uint64_t slots_completed(SimTime t) const;
  /// Slots whose tick instant is strictly before t (used at kill/revive
  /// instants, where the tick at t fires after the injection event).
  [[nodiscard]] std::uint64_t slots_before(SimTime t) const;
  /// Smallest asn whose slot starts at or after t.
  [[nodiscard]] std::uint64_t asn_floor(SimTime t) const;

  /// Recomputes node i's next *transmission-capable* wakeup at or after
  /// `from` (sync TX cells, queue-backed routing/app cells, and the desync
  /// deadline) and feeds the heap. Pure-listen slots carry no heap entry:
  /// nothing is on the air unless some node is TX-capable, so the engine
  /// executes exactly the TX-capable slots, finds the listeners there via
  /// the reverse listen index, and settles skipped listens arithmetically.
  /// Unsynced alive nodes are tracked in `scanners_` instead of the heap.
  void refresh_wake(std::size_t i, std::uint64_t from);
  /// Adds/removes node i from the sorted scanner set.
  void set_scanner(std::size_t i, bool scanning);

  /// Mirrors node i's current per-class listen pattern (slotframe length +
  /// listen offsets) into `registered_[i]` and the reverse listen buckets.
  /// The registered copy is what settling steps over, so it must be updated
  /// only *after* the slots that used the old pattern have been settled.
  void update_listen_registration(std::size_t i);
  /// Drops node i from the listen buckets (node death).
  void clear_listen_registration(std::size_t i);
  /// Smallest ASN >= `from` at which node i's *registered* pattern listens.
  [[nodiscard]] std::uint64_t next_registered_listen(std::size_t i,
                                                     std::uint64_t from) const;
  /// Handles a deferred or immediate wakeup change for node i: settle the
  /// old pattern up to `settle_target`, re-register, recompute the wake.
  void apply_wake_change(std::size_t i, std::uint64_t settle_target,
                         std::uint64_t refresh_from);
  /// (Re)schedules the engine event for the heap minimum.
  void arm_engine();
  /// The engine event: yields once so same-instant events scheduled earlier
  /// run first (matching the polled loop, whose tick is always the newest
  /// event at its instant), then executes the slot.
  void engine_tick();
  /// Node state changed in a way that may move its wakeup earlier.
  void on_node_wake_dirty(NodeId id);

  /// Charges node i's uncharged slots up to `target` slots total: sleep for
  /// synced nodes, full-slot scan listening (plus the scan-dwell advance)
  /// for unsynced ones. Exact because the meter accumulates integer
  /// microseconds per state.
  void settle_node_to(std::size_t i, std::uint64_t target);
  /// Settles every alive node up to slots_completed(now).
  void settle_all();

  NetworkConfig config_;
  Simulator sim_;
  Medium medium_;
  Rng rng_;
  // Base keys for the per-pair reception and ACK draws: each Bernoulli draw
  // is hashed from (seed tag, asn, listener, sender) instead of consuming a
  // sequential stream, so skipping a provably-impossible pair (reachability
  // pruning) cannot shift any other pair's draw.
  std::uint64_t draw_seed_;
  std::uint64_t ack_seed_;
  // --- hot per-node state, struct-of-arrays ---
  // Owned here (not in Node) so the slot loop's liveness checks, energy
  // charges, and clock snapshots stride contiguous arrays instead of
  // pointer-chasing across Node heap objects. Nodes hold pointers into
  // alive_/meters_ (sized once before node construction, never reallocated).
  std::vector<std::uint8_t> alive_;
  std::vector<EnergyMeter> meters_;
  // Per-slot snapshot of each participant's clock offset at slot start
  // (µs), taken once in the plan loop and reused by the listener guard,
  // the on-air attempts, and the parallel resolver (which must not call
  // into TschMac).
  std::vector<double> clock_offset_us_;
  // Current best parent per node, maintained by the on_parent_changed hook.
  std::vector<NodeId> best_parent_;

  // --- spatial shards ---
  std::size_t num_shards_{1};
  std::size_t shard_threads_{1};
  // Sharding is on and no monitor: slots may take the parallel pipeline.
  bool node_parallel_{false};
  std::vector<std::uint16_t> shard_of_node_;
  std::unique_ptr<ShardPool> pool_;  // only when shard_threads_ > 1

  /// Per-shard side-buffers for hook effects raised inside a parallel
  /// region. Simulator ops live in the matching defer_bufs_ entry; stat
  /// records carry keys from the same per-site sequence so their replay
  /// interleaves in serial order (FlowStatsCollector's first-wins dedup
  /// must see the serial arrival order). Dirty-wake notices and scanner
  /// set edits are merely concatenated/applied in shard order — both are
  /// order-neutral: apply_wake_change is idempotent per node and
  /// scanners_ is a sorted set.
  struct StatOp {
    std::uint64_t key;
    FlowId flow;
    std::uint32_t seq;
    SimTime at;
    DropReason reason;  // dropped ops only
    bool delivered;
    /// Tunnel copy tag of the payload (0 none, 1 primary, 2 backup) and
    /// whether the event happened at the packet's final destination — the
    /// replay needs both to count replication wins/losses in the exact
    /// serial arrival order the first-wins dedup sees.
    std::uint8_t tunnel{0};
    bool at_final_dst{false};
  };
  struct ScanOp {
    std::uint16_t node;
    bool scanning;
  };
  struct ShardCtx {
    Simulator::DeferBuffer* defer{nullptr};
    std::vector<StatOp> stats;
    std::vector<std::uint16_t> dirty;
    std::vector<ScanOp> scans;
  };
  /// The executing shard task's context; hooks divert their side effects
  /// here when set. Null outside parallel regions — every hook then takes
  /// its plain serial branch.
  static thread_local ShardCtx* t_shard_ctx_;

  /// Runs fn(s) for every shard on the pool (inline loop at 1 thread),
  /// with the shard's defer buffer and context installed and its busy time
  /// accumulated into shard_busy_ns_ (profiler on only).
  void run_region(const std::function<void(std::size_t)>& fn);
  /// Serial post-barrier merge: replays deferred simulator ops (sorted by
  /// site key -> exact serial event order and seq values), then stat
  /// records (same key space), then scanner-set edits and dirty-wake
  /// concatenation in shard order.
  void drain_shard_ctxs();

  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<CentralManager> manager_;
  std::unique_ptr<NetworkInvariantMonitor> monitor_;
  // --- multipath tunnel state (only when config.node.enable_tunnels) ---
  std::unique_ptr<TunnelManager> tunnels_;
  std::unique_ptr<PeriodicTimer> tunnel_timer_;
  std::uint64_t replication_wins_{0};
  std::uint64_t replication_losses_{0};
  std::uint64_t duplicates_suppressed_{0};
  std::uint64_t single_path_fallbacks_{0};
  std::vector<ReviveRecord> revivals_;
  // Per node: index into revivals_ of its open record (-1 = none). Cleared
  // on death — a revival interrupted by another crash never rejoined.
  std::vector<std::int32_t> pending_revive_;
  std::vector<FlowSpec> flows_;
  std::vector<std::uint32_t> flow_seq_;
  FlowStatsCollector stats_;
  std::vector<SimTime> joined_at_;
  std::vector<SimTime> fully_joined_at_;
  std::uint64_t asn_{0};  // polled driver's slot counter
  bool started_{false};
  // --- schedule randomization state ---
  std::unique_ptr<SlotSwapper> slot_swapper_;
  std::unique_ptr<PeriodicTimer> swap_timer_;
  // Current epoch permutation; empty = identity (the node hook then returns
  // nullptr and rebuilds skip the post-pass entirely).
  std::vector<std::uint16_t> app_slot_perm_;
  std::uint64_t swap_epoch_{0};
  // Jammer slot-hit coverage counters (see victim_tx_attempts()).
  std::uint64_t victim_tx_attempts_{0};
  std::uint64_t victim_tx_jammed_{0};
  // True once any node's clock can deviate (oscillator configured, or a
  // clock jump injected). While false, the slot loop never queries offsets
  // and every listener stays guard-exempt — the zero-cost gate for ppm = 0.
  bool clocks_active_{false};
  std::uint64_t guard_misses_{0};

  SimTime start_{};  // instant of Network::start(); slot k starts at
                     // start_ + (k+1) * kSlotDuration
  // Per-node next wakeup ASN (kNeverOccupied = none); heap entries that
  // disagree with this array are stale.
  std::vector<std::uint64_t> next_wake_;
  // One wake-heap per shard (a node feeds its shard's heap). The engine
  // arms on the minimum across heaps and drains every due heap at a slot,
  // then sorts + dedups the union — the slot-synchronous merge that keeps
  // cross-shard events (frames, EBs, ACKs crossing cell boundaries) in one
  // deterministic order regardless of shard count.
  std::vector<WakeHeap> wake_heaps_;
  EventHandle engine_event_;
  std::uint64_t armed_asn_{kNeverOccupied};
  std::int64_t last_processed_asn_{-1};
  bool in_slot_{false};
  bool engine_yielded_{false};
  // Nodes whose wakeup went dirty while a slot was executing.
  std::vector<std::uint16_t> dirty_;
  std::vector<std::uint16_t> participants_;
  std::vector<std::uint16_t> all_ids_;  // 0..N-1, for the polled driver
  // Unsynced alive nodes (ascending ids). Appended to every executed slot
  // (any potential transmitter implies a scheduled wake) and settled lazily
  // across the provably-empty skipped slots.
  std::vector<std::uint16_t> scanners_;
  std::vector<char> scanning_;            // membership flag, by node index
  std::vector<std::uint16_t> slot_nodes_;  // scratch: full participant set
  std::vector<std::uint16_t> merge_scratch_;  // set_union double buffer

  // Reverse listen index: for each (class, slotframe length) in use, the
  // sorted set of nodes with a listen offset at each slot of the frame. At
  // an executed ASN the listeners are the union of the matching buckets —
  // no per-node query. Registered patterns (the exact offsets mirrored into
  // the buckets) also drive the arithmetic settling of skipped listens.
  struct BucketFrame {
    TrafficClass traffic;
    std::uint16_t length;
    std::vector<std::vector<std::uint16_t>> nodes;  // [offset] -> sorted ids
  };
  struct RegisteredFrame {
    std::uint16_t length{0};
    std::vector<std::uint16_t> offsets;
  };
  std::vector<BucketFrame> listen_buckets_;
  std::vector<std::array<RegisteredFrame, kNumTrafficClasses>> registered_;

  // Count of slots already charged to each node's energy meter; the gap to
  // slots_completed(now) is pure sleep, settled lazily in exact amounts.
  std::vector<std::uint64_t> slots_charged_;
  // Per-slot scratch indexed by node id; only participant entries are
  // written/read within one process_slot call.
  std::vector<SlotPlan::Kind> kinds_;
  std::vector<PhysicalChannel> channels_;
  std::vector<SimDuration> listen_time_;
  std::vector<SimDuration> tx_time_;

  // Per-slot reception scratch, reused across slots to avoid the per-slot
  // allocation churn of the busy path.
  struct PlannedTx {
    NodeId sender;
    SlotPlan plan;
  };
  struct SlotListener {
    NodeId id;
    PhysicalChannel channel;
    /// Listener's clock offset at slot start and its guard window for the
    /// guard-miss model. Defaults (0, infinite) = guard-exempt: scan slots
    /// listen the whole slot, and everything when clocks are inactive.
    double clock_offset_us{0.0};
    double guard_us{std::numeric_limits<double>::infinity()};
  };
  struct SlotRx {
    NodeId receiver;
    std::size_t tx_index;
    double rss_dbm;
  };
  std::vector<PlannedTx> transmitters_;
  std::vector<SlotListener> listeners_;
  std::vector<TransmissionAttempt> on_air_;
  std::vector<SlotRx> receptions_;
  std::vector<std::uint8_t> frame_acked_;
  std::vector<std::uint8_t> dst_received_;
  std::vector<TransmissionAttempt> ack_on_air_;
  // Per-listener resolution result, written by exactly one shard each and
  // compacted into receptions_ in listener order after the barrier.
  struct RxResult {
    std::int32_t tx_index{-1};
    double rss_dbm{-1e9};
  };
  std::vector<RxResult> rx_result_;
  // One O(L*T_local) per-slot resolver per shard (each holds per-listener
  // scratch, so shards never share mutable state). Serial runs use [0].
  std::vector<SlotReception> shard_reception_;
  std::vector<std::uint64_t> shard_guard_misses_;
  // --- parallel-pipeline arenas, sized once and reused across slots ---
  // Per-shard work lists, rebuilt serially each slot in O(P)/O(L)/O(T)/O(R)
  // total: participant ranks, listener indices, transmitter indices and
  // reception indices owned by each shard. Each region task walks only its
  // own list (this replaced the per-shard full-list filter scans, whose
  // O(shards * L) waste was the 1-thread overhead at high shard counts).
  std::vector<std::vector<std::uint32_t>> shard_members_;
  std::vector<std::vector<std::uint32_t>> shard_listener_li_;
  std::vector<std::vector<std::uint32_t>> shard_tx_;
  std::vector<std::vector<std::uint32_t>> shard_rx_;
  // Per-node plan storage for the parallel plan region (kTx entries only;
  // the serial gather moves them out in participant order).
  std::vector<SlotPlan> plans_;
  // Per-shard deferred simulator ops and hook side-buffers.
  std::vector<Simulator::DeferBuffer> defer_bufs_;
  std::vector<ShardCtx> shard_ctx_;
  std::vector<StatOp*> stat_replay_;  // drain scratch
  // Cumulative per-shard busy ns across regions (profiler on only).
  std::vector<std::uint64_t> shard_busy_ns_;
  // Per-slot attempt buckets by grid cell, built once per busy slot and
  // shared read-only by every shard's resolver; ack_cells_ is the same
  // index over the slot's ACK attempts for the reverse-link resolution.
  CellAttemptIndex cell_index_;
  CellAttemptIndex ack_cells_;
};

}  // namespace digs
