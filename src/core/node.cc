#include "core/node.h"

#include "routing/centralized_routing.h"

namespace digs {

Node::Node(Simulator& sim, NodeId id, bool is_access_point,
           ProtocolSuite suite, const NodeConfig& config,
           std::uint16_t num_access_points, Rng rng, Hooks hooks,
           std::uint8_t* alive_cell, EnergyMeter* meter)
    : sim_(sim),
      id_(id),
      is_access_point_(is_access_point),
      suite_(suite),
      config_(config),
      num_access_points_(num_access_points),
      hooks_(std::move(hooks)),
      neighbors_(config.etx),
      own_meter_(config.power),
      meter_(meter != nullptr ? meter : &own_meter_),
      alive_cell_(alive_cell != nullptr ? alive_cell : &own_alive_),
      mac_(id, is_access_point, config.mac, rng.fork("mac"),
           TschMac::Callbacks{
               .on_frame = [this](const Frame& f, double rss,
                                  SimTime now) { on_frame(f, rss, now); },
               .on_tx_result =
                   [this](NodeId peer, FrameType type, bool acked,
                          SimTime now) { on_tx_result(peer, type, acked, now); },
               .on_synced = [this](SimTime now) { on_synced(now); },
               .on_desynced = [this](SimTime now) { on_desynced(now); },
               .rank_provider =
                   [this]() {
                     return routing_ ? routing_->rank()
                                     : NeighborInfo::kInfiniteRank;
                   },
               .on_data_dropped =
                   [this](const DataPayload& payload, DropReason reason,
                          SimTime now) {
                     if (hooks_.on_data_lost) {
                       hooks_.on_data_lost(id_, payload, reason, now);
                     }
                   },
               .on_wakeup_changed =
                   [this]() {
                     if (hooks_.on_wakeup_changed) {
                       hooks_.on_wakeup_changed(id_);
                     }
                   },
           }) {
  RoutingProtocol::Env env;
  env.send_routing = [this](const Frame& frame) {
    mac_.enqueue_routing(frame);
  };
  env.on_topology_changed = [this](SimTime now) { on_topology_changed(now); };

  switch (suite_) {
    case ProtocolSuite::kDigs: {
      DigsRoutingConfig routing_config = config_.digs_routing;
      SchedulerConfig scheduler_config = config_.scheduler;
      routing_config.enable_downlink = config_.enable_downlink;
      scheduler_config.enable_downlink = config_.enable_downlink;
      scheduler_config.enable_tunnels = config_.enable_tunnels;
      routing_ = std::make_unique<DigsRouting>(
          sim_, id_, is_access_point_, neighbors_, routing_config,
          rng.fork("routing"), env);
      scheduler_ = std::make_unique<DigsScheduler>(scheduler_config);
      break;
    }
    case ProtocolSuite::kOrchestra:
      routing_ = std::make_unique<RplRouting>(
          sim_, id_, is_access_point_, neighbors_, config_.rpl_routing,
          rng.fork("routing"), env);
      scheduler_ = std::make_unique<OrchestraScheduler>(
          config_.scheduler, config_.orchestra_sender_based);
      break;
    case ProtocolSuite::kWirelessHart:
      // Centrally computed routes ride the same id-derived TSCH cell
      // layout as DiGS, isolating centralized-vs-distributed ROUTING as
      // the variable under study.
      routing_ = std::make_unique<CentralizedRouting>(id_, is_access_point_,
                                                      env);
      scheduler_ = std::make_unique<DigsScheduler>(config_.scheduler);
      break;
  }
}

void Node::start(SimTime now) {
  rebuild_schedule();
  if (is_access_point_) {
    routing_->start(now);
  }
  // Field devices wait for on_synced (first EB) before starting routing.
}

void Node::set_alive(bool alive, SimTime now) {
  if (alive == (*alive_cell_ != 0)) return;
  *alive_cell_ = alive ? 1 : 0;
  if (!alive) {
    // Power down: every layer's volatile state dies with the node, so a
    // later revival restarts cold — infinite rank, no parents, children,
    // descendants, or neighbors — instead of resuming pre-crash routes.
    mac_.power_down(now);
    routing_->power_down(now);
    neighbors_.clear();
    seen_.clear();
    rebuild_schedule();
    // An access point keeps joined() == true through power_down (its rank
    // is constitutive); force the tracker down so revival re-reports the
    // join transition like any other reboot.
    was_joined_ = false;
    if (hooks_.on_parent_changed) hooks_.on_parent_changed(id_, kNoNode);
    return;
  }
  // Restart: a repowered device rejoins from scratch.
  mac_.reset_to_unsynced(now);
  rebuild_schedule();
  if (is_access_point_) {
    // reset_to_unsynced is a no-op for access points (they are the time
    // source); restart their routing directly so they resume beaconing
    // and advertising immediately.
    routing_->start(now);
  }
}

void Node::generate_packet(FlowId flow, std::uint32_t seq, SimTime now,
                           NodeId final_dst) {
  DataPayload payload;
  payload.flow = flow;
  payload.seq = seq;
  payload.origin = id_;
  payload.final_dst = final_dst;
  payload.created = now;
  payload.hops = 0;
  NodeId down = kNoNode;
  if (payload.is_downlink()) {
    if (is_access_point_) {
      // Gateway-originated command: the backbone injects it at whichever
      // access point holds the freshest route to the destination.
      if (hooks_.gateway_route && hooks_.gateway_route(payload, now)) return;
      if (hooks_.on_data_lost) {
        hooks_.on_data_lost(id_, payload, DropReason::kNoRoute, now);
      }
      return;
    }
    down = routing_->next_hop_down(final_dst);
  }
  mac_.enqueue_data(payload, now, down);  // drops via on_data_dropped
}

bool Node::inject_downlink(const DataPayload& payload, SimTime now) {
  const NodeId down = routing_->next_hop_down(payload.final_dst);
  if (!down.valid()) return false;
  return mac_.enqueue_data(payload, now, down);
}

bool Node::inject_tunnel(const DataPayload& payload, SimTime now) {
  if (static_cast<std::size_t>(payload.route_hop) + 1 >=
      payload.route.size()) {
    return false;
  }
  DataPayload copy = payload;
  ++copy.route_hop;
  // Mark the pair as locally seen so a copy looping back here (stale route
  // through the ingress) cannot be re-forwarded; mac drops report through
  // on_data_dropped as usual.
  seen_.seen_or_insert(copy.flow, copy.seq);
  const NodeId next = copy.route[copy.route_hop];
  mac_.enqueue_data(copy, now, next);
  return true;
}

void Node::on_frame(const Frame& frame, double rss_dbm, SimTime now) {
  // Keep the neighbor table fresh from everything we hear.
  switch (frame.type) {
    case FrameType::kJoinIn: {
      const auto& payload = frame.as<JoinInPayload>();
      neighbors_.on_heard(frame.src, rss_dbm, payload.rank, payload.etxw,
                          now);
      break;
    }
    default:
      neighbors_.on_heard_rss(frame.src, rss_dbm, now);
      break;
  }
  // Only traffic actually routed through us proves the child still uses
  // us; overheard broadcasts must not keep ex-children alive.
  if (frame.dst == id_ && frame.type == FrameType::kData) {
    routing_->touch_child(frame.src, now);
  }

  switch (frame.type) {
    case FrameType::kJoinIn:
    case FrameType::kJoinSolicit:
    case FrameType::kJoinedCallback:
    case FrameType::kDestAdvert:
      routing_->handle_frame(frame, rss_dbm, now);
      break;
    case FrameType::kData: {
      if (frame.dst != id_) break;  // overheard; not ours to forward
      DataPayload payload = frame.as<DataPayload>();
      if (payload.is_source_routed()) {
        // Replicated tunnel copy. Duplicate elimination first — at the
        // egress and at any relay both routes share — so the second copy of
        // a (flow, seq) stops here instead of burning slots downstream. The
        // suppressed copy is reported as a kDuplicate drop; the stats layer
        // never counts it against PDR because the pair already delivered
        // (or still can deliver via the surviving copy).
        if (seen_.seen_or_insert(payload.flow, payload.seq)) {
          if (hooks_.on_data_lost) {
            hooks_.on_data_lost(id_, payload, DropReason::kDuplicate, now);
          }
          break;
        }
        if (payload.final_dst == id_) {
          if (hooks_.on_data_delivered) {
            hooks_.on_data_delivered(id_, payload, now);
          }
          break;
        }
        ++payload.hops;
        if (payload.hops > config_.mac.max_hops) {
          if (hooks_.on_data_lost) {
            hooks_.on_data_lost(id_, payload, DropReason::kHopLimit, now);
          }
          break;
        }
        // Advance the route stack: we must be the hop the copy is addressed
        // to; anything else is a stale route (re-derived mid-flight).
        const std::size_t pos = payload.route_hop;
        if (pos + 1 >= payload.route.size() || payload.route[pos] != id_) {
          if (hooks_.on_data_lost) {
            hooks_.on_data_lost(id_, payload, DropReason::kStaleRoute, now);
          }
          break;
        }
        ++payload.route_hop;
        mac_.enqueue_data(payload, now, payload.route[payload.route_hop]);
        break;
      }
      // Delivery: uplink packets end at any access point; downlink (or
      // device-to-device) packets end at their final destination.
      const bool delivered = payload.is_downlink()
                                 ? payload.final_dst == id_
                                 : is_access_point_;
      if (delivered) {
        if (hooks_.on_data_delivered) {
          hooks_.on_data_delivered(id_, payload, now);
        }
        break;
      }
      ++payload.hops;
      if (payload.hops > config_.mac.max_hops) {
        if (hooks_.on_data_lost) {
          hooks_.on_data_lost(id_, payload, DropReason::kHopLimit, now);
        }
        break;
      }
      // Common-ancestor forwarding: descend as soon as the destination is
      // in our subtree, otherwise keep climbing the uplink graph.
      NodeId down = kNoNode;
      if (payload.is_downlink()) {
        down = routing_->next_hop_down(payload.final_dst);
        if (!down.valid()) {
          if (is_access_point_) {
            // Not in our subtree: hand over the wired gateway backbone, or
            // declare the packet undeliverable.
            if (hooks_.gateway_route && hooks_.gateway_route(payload, now)) {
              break;
            }
            if (hooks_.on_data_lost) {
              hooks_.on_data_lost(id_, payload, DropReason::kNoRoute, now);
            }
            break;
          }
          // A packet that was DESCENDING reached us through a stale table
          // entry at an ancestor; re-climbing would ping-pong until the
          // hop limit. Drop it and let end-to-end retries use the
          // refreshed tables.
          const bool descending =
              frame.src == routing_->best_parent() ||
              frame.src == routing_->second_best_parent();
          if (descending) {
            if (hooks_.on_data_lost) {
              hooks_.on_data_lost(id_, payload, DropReason::kStaleRoute, now);
            }
            break;
          }
          // Ascending with no route yet: keep climbing (down stays
          // invalid, so the packet rides the uplink ladder).
        }
      }
      mac_.enqueue_data(payload, now, down);
      break;
    }
    default:
      break;
  }
}

void Node::on_tx_result(NodeId peer, FrameType type, bool acked,
                        SimTime now) {
  neighbors_.on_transmission(peer, acked);
  routing_->on_tx_result(peer, type, acked, now);
}

void Node::on_synced(SimTime now) { routing_->start(now); }

void Node::on_desynced(SimTime now) { routing_->stop(now); }

bool Node::fully_joined() const {
  if (is_access_point_) return true;
  if (!routing_->joined()) return false;
  if (suite_ == ProtocolSuite::kDigs) {
    return routing_->second_best_parent().valid();
  }
  return true;  // Orchestra / WirelessHART: best parent suffices
}

void Node::on_topology_changed(SimTime now) {
  rebuild_schedule();
  // The time source follows the best parent (the node we exchange the most
  // ACKed traffic with, so corrections are frequent). While routing has no
  // parent yet, keep the MAC's provisional source (the EB sender that
  // synchronized us) instead of clobbering it with kNoNode — losing the
  // source mid-join would leave the clock uncorrectable.
  if (routing_->best_parent().valid()) {
    mac_.set_time_source(routing_->best_parent());
  }
  if (hooks_.on_parent_changed) {
    hooks_.on_parent_changed(id_, routing_->best_parent());
  }

  const bool now_joined = routing_->joined();
  if (!joined_reported_ && now_joined) {
    joined_reported_ = true;
    if (hooks_.on_joined) hooks_.on_joined(id_, now);
  }
  if (!fully_joined_reported_ && fully_joined() && !is_access_point_) {
    fully_joined_reported_ = true;
    if (hooks_.on_fully_joined) hooks_.on_fully_joined(id_, now);
  }
  if (now_joined && !was_joined_ && hooks_.on_became_joined) {
    hooks_.on_became_joined(id_, now);
  }
  was_joined_ = now_joined;
  if (hooks_.on_topology_audit) hooks_.on_topology_audit(id_, now);
}

void Node::rebuild_schedule() {
  RoutingView view;
  view.id = id_;
  view.is_access_point = is_access_point_;
  view.num_access_points = num_access_points_;
  view.best_parent = routing_ ? routing_->best_parent() : kNoNode;
  view.second_best_parent =
      routing_ ? routing_->second_best_parent() : kNoNode;
  if (routing_) view.children = routing_->children();
  scheduler_->rebuild(mac_.schedule(), view);
  if (!hooks_.app_slot_permutation) return;
  // SlotSwapper post-pass: remap the application slotframe's slot offsets
  // through the network's epoch permutation and reinstall. install() runs
  // the ordinary occupancy/wake path, so the engine and the sharded
  // pipeline see the reshuffle as a normal schedule change.
  const Slotframe* app = mac_.schedule().slotframe(TrafficClass::kApplication);
  if (app == nullptr) {
    base_app_frame_ = Slotframe{};
    base_app_frame_.cells.clear();
    return;
  }
  base_app_frame_ = *app;
  const std::vector<std::uint16_t>* perm = hooks_.app_slot_permutation();
  if (perm == nullptr || perm->size() != app->length) return;
  mac_.schedule().install(app->remapped(*perm));
}

}  // namespace digs
