// A simulated field device or access point: the full stack wired together —
// TSCH MAC, neighbor table with ETX estimation, routing protocol (DiGS graph
// routing or RPL baseline), autonomous scheduler (DiGS or Orchestra), and
// radio energy meter.
#pragma once

#include <functional>
#include <memory>

#include "common/rng.h"
#include "common/types.h"
#include "energy/energy_meter.h"
#include "mac/tsch_mac.h"
#include "net/duplicate_filter.h"
#include "net/neighbor_table.h"
#include "routing/digs_routing.h"
#include "routing/routing.h"
#include "routing/rpl_routing.h"
#include "sched/digs_scheduler.h"
#include "sched/orchestra_scheduler.h"
#include "sched/scheduler.h"
#include "sim/simulator.h"

namespace digs {

/// Which pair of (routing, scheduling) protocols the network runs.
enum class ProtocolSuite {
  kDigs,          // DiGS graph routing + DiGS autonomous scheduling
  kOrchestra,     // RPL single-parent routing + Orchestra scheduling
  kWirelessHart,  // centrally computed graph routes (Network Manager),
                  // installed after the Fig. 3 reaction time
};

[[nodiscard]] constexpr const char* to_string(ProtocolSuite suite) {
  switch (suite) {
    case ProtocolSuite::kDigs: return "DiGS";
    case ProtocolSuite::kOrchestra: return "Orchestra";
    case ProtocolSuite::kWirelessHart: return "WirelessHART";
  }
  return "?";
}

struct NodeConfig {
  MacConfig mac;
  SchedulerConfig scheduler;
  DigsRoutingConfig digs_routing;
  RplRoutingConfig rpl_routing;
  EtxConfig etx;
  RadioPowerProfile power;
  /// Enables the downlink-graph extension (destination advertisements +
  /// downlink cells) for the DiGS suite.
  bool enable_downlink = false;
  /// Enables the dedicated tunnel-cell ladders for source-routed multipath
  /// downlink (DiGS suite; other schedulers ignore it and the network falls
  /// back to table routing with a counted single-path fallback).
  bool enable_tunnels = false;
  /// Maximum queue age of a source-routed tunnel copy before the periodic
  /// tunnel maintenance purges it (kStaleRoute): route stacks are frozen at
  /// the ingress, so parent churn can strand a copy in a relay whose tunnel
  /// cells moved away. Bounds the sensor->actuator latency tail — an older
  /// command is past any sane actuation deadline anyway.
  SimDuration tunnel_queue_max_age = seconds(static_cast<std::int64_t>(5));
  /// Orchestra unicast slotframe flavour (see OrchestraScheduler).
  /// Sender-based avoids persistent sibling collisions at the AP funnel and
  /// matches the paper's measured Orchestra performance; receiver-based is
  /// available for ablation.
  bool orchestra_sender_based = true;
};

class Node {
 public:
  /// Network-level hooks.
  struct Hooks {
    /// An access point received an application packet (end of the uplink).
    std::function<void(NodeId ap, const DataPayload&, SimTime now)>
        on_data_delivered;
    /// A data packet was lost at this node (attempts exhausted, queue
    /// overflow, hop limit, stale route, or power loss).
    std::function<void(NodeId node, const DataPayload&, DropReason,
                       SimTime now)>
        on_data_lost;
    /// First time the node selected a best parent (joined).
    std::function<void(NodeId node, SimTime now)> on_joined;
    /// Every false -> true transition of routing().joined(), including the
    /// first. The Network matches these against pending revivals to measure
    /// time-to-rejoin; the one-shot on_joined above stays first-join-only
    /// (Fig. 13 semantics survive crash/recover cycles).
    std::function<void(NodeId node, SimTime now)> on_became_joined;
    /// Fired after every routing/schedule change was applied (parents,
    /// rank, children, or confirmed roles moved and the slotframes were
    /// rebuilt). The invariant monitor audits from here; unset when
    /// monitoring is disabled, so the hook costs one branch.
    std::function<void(NodeId node, SimTime now)> on_topology_audit;
    /// First time the node holds every parent its protocol wants
    /// (bp+sbp for DiGS, bp for Orchestra) — the Fig. 13 join criterion.
    std::function<void(NodeId node, SimTime now)> on_fully_joined;
    /// Access points are wired to the gateway: when this AP has no downlink
    /// route to a destination, the backbone may hand the packet to the AP
    /// that owns the destination's subtree. Returns true if taken.
    std::function<bool(const DataPayload&, SimTime now)> gateway_route;
    /// This node's next-active slot may have moved earlier (schedule
    /// rebuilt, traffic queued, sync state flipped). The Network's slot
    /// engine re-arms its wakeup heap from here.
    std::function<void(NodeId node)> on_wakeup_changed;
    /// The node's best parent changed (topology update), or was cleared by
    /// a power-down (parent = kNoNode). Keeps the Network's hot
    /// struct-of-arrays parent mirror current without per-slot virtual
    /// routing queries.
    std::function<void(NodeId node, NodeId parent)> on_parent_changed;
    /// SlotSwapper schedule randomization: the network's current epoch
    /// permutation over application slot offsets, or nullptr for identity.
    /// When set, every schedule rebuild applies it as a post-pass (so
    /// mid-epoch topology rebuilds stay consistent with the network-wide
    /// permutation) and keeps a pre-permutation copy of the application
    /// slotframe for the validators. Unset when randomization is off —
    /// rebuilds then cost nothing extra.
    std::function<const std::vector<std::uint16_t>*()> app_slot_permutation;
  };

  /// `alive_cell` / `meter` optionally point at Network-owned
  /// struct-of-arrays storage for the hot per-node flags (cache-linear slot
  /// loop); when null the node falls back to its own members (standalone
  /// construction in unit tests and tools).
  Node(Simulator& sim, NodeId id, bool is_access_point, ProtocolSuite suite,
       const NodeConfig& config, std::uint16_t num_access_points, Rng rng,
       Hooks hooks, std::uint8_t* alive_cell = nullptr,
       EnergyMeter* meter = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Begins operation at network start. APs are born synchronized and
  /// immediately beacon; field devices start scanning.
  void start(SimTime now);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool is_access_point() const { return is_access_point_; }
  [[nodiscard]] ProtocolSuite suite() const { return suite_; }

  [[nodiscard]] bool alive() const { return *alive_cell_ != 0; }
  /// Powers the node on/off (failure injection). Turning off silences the
  /// radio immediately; turning on restarts from the unsynchronized state.
  void set_alive(bool alive, SimTime now);

  /// Enqueues an application packet originated here. A valid `final_dst`
  /// makes it a downlink / device-to-device packet (common-ancestor
  /// routing); invalid means uplink to the access points.
  void generate_packet(FlowId flow, std::uint32_t seq, SimTime now,
                       NodeId final_dst = kNoNode);

  /// Injects a downlink packet at this node (used by the wired gateway
  /// backbone between access points). Returns false when no downlink route
  /// to the packet's destination is known here.
  bool inject_downlink(const DataPayload& payload, SimTime now);

  /// Injects a source-routed tunnel copy at this node (the tunnel ingress
  /// access point). `payload.route_hop` must index this node; the copy is
  /// enqueued towards the next hop of its route stack. Returns false on a
  /// malformed route (already at the end).
  bool inject_tunnel(const DataPayload& payload, SimTime now);

  [[nodiscard]] TschMac& mac() { return mac_; }
  [[nodiscard]] const TschMac& mac() const { return mac_; }
  [[nodiscard]] RoutingProtocol& routing() { return *routing_; }
  [[nodiscard]] const RoutingProtocol& routing() const { return *routing_; }
  [[nodiscard]] NeighborTable& neighbors() { return neighbors_; }
  [[nodiscard]] EnergyMeter& meter() { return *meter_; }
  [[nodiscard]] const EnergyMeter& meter() const { return *meter_; }
  [[nodiscard]] const Scheduler& scheduler() const { return *scheduler_; }

  /// True once the protocol-specific join criterion has ever been met.
  [[nodiscard]] bool ever_fully_joined() const {
    return fully_joined_reported_;
  }

  /// Re-derives the schedule from current routing state, re-applying the
  /// current slot permutation. The randomization epoch driver calls this on
  /// every node after advancing the permutation, so the reshuffle reaches
  /// the MAC through the ordinary schedule-install path.
  void refresh_schedule() { rebuild_schedule(); }

  /// The application slotframe as the scheduler built it, before the slot
  /// permutation post-pass. Only maintained while the permutation hook is
  /// set; empty otherwise.
  [[nodiscard]] const Slotframe& base_app_slotframe() const {
    return base_app_frame_;
  }

 private:
  void on_frame(const Frame& frame, double rss_dbm, SimTime now);
  void on_tx_result(NodeId peer, FrameType type, bool acked, SimTime now);
  void on_synced(SimTime now);
  void on_desynced(SimTime now);
  void on_topology_changed(SimTime now);
  void rebuild_schedule();
  [[nodiscard]] bool fully_joined() const;

  Simulator& sim_;
  NodeId id_;
  bool is_access_point_;
  ProtocolSuite suite_;
  NodeConfig config_;
  std::uint16_t num_access_points_;
  Hooks hooks_;

  NeighborTable neighbors_;
  // Hot state lives in the Network's struct-of-arrays when provided (the
  // slot loop then reads contiguous arrays instead of striding across Node
  // objects); the own_* members back the pointers for standalone nodes.
  EnergyMeter own_meter_;
  EnergyMeter* meter_;
  std::uint8_t own_alive_{1};
  std::uint8_t* alive_cell_;
  TschMac mac_;
  std::unique_ptr<RoutingProtocol> routing_;
  std::unique_ptr<Scheduler> scheduler_;
  /// Per-node forwarding-plane dedup for replicated tunnel copies: the
  /// second copy of a (flow, seq) is suppressed at the first node both
  /// routes traverse (usually the egress). Volatile — cleared on power loss.
  DuplicateFilter seen_;
  /// Pre-permutation application slotframe (see base_app_slotframe()).
  Slotframe base_app_frame_;

  bool joined_reported_{false};
  bool fully_joined_reported_{false};
  /// Tracks routing().joined() across topology changes so on_became_joined
  /// fires exactly on false -> true transitions (reset on power-down, so a
  /// revived access point re-reports when it restarts its routing).
  bool was_joined_{false};
};

}  // namespace digs
