// Lazy min-heap of (asn, node) wakeups for the slot engine.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace digs {

/// Min-heap of per-node wakeup ASNs. Entries are never decreased or removed
/// in place: callers push a fresh entry whenever a node's wakeup moves and
/// treat popped entries that disagree with the node's current wakeup as
/// stale (lazy deletion).
class WakeHeap {
 public:
  struct Entry {
    std::uint64_t asn;
    std::uint16_t node;
  };

  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Entry& top() const { return entries_.front(); }

  void push(std::uint64_t asn, std::uint16_t node) {
    entries_.push_back(Entry{asn, node});
    std::push_heap(entries_.begin(), entries_.end(), later);
  }

  Entry pop() {
    std::pop_heap(entries_.begin(), entries_.end(), later);
    const Entry entry = entries_.back();
    entries_.pop_back();
    return entry;
  }

  void clear() { entries_.clear(); }

 private:
  // std::push_heap builds a max-heap; invert the order for a min-heap. Ties
  // break by node id so pop order is deterministic.
  static bool later(const Entry& a, const Entry& b) {
    if (a.asn != b.asn) return a.asn > b.asn;
    return a.node > b.node;
  }

  std::vector<Entry> entries_;
};

}  // namespace digs
