#include "energy/energy_meter.h"

namespace digs {

double EnergyMeter::energy_mj() const {
  double mj = 0.0;
  for (int s = 0; s < kNumRadioStates; ++s) {
    const double seconds = static_cast<double>(state_us_[s]) * 1e-6;
    const double watts = profile_.current_ma(static_cast<RadioState>(s)) *
                         1e-3 * profile_.supply_volts;
    mj += watts * seconds * 1e3;
  }
  return mj;
}

SimDuration EnergyMeter::total_time() const {
  std::int64_t total = 0;
  for (const auto us : state_us_) total += us;
  return SimDuration{total};
}

double EnergyMeter::average_power_mw() const {
  const double total_s = total_time().seconds();
  if (total_s <= 0.0) return 0.0;
  return energy_mj() / total_s;  // mJ / s == mW
}

double EnergyMeter::duty_cycle() const {
  const auto total = total_time();
  if (total.us <= 0) return 0.0;
  const std::int64_t on =
      state_us_[static_cast<int>(RadioState::kListen)] +
      state_us_[static_cast<int>(RadioState::kTransmit)];
  return static_cast<double>(on) / static_cast<double>(total.us);
}

}  // namespace digs
