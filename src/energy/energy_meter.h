// Radio energy accounting, following the paper's method (Section VII,
// footnote 5): track residency in each radio state and weight by the CC2420
// datasheet current draws at 3 V. Only the radio is metered, as in the paper.
#pragma once

#include <array>
#include <cstdint>

#include "common/time.h"

namespace digs {

enum class RadioState : std::uint8_t {
  kSleep = 0,    // voltage regulator on, oscillator off
  kIdle = 1,     // radio idle (oscillator running)
  kListen = 2,   // RX listening / receiving
  kTransmit = 3, // TX at 0 dBm
};
inline constexpr int kNumRadioStates = 4;

/// CC2420 current draws (mA) per state, 3 V supply.
struct RadioPowerProfile {
  double sleep_ma = 0.021;
  double idle_ma = 0.426;
  double listen_ma = 18.8;
  double transmit_ma = 17.4;  // 0 dBm
  double supply_volts = 3.0;

  [[nodiscard]] double current_ma(RadioState s) const {
    switch (s) {
      case RadioState::kSleep: return sleep_ma;
      case RadioState::kIdle: return idle_ma;
      case RadioState::kListen: return listen_ma;
      case RadioState::kTransmit: return transmit_ma;
    }
    return 0.0;
  }
};

/// Per-node accumulator of radio-state residency.
class EnergyMeter {
 public:
  explicit EnergyMeter(RadioPowerProfile profile = {}) : profile_(profile) {}

  /// Adds `duration` spent in state `s`.
  void charge(RadioState s, SimDuration duration) {
    state_us_[static_cast<int>(s)] += duration.us;
  }

  /// Total energy consumed (millijoules).
  [[nodiscard]] double energy_mj() const;

  /// Average power (milliwatts) over the metered wall time.
  [[nodiscard]] double average_power_mw() const;

  /// Fraction of metered time with the radio on (listen + transmit).
  [[nodiscard]] double duty_cycle() const;

  /// Total metered time across all states.
  [[nodiscard]] SimDuration total_time() const;

  [[nodiscard]] SimDuration time_in(RadioState s) const {
    return SimDuration{state_us_[static_cast<int>(s)]};
  }

  void reset() { state_us_ = {}; }

  [[nodiscard]] const RadioPowerProfile& profile() const { return profile_; }

 private:
  RadioPowerProfile profile_;
  std::array<std::int64_t, kNumRadioStates> state_us_{};
};

}  // namespace digs
