// TSCH channel hopping: physical channel = sequence[(ASN + offset) % 16].
// We use the identity hopping sequence over the 16 IEEE 802.15.4 2.4 GHz
// channels; the mapping is what matters, not the permutation.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace digs {

[[nodiscard]] constexpr PhysicalChannel hop_channel(std::uint64_t asn,
                                                    ChannelOffset offset) {
  return static_cast<PhysicalChannel>((asn + offset) %
                                      static_cast<std::uint64_t>(kNumChannels));
}

}  // namespace digs
