#include "mac/schedule.h"

#include <algorithm>

namespace digs {

void Schedule::install(Slotframe frame) {
  Entry& entry = entries_[static_cast<int>(frame.traffic)];
  entry.present = true;
  // DiGS reinstalls slotframes on every schedule update, so the per-offset
  // buffers are cleared in place rather than assign()ed: clear() keeps each
  // inner vector's capacity, sparing a free+realloc of every occupied
  // offset on each reinstall.
  if (entry.by_offset.size() == frame.length) {
    // Only the previously occupied offsets hold cells; the rest are
    // already empty.
    for (const std::uint16_t offset : entry.occupied_offsets) {
      entry.by_offset[offset].clear();
    }
  } else {
    for (auto& cells : entry.by_offset) cells.clear();
    entry.by_offset.resize(frame.length);
  }
  entry.occupied_offsets.clear();
  entry.listen_offsets.clear();
  entry.tx_offsets.clear();
  for (const Cell& cell : frame.cells) {
    const auto offset =
        static_cast<std::uint16_t>(cell.slot_offset % frame.length);
    entry.by_offset[offset].push_back(cell);
  }
  // The routing class is listen-by-default and transmits from its shared
  // queue at any of its cells, so every occupied offset both listens and
  // can transmit there (mirrors TschMac::plan_routing).
  const bool routing = frame.traffic == TrafficClass::kRouting;
  for (std::uint16_t offset = 0; offset < frame.length; ++offset) {
    const auto& cells = entry.by_offset[offset];
    if (cells.empty()) continue;
    entry.occupied_offsets.push_back(offset);
    const bool listens =
        routing ||
        std::any_of(cells.begin(), cells.end(), [](const Cell& cell) {
          return cell.option != CellOption::kTx;
        });
    if (listens) entry.listen_offsets.push_back(offset);
    const bool transmits =
        routing ||
        std::any_of(cells.begin(), cells.end(), [](const Cell& cell) {
          return cell.option != CellOption::kRx;
        });
    if (transmits) entry.tx_offsets.push_back(offset);
  }
  entry.frame = std::move(frame);
  entry.last_asn = kNeverOccupied;  // length may have changed
  notify_occupancy_changed();
}

void Schedule::remove(TrafficClass traffic) {
  Entry& entry = entries_[static_cast<int>(traffic)];
  entry.present = false;
  entry.frame = {};
  entry.last_asn = kNeverOccupied;
  entry.by_offset.clear();
  entry.occupied_offsets.clear();
  entry.listen_offsets.clear();
  entry.tx_offsets.clear();
  notify_occupancy_changed();
}

const Slotframe* Schedule::slotframe(TrafficClass traffic) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  return entry.present ? &entry.frame : nullptr;
}

std::span<const Cell> Schedule::class_cells(TrafficClass traffic,
                                            std::uint64_t asn) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  if (!entry.present || entry.frame.length == 0) return {};
  return entry.by_offset[entry.offset_at(asn)];
}

std::span<const Cell> Schedule::active_cells(std::uint64_t asn) const {
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const auto cells = class_cells(static_cast<TrafficClass>(t), asn);
    if (!cells.empty()) return cells;
  }
  return {};
}

bool Schedule::skipped(TrafficClass traffic, std::uint64_t asn) const {
  if (class_cells(traffic, asn).empty()) return false;
  for (int t = 0; t < static_cast<int>(traffic); ++t) {
    if (!class_cells(static_cast<TrafficClass>(t), asn).empty()) return true;
  }
  return false;
}

std::size_t Schedule::total_cells() const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.present) n += entry.frame.cells.size();
  }
  return n;
}

std::uint64_t Schedule::next_in(std::span<const std::uint16_t> offsets,
                                std::uint16_t length, std::uint64_t from) {
  if (offsets.empty() || length == 0) return kNeverOccupied;
  const auto rem = static_cast<std::uint16_t>(from % length);
  const auto it = std::lower_bound(offsets.begin(), offsets.end(), rem);
  if (it != offsets.end()) return from + (*it - rem);
  // Wrap to the first occupied offset of the next cycle.
  return from + (length - rem) + offsets.front();
}

std::uint64_t Schedule::next_occupied_asn(std::uint64_t from,
                                          bool app_tx_idle) const {
  std::uint64_t next = kNeverOccupied;
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const Entry& entry = entries_[t];
    if (!entry.present) continue;
    const bool exclude_tx_only =
        app_tx_idle && static_cast<TrafficClass>(t) ==
                           TrafficClass::kApplication;
    const auto& offsets =
        exclude_tx_only ? entry.listen_offsets : entry.occupied_offsets;
    next = std::min(next, next_in(offsets, entry.frame.length, from));
  }
  return next;
}

std::uint64_t Schedule::next_tx_asn(std::uint64_t from, bool routing_pending,
                                    bool app_pending) const {
  std::uint64_t next = kNeverOccupied;
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const Entry& entry = entries_[t];
    if (!entry.present) continue;
    const auto traffic = static_cast<TrafficClass>(t);
    if (traffic == TrafficClass::kRouting && !routing_pending) continue;
    if (traffic == TrafficClass::kApplication && !app_pending) continue;
    next = std::min(next, next_in(entry.tx_offsets, entry.frame.length, from));
  }
  return next;
}

std::span<const std::uint16_t> Schedule::listen_offsets(
    TrafficClass traffic) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  if (!entry.present) return {};
  return entry.listen_offsets;
}

std::uint16_t Schedule::frame_length(TrafficClass traffic) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  return entry.present ? entry.frame.length : std::uint16_t{0};
}

}  // namespace digs
