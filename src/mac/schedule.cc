#include "mac/schedule.h"

namespace digs {

void Schedule::install(Slotframe frame) {
  Entry& entry = entries_[static_cast<int>(frame.traffic)];
  entry.present = true;
  entry.by_offset.assign(frame.length, {});
  for (const Cell& cell : frame.cells) {
    entry.by_offset[cell.slot_offset % frame.length].push_back(cell);
  }
  entry.frame = std::move(frame);
}

void Schedule::remove(TrafficClass traffic) {
  Entry& entry = entries_[static_cast<int>(traffic)];
  entry.present = false;
  entry.frame = {};
  entry.by_offset.clear();
}

const Slotframe* Schedule::slotframe(TrafficClass traffic) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  return entry.present ? &entry.frame : nullptr;
}

std::span<const Cell> Schedule::class_cells(TrafficClass traffic,
                                            std::uint64_t asn) const {
  const Entry& entry = entries_[static_cast<int>(traffic)];
  if (!entry.present || entry.frame.length == 0) return {};
  const auto offset = static_cast<std::size_t>(asn % entry.frame.length);
  return entry.by_offset[offset];
}

std::span<const Cell> Schedule::active_cells(std::uint64_t asn) const {
  for (int t = 0; t < kNumTrafficClasses; ++t) {
    const auto cells = class_cells(static_cast<TrafficClass>(t), asn);
    if (!cells.empty()) return cells;
  }
  return {};
}

bool Schedule::skipped(TrafficClass traffic, std::uint64_t asn) const {
  if (class_cells(traffic, asn).empty()) return false;
  for (int t = 0; t < static_cast<int>(traffic); ++t) {
    if (!class_cells(static_cast<TrafficClass>(t), asn).empty()) return true;
  }
  return false;
}

std::size_t Schedule::total_cells() const {
  std::size_t n = 0;
  for (const auto& entry : entries_) {
    if (entry.present) n += entry.frame.cells.size();
  }
  return n;
}

}  // namespace digs
