// A node's TSCH schedule: up to one slotframe per traffic class, combined at
// runtime by static priority exactly as the paper's offline combination
// (Section VI, "Schedule Combination"): for a given ASN, the highest-priority
// traffic class that has any cell at that slot wins the slot; lower-priority
// cells are skipped.
//
// Because slot occupancy is statically derivable from the installed cells,
// the schedule can answer "when is this node next possibly active?" — the
// query the slot engine uses to skip idle slots entirely. Each slotframe
// keeps two sorted offset tables: every offset holding any cell, and the
// offsets holding at least one cell that listens unconditionally (RX or
// shared). Dedicated TX cells only cause radio activity when a matching
// packet is queued, so a query may exclude TX-only application offsets when
// the caller knows the queue is empty.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "mac/slotframe.h"

namespace digs {

/// Sentinel: no occupied slot exists (empty schedule).
inline constexpr std::uint64_t kNeverOccupied =
    std::numeric_limits<std::uint64_t>::max();

class Schedule {
 public:
  Schedule() = default;

  /// Installs (replaces) the slotframe for its traffic class.
  void install(Slotframe frame);

  /// Removes the slotframe of a class (if present).
  void remove(TrafficClass traffic);

  [[nodiscard]] const Slotframe* slotframe(TrafficClass traffic) const;

  /// Cells of the winning (highest-priority non-empty) traffic class at this
  /// ASN. Empty span if no cell is active.
  [[nodiscard]] std::span<const Cell> active_cells(std::uint64_t asn) const;

  /// Cells of a specific class active at this ASN regardless of priority
  /// (used by analysis/tests to count combination conflicts).
  [[nodiscard]] std::span<const Cell> class_cells(TrafficClass traffic,
                                                  std::uint64_t asn) const;

  /// True if a higher-priority class would preempt `traffic` at `asn`
  /// (the "skip" event of paper Eq. 6).
  [[nodiscard]] bool skipped(TrafficClass traffic, std::uint64_t asn) const;

  /// Total number of installed cells across classes.
  [[nodiscard]] std::size_t total_cells() const;

  /// Smallest ASN >= `from` at which any installed slotframe has a cell that
  /// can require radio activity, merging all three prioritized slotframes;
  /// kNeverOccupied if the schedule is empty. When `app_tx_idle` is true the
  /// caller asserts it has no queued application traffic, so application
  /// slots holding only dedicated TX cells are exact sleeps and excluded;
  /// RX/shared cells listen unconditionally and always count. Sync and
  /// routing offsets are always included (EBs transmit unconditionally and
  /// shared routing slots are listen-by-default).
  [[nodiscard]] std::uint64_t next_occupied_asn(std::uint64_t from,
                                                bool app_tx_idle) const;

  /// Smallest ASN >= `from` at which this schedule can put a frame on the
  /// air. Sync TX/shared offsets always count (EB cells transmit whenever
  /// the node may beacon); routing and application offsets count only when
  /// the caller says the corresponding queue is non-empty — with an empty
  /// queue those slots are pure listens (or sleeps) network-invisible to
  /// everyone else. Conservative: may name a slot where the node ends up
  /// not transmitting (preempted cell, unroutable EB), never the reverse.
  [[nodiscard]] std::uint64_t next_tx_asn(std::uint64_t from,
                                          bool routing_pending,
                                          bool app_pending) const;

  /// Sorted slot offsets of `traffic` holding at least one cell that listens
  /// when the node has nothing to send (kRx/kShared anywhere; for the
  /// routing class every occupied offset, since plan_routing is
  /// listen-by-default at any routing cell). Empty if the class is absent.
  [[nodiscard]] std::span<const std::uint16_t> listen_offsets(
      TrafficClass traffic) const;

  /// Slotframe length of `traffic`, or 0 if absent.
  [[nodiscard]] std::uint16_t frame_length(TrafficClass traffic) const;

  /// Smallest asn >= `from` whose offset modulo `length` appears in the
  /// sorted `offsets` table; kNeverOccupied if the table is empty. Public so
  /// the slot engine can step over a saved copy of a node's listen pattern.
  [[nodiscard]] static std::uint64_t next_in(
      std::span<const std::uint16_t> offsets, std::uint16_t length,
      std::uint64_t from);

  /// Registers a listener invoked after every install/remove — i.e.
  /// whenever the answer of next_occupied_asn may have changed. The slot
  /// engine uses this to re-arm its wakeup heap when schedulers rebuild
  /// slotframes outside the slot loop (Trickle events, manager installs).
  void set_occupancy_listener(std::function<void()> listener) {
    occupancy_listener_ = std::move(listener);
  }

 private:
  struct Entry {
    bool present{false};
    Slotframe frame;
    // Last (asn, asn % length) pair class_cells() resolved, so the
    // slot-by-slot common case advances the offset with an add and a
    // conditional subtract instead of a 64-bit division. install()/remove()
    // invalidate by clearing last_asn to the sentinel. Mutable: a pure
    // lookup memo — every read reproduces exactly asn % length.
    mutable std::uint64_t last_asn{kNeverOccupied};
    mutable std::uint32_t last_offset{0};

    [[nodiscard]] std::size_t offset_at(std::uint64_t asn) const {
      const std::uint16_t length = frame.length;
      std::uint32_t off;
      if (asn >= last_asn && asn - last_asn < length) {
        off = last_offset + static_cast<std::uint32_t>(asn - last_asn);
        if (off >= length) off -= length;
      } else {
        off = static_cast<std::uint32_t>(asn % length);
      }
      last_asn = asn;
      last_offset = off;
      return off;
    }

    // cells bucketed by slot offset for O(1) lookup.
    std::vector<std::vector<Cell>> by_offset;
    // Sorted unique slot offsets holding any cell.
    std::vector<std::uint16_t> occupied_offsets;
    // Sorted unique slot offsets holding >= 1 cell that listens
    // unconditionally (kRx or kShared; every occupied offset for the
    // routing class, which is listen-by-default).
    std::vector<std::uint16_t> listen_offsets;
    // Sorted unique slot offsets holding >= 1 cell that can transmit
    // (kTx or kShared; every occupied offset for the routing class).
    std::vector<std::uint16_t> tx_offsets;
  };

  void notify_occupancy_changed() {
    if (occupancy_listener_) occupancy_listener_();
  }

  std::array<Entry, kNumTrafficClasses> entries_{};
  std::function<void()> occupancy_listener_;
};

}  // namespace digs
