// A node's TSCH schedule: up to one slotframe per traffic class, combined at
// runtime by static priority exactly as the paper's offline combination
// (Section VI, "Schedule Combination"): for a given ASN, the highest-priority
// traffic class that has any cell at that slot wins the slot; lower-priority
// cells are skipped.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "mac/slotframe.h"

namespace digs {

class Schedule {
 public:
  Schedule() = default;

  /// Installs (replaces) the slotframe for its traffic class.
  void install(Slotframe frame);

  /// Removes the slotframe of a class (if present).
  void remove(TrafficClass traffic);

  [[nodiscard]] const Slotframe* slotframe(TrafficClass traffic) const;

  /// Cells of the winning (highest-priority non-empty) traffic class at this
  /// ASN. Empty span if no cell is active.
  [[nodiscard]] std::span<const Cell> active_cells(std::uint64_t asn) const;

  /// Cells of a specific class active at this ASN regardless of priority
  /// (used by analysis/tests to count combination conflicts).
  [[nodiscard]] std::span<const Cell> class_cells(TrafficClass traffic,
                                                  std::uint64_t asn) const;

  /// True if a higher-priority class would preempt `traffic` at `asn`
  /// (the "skip" event of paper Eq. 6).
  [[nodiscard]] bool skipped(TrafficClass traffic, std::uint64_t asn) const;

  /// Total number of installed cells across classes.
  [[nodiscard]] std::size_t total_cells() const;

 private:
  struct Entry {
    bool present{false};
    Slotframe frame;
    // cells bucketed by slot offset for O(1) lookup.
    std::vector<std::vector<Cell>> by_offset;
  };

  std::array<Entry, kNumTrafficClasses> entries_{};
};

}  // namespace digs
