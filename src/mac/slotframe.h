// TSCH slotframes and cells.
//
// Following the paper (Section VI), a node's schedule is built from three
// slotframes with different periods, one per traffic class:
//   synchronization (EBs)  > routing (join-in / joined-callback) > application
// in decreasing priority. A cell binds a (slot offset, channel offset) pair
// within a slotframe to an action.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"

namespace digs {

/// Traffic classes in decreasing priority (paper Section VI: "The most
/// critical synchronization traffic has the highest priority, while the
/// application traffic has the lowest").
enum class TrafficClass : std::uint8_t {
  kSync = 0,
  kRouting = 1,
  kApplication = 2,
};
inline constexpr int kNumTrafficClasses = 3;

[[nodiscard]] constexpr const char* to_string(TrafficClass t) {
  switch (t) {
    case TrafficClass::kSync: return "sync";
    case TrafficClass::kRouting: return "routing";
    case TrafficClass::kApplication: return "application";
  }
  return "?";
}

/// Higher priority == smaller underlying value.
[[nodiscard]] constexpr bool higher_priority(TrafficClass a, TrafficClass b) {
  return static_cast<int>(a) < static_cast<int>(b);
}

enum class CellOption : std::uint8_t {
  kTx,        // dedicated transmit cell
  kRx,        // dedicated receive cell
  kShared,    // contention (CSMA-like) slot: transmit if pending, else listen
};

struct Cell {
  std::uint16_t slot_offset{0};
  ChannelOffset channel_offset{0};
  CellOption option{CellOption::kTx};
  TrafficClass traffic{TrafficClass::kApplication};
  /// TX: link-layer destination (kNoNode for broadcast).
  /// RX: expected sender (kNoNode for any).
  NodeId peer;
  /// For application TX cells: which transmission attempt (1-based) this
  /// cell carries — attempts 1..2 go to the best parent, attempt 3 to the
  /// second-best parent (WirelessHART retransmission rule, paper Section V).
  std::uint8_t attempt{0};
  /// Application cells of the downlink graph (TX towards a child / RX from
  /// a parent); the MAC matches them against downlink-queued packets.
  bool downlink{false};
  /// Dedicated tunnel cells (source-routed multipath downlink): a ladder of
  /// their own, offset from the downlink ladder so replicated copies on the
  /// two tunnels never share a (slot, channel) with each other or with
  /// table-routed downlink traffic. Tunnel cells always have downlink set
  /// too, keeping them out of the uplink Eq. 4 audits and precedence edges.
  bool tunnel{false};

  friend bool operator==(const Cell&, const Cell&) = default;
};

struct Slotframe {
  TrafficClass traffic{TrafficClass::kApplication};
  std::uint16_t length{101};
  std::vector<Cell> cells;

  /// Copy with every cell's slot offset mapped through `perm`
  /// (perm[old] == new), the SlotSwapper reinstall primitive. `perm` must
  /// cover the frame length; offsets beyond it are left unmapped (cells
  /// outside the frame are already dead to the engine).
  [[nodiscard]] Slotframe remapped(
      std::span<const std::uint16_t> perm) const {
    Slotframe out = *this;
    for (Cell& cell : out.cells) {
      if (cell.slot_offset < perm.size()) {
        cell.slot_offset = perm[cell.slot_offset];
      }
    }
    return out;
  }
};

}  // namespace digs
