#include "mac/tsch_mac.h"

#include <algorithm>

#include "common/log.h"

namespace digs {

TschMac::TschMac(NodeId id, bool is_access_point, const MacConfig& config,
                 Rng rng, Callbacks callbacks)
    : id_(id),
      is_access_point_(is_access_point),
      config_(config),
      rng_(std::move(rng)),
      callbacks_(std::move(callbacks)),
      synced_(is_access_point),  // APs are the time source
      backoff_exp_(config.backoff_min_exp) {
  scan_channel_start_ = static_cast<int>(rng_.uniform_int(kNumChannels));
  // Access points are the network's clock reference and never drift. Field
  // devices get an oscillator only when the config enables one; the fork
  // does not advance rng_, so the ppm = 0 draw sequence is untouched.
  if (!is_access_point_ && config_.oscillator.enabled()) {
    oscillator_ = Oscillator(config_.oscillator, rng_.fork("osc"));
    clock_active_ = true;
  }
  // Slotframe installs/removals change when this node is next active.
  schedule_.set_occupancy_listener([this] { notify_wakeup_changed(); });
}

bool TschMac::enqueue_data(const DataPayload& payload, SimTime now,
                           NodeId down_next_hop) {
  if (app_queue_.size() >= config_.app_queue_capacity) {
    if (callbacks_.on_data_dropped) {
      callbacks_.on_data_dropped(payload, DropReason::kQueueOverflow, now);
    }
    return false;
  }
  const bool was_idle = app_queue_.empty();
  app_queue_.push_back(AppPacket{payload, down_next_hop, 0, next_token_++});
  // An empty queue lets the engine skip dedicated TX slots; the first queued
  // packet re-activates them (e.g. a downlink injected into a sleeping AP).
  if (was_idle) notify_wakeup_changed();
  return true;
}

void TschMac::enqueue_routing(const Frame& frame) {
  if (frame.type == FrameType::kJoinIn && frame.is_broadcast()) {
    // Replace any not-yet-sent join-in: only the freshest advertisement
    // matters (Trickle may fire again before the shared slot comes around).
    for (auto& queued : routing_queue_) {
      if (queued.frame.type == FrameType::kJoinIn &&
          queued.frame.is_broadcast()) {
        queued.frame = frame;
        return;
      }
    }
  }
  if (routing_queue_.size() >= config_.routing_queue_capacity) {
    // Drop oldest; routing state is soft. An evicted keep-alive must clear
    // its in-flight flag or end_slot() would never re-poll.
    if (routing_queue_.front().frame.type == FrameType::kKeepAlive) {
      keepalive_pending_ = false;
    }
    routing_queue_.pop_front();
  }
  const bool was_idle = routing_queue_.empty();
  routing_queue_.push_back(RoutingPacket{frame, 0});
  // An empty routing queue makes shared slots pure listens the engine can
  // skip; the first queued frame re-activates them as TX-capable.
  if (was_idle) notify_wakeup_changed();
}

SlotPlan TschMac::plan_slot(std::uint64_t asn, SimTime /*slot_start*/) {
  pending_tx_.reset();
  if (!synced_) {
    // Joining: camp on one channel, rotating every scan_dwell_slots, until
    // an EB is heard (paper Section VI, "Assigning Slots for
    // Synchronization": a joining node snoops the channel to capture an EB).
    SlotPlan plan;
    plan.kind = SlotPlan::Kind::kScan;
    // scan_dwell_pos_ tracks scan_slots_ / dwell incrementally (invariant
    // restored by reseed_scan_dwell() on every other write), sparing the
    // per-scanner-per-slot integer division.
    plan.channel = static_cast<PhysicalChannel>(
        (scan_channel_start_ + scan_dwell_pos_) % kNumChannels);
    ++scan_slots_;
    if (++scan_dwell_rem_ >= scan_dwell_len()) {
      scan_dwell_rem_ = 0;
      ++scan_dwell_pos_;
    }
    return plan;
  }

  const auto cells = schedule_.active_cells(asn);
  if (cells.empty()) return SlotPlan{};  // sleep

  switch (cells.front().traffic) {
    case TrafficClass::kSync: return plan_sync(cells, asn);
    case TrafficClass::kRouting: return plan_routing(cells, asn);
    case TrafficClass::kApplication: return plan_application(cells, asn);
  }
  return SlotPlan{};
}

SlotPlan TschMac::plan_sync(std::span<const Cell> cells, std::uint64_t asn) {
  // Prefer the TX (own EB) cell if present; otherwise listen for the
  // parent's EB.
  const Cell* tx_cell = nullptr;
  const Cell* rx_cell = nullptr;
  for (const Cell& cell : cells) {
    if (cell.option == CellOption::kTx && tx_cell == nullptr) tx_cell = &cell;
    if (cell.option == CellOption::kRx && rx_cell == nullptr) rx_cell = &cell;
  }
  SlotPlan plan;
  plan.traffic = TrafficClass::kSync;
  const std::uint16_t rank =
      callbacks_.rank_provider ? callbacks_.rank_provider() : 0;
  // Only routed nodes beacon: an EB from a node with no route would let
  // joiners synchronize onto an island (Contiki TSCH behaves the same).
  const bool may_beacon = is_access_point_ || rank != kInfiniteRank;
  if (tx_cell != nullptr && may_beacon) {
    plan.kind = SlotPlan::Kind::kTx;
    plan.channel = hop_channel(asn, tx_cell->channel_offset);
    EbPayload eb;
    eb.asn = asn;
    eb.rank = rank;
    plan.frame = make_frame(FrameType::kEnhancedBeacon, id_, kNoNode, eb);
    plan.expects_ack = false;
    pending_tx_ = PendingTx{TrafficClass::kSync, FrameType::kEnhancedBeacon,
                            kNoNode, false};
    ++eb_sent_;
    return plan;
  }
  if (rx_cell != nullptr) {
    plan.kind = SlotPlan::Kind::kRx;
    plan.channel = hop_channel(asn, rx_cell->channel_offset);
    return plan;
  }
  return SlotPlan{};
}

SlotPlan TschMac::plan_routing(std::span<const Cell> cells,
                               std::uint64_t asn) {
  const Cell& cell = cells.front();  // single shared routing cell
  SlotPlan plan;
  plan.traffic = TrafficClass::kRouting;
  plan.channel = hop_channel(asn, cell.channel_offset);
  if (!routing_queue_.empty() && backoff_counter_ == 0) {
    plan.kind = SlotPlan::Kind::kTx;
    plan.frame = routing_queue_.front().frame;
    plan.expects_ack = !plan.frame.is_broadcast();
    pending_tx_ = PendingTx{TrafficClass::kRouting, plan.frame.type,
                            plan.frame.dst, plan.expects_ack};
    return plan;
  }
  if (backoff_counter_ > 0) --backoff_counter_;
  // Shared slots are listen-by-default so topology/routing updates from any
  // neighbor are heard.
  plan.kind = SlotPlan::Kind::kRx;
  return plan;
}

std::size_t TschMac::match_packet(const Cell& cell) const {
  for (std::size_t i = 0; i < app_queue_.size(); ++i) {
    const AppPacket& packet = app_queue_[i];
    const bool packet_down = packet.down_next_hop.valid();
    // Source-routed copies ride the dedicated tunnel ladders only, and
    // table-routed packets never use them: the two queues' cells are
    // disjoint, which is what keeps a replicated copy from stealing the
    // downlink ladder slot Eq. 4 reserved for ordinary traffic.
    if (cell.tunnel != packet.payload.is_source_routed()) continue;
    if (cell.downlink != packet_down) continue;
    if (packet_down && packet.down_next_hop != cell.peer) continue;
    return i;
  }
  return static_cast<std::size_t>(-1);
}

SlotPlan TschMac::plan_application(std::span<const Cell> cells,
                                   std::uint64_t asn) {
  SlotPlan plan;
  plan.traffic = TrafficClass::kApplication;

  // TX first: among active TX cells with a valid peer and a matching queued
  // packet, use the lowest attempt index (cells are the WirelessHART
  // attempt ladder).
  if (!app_queue_.empty()) {
    const Cell* best_tx = nullptr;
    std::size_t best_packet = static_cast<std::size_t>(-1);
    for (const Cell& cell : cells) {
      if (cell.option != CellOption::kTx || !cell.peer.valid()) continue;
      if (best_tx != nullptr && cell.attempt >= best_tx->attempt) continue;
      const std::size_t packet = match_packet(cell);
      if (packet == static_cast<std::size_t>(-1)) continue;
      best_tx = &cell;
      best_packet = packet;
    }
    if (best_tx != nullptr) {
      AppPacket& packet = app_queue_[best_packet];
      plan.kind = SlotPlan::Kind::kTx;
      plan.channel = hop_channel(asn, best_tx->channel_offset);
      plan.frame = make_frame(FrameType::kData, id_, best_tx->peer,
                              packet.payload);
      plan.expects_ack = true;
      pending_tx_ = PendingTx{TrafficClass::kApplication, FrameType::kData,
                              best_tx->peer, true, packet.token};
      ++data_tx_attempts_;
      return plan;
    }
  }

  for (const Cell& cell : cells) {
    if (cell.option == CellOption::kRx) {
      plan.kind = SlotPlan::Kind::kRx;
      plan.channel = hop_channel(asn, cell.channel_offset);
      return plan;
    }
  }
  return SlotPlan{};  // nothing to do: sleep
}

void TschMac::on_receive(const Frame& frame, double rss_dbm, std::uint64_t asn,
                         SimTime now, double sender_clock_offset_us) {
  (void)asn;
  if (frame.type == FrameType::kEnhancedBeacon) {
    // Any EB from a synchronized neighbor carries the network time (only
    // routed nodes beacon), so any EB refreshes the sync deadline — the
    // 6TiSCH practice. Desync then means "no synchronized neighbor heard
    // for sync_timeout", i.e. genuine loss of contact with the network.
    // Without a time source yet, the beaconer becomes the provisional one
    // (an EB sender is necessarily synced — unsynced nodes never transmit);
    // routing replaces it with the best parent once one is selected.
    if (!time_source_.valid()) time_source_ = frame.src;
    if (!synced_) {
      synced_ = true;
      scan_slots_ = 0;
  reseed_scan_dwell();
      sync_deadline_ = now + config_.sync_timeout;
      if (clock_active_) correct_clock(sender_clock_offset_us, now);
      notify_wakeup_changed();
      if (callbacks_.on_synced) callbacks_.on_synced(now);
    } else if (clock_active_ && frame.src == time_source_) {
      // Only the time source's EBs correct the clock: taking corrections
      // from arbitrary neighbors (each with their own error) would make
      // the offset chase whoever beaconed last.
      correct_clock(sender_clock_offset_us, now);
    }
    sync_deadline_ = now + config_.sync_timeout;
  }
  if (!synced_) return;  // cannot use non-EB frames while unsynced
  if (callbacks_.on_frame) callbacks_.on_frame(frame, rss_dbm, now);
}

void TschMac::on_tx_outcome(bool acked, std::uint64_t /*asn*/, SimTime now,
                            double acker_clock_offset_us) {
  if (!pending_tx_.has_value()) return;
  const PendingTx pending = *pending_tx_;
  pending_data_token_ = pending.data_token;
  pending_tx_.reset();

  // Every ACK from the time source corrects the clock (802.15.4e time
  // correction IE): data frames, joined-callbacks and keep-alive polls to
  // the parent all double as synchronization traffic.
  if (clock_active_ && acked && pending.expects_ack &&
      pending.peer == time_source_) {
    correct_clock(acker_clock_offset_us, now);
  }

  if (pending.expects_ack && callbacks_.on_tx_result) {
    callbacks_.on_tx_result(pending.peer, pending.type, acked, now);
  }

  switch (pending.traffic) {
    case TrafficClass::kSync:
      break;  // EBs are fire-and-forget
    case TrafficClass::kRouting:
      handle_routing_tx_result(acked, now);
      break;
    case TrafficClass::kApplication:
      handle_data_tx_result(acked, now);
      break;
  }
}

void TschMac::handle_routing_tx_result(bool acked, SimTime now) {
  if (routing_queue_.empty()) return;
  RoutingPacket& head = routing_queue_.front();
  const bool is_keepalive = head.frame.type == FrameType::kKeepAlive;
  if (head.frame.is_broadcast()) {
    // Broadcasts are done after one transmission.
    routing_queue_.pop_front();
    backoff_exp_ = config_.backoff_min_exp;
    backoff_counter_ = 0;
    return;
  }
  if (acked) {
    if (is_keepalive) keepalive_pending_ = false;
    routing_queue_.pop_front();
    backoff_exp_ = config_.backoff_min_exp;
    backoff_counter_ = 0;
    return;
  }
  ++head.attempts;
  const int max_transmissions = is_keepalive
                                    ? config_.keepalive_transmissions
                                    : config_.max_routing_transmissions;
  if (head.attempts >= max_transmissions) {
    routing_queue_.pop_front();
    backoff_exp_ = config_.backoff_min_exp;
    backoff_counter_ = 0;
    if (is_keepalive) {
      // Poll failed. Retry a bounded number of times while the drift
      // budget lasts; a time source that stays silent has effectively
      // disappeared, so give up on it and rescan rather than drifting
      // past the guard with TX cells still installed.
      keepalive_pending_ = false;
      ++keepalive_failures_;
      if (keepalive_failures_ >= config_.keepalive_max_failures) {
        reset_to_unsynced(now);
      } else {
        keepalive_due_ = now + config_.keepalive_retry;
      }
    }
    return;
  }
  backoff_exp_ = std::min(backoff_exp_ + 1, config_.backoff_max_exp);
  backoff_counter_ =
      static_cast<int>(rng_.uniform_int(std::uint64_t{1} << backoff_exp_));
}

std::size_t TschMac::expire_tunnel_packets(SimDuration max_age, SimTime now) {
  std::size_t dropped = 0;
  std::size_t i = 0;
  while (i < app_queue_.size()) {
    const DataPayload& payload = app_queue_[i].payload;
    if (payload.is_source_routed() && now - payload.created > max_age) {
      drop_packet(i, DropReason::kStaleRoute, now);
      ++dropped;
    } else {
      ++i;
    }
  }
  // Dropping can only move the next-activity ASN later (an emptier queue
  // skips more slots), so no wakeup notification is needed.
  return dropped;
}

void TschMac::drop_packet(std::size_t index, DropReason reason, SimTime now) {
  if (callbacks_.on_data_dropped) {
    callbacks_.on_data_dropped(app_queue_[index].payload, reason, now);
  }
  app_queue_.erase(app_queue_.begin() +
                   static_cast<std::ptrdiff_t>(index));
}

void TschMac::handle_data_tx_result(bool acked, SimTime now) {
  // Locate the packet this outcome belongs to by its stable token (the
  // queue may serve uplink and downlink packets out of order).
  for (std::size_t i = 0; i < app_queue_.size(); ++i) {
    if (app_queue_[i].token != pending_data_token_) continue;
    if (acked) {
      app_queue_.erase(app_queue_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
    AppPacket& packet = app_queue_[i];
    ++packet.attempts;
    if (packet.attempts >= config_.max_data_transmissions) {
      drop_packet(i, DropReason::kAttemptsExhausted, now);
    }
    return;
  }
}

void TschMac::end_slot(std::uint64_t /*asn*/, SimTime now) {
  if (!synced_ || is_access_point_) return;
  if (now >= sync_deadline_) {
    reset_to_unsynced(now);
    return;
  }
  if (!clock_active_) return;
  if (now >= resync_deadline_) {
    // The projected offset has exhausted the guard budget without a
    // correction: this node can no longer hit anyone's listen window, so
    // holding its cells is pure loss. Desync and rescan.
    reset_to_unsynced(now);
    return;
  }
  if (!keepalive_pending_ && now >= keepalive_due_ && time_source_.valid()) {
    enqueue_routing(make_frame(FrameType::kKeepAlive, id_, time_source_,
                               KeepAlivePayload{}));
    keepalive_pending_ = true;
    ++keepalives_sent_;
  }
}

void TschMac::reset_to_unsynced(SimTime now) {
  if (is_access_point_) return;
  const bool was_synced = synced_;
  synced_ = false;
  time_source_ = kNoNode;
  routing_queue_.clear();
  backoff_counter_ = 0;
  backoff_exp_ = config_.backoff_min_exp;
  pending_tx_.reset();
  scan_slots_ = 0;
  reseed_scan_dwell();
  scan_channel_start_ = static_cast<int>(rng_.uniform_int(kNumChannels));
  keepalive_pending_ = false;
  keepalive_failures_ = 0;
  keepalive_due_ = kNeverDeadline;
  resync_deadline_ = kNeverDeadline;
  if (was_synced) {
    ++desync_events_;
    // Unsynced nodes scan every slot — the engine must start waking this
    // node immediately, even when the reset came from outside the slot loop
    // (experiment restarts a dead node).
    notify_wakeup_changed();
    if (callbacks_.on_desynced) callbacks_.on_desynced(now);
  }
}

void TschMac::power_down(SimTime now) {
  while (!app_queue_.empty()) drop_packet(0, DropReason::kPowerLoss, now);
  routing_queue_.clear();
  backoff_counter_ = 0;
  backoff_exp_ = config_.backoff_min_exp;
  pending_tx_.reset();
  scan_slots_ = 0;
  reseed_scan_dwell();
  keepalive_pending_ = false;
  keepalive_failures_ = 0;
  keepalive_due_ = kNeverDeadline;
  resync_deadline_ = kNeverDeadline;
  if (!is_access_point_) {
    synced_ = false;
    time_source_ = kNoNode;
  }
}

void TschMac::correct_clock(double source_offset_us, SimTime now) {
  clock_offset_ref_us_ = source_offset_us;
  anchor_drift_us_ = oscillator_.elapsed_drift_us(now);
  ++clock_corrections_;
  keepalive_failures_ = 0;
  // Project when the guard budget runs out, assuming worst-case relative
  // drift (both crystals at their bound, opposite signs). Half the budget
  // triggers the keep-alive; the full budget is the point of no return.
  const double relative_rate_ppm = 2.0 * oscillator_.max_rate_ppm();
  if (relative_rate_ppm <= 0.0) {
    // Jump-activated clock with no oscillator: the offset is constant, so
    // there is no budget to project (sync_timeout remains the backstop).
    keepalive_due_ = kNeverDeadline;
    resync_deadline_ = kNeverDeadline;
    return;
  }
  const double budget_us = static_cast<double>(SlotTiming::rx_guard().us) /
                           (relative_rate_ppm * 1e-6);
  keepalive_due_ =
      now + SimDuration{static_cast<std::int64_t>(
                budget_us * config_.keepalive_fraction)};
  resync_deadline_ =
      now + SimDuration{static_cast<std::int64_t>(budget_us)};
}

void TschMac::inject_clock_offset(double offset_us, SimTime now) {
  if (is_access_point_) return;
  const double current = clock_offset_us(now);
  clock_active_ = true;
  clock_offset_ref_us_ = current + offset_us;
  anchor_drift_us_ = oscillator_.elapsed_drift_us(now);
  // Deadlines are left alone: they project DRIFT accumulation since the
  // last correction, which a step change does not alter. A jump past the
  // guard is healed by the next correction — or, if the node can no longer
  // decode anything, by the sync timeout.
}

}  // namespace digs
