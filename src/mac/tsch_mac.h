// Per-node TSCH MAC engine.
//
// The network loop is slotted: every 10 ms slot the Network asks each node
// for a SlotPlan (transmit / listen / scan / sleep), resolves the medium, and
// feeds back receptions and ACK outcomes. The MAC owns:
//   - join & synchronization state (unsynced nodes scan for EBs, synced nodes
//     keep alive on the time source's EBs and desync on timeout),
//   - the application packet queue with the WirelessHART retransmission
//     policy (cells carry the attempt index; attempt 3 cells point at the
//     second-best parent),
//   - the routing message queue with CSMA-like backoff for shared slots,
//   - EB generation in the synchronization slotframe.
//
// Schedule content is owned by the scheduler (DiGS autonomous or Orchestra);
// the MAC only executes it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "mac/hopping.h"
#include "mac/schedule.h"
#include "net/frame.h"

namespace digs {

struct MacConfig {
  /// Total unicast attempts for a data packet before it is dropped
  /// (spread over slotframe cycles; one cycle offers A attempts under DiGS,
  /// one under Orchestra).
  int max_data_transmissions = 12;
  /// Unicast attempts for a routing message (joined-callback).
  int max_routing_transmissions = 8;
  std::size_t app_queue_capacity = 8;
  std::size_t routing_queue_capacity = 8;
  /// Desync if no EB from the time source for this long.
  SimDuration sync_timeout = seconds(static_cast<std::int64_t>(30));
  /// Slots spent scanning one channel before moving to the next.
  std::uint64_t scan_dwell_slots = 100;
  /// CSMA backoff exponent bounds for shared slots (window = 2^BE slots of
  /// the shared cell).
  int backoff_min_exp = 1;
  int backoff_max_exp = 5;
  /// Frames with more hops than this are dropped (routing-loop protection).
  int max_hops = 32;
  double tx_power_dbm = 0.0;
};

/// Radio timing constants at 250 kbps (CC2420), used for energy accounting.
struct SlotTiming {
  static constexpr SimDuration byte_time() { return microseconds(32); }
  /// Listen window in an RX cell before giving up when nothing arrives.
  static constexpr SimDuration rx_guard() { return microseconds(2200); }
  /// Sender's listen window for the ACK.
  static constexpr SimDuration ack_wait() { return microseconds(1000); }
  static constexpr SimDuration ack_duration() {
    return microseconds(32 * FrameSizes::kAck);
  }
  static constexpr SimDuration frame_duration(int bytes) {
    return microseconds(32 * bytes);
  }
};

/// What a node does during one slot.
struct SlotPlan {
  enum class Kind : std::uint8_t { kSleep, kTx, kRx, kScan };
  Kind kind{Kind::kSleep};
  PhysicalChannel channel{0};
  /// Valid when kind == kTx.
  Frame frame;
  bool expects_ack{false};
  TrafficClass traffic{TrafficClass::kApplication};
};

class TschMac {
 public:
  struct Callbacks {
    /// Upper-layer delivery of every decoded frame (broadcast or addressed
    /// to us), with its RSS.
    std::function<void(const Frame&, double rss_dbm, SimTime now)> on_frame;
    /// Outcome of a unicast attempt (for ETX / failure detection).
    std::function<void(NodeId peer, FrameType type, bool acked, SimTime now)>
        on_tx_result;
    /// Fired when the node acquires synchronization (heard its first EB).
    std::function<void(SimTime now)> on_synced;
    /// Fired when the node loses synchronization (sync timeout).
    std::function<void(SimTime now)> on_desynced;
    /// Rank to advertise in our EBs.
    std::function<std::uint16_t()> rank_provider;
    /// A queued data packet exhausted its attempts or was evicted.
    std::function<void(const DataPayload&, DropReason, SimTime now)>
        on_data_dropped;
    /// The answer of next_active_asn() may have moved *earlier*: a slotframe
    /// was (re)installed, the application queue went empty -> non-empty, or
    /// the sync state flipped. The slot engine listens here to re-arm its
    /// wakeup heap; events that can only move the wakeup later (queue
    /// drained, sync deadline extended) are deliberately not reported — a
    /// stale-early wakeup is a harmless no-op slot.
    std::function<void()> on_wakeup_changed;
  };

  TschMac(NodeId id, bool is_access_point, const MacConfig& config, Rng rng,
          Callbacks callbacks);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool is_access_point() const { return is_access_point_; }
  [[nodiscard]] bool synced() const { return synced_; }
  [[nodiscard]] const MacConfig& config() const { return config_; }

  /// The schedule executed by this MAC; schedulers install slotframes here.
  [[nodiscard]] Schedule& schedule() { return schedule_; }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

  /// Node whose EBs refresh our sync (the best parent). Invalid = accept any.
  void set_time_source(NodeId source) { time_source_ = source; }
  [[nodiscard]] NodeId time_source() const { return time_source_; }

  /// Queues an application packet. Uplink packets ride the attempt-ladder
  /// cells towards the parents; packets with a valid `down_next_hop` use
  /// the downlink cells towards that child. Returns false (and reports a
  /// drop) when the queue is full.
  bool enqueue_data(const DataPayload& payload, SimTime now,
                    NodeId down_next_hop = kNoNode);

  /// Queues a routing frame (join-in broadcast or joined-callback unicast).
  /// A queued join-in that has not been sent yet is replaced, not duplicated.
  void enqueue_routing(const Frame& frame);

  [[nodiscard]] std::size_t app_queue_size() const { return app_queue_.size(); }
  [[nodiscard]] std::size_t routing_queue_size() const {
    return routing_queue_.size();
  }

  // --- Slot loop interface (driven by the Network) ---

  /// Decides this node's action for slot `asn`.
  [[nodiscard]] SlotPlan plan_slot(std::uint64_t asn, SimTime slot_start);

  /// Delivers a frame this node decoded during the current slot.
  void on_receive(const Frame& frame, double rss_dbm, std::uint64_t asn,
                  SimTime now);

  /// Reports the outcome of this node's own transmission in the current
  /// slot (`acked` is meaningful only when the plan expected an ACK;
  /// broadcasts pass acked=false).
  void on_tx_outcome(bool acked, std::uint64_t asn, SimTime now);

  /// End-of-slot housekeeping (sync timeout).
  void end_slot(std::uint64_t asn, SimTime now);

  /// Force-desynchronizes (used when a node is restarted in experiments).
  void reset_to_unsynced(SimTime now);

  /// Power loss: every queued packet dies with the node (reported as
  /// kPowerLoss drops) and all MAC soft state is wiped, including the sync
  /// state of field devices. Unlike reset_to_unsynced() this fires no
  /// desync notification — the owning Node powers the routing layer down
  /// itself, with power-loss (not brief-desync) semantics.
  void power_down(SimTime now);

  // --- Slot-engine interface ---

  /// Smallest ASN >= `from` at which this MAC can do anything other than
  /// sleep. Unsynced nodes scan in every slot, so the answer is `from`
  /// itself; synced nodes defer to the schedule's occupancy merge (TX-only
  /// application slots are skipped exactly when the queue is empty).
  /// Conservative by construction: may return an ASN where the node turns
  /// out to sleep (e.g. preempted cell), never later than real activity.
  [[nodiscard]] std::uint64_t next_active_asn(std::uint64_t from) const {
    if (!synced_) return from;
    return schedule_.next_occupied_asn(from, app_queue_.empty());
  }

  /// Smallest ASN >= `from` at which this MAC can put a frame on the air:
  /// sync TX cells always (EBs are unconditional when routed), routing and
  /// application cells only while the matching queue holds something.
  /// Unsynced nodes never transmit. Slots outside this set are pure listens
  /// or sleeps — invisible to every other node — which is what lets the slot
  /// engine execute only transmission-capable slots and settle the listening
  /// in between arithmetically.
  [[nodiscard]] std::uint64_t next_tx_capable_asn(std::uint64_t from) const {
    if (!synced_) return kNeverOccupied;
    return schedule_.next_tx_asn(from, !routing_queue_.empty(),
                                 !app_queue_.empty());
  }

  /// Instant at which end_slot() would desynchronize this node (meaningful
  /// while synced). The engine must wake the node for the slot containing
  /// this deadline even if the schedule is idle there.
  [[nodiscard]] SimTime sync_deadline() const { return sync_deadline_; }

  /// Engine-only lazy settling of skipped scan slots: while unsynced, the
  /// sole per-slot state change of plan_slot() is advancing the scan-dwell
  /// counter, so `n` skipped slots are accounted by advancing it `n` times.
  void advance_scan(std::uint64_t n) { scan_slots_ += n; }

  // Diagnostics
  [[nodiscard]] std::uint64_t data_tx_attempts() const {
    return data_tx_attempts_;
  }
  [[nodiscard]] std::uint64_t eb_sent() const { return eb_sent_; }

 private:
  struct AppPacket {
    DataPayload payload;
    NodeId down_next_hop;  // valid -> downlink packet
    int attempts{0};
    std::uint64_t token{0};  // stable id for TX-outcome bookkeeping
  };
  struct RoutingPacket {
    Frame frame;
    int attempts{0};
  };
  struct PendingTx {
    TrafficClass traffic;
    FrameType type;
    NodeId peer;
    bool expects_ack;
    std::uint64_t data_token{0};  // AppPacket the outcome belongs to
  };

  [[nodiscard]] SlotPlan plan_sync(std::span<const Cell> cells,
                                   std::uint64_t asn);
  [[nodiscard]] SlotPlan plan_routing(std::span<const Cell> cells,
                                      std::uint64_t asn);
  [[nodiscard]] SlotPlan plan_application(std::span<const Cell> cells,
                                          std::uint64_t asn);
  void handle_data_tx_result(bool acked, SimTime now);
  void handle_routing_tx_result(bool acked, SimTime now);
  void drop_packet(std::size_t index, DropReason reason, SimTime now);
  /// Queue index of the first packet the given TX cell can carry, or npos.
  [[nodiscard]] std::size_t match_packet(const Cell& cell) const;
  void notify_wakeup_changed() {
    if (callbacks_.on_wakeup_changed) callbacks_.on_wakeup_changed();
  }

  NodeId id_;
  bool is_access_point_;
  MacConfig config_;
  Rng rng_;
  Callbacks callbacks_;

  Schedule schedule_;
  bool synced_;
  NodeId time_source_;
  SimTime sync_deadline_{};
  std::uint64_t scan_slots_{0};
  int scan_channel_start_;

  std::deque<AppPacket> app_queue_;
  std::uint64_t next_token_{1};
  std::deque<RoutingPacket> routing_queue_;
  int backoff_counter_{0};
  int backoff_exp_;

  std::optional<PendingTx> pending_tx_;
  std::uint64_t pending_data_token_{0};

  std::uint64_t data_tx_attempts_{0};
  std::uint64_t eb_sent_{0};
};

}  // namespace digs
