// Per-node TSCH MAC engine.
//
// The network loop is slotted: every 10 ms slot the Network asks each node
// for a SlotPlan (transmit / listen / scan / sleep), resolves the medium, and
// feeds back receptions and ACK outcomes. The MAC owns:
//   - join & synchronization state (unsynced nodes scan for EBs, synced nodes
//     keep alive on the time source's EBs and desync on timeout),
//   - the application packet queue with the WirelessHART retransmission
//     policy (cells carry the attempt index; attempt 3 cells point at the
//     second-best parent),
//   - the routing message queue with CSMA-like backoff for shared slots,
//   - EB generation in the synchronization slotframe.
//
// Schedule content is owned by the scheduler (DiGS autonomous or Orchestra);
// the MAC only executes it.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <optional>

#include "common/oscillator.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "mac/hopping.h"
#include "mac/schedule.h"
#include "net/frame.h"

namespace digs {

struct MacConfig {
  /// Total unicast attempts for a data packet before it is dropped
  /// (spread over slotframe cycles; one cycle offers A attempts under DiGS,
  /// one under Orchestra).
  int max_data_transmissions = 12;
  /// Unicast attempts for a routing message (joined-callback).
  int max_routing_transmissions = 8;
  std::size_t app_queue_capacity = 8;
  std::size_t routing_queue_capacity = 8;
  /// Desync if no EB from the time source for this long.
  SimDuration sync_timeout = seconds(static_cast<std::int64_t>(30));
  /// Slots spent scanning one channel before moving to the next.
  std::uint64_t scan_dwell_slots = 100;
  /// CSMA backoff exponent bounds for shared slots (window = 2^BE slots of
  /// the shared cell).
  int backoff_min_exp = 1;
  int backoff_max_exp = 5;
  /// Frames with more hops than this are dropped (routing-loop protection).
  int max_hops = 32;
  double tx_power_dbm = 0.0;
  /// Per-node crystal model; ppm = 0 (the default) disables the entire
  /// drift subsystem (clock offsets, guard misses, keep-alives) at the cost
  /// of one branch per query, bit-identical to the pre-drift simulator.
  OscillatorConfig oscillator;
  /// Fraction of the projected guard budget after which a keep-alive poll
  /// to the time source is queued (IEEE 802.15.4e KA; the ACK carries the
  /// correction).
  double keepalive_fraction = 0.5;
  /// Consecutive failed keep-alive polls before the node declares itself
  /// desynchronized and rescans.
  int keepalive_max_failures = 2;
  /// Unicast attempts for one keep-alive poll. Lower than
  /// max_routing_transmissions: a poll is only useful while the remaining
  /// drift budget lasts, so fail fast and escalate instead of backing off
  /// through a long retry ladder.
  int keepalive_transmissions = 3;
  /// Delay before re-polling after a failed keep-alive.
  SimDuration keepalive_retry = seconds(static_cast<std::int64_t>(1));
};

/// Radio timing constants at 250 kbps (CC2420), used for energy accounting.
struct SlotTiming {
  static constexpr SimDuration byte_time() { return microseconds(32); }
  /// Listen window in an RX cell before giving up when nothing arrives.
  static constexpr SimDuration rx_guard() { return microseconds(2200); }
  /// Sender's listen window for the ACK.
  static constexpr SimDuration ack_wait() { return microseconds(1000); }
  static constexpr SimDuration ack_duration() {
    return microseconds(32 * FrameSizes::kAck);
  }
  static constexpr SimDuration frame_duration(int bytes) {
    return microseconds(32 * bytes);
  }
};

/// What a node does during one slot.
struct SlotPlan {
  enum class Kind : std::uint8_t { kSleep, kTx, kRx, kScan };
  Kind kind{Kind::kSleep};
  PhysicalChannel channel{0};
  /// Valid when kind == kTx.
  Frame frame;
  bool expects_ack{false};
  TrafficClass traffic{TrafficClass::kApplication};
};

class TschMac {
 public:
  struct Callbacks {
    /// Upper-layer delivery of every decoded frame (broadcast or addressed
    /// to us), with its RSS.
    std::function<void(const Frame&, double rss_dbm, SimTime now)> on_frame;
    /// Outcome of a unicast attempt (for ETX / failure detection).
    std::function<void(NodeId peer, FrameType type, bool acked, SimTime now)>
        on_tx_result;
    /// Fired when the node acquires synchronization (heard its first EB).
    std::function<void(SimTime now)> on_synced;
    /// Fired when the node loses synchronization (sync timeout).
    std::function<void(SimTime now)> on_desynced;
    /// Rank to advertise in our EBs.
    std::function<std::uint16_t()> rank_provider;
    /// A queued data packet exhausted its attempts or was evicted.
    std::function<void(const DataPayload&, DropReason, SimTime now)>
        on_data_dropped;
    /// The answer of next_active_asn() may have moved *earlier*: a slotframe
    /// was (re)installed, the application queue went empty -> non-empty, or
    /// the sync state flipped. The slot engine listens here to re-arm its
    /// wakeup heap; events that can only move the wakeup later (queue
    /// drained, sync deadline extended) are deliberately not reported — a
    /// stale-early wakeup is a harmless no-op slot.
    std::function<void()> on_wakeup_changed;
  };

  TschMac(NodeId id, bool is_access_point, const MacConfig& config, Rng rng,
          Callbacks callbacks);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool is_access_point() const { return is_access_point_; }
  [[nodiscard]] bool synced() const { return synced_; }
  [[nodiscard]] const MacConfig& config() const { return config_; }

  /// The schedule executed by this MAC; schedulers install slotframes here.
  [[nodiscard]] Schedule& schedule() { return schedule_; }
  [[nodiscard]] const Schedule& schedule() const { return schedule_; }

  /// Node whose EBs refresh our sync (the best parent). Invalid = accept any.
  void set_time_source(NodeId source) { time_source_ = source; }
  [[nodiscard]] NodeId time_source() const { return time_source_; }

  /// Queues an application packet. Uplink packets ride the attempt-ladder
  /// cells towards the parents; packets with a valid `down_next_hop` use
  /// the downlink cells towards that child. Returns false (and reports a
  /// drop) when the queue is full.
  bool enqueue_data(const DataPayload& payload, SimTime now,
                    NodeId down_next_hop = kNoNode);

  /// Queues a routing frame (join-in broadcast or joined-callback unicast).
  /// A queued join-in that has not been sent yet is replaced, not duplicated.
  void enqueue_routing(const Frame& frame);

  /// Drops queued source-routed tunnel copies older than `max_age`
  /// (kStaleRoute). A copy's route stack is frozen at the ingress, so
  /// parent churn can strand it in a relay queue whose tunnel cells moved
  /// away; an aged command is dead weight to its control loop anyway.
  /// Returns the number of packets dropped.
  std::size_t expire_tunnel_packets(SimDuration max_age, SimTime now);

  [[nodiscard]] std::size_t app_queue_size() const { return app_queue_.size(); }
  [[nodiscard]] std::size_t routing_queue_size() const {
    return routing_queue_.size();
  }

  // --- Slot loop interface (driven by the Network) ---

  /// Decides this node's action for slot `asn`.
  [[nodiscard]] SlotPlan plan_slot(std::uint64_t asn, SimTime slot_start);

  /// Delivers a frame this node decoded during the current slot.
  /// `sender_clock_offset_us` is the sender's accumulated clock offset at
  /// the slot start; an EB from the time source adopts it as this node's
  /// new reference (clock correction). 0 whenever drift is disabled.
  void on_receive(const Frame& frame, double rss_dbm, std::uint64_t asn,
                  SimTime now, double sender_clock_offset_us = 0.0);

  /// Reports the outcome of this node's own transmission in the current
  /// slot (`acked` is meaningful only when the plan expected an ACK;
  /// broadcasts pass acked=false). An ACK from the time source carries a
  /// clock correction (`acker_clock_offset_us`, the acker's offset at the
  /// slot start), TSCH keep-alive style.
  void on_tx_outcome(bool acked, std::uint64_t asn, SimTime now,
                     double acker_clock_offset_us = 0.0);

  /// End-of-slot housekeeping (sync timeout).
  void end_slot(std::uint64_t asn, SimTime now);

  /// Force-desynchronizes (used when a node is restarted in experiments).
  void reset_to_unsynced(SimTime now);

  /// Power loss: every queued packet dies with the node (reported as
  /// kPowerLoss drops) and all MAC soft state is wiped, including the sync
  /// state of field devices. Unlike reset_to_unsynced() this fires no
  /// desync notification — the owning Node powers the routing layer down
  /// itself, with power-loss (not brief-desync) semantics.
  void power_down(SimTime now);

  // --- Slot-engine interface ---

  /// Smallest ASN >= `from` at which this MAC can do anything other than
  /// sleep. Unsynced nodes scan in every slot, so the answer is `from`
  /// itself; synced nodes defer to the schedule's occupancy merge (TX-only
  /// application slots are skipped exactly when the queue is empty).
  /// Conservative by construction: may return an ASN where the node turns
  /// out to sleep (e.g. preempted cell), never later than real activity.
  [[nodiscard]] std::uint64_t next_active_asn(std::uint64_t from) const {
    if (!synced_) return from;
    return schedule_.next_occupied_asn(from, app_queue_.empty());
  }

  /// Smallest ASN >= `from` at which this MAC can put a frame on the air:
  /// sync TX cells always (EBs are unconditional when routed), routing and
  /// application cells only while the matching queue holds something.
  /// Unsynced nodes never transmit. Slots outside this set are pure listens
  /// or sleeps — invisible to every other node — which is what lets the slot
  /// engine execute only transmission-capable slots and settle the listening
  /// in between arithmetically.
  [[nodiscard]] std::uint64_t next_tx_capable_asn(std::uint64_t from) const {
    if (!synced_) return kNeverOccupied;
    return schedule_.next_tx_asn(from, !routing_queue_.empty(),
                                 !app_queue_.empty());
  }

  /// Instant at which end_slot() would desynchronize this node (meaningful
  /// while synced). The engine must wake the node for the slot containing
  /// this deadline even if the schedule is idle there.
  [[nodiscard]] SimTime sync_deadline() const { return sync_deadline_; }

  // --- Clock / drift interface ---

  /// Deadline sentinel meaning "never" (far future, but small enough that
  /// the engine's slot-index arithmetic cannot overflow on it).
  static constexpr SimTime kNeverDeadline{
      std::numeric_limits<std::int64_t>::max() / 4};

  /// True once this node's clock can deviate from the reference (oscillator
  /// enabled, or a clock jump was injected). Never true for access points —
  /// they ARE the reference.
  [[nodiscard]] bool clock_active() const { return clock_active_; }

  /// This node's accumulated clock offset vs. the network reference (µs) at
  /// real time `t`: the offset adopted at the last correction plus the
  /// drift the oscillator accumulated since. Exactly 0 when the clock is
  /// inactive — the one-branch gate that keeps ppm = 0 runs bit-identical.
  [[nodiscard]] double clock_offset_us(SimTime t) const {
    if (!clock_active_) return 0.0;
    return clock_offset_ref_us_ +
           (oscillator_.elapsed_drift_us(t) - anchor_drift_us_);
  }

  /// Earliest instant at which end_slot() acts on the drift budget (queue a
  /// keep-alive or declare resync failure); kNeverDeadline while inactive.
  /// The engine wakes the node for the slot containing this deadline, like
  /// sync_deadline().
  [[nodiscard]] SimTime drift_deadline() const {
    if (!clock_active_ || !synced_ || is_access_point_) return kNeverDeadline;
    return keepalive_pending_ ? resync_deadline_
                              : std::min(keepalive_due_, resync_deadline_);
  }

  /// Fault injection: instantaneously shifts this node's clock by
  /// `offset_us` (and activates the clock path if the oscillator is
  /// disabled, so a 0 µs jump exercises the drift code with all offsets
  /// exactly 0). No-op on access points.
  void inject_clock_offset(double offset_us, SimTime now);

  // Clock diagnostics (cumulative over the node's lifetime).
  [[nodiscard]] std::uint64_t keepalives_sent() const {
    return keepalives_sent_;
  }
  [[nodiscard]] std::uint64_t clock_corrections() const {
    return clock_corrections_;
  }
  [[nodiscard]] std::uint64_t desync_events() const { return desync_events_; }

  /// Engine-only: prefetch the state plan_slot() reads first (sync/scan
  /// fields and the pending-TX slot). The slot loop calls this a few
  /// participants ahead of the planning cursor so the scattered per-node
  /// cache misses overlap the planning of the nodes before them. Pure
  /// address arithmetic — no member is read here.
  void prefetch_plan_state() const {
    __builtin_prefetch(&synced_);
    __builtin_prefetch(&pending_tx_);
  }

  /// Engine-only lazy settling of skipped scan slots: while unsynced, the
  /// sole per-slot state change of plan_slot() is advancing the scan-dwell
  /// counter, so `n` skipped slots are accounted by advancing it `n` times.
  void advance_scan(std::uint64_t n) {
    scan_slots_ += n;
    reseed_scan_dwell();
  }

  // Diagnostics
  [[nodiscard]] std::uint64_t data_tx_attempts() const {
    return data_tx_attempts_;
  }
  [[nodiscard]] std::uint64_t eb_sent() const { return eb_sent_; }

 private:
  struct AppPacket {
    DataPayload payload;
    NodeId down_next_hop;  // valid -> downlink packet
    int attempts{0};
    std::uint64_t token{0};  // stable id for TX-outcome bookkeeping
  };
  struct RoutingPacket {
    Frame frame;
    int attempts{0};
  };
  struct PendingTx {
    TrafficClass traffic;
    FrameType type;
    NodeId peer;
    bool expects_ack;
    std::uint64_t data_token{0};  // AppPacket the outcome belongs to
  };

  [[nodiscard]] SlotPlan plan_sync(std::span<const Cell> cells,
                                   std::uint64_t asn);
  [[nodiscard]] SlotPlan plan_routing(std::span<const Cell> cells,
                                      std::uint64_t asn);
  [[nodiscard]] SlotPlan plan_application(std::span<const Cell> cells,
                                          std::uint64_t asn);
  void handle_data_tx_result(bool acked, SimTime now);
  void handle_routing_tx_result(bool acked, SimTime now);
  /// Adopts `source_offset_us` as this node's offset (re-anchoring the
  /// oscillator) and re-projects the keep-alive / resync deadlines from the
  /// worst-case relative drift rate.
  void correct_clock(double source_offset_us, SimTime now);
  void drop_packet(std::size_t index, DropReason reason, SimTime now);
  /// Queue index of the first packet the given TX cell can carry, or npos.
  [[nodiscard]] std::size_t match_packet(const Cell& cell) const;
  void notify_wakeup_changed() {
    if (callbacks_.on_wakeup_changed) callbacks_.on_wakeup_changed();
  }

  NodeId id_;
  bool is_access_point_;
  MacConfig config_;
  Rng rng_;
  Callbacks callbacks_;

  /// scan_slots_ divided/reduced by the dwell length, maintained
  /// incrementally so the per-slot scan plan needs no integer division:
  /// scan_dwell_pos_ == scan_slots_ / dwell, scan_dwell_rem_ == the
  /// remainder. Every write to scan_slots_ outside plan_slot() goes through
  /// reseed_scan_dwell() to restore the invariant.
  [[nodiscard]] std::uint64_t scan_dwell_len() const {
    return std::max<std::uint64_t>(config_.scan_dwell_slots, 1);
  }
  void reseed_scan_dwell() {
    scan_dwell_pos_ = scan_slots_ / scan_dwell_len();
    scan_dwell_rem_ = scan_slots_ % scan_dwell_len();
  }

  Schedule schedule_;
  bool synced_;
  NodeId time_source_;
  SimTime sync_deadline_{};
  std::uint64_t scan_slots_{0};
  std::uint64_t scan_dwell_pos_{0};
  std::uint64_t scan_dwell_rem_{0};
  int scan_channel_start_;

  std::deque<AppPacket> app_queue_;
  std::uint64_t next_token_{1};
  std::deque<RoutingPacket> routing_queue_;
  int backoff_counter_{0};
  int backoff_exp_;

  std::optional<PendingTx> pending_tx_;
  std::uint64_t pending_data_token_{0};

  std::uint64_t data_tx_attempts_{0};
  std::uint64_t eb_sent_{0};

  // Clock state. The offset at time t is closed-form from (ref, anchor):
  // ref + (drift(t) - drift(anchor)) — no incremental accumulation, so the
  // value is independent of when and how often it is queried (the polled
  // loop and the wake-heap engine query at different instants; this is what
  // keeps them bit-identical under drift).
  Oscillator oscillator_;
  bool clock_active_{false};
  double clock_offset_ref_us_{0.0};
  double anchor_drift_us_{0.0};
  SimTime keepalive_due_{kNeverDeadline};
  SimTime resync_deadline_{kNeverDeadline};
  bool keepalive_pending_{false};
  int keepalive_failures_{0};
  std::uint64_t keepalives_sent_{0};
  std::uint64_t clock_corrections_{0};
  std::uint64_t desync_events_{0};
};

}  // namespace digs
