#include "manager/central_scheduler.h"

#include <algorithm>
#include <map>
#include <set>

namespace digs {

bool CentralSchedule::conflict_free() const {
  std::set<std::pair<std::uint32_t, ChannelOffset>> channel_use;
  std::set<std::pair<std::uint32_t, std::uint16_t>> node_busy;
  for (const ScheduledCell& cell : cells) {
    if (!channel_use.emplace(cell.slot, cell.channel_offset).second) {
      return false;
    }
    if (!node_busy.emplace(cell.slot, cell.transmitter.value).second) {
      return false;
    }
    if (!node_busy.emplace(cell.slot, cell.receiver.value).second) {
      return false;
    }
  }
  return true;
}

namespace {

class Allocator {
 public:
  explicit Allocator(int num_channels) : num_channels_(num_channels) {}

  /// Finds the earliest slot >= `not_before` where both endpoints are free
  /// and a channel offset is available; books and returns it.
  ScheduledCell book(std::uint32_t not_before, NodeId tx, NodeId rx) {
    for (std::uint32_t slot = not_before;; ++slot) {
      if (busy_.contains({slot, tx.value}) ||
          busy_.contains({slot, rx.value})) {
        continue;
      }
      const int used = static_cast<int>(channels_used_[slot].size());
      if (used >= num_channels_) continue;
      ChannelOffset offset = 0;
      while (channels_used_[slot].contains(offset)) ++offset;
      channels_used_[slot].insert(offset);
      busy_.insert({slot, tx.value});
      busy_.insert({slot, rx.value});
      ScheduledCell cell;
      cell.slot = slot;
      cell.channel_offset = offset;
      cell.transmitter = tx;
      cell.receiver = rx;
      if (slot + 1 > horizon_) horizon_ = slot + 1;
      return cell;
    }
  }

  [[nodiscard]] std::uint32_t horizon() const { return horizon_; }

 private:
  int num_channels_;
  std::set<std::pair<std::uint32_t, std::uint16_t>> busy_;
  std::map<std::uint32_t, std::set<ChannelOffset>> channels_used_;
  std::uint32_t horizon_{0};
};

}  // namespace

CentralSchedule compute_central_schedule(
    const TopologySnapshot& topology, const GraphRoutingResult& routes,
    const std::vector<CentralFlow>& flows,
    const CentralSchedulerConfig& config) {
  CentralSchedule schedule;
  Allocator allocator(config.num_channels);

  for (const CentralFlow& flow : flows) {
    NodeId hop = flow.source;
    std::uint32_t not_before = 0;
    // Walk the primary path; at each hop schedule attempts-1 cells to the
    // best parent and one cell to the second-best parent (when present).
    int guard = 0;
    while (hop.value >= topology.num_access_points &&
           guard++ < topology.num_nodes) {
      const GraphRoute& route = routes.routes[hop.value];
      if (!route.best_parent.valid()) break;  // unreachable source
      std::uint32_t last_slot = not_before;
      for (int p = 1; p <= config.attempts; ++p) {
        const bool backup = (p == config.attempts);
        const NodeId peer = backup && route.second_best_parent.valid()
                                ? route.second_best_parent
                                : route.best_parent;
        ScheduledCell cell = allocator.book(not_before, hop, peer);
        cell.flow = flow.id;
        cell.attempt = static_cast<std::uint8_t>(p);
        last_slot = cell.slot;
        not_before = cell.slot;  // attempts of one hop may share no slot,
                                 // allocator enforces tx-busy anyway
        schedule.cells.push_back(cell);
      }
      not_before = last_slot + 1;  // next hop forwards after reception
      hop = route.best_parent;
    }
  }

  schedule.superframe_length = allocator.horizon();
  return schedule;
}

}  // namespace digs
