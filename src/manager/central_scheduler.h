// Centralized TSCH schedule computation, as the WirelessHART Network
// Manager performs it: given the centrally computed graph routes and the
// set of flows, allocate dedicated (slot, channel) cells for every
// transmission attempt along every route, conflict-free:
//   - a node is in at most one cell per slot,
//   - a (slot, channel offset) pair is used by at most one transmitter.
// Greedy earliest-slot allocation in flow order, attempts scheduled
// strictly after the previous hop's attempts (pipeline causality).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "manager/graph_router.h"

namespace digs {

struct CentralFlow {
  FlowId id;
  NodeId source;
};

struct ScheduledCell {
  std::uint32_t slot{0};
  ChannelOffset channel_offset{0};
  NodeId transmitter;
  NodeId receiver;
  FlowId flow;
  std::uint8_t attempt{1};
};

struct CentralSchedule {
  std::uint32_t superframe_length{0};
  std::vector<ScheduledCell> cells;

  /// True if no node is double-booked in a slot and no (slot, channel) is
  /// reused.
  [[nodiscard]] bool conflict_free() const;
};

struct CentralSchedulerConfig {
  int attempts = 3;  // per hop: attempts-1 on primary, 1 on backup parent
  int num_channels = kNumChannels;
};

/// Computes the full network schedule. Flows with unreachable sources are
/// skipped.
[[nodiscard]] CentralSchedule compute_central_schedule(
    const TopologySnapshot& topology, const GraphRoutingResult& routes,
    const std::vector<CentralFlow>& flows,
    const CentralSchedulerConfig& config = {});

}  // namespace digs
