#include "manager/graph_router.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace digs {

GraphRoutingResult compute_graph_routes(const TopologySnapshot& topology) {
  const std::size_t n = topology.num_nodes;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  std::vector<double> dist(n, kInf);
  std::vector<int> depth(n, 0);
  std::vector<NodeId> parent(n);

  using QueueItem = std::pair<double, std::uint16_t>;  // (cost, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>>
      queue;
  for (std::uint16_t ap = 0; ap < topology.num_access_points; ++ap) {
    dist[ap] = 0.0;
    queue.emplace(0.0, ap);
  }

  while (!queue.empty()) {
    const auto [cost, u] = queue.top();
    queue.pop();
    if (cost > dist[u]) continue;
    for (std::uint16_t v = 0; v < n; ++v) {
      if (!topology.linked(u, v)) continue;
      const double next = cost + topology.etx[u][v];
      if (next < dist[v]) {
        dist[v] = next;
        parent[v] = NodeId{u};
        depth[v] = depth[u] + 1;
        queue.emplace(next, v);
      }
    }
  }

  GraphRoutingResult result;
  result.routes.resize(n);
  for (std::uint16_t v = 0; v < n; ++v) {
    GraphRoute& route = result.routes[v];
    if (v < topology.num_access_points) {
      route.cost = 0.0;
      route.depth = 0;
      continue;
    }
    if (dist[v] == kInf) {
      result.unreachable.push_back(NodeId{v});
      continue;
    }
    route.best_parent = parent[v];
    route.cost = dist[v];
    route.depth = depth[v];

    // Second-best parent: the cheapest other neighbor with a strictly
    // smaller node cost — guarantees the backup edge also points "downhill"
    // towards the APs, so backup routes cannot cycle.
    double best_alt = kInf;
    for (std::uint16_t m = 0; m < n; ++m) {
      if (m == route.best_parent.value || !topology.linked(v, m)) continue;
      if (dist[m] >= dist[v]) continue;
      const double through = dist[m] + topology.etx[v][m];
      if (through < best_alt) {
        best_alt = through;
        route.second_best_parent = NodeId{m};
      }
    }
  }
  return result;
}

bool routes_are_dag(const TopologySnapshot& topology,
                    const GraphRoutingResult& result) {
  const std::size_t n = topology.num_nodes;
  // Colors: 0 = unvisited, 1 = in progress, 2 = done.
  std::vector<int> color(n, 0);
  // Iterative DFS over parent edges.
  for (std::uint16_t start = 0; start < n; ++start) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::uint16_t, int>> stack;  // (node, next edge)
    stack.emplace_back(start, 0);
    color[start] = 1;
    while (!stack.empty()) {
      auto& [u, edge] = stack.back();
      const GraphRoute& route = result.routes[u];
      NodeId next = kNoNode;
      if (edge == 0) {
        next = route.best_parent;
      } else if (edge == 1) {
        next = route.second_best_parent;
      } else {
        color[u] = 2;
        stack.pop_back();
        continue;
      }
      ++edge;
      if (!next.valid()) continue;
      if (color[next.value] == 1) return false;  // back edge: cycle
      if (color[next.value] == 0) {
        color[next.value] = 1;
        stack.emplace_back(next.value, 0);
      }
    }
  }
  return true;
}

}  // namespace digs
