// Centralized graph-route computation, as performed by the WirelessHART
// Network Manager (the baseline of paper Fig. 3; algorithmically in the
// spirit of Han et al., RTAS'11): from a global connectivity/cost matrix,
// compute every field device's best and second-best parent such that all
// routes form a DAG terminating at the access points.
//
// Also used by tests as a reference to validate the distributed protocol's
// steady-state routes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"

namespace digs {

/// Global view of the network used by the centralized manager.
struct TopologySnapshot {
  std::uint16_t num_nodes{0};
  std::uint16_t num_access_points{0};
  /// etx[a][b]: link cost between nodes a and b; <= 0 or +inf means no link.
  std::vector<std::vector<double>> etx;

  [[nodiscard]] bool linked(std::uint16_t a, std::uint16_t b) const {
    return a != b && etx[a][b] > 0.0 && etx[a][b] < kNoLink;
  }

  static constexpr double kNoLink = 1e9;
};

struct GraphRoute {
  NodeId best_parent;
  NodeId second_best_parent;
  /// Accumulated ETX to the access points via the best parent.
  double cost{0.0};
  /// Hop distance to the nearest access point via best parents.
  int depth{0};
};

/// Result of the centralized computation: routes[i] for node i (access
/// points have invalid parents and depth 0).
struct GraphRoutingResult {
  std::vector<GraphRoute> routes;
  /// Nodes (other than APs) for which no route exists.
  std::vector<NodeId> unreachable;

  [[nodiscard]] bool fully_connected() const { return unreachable.empty(); }
};

/// Dijkstra-based uplink graph construction: node costs are the minimum
/// accumulated ETX to any access point; the best parent is the neighbor on
/// that shortest path, and the second-best parent is the lowest-cost other
/// neighbor with a strictly smaller cost than the node (the WirelessHART
/// requirement of at least two outgoing paths, kept loop-free).
[[nodiscard]] GraphRoutingResult compute_graph_routes(
    const TopologySnapshot& topology);

/// Verifies that the routes form a DAG over the best-parent edges and (when
/// present) second-best-parent edges, i.e. following parents always strictly
/// decreases cost. Returns true if acyclic.
[[nodiscard]] bool routes_are_dag(const TopologySnapshot& topology,
                                  const GraphRoutingResult& result);

}  // namespace digs
