#include "manager/manager_model.h"

#include <algorithm>
#include <cmath>

namespace digs {

int total_depth(const GraphRoutingResult& routes,
                std::uint16_t num_access_points) {
  int depth = 0;
  for (std::size_t i = num_access_points; i < routes.routes.size(); ++i) {
    depth += routes.routes[i].depth;
  }
  return depth;
}

std::vector<ManagerAnchor> ManagerReactionModel::paper_anchors() {
  // Fig. 3: Half A (20 nodes, 203 s), Full A (50, 506 s),
  //         Half B (19, 191 s), Full B (44, 443 s).
  // Depth sums approximate our testbed layouts (~2.2 mean hops).
  return {
      {20, 44, 203.0},
      {50, 110, 506.0},
      {19, 42, 191.0},
      {44, 97, 443.0},
  };
}

ManagerReactionModel ManagerReactionModel::fit(
    const std::vector<ManagerAnchor>& anchors) {
  // Model: y = p1 * x1 + p2 * x2 with x1 = 2*total_depth, x2 = N^2.
  double s11 = 0, s12 = 0, s22 = 0, sy1 = 0, sy2 = 0;
  for (const ManagerAnchor& anchor : anchors) {
    const double x1 = 2.0 * anchor.total_depth;
    const double x2 =
        static_cast<double>(anchor.num_nodes) * anchor.num_nodes;
    s11 += x1 * x1;
    s12 += x1 * x2;
    s22 += x2 * x2;
    sy1 += x1 * anchor.measured_total_s;
    sy2 += x2 * anchor.measured_total_s;
  }
  const double det = s11 * s22 - s12 * s12;
  double p1 = 0.0;
  double p2 = 0.0;
  if (std::abs(det) > 1e-12) {
    p1 = (sy1 * s22 - sy2 * s12) / det;
    p2 = (s11 * sy2 - s12 * sy1) / det;
  }
  return ManagerReactionModel(std::max(p1, 0.0), std::max(p2, 0.0));
}

ManagerReactionBreakdown ManagerReactionModel::predict(
    int num_nodes, int depth_sum) const {
  ManagerReactionBreakdown out;
  out.collect_s = per_hop_s_ * depth_sum;
  out.disseminate_s = per_hop_s_ * depth_sum;
  out.compute_s =
      compute_coeff_s_ * static_cast<double>(num_nodes) * num_nodes;
  return out;
}

}  // namespace digs
