// Reaction-time model of the centralized WirelessHART Network Manager
// (paper Fig. 3): when dynamics occur, the manager must
//   1. collect topology reports from every device (multi-hop, through the
//      management bandwidth of the TSCH network),
//   2. recompute routes and the transmission schedule,
//   3. disseminate per-device configuration (again multi-hop).
//
// Collection and dissemination costs are proportional to the total number
// of report/config message-hops; computation grows with the schedule size
// (~N^2 behaviour observed in deployed managers). The two coefficients are
// fitted by least squares to measured anchor points — by default the four
// testbed measurements the paper reports (Half/Full Testbed A and B) — so
// the bench reproduces both the anchors and the scaling shape.
#pragma once

#include <cstdint>
#include <vector>

#include "manager/graph_router.h"

namespace digs {

struct ManagerReactionBreakdown {
  double collect_s{0};
  double compute_s{0};
  double disseminate_s{0};
  [[nodiscard]] double total_s() const {
    return collect_s + compute_s + disseminate_s;
  }
};

/// One measured data point used for calibration.
struct ManagerAnchor {
  int num_nodes{0};
  /// Sum over devices of hop distance to the nearest AP.
  int total_depth{0};
  double measured_total_s{0};
};

class ManagerReactionModel {
 public:
  /// Model: total = per_hop_s * (report_hops + config_hops)
  ///              + compute_coeff_s * N^2
  /// where report_hops = config_hops = total_depth (one report up and one
  /// configuration down per device, each crossing `depth` hops).
  ManagerReactionModel(double per_hop_s, double compute_coeff_s)
      : per_hop_s_(per_hop_s), compute_coeff_s_(compute_coeff_s) {}

  /// Least-squares fit of the two coefficients to the anchors (2x2 normal
  /// equations; coefficients clamped to be non-negative).
  [[nodiscard]] static ManagerReactionModel fit(
      const std::vector<ManagerAnchor>& anchors);

  /// The paper's Fig. 3 anchors with depths from our testbed layouts.
  [[nodiscard]] static std::vector<ManagerAnchor> paper_anchors();

  [[nodiscard]] ManagerReactionBreakdown predict(int num_nodes,
                                                 int total_depth) const;

  [[nodiscard]] double per_hop_s() const { return per_hop_s_; }
  [[nodiscard]] double compute_coeff_s() const { return compute_coeff_s_; }

 private:
  double per_hop_s_;
  double compute_coeff_s_;
};

/// Sum of best-parent hop depths over all field devices.
[[nodiscard]] int total_depth(const GraphRoutingResult& routes,
                              std::uint16_t num_access_points);

}  // namespace digs
