// Bounded per-node duplicate elimination for replicated tunnel copies.
//
// FlowStats already dedups deliveries per (flow, seq) network-wide; this is
// the forwarding-plane analogue a real node would run: a fixed-capacity
// seen-set consulted at every hop of a source-routed packet, so the second
// copy of a replicated pair is suppressed at the first shared relay (or at
// the egress) instead of burning slots all the way down. FIFO eviction
// keeps the memory bound hard; an evicted entry can at worst let an ancient
// straggler through, which the stats-layer dedup still absorbs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace digs {

class DuplicateFilter {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit DuplicateFilter(std::size_t capacity = kDefaultCapacity)
      : ring_(capacity, kEmpty) {}

  /// True if (flow, seq) is in the seen-set; otherwise records it (evicting
  /// the oldest entry once the ring is full) and returns false.
  bool seen_or_insert(FlowId flow, std::uint32_t seq) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(flow.value) << 32) | seq;
    for (const std::uint64_t entry : ring_) {
      if (entry == key) return true;
    }
    ring_[head_] = key;
    head_ = (head_ + 1) % ring_.size();
    return false;
  }

  /// Volatile state: dies with the node's power.
  void clear() {
    for (std::uint64_t& entry : ring_) entry = kEmpty;
    head_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

 private:
  // flow == 0xFFFF is an invalid FlowId, so this key collides with no
  // real packet.
  static constexpr std::uint64_t kEmpty = ~0ull;

  std::vector<std::uint64_t> ring_;
  std::size_t head_{0};
};

}  // namespace digs
