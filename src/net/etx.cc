#include "net/etx.h"

namespace digs {

double etx_from_rss(double rss_dbm, const EtxConfig& cfg) {
  if (rss_dbm >= cfg.rss_max_dbm) return cfg.etx_at_rss_max;
  if (rss_dbm <= cfg.rss_min_dbm) return cfg.etx_at_rss_min;
  const double t =
      (rss_dbm - cfg.rss_min_dbm) / (cfg.rss_max_dbm - cfg.rss_min_dbm);
  return cfg.etx_at_rss_min + t * (cfg.etx_at_rss_max - cfg.etx_at_rss_min);
}

void EtxEstimator::seed_from_rss(double rss_dbm) {
  seed_etx_ = etx_from_rss(rss_dbm, config_);
  initialized_ = true;
}

void EtxEstimator::on_transmission(bool acked) {
  attempts_ += 1.0;
  if (acked) successes_ += 1.0;
  if (attempts_ >= config_.window) {
    attempts_ *= 0.5;
    successes_ *= 0.5;
  }
  initialized_ = true;
}

double EtxEstimator::value() const {
  if (!initialized_) return config_.etx_ceiling;
  if (attempts_ < config_.min_attempts) {
    // Blend the RSS seed with early feedback: a couple of failures on a
    // supposedly good link already push the estimate up (the paper's
    // "penalized if a transmission error occurs").
    const double failures = attempts_ - successes_;
    const double seed = seed_etx_ > 0.0 ? seed_etx_ : config_.etx_floor;
    return std::clamp(seed + failures, config_.etx_floor,
                      config_.etx_ceiling);
  }
  const double ratio = attempts_ / std::max(successes_, 0.5);
  return std::clamp(ratio, config_.etx_floor, config_.etx_ceiling);
}

}  // namespace digs
