// Expected transmission count estimation, following the paper (Section V):
//
//   "the initialized ETX between two nodes are determined by the Received
//    Signal Strength (RSS). We empirically set RSSmin = -90 dBm and
//    RSSmax = -60 dBm. If the RSS value is larger than -60 dBm, the ETX is
//    set to 1. If the RSS value is smaller than -90 dBm, the ETX is set
//    to 3. The ETX in between is scaled proportionally between 1 and 3.
//    The ETX value gets penalized if a transmission error occurs."
//
// After initialization the estimate is refined from unicast ACK outcomes
// over a decaying attempt/success window (attempts / successes ~ 1 / PRR),
// the way deployed link estimators (Contiki link-stats) work: stable under
// partial loss, yet it degrades decisively when a link truly dies.
#pragma once

#include <algorithm>

namespace digs {

struct EtxConfig {
  double rss_min_dbm = -90.0;
  double rss_max_dbm = -60.0;
  double etx_at_rss_min = 3.0;
  double etx_at_rss_max = 1.0;
  /// Window feedback starts overriding the RSS seed after this many
  /// attempts.
  int min_attempts = 8;
  /// When the attempt count reaches this, both counters are halved
  /// (exponential forgetting).
  int window = 32;
  /// Estimates are clamped to [floor, ceiling].
  double etx_floor = 1.0;
  double etx_ceiling = 16.0;
  /// Neighbors first heard below this RSS are not admitted to the table:
  /// the paper's seed mapping caps at ETX 3 for anything under -90 dBm,
  /// which would make barely-audible links look only 3x worse than perfect
  /// ones; deployed link estimators reject such links outright.
  double admission_rss_dbm = -89.0;
};

/// Maps an RSS reading to the paper's initial ETX value.
[[nodiscard]] double etx_from_rss(double rss_dbm, const EtxConfig& cfg = {});

/// Per-neighbor link cost estimator.
class EtxEstimator {
 public:
  explicit EtxEstimator(const EtxConfig& config = {}) : config_(config) {}

  /// Seeds the estimate from an RSS reading. Only effective until enough
  /// ACK feedback has accumulated.
  void seed_from_rss(double rss_dbm);

  /// Folds in the outcome of one unicast transmission attempt.
  void on_transmission(bool acked);

  [[nodiscard]] bool initialized() const { return initialized_; }

  /// Current estimate; neighbors never heard from report the ceiling.
  [[nodiscard]] double value() const;

 private:
  EtxConfig config_;
  double seed_etx_{0.0};
  bool initialized_{false};
  double attempts_{0.0};
  double successes_{0.0};
};

}  // namespace digs
