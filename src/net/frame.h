// Link-layer frames exchanged by the simulated stack.
//
// Traffic classes follow the paper's separation (Section VI): enhanced
// beacons are synchronization traffic; join-in and joined-callback messages
// are routing traffic; data frames are application traffic. Topology reports
// and management updates exist only for the centralized WirelessHART
// baseline (Fig. 3).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "phy/prr.h"

namespace digs {

enum class FrameType : std::uint8_t {
  kEnhancedBeacon,
  kJoinIn,
  kJoinSolicit,
  kJoinedCallback,
  kDestAdvert,
  kData,
  kTopologyReport,
  kMgmtUpdate,
  kKeepAlive,
};

[[nodiscard]] constexpr const char* to_string(FrameType t) {
  switch (t) {
    case FrameType::kEnhancedBeacon: return "EB";
    case FrameType::kJoinIn: return "JOIN_IN";
    case FrameType::kJoinSolicit: return "JOIN_SOLICIT";
    case FrameType::kJoinedCallback: return "JOINED_CALLBACK";
    case FrameType::kDestAdvert: return "DEST_ADVERT";
    case FrameType::kData: return "DATA";
    case FrameType::kTopologyReport: return "TOPOLOGY_REPORT";
    case FrameType::kMgmtUpdate: return "MGMT_UPDATE";
    case FrameType::kKeepAlive: return "KEEP_ALIVE";
  }
  return "?";
}

/// Enhanced beacon: lets joining nodes synchronize (learn the ASN) and learn
/// the sender's position in the DODAG.
struct EbPayload {
  std::uint64_t asn{0};
  std::uint16_t rank{0};
};

/// Join-in message (paper Section V): advertises rank and weighted ETX so
/// neighbors can run Algorithm 1. Doubles as the RPL DIO for the Orchestra
/// baseline (where etxw is the plain accumulated ETX).
struct JoinInPayload {
  std::uint16_t rank{0};
  double etxw{0.0};
};

/// Join solicitation (the RPL DIS analogue): broadcast by a synchronized
/// node that has no parent; joined neighbors respond by resetting their
/// Trickle timer so a fresh join-in arrives quickly. Without it, a joiner
/// in a dense, quiescent network waits up to Imax (Trickle suppression).
struct JoinSolicitPayload {};

/// Joined-callback (paper Section V): tells the selected parent it now has
/// this child, and in which role, so it can install RX cells for the child's
/// transmission slots.
struct JoinedCallbackPayload {
  /// True if the sender chose the destination as its best parent; false for
  /// second-best parent.
  bool as_best_parent{true};
};

/// Destination advertisement (the RPL storing-mode DAO analogue) for the
/// paper's downlink graph (footnote 2: "other graphs such as downlink graph
/// ... can be generated following the same method"): a node tells its best
/// parent which destinations are reachable through it (itself plus its
/// subtree), so downlink packets can be forwarded child-by-child.
struct DestAdvertPayload {
  struct Entry {
    NodeId dest;
    /// Freshness sequence (DAO-sequence semantics): bumped by the
    /// destination each time it re-homes; freshest entry wins everywhere.
    std::uint32_t seq{0};
  };
  std::vector<Entry> destinations;
};

/// Application data packet. Uplink packets (final_dst invalid) travel the
/// uplink graph towards the APs; downlink packets (final_dst set) descend
/// the child tables towards a specific device.
struct DataPayload {
  FlowId flow;
  std::uint32_t seq{0};
  NodeId origin;
  /// Downlink destination; invalid means uplink to the access points.
  NodeId final_dst;
  SimTime created;
  std::uint8_t hops{0};
  /// Source route (multipath tunnel): full hop list, ingress access point
  /// first and final destination last. Empty means ordinary table routing.
  /// A few hops of 2-byte ids ride comfortably inside the kData frame
  /// budget, so the over-the-air length does not change.
  std::vector<NodeId> route;
  /// Index into `route` of the node this copy is currently addressed to.
  std::uint8_t route_hop{0};
  /// 0 = not tunneled; 1 = primary-tunnel copy; 2 = backup-tunnel copy.
  std::uint8_t tunnel{0};

  [[nodiscard]] bool is_downlink() const { return final_dst.valid(); }
  [[nodiscard]] bool is_source_routed() const { return !route.empty(); }
};

/// Topology report for the centralized Network Manager baseline.
struct TopologyReportPayload {
  NodeId reporter;
  std::uint16_t num_neighbors{0};
};

/// Route/schedule dissemination chunk from the centralized Network Manager.
struct MgmtUpdatePayload {
  NodeId target;          // node whose configuration this chunk carries
  std::uint16_t chunk{0}; // sequence within the update
};

/// TSCH keep-alive poll (IEEE 802.15.4e KA): an empty unicast frame whose
/// only purpose is soliciting the time source's ACK, which carries a clock
/// correction before the drift budget runs out.
struct KeepAlivePayload {};

using FramePayload =
    std::variant<EbPayload, JoinInPayload, JoinSolicitPayload,
                 JoinedCallbackPayload, DestAdvertPayload, DataPayload,
                 TopologyReportPayload, MgmtUpdatePayload, KeepAlivePayload>;

/// Typical over-the-air sizes (bytes) including PHY/MAC overhead.
struct FrameSizes {
  static constexpr int kEnhancedBeacon = 50;
  static constexpr int kJoinIn = 40;
  static constexpr int kJoinSolicit = 20;
  static constexpr int kJoinedCallback = 30;
  static constexpr int kDestAdvert = 60;
  static constexpr int kData = 110;
  static constexpr int kTopologyReport = 80;
  static constexpr int kMgmtUpdate = 90;
  static constexpr int kKeepAlive = 20;  // header-only, like a solicit
  static constexpr int kAck = 26;
};

// Medium builds PRR tables for kPrebuiltPrrFrameBytes eagerly; any frame
// length outside that list falls onto a lock-guarded cold path. Keep the two
// lists in sync.
static_assert(is_prebuilt_prr_size(FrameSizes::kEnhancedBeacon) &&
              is_prebuilt_prr_size(FrameSizes::kJoinIn) &&
              is_prebuilt_prr_size(FrameSizes::kJoinSolicit) &&
              is_prebuilt_prr_size(FrameSizes::kJoinedCallback) &&
              is_prebuilt_prr_size(FrameSizes::kDestAdvert) &&
              is_prebuilt_prr_size(FrameSizes::kData) &&
              is_prebuilt_prr_size(FrameSizes::kTopologyReport) &&
              is_prebuilt_prr_size(FrameSizes::kMgmtUpdate) &&
              is_prebuilt_prr_size(FrameSizes::kKeepAlive) &&
              is_prebuilt_prr_size(FrameSizes::kAck),
              "every FrameSizes length must have an eagerly built PRR table");

[[nodiscard]] constexpr int default_frame_bytes(FrameType t) {
  switch (t) {
    case FrameType::kEnhancedBeacon: return FrameSizes::kEnhancedBeacon;
    case FrameType::kJoinIn: return FrameSizes::kJoinIn;
    case FrameType::kJoinSolicit: return FrameSizes::kJoinSolicit;
    case FrameType::kJoinedCallback: return FrameSizes::kJoinedCallback;
    case FrameType::kDestAdvert: return FrameSizes::kDestAdvert;
    case FrameType::kData: return FrameSizes::kData;
    case FrameType::kTopologyReport: return FrameSizes::kTopologyReport;
    case FrameType::kMgmtUpdate: return FrameSizes::kMgmtUpdate;
    case FrameType::kKeepAlive: return FrameSizes::kKeepAlive;
  }
  return FrameSizes::kData;
}

struct Frame {
  FrameType type{FrameType::kData};
  NodeId src;  // link-layer sender of this hop
  NodeId dst;  // link-layer destination; kNoNode means broadcast (no ACK)
  int length_bytes{FrameSizes::kData};
  FramePayload payload;

  [[nodiscard]] bool is_broadcast() const { return !dst.valid(); }

  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(payload);
  }
};

/// Builds a frame with the default length for its type.
template <typename Payload>
[[nodiscard]] Frame make_frame(FrameType type, NodeId src, NodeId dst,
                               Payload payload) {
  Frame f;
  f.type = type;
  f.src = src;
  f.dst = dst;
  f.length_bytes = default_frame_bytes(type);
  f.payload = std::move(payload);
  return f;
}

}  // namespace digs
