#include "net/neighbor_table.h"

#include <algorithm>

namespace digs {

NeighborInfo* NeighborTable::get_or_create(NodeId id, double rss_dbm,
                                           SimTime now) {
  for (auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  // Admission control: don't track neighbors that are barely audible.
  if (rss_dbm < etx_config_.admission_rss_dbm) return nullptr;
  NeighborInfo info;
  info.id = id;
  info.etx = EtxEstimator{etx_config_};
  info.rss_dbm = rss_dbm;
  info.last_heard = now;
  entries_.push_back(info);
  return &entries_.back();
}

void NeighborTable::on_heard(NodeId id, double rss_dbm, std::uint16_t rank,
                             double etxw, SimTime now) {
  NeighborInfo* n = get_or_create(id, rss_dbm, now);
  if (n == nullptr) return;
  // Smooth RSS with a light EWMA; first contact seeds directly.
  n->rss_dbm = 0.8 * n->rss_dbm + 0.2 * rss_dbm;
  n->etx.seed_from_rss(n->rss_dbm);
  n->rank = rank;
  n->advertised_etxw = etxw;
  n->last_heard = now;
}

void NeighborTable::on_heard_rss(NodeId id, double rss_dbm, SimTime now) {
  NeighborInfo* n = get_or_create(id, rss_dbm, now);
  if (n == nullptr) return;
  n->rss_dbm = 0.8 * n->rss_dbm + 0.2 * rss_dbm;
  n->etx.seed_from_rss(n->rss_dbm);
  n->last_heard = now;
}

void NeighborTable::on_transmission(NodeId id, bool acked) {
  NeighborInfo* n = find(id);
  if (n == nullptr) return;
  n->etx.on_transmission(acked);
  n->consecutive_noacks = acked ? 0 : n->consecutive_noacks + 1;
}

void NeighborTable::remove(NodeId id) {
  std::erase_if(entries_, [id](const NeighborInfo& n) { return n.id == id; });
}

const NeighborInfo* NeighborTable::find(NodeId id) const {
  for (const auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

NeighborInfo* NeighborTable::find(NodeId id) {
  for (auto& entry : entries_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

const NeighborInfo* NeighborTable::best(
    const std::function<double(const NeighborInfo&)>& cost,
    const std::function<bool(const NeighborInfo&)>& exclude) const {
  const NeighborInfo* best_entry = nullptr;
  double best_cost = NeighborInfo::kInfiniteEtx;
  for (const auto& entry : entries_) {
    if (exclude && exclude(entry)) continue;
    const double c = cost(entry);
    if (c < best_cost) {
      best_cost = c;
      best_entry = &entry;
    }
  }
  return best_entry;
}

}  // namespace digs
