// Per-node neighbor table: everything a node has learned about its radio
// neighborhood from overheard join-in messages and unicast ACK feedback.
// Both the DiGS routing protocol and the RPL/Orchestra baseline read from it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "net/etx.h"

namespace digs {

struct NeighborInfo {
  NodeId id;
  EtxEstimator etx;
  /// Smoothed RSS of frames heard from this neighbor (dBm).
  double rss_dbm{-100.0};
  /// Last advertised rank (infinity until heard).
  std::uint16_t rank{kInfiniteRank};
  /// Last advertised weighted ETX / path cost.
  double advertised_etxw{kInfiniteEtx};
  SimTime last_heard{};
  /// Consecutive unicast failures towards this neighbor; reset on success.
  int consecutive_noacks{0};

  static constexpr std::uint16_t kInfiniteRank = digs::kInfiniteRank;
  static constexpr double kInfiniteEtx = 1e9;

  /// Accumulated cost to the APs when routing through this neighbor:
  /// link ETX plus the neighbor's advertised path cost (paper's
  /// ETXa(node, i) = ETX(node, i) + ETXw(i)).
  [[nodiscard]] double accumulated_etx() const {
    if (advertised_etxw >= kInfiniteEtx) return kInfiniteEtx;
    return etx.value() + advertised_etxw;
  }
};

class NeighborTable {
 public:
  explicit NeighborTable(const EtxConfig& etx_config = {})
      : etx_config_(etx_config) {}

  /// Records a frame heard from `id` carrying the given advertisement.
  /// Seeds the neighbor's ETX from RSS on first contact (paper Section V).
  void on_heard(NodeId id, double rss_dbm, std::uint16_t rank, double etxw,
                SimTime now);

  /// Records RSS-only contact (e.g. an overheard EB with no routing info).
  void on_heard_rss(NodeId id, double rss_dbm, SimTime now);

  /// Records the outcome of one unicast attempt towards `id`.
  void on_transmission(NodeId id, bool acked);

  /// Removes a neighbor entirely (e.g. declared dead).
  void remove(NodeId id);

  /// Forgets every neighbor (the owning node lost power; ETX estimates and
  /// advertisements do not survive a reboot).
  void clear() { entries_.clear(); }

  [[nodiscard]] const NeighborInfo* find(NodeId id) const;
  [[nodiscard]] NeighborInfo* find(NodeId id);

  [[nodiscard]] const std::vector<NeighborInfo>& neighbors() const {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Best neighbor according to `cost` (smaller is better), excluding those
  /// for which `exclude` returns true. Returns nullptr if none qualify.
  [[nodiscard]] const NeighborInfo* best(
      const std::function<double(const NeighborInfo&)>& cost,
      const std::function<bool(const NeighborInfo&)>& exclude) const;

 private:
  /// Returns the entry, creating it unless the first contact is below the
  /// admission RSS (in which case nullptr).
  NeighborInfo* get_or_create(NodeId id, double rss_dbm, SimTime now);

  EtxConfig etx_config_;
  std::vector<NeighborInfo> entries_;
};

}  // namespace digs
