#include "phy/cell_index.h"

#include <algorithm>

namespace digs {

void CellAttemptIndex::build(const SpatialGrid& grid,
                             std::span<const TransmissionAttempt> attempts) {
  // Clear only the buckets the previous slot touched: a busy slot fills a
  // handful of (cell, channel) buckets out of potentially tens of thousands.
  for (const std::uint32_t bucket : touched_) buckets_[bucket].clear();
  touched_.clear();
  overflow_.clear();
  if (!grid.built() || !grid.active()) {
    grid_ = nullptr;
    return;
  }
  grid_ = &grid;
  buckets_.resize(static_cast<std::size_t>(grid.num_cells()) * kNumChannels);
  near_stamp_.resize(static_cast<std::size_t>(grid.num_cells()) *
                         kNumChannels,
                     0);
  ++near_gen_;
  const std::uint32_t cols = grid.cols();
  const std::uint32_t rows = grid.rows();
  const std::size_t n = grid.num_nodes();
  for (std::uint32_t t = 0; t < attempts.size(); ++t) {
    const std::size_t sender = attempts[t].sender.value;
    const PhysicalChannel ch = attempts[t].channel;
    if (sender >= n || ch >= kNumChannels) {
      overflow_.push_back(t);
      continue;
    }
    const std::uint32_t cell =
        grid.cell_of(static_cast<std::uint16_t>(sender));
    const std::uint32_t bucket_id =
        cell * static_cast<std::uint32_t>(kNumChannels) + ch;
    std::vector<std::uint32_t>& bucket = buckets_[bucket_id];
    if (bucket.empty()) touched_.push_back(bucket_id);
    bucket.push_back(t);
    // Dilate this attempt's cell by one step on its channel: after the
    // loop, empty_near() answers "no same-channel attempt within the 3×3
    // neighborhood" with one array read.
    const std::uint32_t cx = cell % cols;
    const std::uint32_t cy = cell / cols;
    const std::uint32_t x0 = cx > 0 ? cx - 1 : 0;
    const std::uint32_t x1 = std::min(cx + 1, cols - 1);
    const std::uint32_t y0 = cy > 0 ? cy - 1 : 0;
    const std::uint32_t y1 = std::min(cy + 1, rows - 1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) {
        near_stamp_[static_cast<std::size_t>(y * cols + x) * kNumChannels +
                    ch] = near_gen_;
      }
    }
  }
}

void CellAttemptIndex::gather(std::uint16_t node, PhysicalChannel channel,
                              std::vector<std::uint32_t>& out) const {
  // Channels beyond the bucket range only ever land in overflow_.
  if (channel < kNumChannels) {
    const std::uint32_t cell = grid_->cell_of(node);
    const std::uint32_t cols = grid_->cols();
    const std::uint32_t cx = cell % cols;
    const std::uint32_t cy = cell / cols;
    const std::uint32_t x0 = cx > 0 ? cx - 1 : 0;
    const std::uint32_t x1 = std::min(cx + 1, grid_->cols() - 1);
    const std::uint32_t y0 = cy > 0 ? cy - 1 : 0;
    const std::uint32_t y1 = std::min(cy + 1, grid_->rows() - 1);
    for (std::uint32_t y = y0; y <= y1; ++y) {
      for (std::uint32_t x = x0; x <= x1; ++x) {
        const std::vector<std::uint32_t>& bucket =
            buckets_[static_cast<std::size_t>(y * cols + x) * kNumChannels +
                     channel];
        out.insert(out.end(), bucket.begin(), bucket.end());
      }
    }
  }
  out.insert(out.end(), overflow_.begin(), overflow_.end());
}

}  // namespace digs
