// Per-slot spatial index over the frames on the air.
//
// A busy slot's TransmissionAttempts are bucketed by the sender's grid cell
// once, and every listener then visits only the buckets of its 3×3 cell
// neighborhood. Under the SpatialGrid coupling cutoff an attempt outside
// that neighborhood contributes exactly 0.0 mW and never decodes, so the
// bucket walk is bit-identical to the full scan by construction — it skips
// only terms the reference path skips too (reception_pipeline_test pins
// this). The win is asymptotic: listener resolution drops from O(L·T) to
// O(L·T_local), which is what keeps city-scale slots flat as the deployment
// grows.
//
// One index is built per slot (by Network, shared read-only across shards;
// SlotReception builds its own when used standalone) and reused by the data
// path, the ACK path, and Medium's reference interference walk.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phy/medium.h"

namespace digs {

class CellAttemptIndex {
 public:
  /// Buckets `attempts` by sender cell. Attempt indices stay ascending
  /// inside each bucket (attempts are scanned in order). When the grid is
  /// unbuilt or its 3×3 filter inactive the index deactivates — every pair
  /// couples, so callers fall back to the plain full scan. The grid and the
  /// span must outlive the index (both live for the whole slot).
  void build(const SpatialGrid& grid,
             std::span<const TransmissionAttempt> attempts);

  /// True when gather() is available (grid active and build() ran).
  [[nodiscard]] bool active() const { return grid_ != nullptr; }

  /// Appends the attempt indices of every (cell, `channel`) bucket in the
  /// 3×3 neighborhood of `node`'s cell — exactly the attempts coupled to
  /// `node` that a listener on `channel` could keep — plus any overflow
  /// attempt (sender outside the grid's node range, conservatively coupled
  /// to everyone, matching Medium::coupled(); overflow is NOT channel
  /// filtered, callers still check). Buckets are appended whole, so `out`
  /// is ascending per bucket but not globally: callers needing the
  /// reference accumulation order sort it.
  void gather(std::uint16_t node, PhysicalChannel channel,
              std::vector<std::uint32_t>& out) const;

  /// True when NOTHING this slot can reach a listener at `node` on
  /// `channel`: the overflow bucket is empty and the 3×3 neighborhood of
  /// `node`'s cell holds no bucketed attempt on that channel (checked
  /// against a per-channel dilated occupancy mask built once per slot). A
  /// listener this returns true for would end up with an empty candidate
  /// list after the channel filter — no RSS, no decode, no draw, no guard
  /// miss — so callers skip it wholesale with bit-identical results.
  /// Conservatively false when the index is inactive or the node or
  /// channel is out of range.
  [[nodiscard]] bool empty_near(std::uint16_t node,
                                PhysicalChannel channel) const {
    if (grid_ == nullptr || !overflow_.empty()) return false;
    if (node >= grid_->num_nodes() || channel >= kNumChannels) return false;
    return near_stamp_[static_cast<std::size_t>(grid_->cell_of(node)) *
                           kNumChannels +
                       channel] != near_gen_;
  }

 private:
  // [cell * kNumChannels + channel] -> ascending attempt indices. Bucketing
  // by channel too keeps a listener's gather from ever touching the other
  // channels' attempts (a 16-channel EB storm would otherwise hand every
  // listener 16x the candidates just to filter them away).
  std::vector<std::vector<std::uint32_t>> buckets_;
  const SpatialGrid* grid_{nullptr};
  std::vector<std::uint32_t> touched_;  // bucket ids with entries
  std::vector<std::uint32_t> overflow_;  // senders beyond the grid's range,
                                         // or channels beyond kNumChannels
  // Dilated occupancy: near_stamp_[c * kNumChannels + ch] == near_gen_ iff
  // some bucketed attempt on channel ch lies within one cell step of cell
  // c. Generation-stamped so build() never clears the whole floor (a stale
  // stamp from a wrapped generation can only produce a false "occupied" —
  // slower, never wrong).
  std::vector<std::uint32_t> near_stamp_;
  std::uint32_t near_gen_{0};
};

}  // namespace digs
