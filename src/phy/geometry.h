// Node placement geometry. Positions are metres; z encodes the floor
// elevation (Testbed B spans two floors, paper Fig. 8(b)).
#pragma once

#include <cmath>
#include <vector>

namespace digs {

struct Position {
  double x{0};
  double y{0};
  double z{0};

  friend constexpr bool operator==(const Position&, const Position&) = default;
};

[[nodiscard]] inline double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

/// Number of floor boundaries crossed between two positions, assuming
/// `floor_height` metres per storey. Used to add per-floor penetration loss.
[[nodiscard]] inline int floors_crossed(const Position& a, const Position& b,
                                        double floor_height = 4.0) {
  return static_cast<int>(std::abs(a.z - b.z) / floor_height + 0.5);
}

}  // namespace digs
