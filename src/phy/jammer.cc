#include "phy/jammer.h"

#include <algorithm>
#include <cmath>

namespace digs {

double path_loss_power_mw(const Position& from, const Position& rx,
                          double tx_power_dbm, double path_loss_ref_db,
                          double path_loss_exponent,
                          double floor_penetration_db, double floor_height_m) {
  const double d = std::max(distance(from, rx), 1.0);
  const double pl = path_loss_ref_db +
                    10.0 * path_loss_exponent * std::log10(d) +
                    floors_crossed(from, rx, floor_height_m) *
                        floor_penetration_db;
  return std::pow(10.0, (tx_power_dbm - pl) / 10.0);
}

JammerConfig sanitize_jammer_config(JammerConfig config) {
  config.wifi_block_start = std::clamp(config.wifi_block_start, 0, 12);
  if (!std::isfinite(config.tx_power_dbm)) config.tx_power_dbm = 10.0;
  config.tx_power_dbm = std::clamp(config.tx_power_dbm, -60.0, 36.0);
  if (config.on_duration.us < 0) config.on_duration = SimDuration{0};
  if (config.off_duration.us < 0) config.off_duration = SimDuration{0};
  return config;
}

Jammer::Jammer(const JammerConfig& config, std::uint64_t seed)
    : config_(sanitize_jammer_config(config)), seed_(seed) {}

bool Jammer::macro_on(SimTime t) const {
  if (t < config_.start) return false;
  if (config_.off_duration.us <= 0) return true;
  const std::int64_t cycle =
      config_.on_duration.us + config_.off_duration.us;
  const std::int64_t phase = (t - config_.start).us % cycle;
  return phase < config_.on_duration.us;
}

bool Jammer::active(PhysicalChannel channel, std::uint64_t slot,
                    SimTime slot_start) const {
  if (!macro_on(slot_start)) return false;
  switch (config_.pattern) {
    case JammerPattern::kConstant:
      return true;
    case JammerPattern::kWifiStreaming: {
      // Affects a block of 4 adjacent channels. Busy/idle bursts: carve time
      // into 50-slot (500 ms) epochs; within a busy epoch each slot is hit
      // with p=0.9, in an idle epoch with p=0.1. ~3 of 4 epochs are busy,
      // emulating sustained data streaming with inter-frame gaps.
      const int block = config_.wifi_block_start;
      if (channel < block || channel >= block + 4) return false;
      const std::uint64_t epoch = slot / 50;
      const bool busy = (hash_mix(seed_, 0xE9, epoch) & 3) != 0;
      const double p = busy ? 0.9 : 0.1;
      const std::uint64_t h = hash_mix(seed_, 0x51, slot);
      return (h >> 11) * 0x1.0p-53 < p;
    }
    case JammerPattern::kBluetooth: {
      // 1600 hops/s over 79 1-MHz channels: within one 10 ms slot, 16 hops;
      // each 802.15.4 channel (2 MHz wide) overlaps ~2/79 of hops, so the
      // chance at least one of ~16 hops lands on this channel ~ 33%.
      const std::uint64_t h = hash_mix(seed_, 0xB7, channel, slot);
      return (h >> 11) * 0x1.0p-53 < 0.33;
    }
  }
  return false;
}

double Jammer::received_power_mw(const Position& rx, double path_loss_ref_db,
                                 double path_loss_exponent,
                                 double floor_penetration_db,
                                 double floor_height_m) const {
  return path_loss_power_mw(config_.position, rx, config_.tx_power_dbm,
                            path_loss_ref_db, path_loss_exponent,
                            floor_penetration_db, floor_height_m);
}

}  // namespace digs
