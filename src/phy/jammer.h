// Controlled interference sources, modelled after JamLab (Boano et al.,
// IPSN'11) as used in the paper's experiments: sensor motes reconfigured to
// emit signals whose temporal pattern emulates WiFi data streaming (bursty,
// high duty cycle while "busy") or Bluetooth. A WiFi-shaped jammer occupies a
// block of 4 adjacent 802.15.4 channels (a 22 MHz WiFi channel covers four
// 2 MHz 802.15.4 channels); a wideband jammer covers all 16.
//
// Jammers additionally have a macro on/off cycle (paper Fig. 12: Cooja
// disturbers toggling every 5 minutes). Activity per slot is hash-derived so
// runs are reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

enum class JammerPattern {
  /// Emulated WiFi data streaming: busy bursts of many consecutive slots
  /// with short gaps; ~75% of slots hit while the macro-cycle is on.
  kWifiStreaming,
  /// Emulated Bluetooth: frequency-hopping short bursts, lower per-channel
  /// hit probability but all channels affected over time.
  kBluetooth,
  /// Constant carrier while on.
  kConstant,
};

struct JammerConfig {
  Position position;
  double tx_power_dbm = 10.0;  // boosted to emulate 802.11 power (paper VII-A)
  JammerPattern pattern = JammerPattern::kWifiStreaming;
  /// First 802.15.4 channel (0..15) of the affected 4-channel block for the
  /// WiFi pattern; ignored for Bluetooth/Constant.
  int wifi_block_start = 6;
  /// Macro activity cycle. Active in [start, start+on), then off for `off`,
  /// repeating. `off.us == 0` means always within the on-phase.
  SimTime start{0};
  SimDuration on_duration = seconds(static_cast<std::int64_t>(3'600));
  SimDuration off_duration = seconds(static_cast<std::int64_t>(0));
};

/// Received power (mW) at `rx` from an emitter at `from` transmitting
/// `tx_power_dbm`, through the pure path-loss + floor-penetration curve (no
/// fading). Shared by jammer emissions and the reactive jammer's
/// energy-detection sniffer.
[[nodiscard]] double path_loss_power_mw(const Position& from,
                                        const Position& rx,
                                        double tx_power_dbm,
                                        double path_loss_ref_db,
                                        double path_loss_exponent,
                                        double floor_penetration_db,
                                        double floor_height_m);

/// Clamps a jammer description into the model's valid domain at
/// construction time instead of silently producing out-of-range behavior:
/// `wifi_block_start` is clamped so the whole 4-channel block stays inside
/// channels 0..15 (i.e. to 0..12); non-finite `tx_power_dbm` falls back to
/// the 10 dBm default and finite values clamp to a plausible emitter range
/// [-60, +36] dBm (negative dBm is a legitimate weak emitter — the
/// experiment default is -4 dBm — and is preserved); negative macro
/// durations clamp to zero.
[[nodiscard]] JammerConfig sanitize_jammer_config(JammerConfig config);

/// One interference source. Stateless: activity is a pure function of
/// (config, seed, channel, slot).
class Jammer {
 public:
  Jammer(const JammerConfig& config, std::uint64_t seed);

  /// True if this jammer corrupts the given channel during the given slot.
  [[nodiscard]] bool active(PhysicalChannel channel, std::uint64_t slot,
                            SimTime slot_start) const;

  /// Interference power in mW received at `rx` when active (path loss only;
  /// jammer emissions are wideband noise, no fading structure needed).
  [[nodiscard]] double received_power_mw(const Position& rx,
                                         double path_loss_ref_db,
                                         double path_loss_exponent,
                                         double floor_penetration_db,
                                         double floor_height_m) const;

  [[nodiscard]] const JammerConfig& config() const { return config_; }

 private:
  [[nodiscard]] bool macro_on(SimTime t) const;

  JammerConfig config_;
  std::uint64_t seed_;
};

}  // namespace digs
