#include "phy/medium.h"

#include <algorithm>
#include <cmath>

#include "phy/cell_index.h"

namespace digs {

Medium::Medium(const MediumConfig& config, std::vector<Position> positions,
               std::uint64_t seed)
    : config_(config),
      positions_(std::move(positions)),
      // Compact mode (n above the flat-table cap) skips the Propagation
      // memoization caches too: the dense link-key table alone is O(N²) and
      // the pair/channel mean cache is far larger. The CSR rows built by
      // build_reachability() take over both roles for the hot path.
      propagation_(config.propagation, seed,
                   positions_.size() <= config.flat_table_max_nodes
                       ? positions_.size()
                       : 0),
      seed_(seed),
      noise_floor_mw_(std::pow(10.0, config.noise_floor_dbm / 10.0)) {
  prr_tables_.reserve(kPrebuiltPrrFrameBytes.size());
  for (const int bytes : kPrebuiltPrrFrameBytes) {
    prr_tables_.emplace_back(bytes);
  }
}

void Medium::add_jammer(const JammerConfig& jammer_config) {
  jammers_.emplace_back(jammer_config,
                        hash_mix(seed_, 0x1A33, jammers_.size()));
  jammer_masks_.push_back(
      emitter_cell_mask(jammers_.back().config().position,
                        jammers_.back().config().tx_power_dbm));
}

void Medium::add_reactive_jammer(const ReactiveJammerConfig& jammer_config) {
  reactive_jammers_.emplace_back(
      jammer_config, hash_mix(seed_, 0x5EAC, reactive_jammers_.size()));
  reactive_jammer_masks_.push_back(
      emitter_cell_mask(reactive_jammers_.back().config().position,
                        reactive_jammers_.back().config().tx_power_dbm));
}

void Medium::observe_slot_attempts(
    std::uint64_t slot, SimTime slot_start,
    std::span<const TransmissionAttempt> attempts) {
  const auto& prop = config_.propagation;
  for (ReactiveJammer& jammer : reactive_jammers_) {
    if (!jammer.begin_slot(slot, slot_start)) continue;
    if (attempts.empty()) continue;
    const Position& ear = jammer.config().position;
    const double floor_mw = jammer.sniff_floor_mw();
    for (const TransmissionAttempt& attempt : attempts) {
      if (attempt.sender.value >= positions_.size()) continue;
      const double mw = path_loss_power_mw(
          positions_[attempt.sender.value], ear, attempt.tx_power_dbm,
          prop.path_loss_ref_db, prop.path_loss_exponent,
          prop.floor_penetration_db, prop.floor_height_m);
      if (mw >= floor_mw) jammer.hear(slot, attempt.channel);
    }
  }
}

bool Medium::any_jammer_active(PhysicalChannel channel, std::uint64_t slot,
                               SimTime slot_start) const {
  for (const Jammer& jammer : jammers_) {
    if (jammer.active(channel, slot, slot_start)) return true;
  }
  for (const ReactiveJammer& jammer : reactive_jammers_) {
    if (jammer.active(channel, slot, slot_start)) return true;
  }
  return false;
}

void Medium::set_link_blackout(NodeId a, NodeId b, bool blacked_out) {
  const std::size_t n = positions_.size();
  if (a.value >= n || b.value >= n || a == b) return;
  if (blackouts_.empty()) {
    if (!blacked_out) return;
    blackouts_.assign(n * n, 0);
  }
  const std::uint8_t value = blacked_out ? 1 : 0;
  for (const std::size_t index :
       {a.value * n + b.value, b.value * n + a.value}) {
    if (blackouts_[index] == value) continue;
    blackouts_[index] = value;
    blackouts_active_ += blacked_out ? 1 : -1;
  }
}

double Medium::rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                       std::uint64_t slot, double tx_power_dbm) const {
  // Fast path: at the primed TX power the static mean comes from the flat
  // table (same double mean_rss_dbm() returns), leaving only the temporal
  // fading draw. Any other power falls back to the full propagation path.
  if (!mean_table_.empty() && tx_power_dbm == primed_power_dbm_ &&
      channel < kNumChannels) {
    const std::size_t n = positions_.size();
    if (tx.value < n && rx.value < n) {
      return mean_table_[(rx.value * kNumChannels + channel) * n + tx.value] +
             propagation_.fading_db(tx, rx, channel, slot);
    }
  }
  // Compact-mode fast path: mean and link key from the listener's CSR row.
  // Pairs outside the row (beyond the grid neighborhood) fall through to the
  // full computation, so rss_dbm() stays a pure model query for tools and
  // tests — the coupling cutoff is applied by the reception/interference
  // callers, not here.
  if (!csr_offsets_.empty() && tx_power_dbm == primed_power_dbm_ &&
      channel < kNumChannels) {
    const std::size_t n = positions_.size();
    if (tx.value < n && rx.value < n) {
      const std::size_t o = csr_offsets_[rx.value];
      const std::size_t len = csr_offsets_[rx.value + 1] - o;
      const auto* begin = csr_cols_.data() + o;
      const auto* end = begin + len;
      const auto* it = std::lower_bound(begin, end, tx.value);
      if (it != end && *it == tx.value) {
        const auto idx = static_cast<std::size_t>(it - begin);
        return csr_means_[o * kNumChannels + channel * len + idx] +
               propagation_.fading_from_key(csr_keys_[o + idx], channel,
                                            propagation_.fading_block(slot));
      }
    }
  }
  return propagation_.rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                              positions_[rx.value], channel, slot);
}

double Medium::mean_rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                            double tx_power_dbm) const {
  return propagation_.mean_rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                                   positions_[rx.value], channel);
}

double Medium::interference_mw(NodeId rx, PhysicalChannel channel,
                               std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> concurrent,
                               NodeId wanted,
                               const CellAttemptIndex* cells) const {
  // Reference O(T) evaluation with the accumulate-then-subtract structure:
  // the per-slot resolver computes the same total once per (listener,
  // channel) and derives every pair by the same subtraction, so the two
  // paths agree bit-for-bit (see reception_pipeline_test).
  double total_mw = 0.0;
  double wanted_mw = 0.0;
  if (cells != nullptr && cells->active() && rx.value < positions_.size()) {
    // Cell-indexed walk: the buckets hold exactly the grid-coupled attempts
    // (everything else contributes 0.0 here by the cutoff below), sorted
    // back into ascending attempt index so the accumulation order matches
    // the full scan term for term.
    static thread_local std::vector<std::uint32_t> local;
    local.clear();
    cells->gather(static_cast<std::uint16_t>(rx.value), channel, local);
    std::sort(local.begin(), local.end());
    for (const std::uint32_t t : local) {
      const TransmissionAttempt& other = concurrent[t];
      if (other.sender == rx) continue;
      if (other.channel != channel) continue;
      const double rss =
          rss_dbm(other.sender, rx, channel, slot, other.tx_power_dbm);
      const double mw = dbm_to_mw(rss);
      total_mw += mw;
      if (other.sender == wanted) wanted_mw = mw;
    }
  } else {
    for (const auto& other : concurrent) {
      if (other.sender == rx) continue;
      if (other.channel != channel) continue;
      // Transmitters beyond the grid's 3×3-neighborhood cutoff are
      // uncoupled: by model definition they contribute nothing here, exactly
      // as they decode with probability 0. Jammers get the same treatment
      // via per-jammer reachable-cell masks inside jammer_mw().
      if (!coupled(other.sender, rx)) continue;
      const double rss =
          rss_dbm(other.sender, rx, channel, slot, other.tx_power_dbm);
      const double mw = dbm_to_mw(rss);
      total_mw += mw;
      if (other.sender == wanted) wanted_mw = mw;
    }
  }
  double interf_mw = total_mw - wanted_mw;
  if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
  return interf_mw + jammer_mw(rx, channel, slot, slot_start);
}

double Medium::jammer_mw(NodeId rx, PhysicalChannel channel,
                         std::uint64_t slot, SimTime slot_start) const {
  double total_mw = 0.0;
  const auto& prop = config_.propagation;
  // Per-jammer reachable-cell masks: a listener outside a jammer's mask
  // receives exactly 0 mW from it by model definition (same cutoff family
  // as the transmitter grid coupling), so the per-listener check is one
  // bit test instead of the activity hash + path-loss evaluation. Masks
  // are empty (global) while the grid is unbuilt or inactive — every
  // paper-scale layout — so those runs are bit-identical to the unmasked
  // model.
  const bool masked = grid_.active() && rx.value < grid_.num_nodes();
  const std::uint32_t rx_cell = masked ? grid_.cell_of(rx.value) : 0;
  for (std::size_t i = 0; i < jammers_.size(); ++i) {
    if (masked && i < jammer_masks_.size() &&
        !mask_covers(jammer_masks_[i], rx_cell)) {
      continue;
    }
    const Jammer& jammer = jammers_[i];
    if (!jammer.active(channel, slot, slot_start)) continue;
    total_mw += jammer.received_power_mw(
        positions_[rx.value], prop.path_loss_ref_db, prop.path_loss_exponent,
        prop.floor_penetration_db, prop.floor_height_m);
  }
  for (std::size_t i = 0; i < reactive_jammers_.size(); ++i) {
    if (masked && i < reactive_jammer_masks_.size() &&
        !mask_covers(reactive_jammer_masks_[i], rx_cell)) {
      continue;
    }
    const ReactiveJammer& jammer = reactive_jammers_[i];
    if (!jammer.active(channel, slot, slot_start)) continue;
    total_mw += jammer.received_power_mw(
        positions_[rx.value], prop.path_loss_ref_db, prop.path_loss_exponent,
        prop.floor_penetration_db, prop.floor_height_m);
  }
  return total_mw;
}

std::vector<std::uint64_t> Medium::emitter_cell_mask(
    const Position& pos, double tx_power_dbm) const {
  if (!grid_.built() || !grid_.active()) return {};
  const auto& p = config_.propagation;
  // Same ±6σ cutoff radius the grid cells are sized by, at the emitter's
  // own power: beyond it the pure path-loss mean sits under sensitivity
  // minus the provable fading margin (floors only attenuate further).
  const double floor_dbm =
      config_.sensitivity_dbm - propagation_.max_fading_db();
  const double exponent = (tx_power_dbm - p.path_loss_ref_db - floor_dbm) /
                          (10.0 * p.path_loss_exponent);
  const double radius_m = p.reference_distance_m * std::pow(10.0, exponent);
  // Chebyshev ring count: a cell more than `reach` rings from the
  // emitter's cell is at least (reach * cell_size) >= radius_m away at
  // every point (the emitter's clamped cell coordinates only shrink the
  // per-axis separation for off-map positions, keeping the bound valid).
  // The floor of 1 ring covers any 3×3-cell span outright.
  const auto rings =
      static_cast<std::int64_t>(std::ceil(radius_m / grid_.cell_size_m()));
  const std::int64_t reach = std::max<std::int64_t>(1, rings);
  std::uint32_t jcx = 0;
  std::uint32_t jcy = 0;
  grid_.cell_coords_of(pos, jcx, jcy);
  std::vector<std::uint64_t> mask((grid_.num_cells() + 63) / 64, 0);
  for (std::uint32_t cy = 0; cy < grid_.rows(); ++cy) {
    if (std::abs(static_cast<std::int64_t>(cy) -
                 static_cast<std::int64_t>(jcy)) > reach) {
      continue;
    }
    for (std::uint32_t cx = 0; cx < grid_.cols(); ++cx) {
      if (std::abs(static_cast<std::int64_t>(cx) -
                   static_cast<std::int64_t>(jcx)) > reach) {
        continue;
      }
      const std::size_t cell =
          static_cast<std::size_t>(cy) * grid_.cols() + cx;
      mask[cell >> 6] |= std::uint64_t{1} << (cell & 63);
    }
  }
  return mask;
}

void Medium::rebuild_jammer_masks() {
  jammer_masks_.clear();
  jammer_masks_.reserve(jammers_.size());
  for (const Jammer& jammer : jammers_) {
    jammer_masks_.push_back(emitter_cell_mask(jammer.config().position,
                                              jammer.config().tx_power_dbm));
  }
  reactive_jammer_masks_.clear();
  reactive_jammer_masks_.reserve(reactive_jammers_.size());
  for (const ReactiveJammer& jammer : reactive_jammers_) {
    reactive_jammer_masks_.push_back(emitter_cell_mask(
        jammer.config().position, jammer.config().tx_power_dbm));
  }
}

double Medium::grid_cell_size(double tx_power_dbm) const {
  if (config_.grid_cell_size_m > 0.0) return config_.grid_cell_size_m;
  const auto& p = config_.propagation;
  // Distance at which the pure path-loss mean reaches the candidate floor
  // (sensitivity minus the ±6σ fading margin). Any pair in non-adjacent
  // cells is separated by more than one cell edge, hence beyond this
  // radius. Floors only attenuate further; static shadowing/channel
  // offsets are the model's residual the 3×3 cutoff absorbs — every
  // paper-scale layout stays within 2×2 cells where the cutoff admits all
  // pairs, so their results are unchanged.
  const double floor_dbm =
      config_.sensitivity_dbm - propagation_.max_fading_db();
  const double exponent =
      (tx_power_dbm - p.path_loss_ref_db - floor_dbm) /
      (10.0 * p.path_loss_exponent);
  const double radius_m = p.reference_distance_m * std::pow(10.0, exponent);
  return std::max(10.0, radius_m);
}

void Medium::build_reachability(double tx_power_dbm) {
  const std::size_t n = positions_.size();
  primed_power_dbm_ = tx_power_dbm;
  grid_ = SpatialGrid(positions_, grid_cell_size(tx_power_dbm));
  rebuild_jammer_masks();
  reach_words_ = (n + 63) / 64;
  reachable_.assign(n * reach_words_, 0);
  // A pair is prunable only if EVERY channel's mean RSS sits more than the
  // provable fading excursion below the sensitivity; channels differ by the
  // static frequency-selective offsets, so each must be checked.
  const double margin_db = propagation_.max_fading_db();
  const double floor_dbm = config_.sensitivity_dbm - margin_db;
  if (n <= config_.flat_table_max_nodes) {
    // Flat mode: the historical O(N²) sweep fills the dense per-(rx,
    // channel) mean table used by the rss_dbm() fast path. Means are
    // computed for every pair (kept exact for model queries); only the
    // candidate bit is additionally gated by the grid coupling, matching
    // the reception paths.
    csr_offsets_.clear();
    csr_cols_.clear();
    csr_keys_.clear();
    csr_means_.clear();
    mean_table_.assign(n * kNumChannels * n, -1e9);
    for (std::uint16_t a = 0; a < n; ++a) {
      for (std::uint16_t b = a + 1; b < n; ++b) {
        bool candidate = false;
        for (PhysicalChannel ch = 0; ch < kNumChannels; ++ch) {
          const double mean =
              mean_rss_dbm(NodeId{a}, NodeId{b}, ch, tx_power_dbm);
          // Static components are symmetric: both directions share the mean.
          mean_table_[(a * kNumChannels + ch) * n + b] = mean;
          mean_table_[(b * kNumChannels + ch) * n + a] = mean;
          if (mean >= floor_dbm) candidate = true;
        }
        // Links are symmetric in all static components.
        if (candidate && grid_.coupled(a, b)) {
          set_reachable(a, b);
          set_reachable(b, a);
        }
      }
    }
    return;
  }
  // Compact mode: per-listener CSR rows over the grid neighborhood. Each
  // row's means are the exact doubles mean_rss_dbm() returns (static
  // components are symmetric, so direction does not matter), laid out
  // channel-major so a listener's co-channel walk is contiguous. The self
  // pair is excluded — every reception path skips it before any lookup.
  mean_table_.clear();
  csr_offsets_.assign(n + 1, 0);
  csr_cols_.clear();
  csr_keys_.clear();
  csr_means_.clear();
  std::vector<std::uint16_t> hood;
  for (std::size_t rx = 0; rx < n; ++rx) {
    const auto rx_id = static_cast<std::uint16_t>(rx);
    grid_.neighborhood(rx_id, hood);
    const std::size_t row_start = csr_cols_.size();
    for (const std::uint16_t col : hood) {
      if (col == rx_id) continue;
      csr_cols_.push_back(col);
      csr_keys_.push_back(propagation_.link_key(NodeId{rx_id}, NodeId{col}));
    }
    const std::size_t len = csr_cols_.size() - row_start;
    csr_means_.resize(csr_means_.size() + len * kNumChannels);
    double* row = csr_means_.data() + row_start * kNumChannels;
    for (std::size_t i = 0; i < len; ++i) {
      const NodeId tx{csr_cols_[row_start + i]};
      bool candidate = false;
      for (PhysicalChannel ch = 0; ch < kNumChannels; ++ch) {
        const double mean = mean_rss_dbm(tx, NodeId{rx_id}, ch, tx_power_dbm);
        row[static_cast<std::size_t>(ch) * len + i] = mean;
        if (mean >= floor_dbm) candidate = true;
      }
      if (candidate) set_reachable(tx.value, rx);
    }
    csr_offsets_[rx + 1] = csr_cols_.size();
  }
}

const PrrTable& Medium::table_for(int frame_bytes) const {
  // prr_tables_ is built in kPrebuiltPrrFrameBytes order, so the scan runs
  // over the small constexpr array instead of striding through the tables.
  for (std::size_t i = 0; i < kPrebuiltPrrFrameBytes.size(); ++i) {
    if (kPrebuiltPrrFrameBytes[i] == frame_bytes) return prr_tables_[i];
  }
  const std::lock_guard<std::mutex> lock(extra_prr_mutex_);
  auto it = extra_prr_tables_.find(frame_bytes);
  if (it == extra_prr_tables_.end()) {
    it = extra_prr_tables_.emplace(frame_bytes, PrrTable{frame_bytes}).first;
  }
  return it->second;
}

Medium::ReceptionCheck Medium::check_reception(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
    double rx_clock_offset_us, double guard_us,
    const CellAttemptIndex* cells) const {
  if (tx.sender == rx) return {};
  // Beyond the grid coupling cutoff nothing arrives at all — no preamble,
  // no guard-miss accounting, no interference from this frame here. The
  // per-slot resolver applies the identical cutoff (its coupled-candidate
  // stamp mask), so both paths return the same empty outcome.
  if (!coupled(tx.sender, rx)) return {};
  const double signal_dbm =
      rss_dbm(tx.sender, rx, tx.channel, slot, tx.tx_power_dbm);
  // Guard-time miss: the frame arrived outside the receiver's listen
  // window, so no preamble is detected no matter how strong the signal.
  // The frame still radiates interference at every other listener.
  if (std::fabs(tx.clock_offset_us - rx_clock_offset_us) > guard_us) {
    return {0.0, signal_dbm, true};
  }
  if (signal_dbm < config_.sensitivity_dbm) return {0.0, signal_dbm};
  if (link_blacked_out(tx.sender, rx)) return {0.0, signal_dbm};

  const double interf_mw = interference_mw(rx, tx.channel, slot, slot_start,
                                           concurrent, tx.sender, cells);
  const double signal_mw = dbm_to_mw(signal_dbm);
  const double sinr_db =
      10.0 * std::log10(signal_mw / (noise_floor_mw_ + interf_mw));
  return {table_for(tx.frame_bytes).prr(sinr_db), signal_dbm};
}

double Medium::reception_probability(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
    double rx_clock_offset_us, double guard_us,
    const CellAttemptIndex* cells) const {
  return check_reception(tx, rx, slot, slot_start, concurrent,
                         rx_clock_offset_us, guard_us, cells)
      .probability;
}

bool Medium::try_receive(const TransmissionAttempt& tx, NodeId rx,
                         std::uint64_t slot, SimTime slot_start,
                         std::span<const TransmissionAttempt> concurrent,
                         Rng& rng) const {
  return rng.chance(
      reception_probability(tx, rx, slot, slot_start, concurrent));
}

}  // namespace digs
