#include "phy/medium.h"

#include <cmath>

namespace digs {

Medium::Medium(const MediumConfig& config, std::vector<Position> positions,
               std::uint64_t seed)
    : config_(config),
      positions_(std::move(positions)),
      propagation_(config.propagation, seed, positions_.size()),
      seed_(seed),
      noise_floor_mw_(std::pow(10.0, config.noise_floor_dbm / 10.0)) {
  prr_tables_.reserve(kPrebuiltPrrFrameBytes.size());
  for (const int bytes : kPrebuiltPrrFrameBytes) {
    prr_tables_.emplace_back(bytes);
  }
}

void Medium::add_jammer(const JammerConfig& jammer_config) {
  jammers_.emplace_back(jammer_config,
                        hash_mix(seed_, 0x1A33, jammers_.size()));
}

void Medium::set_link_blackout(NodeId a, NodeId b, bool blacked_out) {
  const std::size_t n = positions_.size();
  if (a.value >= n || b.value >= n || a == b) return;
  if (blackouts_.empty()) {
    if (!blacked_out) return;
    blackouts_.assign(n * n, 0);
  }
  const std::uint8_t value = blacked_out ? 1 : 0;
  for (const std::size_t index :
       {a.value * n + b.value, b.value * n + a.value}) {
    if (blackouts_[index] == value) continue;
    blackouts_[index] = value;
    blackouts_active_ += blacked_out ? 1 : -1;
  }
}

double Medium::rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                       std::uint64_t slot, double tx_power_dbm) const {
  // Fast path: at the primed TX power the static mean comes from the flat
  // table (same double mean_rss_dbm() returns), leaving only the temporal
  // fading draw. Any other power falls back to the full propagation path.
  if (!mean_table_.empty() && tx_power_dbm == primed_power_dbm_ &&
      channel < kNumChannels) {
    const std::size_t n = positions_.size();
    if (tx.value < n && rx.value < n) {
      return mean_table_[(rx.value * kNumChannels + channel) * n + tx.value] +
             propagation_.fading_db(tx, rx, channel, slot);
    }
  }
  return propagation_.rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                              positions_[rx.value], channel, slot);
}

double Medium::mean_rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                            double tx_power_dbm) const {
  return propagation_.mean_rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                                   positions_[rx.value], channel);
}

double Medium::interference_mw(NodeId rx, PhysicalChannel channel,
                               std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> concurrent,
                               NodeId wanted) const {
  // Reference O(T) evaluation with the accumulate-then-subtract structure:
  // the per-slot resolver computes the same total once per (listener,
  // channel) and derives every pair by the same subtraction, so the two
  // paths agree bit-for-bit (see reception_pipeline_test).
  double total_mw = 0.0;
  double wanted_mw = 0.0;
  for (const auto& other : concurrent) {
    if (other.sender == rx) continue;
    if (other.channel != channel) continue;
    const double rss =
        rss_dbm(other.sender, rx, channel, slot, other.tx_power_dbm);
    const double mw = dbm_to_mw(rss);
    total_mw += mw;
    if (other.sender == wanted) wanted_mw = mw;
  }
  double interf_mw = total_mw - wanted_mw;
  if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
  return interf_mw + jammer_mw(rx, channel, slot, slot_start);
}

double Medium::jammer_mw(NodeId rx, PhysicalChannel channel,
                         std::uint64_t slot, SimTime slot_start) const {
  double total_mw = 0.0;
  const auto& prop = config_.propagation;
  for (const auto& jammer : jammers_) {
    if (!jammer.active(channel, slot, slot_start)) continue;
    total_mw += jammer.received_power_mw(
        positions_[rx.value], prop.path_loss_ref_db, prop.path_loss_exponent,
        prop.floor_penetration_db, prop.floor_height_m);
  }
  return total_mw;
}

void Medium::build_reachability(double tx_power_dbm) {
  const std::size_t n = positions_.size();
  reachable_.assign(n * n, 0);
  primed_power_dbm_ = tx_power_dbm;
  mean_table_.assign(n * kNumChannels * n, -1e9);
  // A pair is prunable only if EVERY channel's mean RSS sits more than the
  // provable fading excursion below the sensitivity; channels differ by the
  // static frequency-selective offsets, so each must be checked. The same
  // sweep fills the flat mean table used by the rss_dbm() fast path.
  const double margin_db = propagation_.max_fading_db();
  const double floor_dbm = config_.sensitivity_dbm - margin_db;
  for (std::uint16_t a = 0; a < n; ++a) {
    for (std::uint16_t b = a + 1; b < n; ++b) {
      bool candidate = false;
      for (PhysicalChannel ch = 0; ch < kNumChannels; ++ch) {
        const double mean = mean_rss_dbm(NodeId{a}, NodeId{b}, ch,
                                         tx_power_dbm);
        // Static components are symmetric: both directions share the mean.
        mean_table_[(a * kNumChannels + ch) * n + b] = mean;
        mean_table_[(b * kNumChannels + ch) * n + a] = mean;
        if (mean >= floor_dbm) candidate = true;
      }
      // Links are symmetric in all static components.
      reachable_[a * n + b] = candidate ? 1 : 0;
      reachable_[b * n + a] = candidate ? 1 : 0;
    }
  }
}

const PrrTable& Medium::table_for(int frame_bytes) const {
  // prr_tables_ is built in kPrebuiltPrrFrameBytes order, so the scan runs
  // over the small constexpr array instead of striding through the tables.
  for (std::size_t i = 0; i < kPrebuiltPrrFrameBytes.size(); ++i) {
    if (kPrebuiltPrrFrameBytes[i] == frame_bytes) return prr_tables_[i];
  }
  const std::lock_guard<std::mutex> lock(extra_prr_mutex_);
  auto it = extra_prr_tables_.find(frame_bytes);
  if (it == extra_prr_tables_.end()) {
    it = extra_prr_tables_.emplace(frame_bytes, PrrTable{frame_bytes}).first;
  }
  return it->second;
}

Medium::ReceptionCheck Medium::check_reception(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
    double rx_clock_offset_us, double guard_us) const {
  if (tx.sender == rx) return {};
  const double signal_dbm =
      rss_dbm(tx.sender, rx, tx.channel, slot, tx.tx_power_dbm);
  // Guard-time miss: the frame arrived outside the receiver's listen
  // window, so no preamble is detected no matter how strong the signal.
  // The frame still radiates interference at every other listener.
  if (std::fabs(tx.clock_offset_us - rx_clock_offset_us) > guard_us) {
    return {0.0, signal_dbm, true};
  }
  if (signal_dbm < config_.sensitivity_dbm) return {0.0, signal_dbm};
  if (link_blacked_out(tx.sender, rx)) return {0.0, signal_dbm};

  const double interf_mw = interference_mw(rx, tx.channel, slot, slot_start,
                                           concurrent, tx.sender);
  const double signal_mw = dbm_to_mw(signal_dbm);
  const double sinr_db =
      10.0 * std::log10(signal_mw / (noise_floor_mw_ + interf_mw));
  return {table_for(tx.frame_bytes).prr(sinr_db), signal_dbm};
}

double Medium::reception_probability(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
    double rx_clock_offset_us, double guard_us) const {
  return check_reception(tx, rx, slot, slot_start, concurrent,
                         rx_clock_offset_us, guard_us)
      .probability;
}

bool Medium::try_receive(const TransmissionAttempt& tx, NodeId rx,
                         std::uint64_t slot, SimTime slot_start,
                         std::span<const TransmissionAttempt> concurrent,
                         Rng& rng) const {
  return rng.chance(
      reception_probability(tx, rx, slot, slot_start, concurrent));
}

}  // namespace digs
