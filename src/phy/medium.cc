#include "phy/medium.h"

#include <cmath>

namespace digs {

Medium::Medium(const MediumConfig& config, std::vector<Position> positions,
               std::uint64_t seed)
    : config_(config),
      positions_(std::move(positions)),
      propagation_(config.propagation, seed, positions_.size()),
      seed_(seed) {}

void Medium::add_jammer(const JammerConfig& jammer_config) {
  jammers_.emplace_back(jammer_config,
                        hash_mix(seed_, 0x1A33, jammers_.size()));
}

double Medium::rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                       std::uint64_t slot, double tx_power_dbm) const {
  return propagation_.rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                              positions_[rx.value], channel, slot);
}

double Medium::mean_rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                            double tx_power_dbm) const {
  return propagation_.mean_rss_dbm(tx_power_dbm, tx, rx, positions_[tx.value],
                                   positions_[rx.value], channel);
}

double Medium::interference_mw(NodeId rx, PhysicalChannel channel,
                               std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> concurrent,
                               NodeId wanted) const {
  double total_mw = 0.0;
  for (const auto& other : concurrent) {
    if (other.sender == wanted || other.sender == rx) continue;
    if (other.channel != channel) continue;
    const double rss =
        rss_dbm(other.sender, rx, channel, slot, other.tx_power_dbm);
    total_mw += std::pow(10.0, rss / 10.0);
  }
  const auto& prop = config_.propagation;
  for (const auto& jammer : jammers_) {
    if (!jammer.active(channel, slot, slot_start)) continue;
    total_mw += jammer.received_power_mw(
        positions_[rx.value], prop.path_loss_ref_db, prop.path_loss_exponent,
        prop.floor_penetration_db, prop.floor_height_m);
  }
  return total_mw;
}

const PrrTable& Medium::table_for(int frame_bytes) const {
  auto it = prr_tables_.find(frame_bytes);
  if (it == prr_tables_.end()) {
    it = prr_tables_.emplace(frame_bytes, PrrTable{frame_bytes}).first;
  }
  return it->second;
}

Medium::ReceptionCheck Medium::check_reception(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start,
    std::span<const TransmissionAttempt> concurrent) const {
  if (tx.sender == rx) return {};
  const double signal_dbm =
      rss_dbm(tx.sender, rx, tx.channel, slot, tx.tx_power_dbm);
  if (signal_dbm < config_.sensitivity_dbm) return {0.0, signal_dbm};

  const double noise_mw = std::pow(10.0, config_.noise_floor_dbm / 10.0);
  const double interf_mw = interference_mw(rx, tx.channel, slot, slot_start,
                                           concurrent, tx.sender);
  const double signal_mw = std::pow(10.0, signal_dbm / 10.0);
  const double sinr_db = 10.0 * std::log10(signal_mw / (noise_mw + interf_mw));
  return {table_for(tx.frame_bytes).prr(sinr_db), signal_dbm};
}

double Medium::reception_probability(
    const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
    SimTime slot_start,
    std::span<const TransmissionAttempt> concurrent) const {
  return check_reception(tx, rx, slot, slot_start, concurrent).probability;
}

bool Medium::try_receive(const TransmissionAttempt& tx, NodeId rx,
                         std::uint64_t slot, SimTime slot_start,
                         std::span<const TransmissionAttempt> concurrent,
                         Rng& rng) const {
  return rng.chance(
      reception_probability(tx, rx, slot, slot_start, concurrent));
}

}  // namespace digs
