// The shared wireless medium.
//
// The TSCH network loop is slotted: in each 10 ms slot the MAC layer gathers
// every transmission attempt, and the Medium decides per listener whether the
// frame is received, given
//   - signal RSS (path loss + shadowing + channel offset + temporal fading),
//   - co-channel interference from every other simultaneous transmitter,
//   - jammer interference active on that (channel, slot),
//   - the thermal noise floor and radio sensitivity,
// via the 802.15.4 SINR->PRR model and a Bernoulli draw.
//
// City-scale storage: build_reachability() partitions the deployment into
// SpatialGrid cells sized by the provable decode radius. Deployments up to
// flat_table_max_nodes keep the flat O(N²) mean table (the historical
// bit-exact fast path); larger ones switch to per-cell sparse CSR rows that
// hold only the 3×3-neighborhood pairs, and the Propagation memoization
// caches (O(N²·channels)) are never allocated. Pairs outside a node's
// neighborhood are uncoupled by model definition — no decode, no
// interference — applied identically in this reference path and in the
// per-slot SlotReception resolver, so the cutoff is shard-invariant.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "phy/geometry.h"
#include "phy/jammer.h"
#include "phy/propagation.h"
#include "phy/reactive_jammer.h"
#include "phy/prr.h"
#include "phy/spatial_grid.h"

namespace digs {

class CellAttemptIndex;

struct MediumConfig {
  PropagationConfig propagation;
  /// Thermal noise + receiver noise figure (dBm).
  double noise_floor_dbm = -95.0;
  /// CC2420 receiver sensitivity (dBm): frames below this are never decoded.
  double sensitivity_dbm = -94.0;
  /// Largest node count for which the flat O(N²) mean-RSS table and the
  /// Propagation memoization caches are built. Above it the Medium runs in
  /// compact mode: sparse per-cell CSR rows, no dense caches. The default
  /// keeps every paper-scale layout on the historical flat path; tests
  /// force compact mode with 0 to pin sparse == flat bit-for-bit.
  std::size_t flat_table_max_nodes = 600;
  /// Spatial-grid cell size override (m); 0 derives it from the decode
  /// radius (TX power, sensitivity, ±6σ fading margin, path loss).
  double grid_cell_size_m = 0.0;
};

/// One frame on the air during a slot.
struct TransmissionAttempt {
  NodeId sender;
  PhysicalChannel channel{0};
  int frame_bytes{127};
  double tx_power_dbm{0.0};
  /// Sender's accumulated clock offset vs. the network reference (µs); used
  /// by the guard-time miss model. 0 whenever drift is disabled.
  double clock_offset_us{0.0};
};

class Medium {
 public:
  /// `positions[i]` is the position of NodeId(i).
  Medium(const MediumConfig& config, std::vector<Position> positions,
         std::uint64_t seed);

  void add_jammer(const JammerConfig& config);
  void add_reactive_jammer(const ReactiveJammerConfig& config);
  void clear_jammers() {
    jammers_.clear();
    reactive_jammers_.clear();
    jammer_masks_.clear();
    reactive_jammer_masks_.clear();
  }
  [[nodiscard]] std::size_t num_jammers() const { return jammers_.size(); }
  [[nodiscard]] std::size_t num_reactive_jammers() const {
    return reactive_jammers_.size();
  }

  /// Feeds every reactive jammer one executed slot's on-air attempts (the
  /// energy-detection sniff: an attempt is overheard iff its pure path-loss
  /// received power at the jammer clears the sniff threshold). Must be
  /// called from serial code once per slot, before any reception on that
  /// slot is resolved — the drivers call it at the on-air seam, which is
  /// serial in the polled loop, the engine, and the sharded pipeline alike,
  /// so the learned jam sets are shard/thread-invariant.
  void observe_slot_attempts(std::uint64_t slot, SimTime slot_start,
                             std::span<const TransmissionAttempt> attempts);

  /// True when any jammer — oblivious or reactive — is active on (channel,
  /// slot), ignoring geometry. Used for the victim slot-hit coverage
  /// metric, not for interference.
  [[nodiscard]] bool any_jammer_active(PhysicalChannel channel,
                                       std::uint64_t slot,
                                       SimTime slot_start) const;

  /// Forces the (a, b) link's decode probability to 0 in both directions
  /// while set (transient blackout, the paper's "link quality changes").
  /// The blacked-out frame still radiates: it keeps contributing
  /// interference at every other listener, only the decode is suppressed.
  void set_link_blackout(NodeId a, NodeId b, bool blacked_out);

  /// True if decoding (tx -> rx) is currently suppressed by a blackout.
  [[nodiscard]] bool link_blacked_out(NodeId tx, NodeId rx) const {
    if (blackouts_active_ == 0) return false;
    const std::size_t n = positions_.size();
    if (tx.value >= n || rx.value >= n) return false;
    return blackouts_[tx.value * n + rx.value] != 0;
  }

  [[nodiscard]] std::size_t num_nodes() const { return positions_.size(); }
  [[nodiscard]] const Position& position(NodeId id) const {
    return positions_[id.value];
  }

  /// Instantaneous RSS of a frame from `tx` at `rx` (dBm).
  [[nodiscard]] double rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                               std::uint64_t slot,
                               double tx_power_dbm = 0.0) const;

  /// Static expected RSS (no temporal fading), for tests and topology tools.
  [[nodiscard]] double mean_rss_dbm(NodeId tx, NodeId rx,
                                    PhysicalChannel channel,
                                    double tx_power_dbm = 0.0) const;

  /// Total interference power at `rx` on `channel` during `slot` from
  /// jammers and from concurrent transmitters other than `wanted` (mW).
  /// Computed as (sum over ALL concurrent co-channel transmitters) minus the
  /// wanted sender's own contribution, clamped at zero, plus the jammer sum
  /// — exactly the arithmetic the O(L*T) per-slot resolver derives from its
  /// cached accumulators, so both paths produce identical doubles.
  /// Transmitters outside `rx`'s grid neighborhood are uncoupled and skipped
  /// (identically in both paths). `cells`, when given, must be a
  /// CellAttemptIndex built over this same `concurrent` span: the walk then
  /// visits only `rx`'s 3×3-neighborhood buckets (ascending attempt index,
  /// so the accumulation order — and every double — is unchanged).
  [[nodiscard]] double interference_mw(
      NodeId rx, PhysicalChannel channel, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      NodeId wanted, const CellAttemptIndex* cells = nullptr) const;

  /// Interference power from active jammers alone at `rx` on `channel` (mW).
  [[nodiscard]] double jammer_mw(NodeId rx, PhysicalChannel channel,
                                 std::uint64_t slot, SimTime slot_start) const;

  /// Noise floor in mW (precomputed from config().noise_floor_dbm).
  [[nodiscard]] double noise_floor_mw() const { return noise_floor_mw_; }

  /// Builds the spatial grid and the static reachability index for
  /// transmissions at `tx_power_dbm`: pair (a, b) is a candidate iff it is
  /// grid-coupled and some channel's mean RSS is within the provable fading
  /// margin of the sensitivity. Pairs outside the index have
  /// reception_probability == 0 on every channel and slot, so reception
  /// resolution never needs to visit them (coupled sub-threshold pairs still
  /// contribute interference). Also builds the mean-RSS storage: the flat
  /// per-(rx, channel) table up to flat_table_max_nodes, per-cell sparse CSR
  /// rows beyond it. Safe to rebuild.
  void build_reachability(double tx_power_dbm);

  /// True if (tx -> rx) could ever be decoded at the reachability index's
  /// TX power. Conservatively true when the index was never built or the
  /// pair is out of range. One word load + shift on the packed bitset rows.
  [[nodiscard]] bool maybe_reachable(NodeId tx, NodeId rx) const {
    if (reachable_.empty()) return true;
    const std::size_t n = positions_.size();
    if (tx.value >= n || rx.value >= n) return true;
    return ((reachable_[tx.value * reach_words_ + (rx.value >> 6)] >>
             (rx.value & 63)) &
            1) != 0;
  }

  /// True when `a` and `b` can couple at all under the grid's
  /// 3×3-neighborhood cutoff (always true before build_reachability() or
  /// while the deployment spans fewer than three cells per axis).
  [[nodiscard]] bool coupled(NodeId a, NodeId b) const {
    const std::size_t n = positions_.size();
    if (a.value >= n || b.value >= n) return true;
    return grid_.coupled(a.value, b.value);
  }

  [[nodiscard]] const SpatialGrid& grid() const { return grid_; }

  /// Outcome of a decode check: the Bernoulli success probability and the
  /// instantaneous signal RSS it was computed from. Returning the RSS keeps
  /// callers (capture resolution, neighbor tables) from re-deriving it.
  struct ReceptionCheck {
    double probability{0.0};
    double rss_dbm{-1e9};
    /// True when the TX/RX clock misalignment exceeded the receiver's guard
    /// time, so the frame's preamble fell outside the listen window
    /// (probability is then 0 regardless of SINR).
    bool guard_missed{false};
  };

  /// Probability that `rx`, listening on `tx.channel`, decodes `tx`, plus
  /// the signal RSS used for the SINR. `rx_clock_offset_us` is the
  /// listener's accumulated clock offset and `guard_us` its guard window:
  /// when |tx.clock_offset_us - rx_clock_offset_us| > guard_us the decode
  /// fails (guard miss). The defaults (offset 0, infinite guard) make every
  /// legacy call guard-exempt and bit-identical to the pre-drift model.
  /// `cells` (an index over `concurrent`) prunes the interference walk, see
  /// interference_mw().
  [[nodiscard]] ReceptionCheck check_reception(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      double rx_clock_offset_us = 0.0,
      double guard_us = std::numeric_limits<double>::infinity(),
      const CellAttemptIndex* cells = nullptr) const;

  /// Probability that `rx`, listening on `tx.channel`, decodes `tx`.
  [[nodiscard]] double reception_probability(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      double rx_clock_offset_us = 0.0,
      double guard_us = std::numeric_limits<double>::infinity(),
      const CellAttemptIndex* cells = nullptr) const;

  /// Table-based PRR for a frame of `frame_bytes` at `sinr_db`.
  [[nodiscard]] double prr(int frame_bytes, double sinr_db) const {
    return table_for(frame_bytes).prr(sinr_db);
  }

  /// Contiguous per-transmitter mean-RSS row for (`rx`, `channel`) at the
  /// primed TX power (`row[tx] == mean_rss_dbm(tx, rx, channel, power)`), or
  /// nullptr when `power` differs from the primed power, no reachability
  /// index was built, or the Medium runs in compact (sparse) mode. Lets the
  /// per-slot resolver walk one short row instead of calling rss_dbm() per
  /// pair.
  [[nodiscard]] const double* mean_row(NodeId rx, PhysicalChannel channel,
                                       double power) const {
    if (mean_table_.empty() || power != primed_power_dbm_ ||
        channel >= kNumChannels || rx.value >= positions_.size()) {
      return nullptr;
    }
    return mean_table_.data() +
           (rx.value * kNumChannels + channel) * positions_.size();
  }

  /// Compact mode's per-listener row: the CSR neighborhood of `rx` at the
  /// primed power. `cols` are ascending transmitter ids, `means` is
  /// channel-major (`means[ch * len + i]` = exact mean_rss_dbm double for
  /// cols[i]), `keys` the per-pair link keys for the fading draw. `len == 0`
  /// when sparse rows are unavailable (flat mode / unprimed power).
  struct SparseRow {
    const std::uint16_t* cols{nullptr};
    const double* means{nullptr};
    const std::uint64_t* keys{nullptr};
    std::uint32_t len{0};
  };
  [[nodiscard]] SparseRow sparse_row(NodeId rx, double power) const {
    if (csr_offsets_.empty() || power != primed_power_dbm_ ||
        rx.value >= positions_.size()) {
      return {};
    }
    const std::size_t o = csr_offsets_[rx.value];
    const auto len =
        static_cast<std::uint32_t>(csr_offsets_[rx.value + 1] - o);
    return SparseRow{csr_cols_.data() + o, csr_means_.data() + o * kNumChannels,
                     csr_keys_.data() + o, len};
  }

  /// The TX power the reachability index and mean table were built for.
  [[nodiscard]] double primed_power_dbm() const { return primed_power_dbm_; }

  /// Bernoulli reception draw.
  [[nodiscard]] bool try_receive(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      Rng& rng) const;

  [[nodiscard]] const MediumConfig& config() const { return config_; }
  [[nodiscard]] const Propagation& propagation() const { return propagation_; }
  [[nodiscard]] const std::vector<Jammer>& jammers() const { return jammers_; }
  [[nodiscard]] const std::vector<ReactiveJammer>& reactive_jammers() const {
    return reactive_jammers_;
  }

 private:
  [[nodiscard]] const PrrTable& table_for(int frame_bytes) const;
  /// Cell size for the spatial grid: the config override, or the pure
  /// path-loss distance at which the mean RSS reaches sensitivity minus the
  /// provable fading margin.
  [[nodiscard]] double grid_cell_size(double tx_power_dbm) const;
  void set_reachable(std::size_t a, std::size_t b) {
    reachable_[a * reach_words_ + (b >> 6)] |= std::uint64_t{1} << (b & 63);
  }
  /// Reachable-cell bitset for an emitter at `pos` with `tx_power_dbm`:
  /// every grid cell within R Chebyshev rings of the emitter's (clamped)
  /// cell, R = max(1, ceil(decode_radius / cell_size)) with the same ±6σ
  /// cutoff radius the grid itself is sized by. Cells beyond R rings are
  /// separated from the emitter by more than the radius, so — like
  /// uncoupled transmitters — their contribution is exactly 0 mW by model
  /// definition. R >= 1 guarantees any layout spanning <= 3×3 cells (every
  /// paper-scale testbed) is fully covered, keeping those runs
  /// bit-identical to the unmasked model. Empty result = no filtering
  /// (grid unbuilt or inactive).
  [[nodiscard]] std::vector<std::uint64_t> emitter_cell_mask(
      const Position& pos, double tx_power_dbm) const;
  void rebuild_jammer_masks();
  [[nodiscard]] static bool mask_covers(const std::vector<std::uint64_t>& mask,
                                        std::uint32_t cell) {
    return mask.empty() || ((mask[cell >> 6] >> (cell & 63)) & 1) != 0;
  }

  MediumConfig config_;
  std::vector<Position> positions_;
  Propagation propagation_;
  std::uint64_t seed_;
  std::vector<Jammer> jammers_;
  std::vector<ReactiveJammer> reactive_jammers_;
  // Per-jammer reachable-cell masks (parallel to the jammer vectors);
  // empty mask = global. Rebuilt by build_reachability() and at add time.
  std::vector<std::vector<std::uint64_t>> jammer_masks_;
  std::vector<std::vector<std::uint64_t>> reactive_jammer_masks_;
  /// Noise floor converted to mW once; used in every SINR evaluation.
  double noise_floor_mw_;
  // PRR lookup tables for every frame length in FrameSizes, built eagerly at
  // construction so the hot path is a lock-free flat scan and const Medium
  // methods are safe to call from concurrent trials. Frame lengths outside
  // the standard set (tool/test inputs) fall back to a mutex-guarded
  // overflow map; std::map nodes are stable, so returned references stay
  // valid.
  std::vector<PrrTable> prr_tables_;
  mutable std::mutex extra_prr_mutex_;
  mutable std::map<int, PrrTable> extra_prr_tables_;
  // Static candidate matrix packed into 64-bit bitset rows
  // [tx * reach_words_ + rx/64]; empty until build_reachability(). One bit
  // per pair: 8× smaller than the former byte matrix.
  std::vector<std::uint64_t> reachable_;
  std::size_t reach_words_{0};
  // Cell partition; rebuilt by build_reachability().
  SpatialGrid grid_;
  // Blackout matrix [tx * N + rx]; empty until the first set_link_blackout().
  // blackouts_active_ counts the set directed entries so the hot-path check
  // is one integer compare when no blackout is scripted.
  std::vector<std::uint8_t> blackouts_;
  int blackouts_active_{0};
  // Flat mean-RSS table at the reachability index's TX power, indexed
  // [(rx * kNumChannels + channel) * N + tx]: for a fixed listener and
  // channel the per-transmitter means are contiguous, so the per-slot
  // interference walk touches one short row instead of hashing into the
  // triangular propagation cache per pair. Values are the exact doubles
  // mean_rss_dbm() returns. Empty until build_reachability(), and never
  // built in compact mode (the CSR rows below replace it).
  std::vector<double> mean_table_;
  // Compact mode's CSR rows over grid neighborhoods: row rx covers every
  // transmitter in rx's 3×3 cell block. csr_means_ is channel-major per row
  // (offset*kNumChannels + ch*len + i), so a listener's co-channel walk is
  // contiguous. Empty in flat mode.
  std::vector<std::size_t> csr_offsets_;   // [n + 1]
  std::vector<std::uint16_t> csr_cols_;    // ascending tx ids per row
  std::vector<std::uint64_t> csr_keys_;    // link keys per entry
  std::vector<double> csr_means_;          // per entry × channel
  double primed_power_dbm_{0.0};
};

}  // namespace digs
