// The shared wireless medium.
//
// The TSCH network loop is slotted: in each 10 ms slot the MAC layer gathers
// every transmission attempt, and the Medium decides per listener whether the
// frame is received, given
//   - signal RSS (path loss + shadowing + channel offset + temporal fading),
//   - co-channel interference from every other simultaneous transmitter,
//   - jammer interference active on that (channel, slot),
//   - the thermal noise floor and radio sensitivity,
// via the 802.15.4 SINR->PRR model and a Bernoulli draw.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "phy/geometry.h"
#include "phy/jammer.h"
#include "phy/propagation.h"
#include "phy/prr.h"

namespace digs {

struct MediumConfig {
  PropagationConfig propagation;
  /// Thermal noise + receiver noise figure (dBm).
  double noise_floor_dbm = -95.0;
  /// CC2420 receiver sensitivity (dBm): frames below this are never decoded.
  double sensitivity_dbm = -94.0;
};

/// One frame on the air during a slot.
struct TransmissionAttempt {
  NodeId sender;
  PhysicalChannel channel{0};
  int frame_bytes{127};
  double tx_power_dbm{0.0};
};

class Medium {
 public:
  /// `positions[i]` is the position of NodeId(i).
  Medium(const MediumConfig& config, std::vector<Position> positions,
         std::uint64_t seed);

  void add_jammer(const JammerConfig& config);
  void clear_jammers() { jammers_.clear(); }
  [[nodiscard]] std::size_t num_jammers() const { return jammers_.size(); }

  [[nodiscard]] std::size_t num_nodes() const { return positions_.size(); }
  [[nodiscard]] const Position& position(NodeId id) const {
    return positions_[id.value];
  }

  /// Instantaneous RSS of a frame from `tx` at `rx` (dBm).
  [[nodiscard]] double rss_dbm(NodeId tx, NodeId rx, PhysicalChannel channel,
                               std::uint64_t slot,
                               double tx_power_dbm = 0.0) const;

  /// Static expected RSS (no temporal fading), for tests and topology tools.
  [[nodiscard]] double mean_rss_dbm(NodeId tx, NodeId rx,
                                    PhysicalChannel channel,
                                    double tx_power_dbm = 0.0) const;

  /// Total interference power at `rx` on `channel` during `slot` from
  /// jammers and from concurrent transmitters other than `wanted` (mW).
  [[nodiscard]] double interference_mw(
      NodeId rx, PhysicalChannel channel, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      NodeId wanted) const;

  /// Outcome of a decode check: the Bernoulli success probability and the
  /// instantaneous signal RSS it was computed from. Returning the RSS keeps
  /// callers (capture resolution, neighbor tables) from re-deriving it.
  struct ReceptionCheck {
    double probability{0.0};
    double rss_dbm{-1e9};
  };

  /// Probability that `rx`, listening on `tx.channel`, decodes `tx`, plus
  /// the signal RSS used for the SINR.
  [[nodiscard]] ReceptionCheck check_reception(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start,
      std::span<const TransmissionAttempt> concurrent) const;

  /// Probability that `rx`, listening on `tx.channel`, decodes `tx`.
  [[nodiscard]] double reception_probability(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start,
      std::span<const TransmissionAttempt> concurrent) const;

  /// Bernoulli reception draw.
  [[nodiscard]] bool try_receive(
      const TransmissionAttempt& tx, NodeId rx, std::uint64_t slot,
      SimTime slot_start, std::span<const TransmissionAttempt> concurrent,
      Rng& rng) const;

  [[nodiscard]] const MediumConfig& config() const { return config_; }
  [[nodiscard]] const Propagation& propagation() const { return propagation_; }
  [[nodiscard]] const std::vector<Jammer>& jammers() const { return jammers_; }

 private:
  [[nodiscard]] const PrrTable& table_for(int frame_bytes) const;

  MediumConfig config_;
  std::vector<Position> positions_;
  Propagation propagation_;
  std::uint64_t seed_;
  std::vector<Jammer> jammers_;
  // PRR lookup tables keyed by frame length, built on demand.
  mutable std::map<int, PrrTable> prr_tables_;
};

}  // namespace digs
