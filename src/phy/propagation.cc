#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

namespace digs {

std::uint64_t Propagation::link_key(NodeId a, NodeId b) const {
  // Symmetric: (a, b) and (b, a) share all static draws.
  const std::uint64_t lo = std::min(a.value, b.value);
  const std::uint64_t hi = std::max(a.value, b.value);
  return hash_mix(seed_, lo, hi);
}

double Propagation::mean_rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                                 const Position& tx_pos,
                                 const Position& rx_pos,
                                 PhysicalChannel channel) const {
  const double d =
      std::max(distance(tx_pos, rx_pos), config_.reference_distance_m);
  const double path_loss =
      config_.path_loss_ref_db +
      10.0 * config_.path_loss_exponent *
          std::log10(d / config_.reference_distance_m);
  const double floors =
      floors_crossed(tx_pos, rx_pos, config_.floor_height_m) *
      config_.floor_penetration_db;

  const std::uint64_t key = link_key(a, b);
  constexpr std::uint64_t kShadowTag = 0x5AAD;
  constexpr std::uint64_t kChannelTag = 0xC0FF;
  const double shadowing =
      hashed_normal(hash_mix(key, kShadowTag)) * config_.shadowing_sigma_db;
  const double channel_offset =
      hashed_normal(hash_mix(key, kChannelTag, channel)) *
      config_.channel_offset_sigma_db;

  return tx_power_dbm - path_loss - floors + shadowing + channel_offset;
}

double Propagation::rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                            const Position& tx_pos, const Position& rx_pos,
                            PhysicalChannel channel,
                            std::uint64_t slot) const {
  const std::uint64_t block = slot / std::max<std::uint64_t>(
                                         config_.coherence_slots, 1);
  const std::uint64_t key = link_key(a, b);
  constexpr std::uint64_t kFadingTag = 0xFAD0;
  const double fading =
      hashed_normal(hash_mix(key, kFadingTag, channel, block)) *
      config_.temporal_fading_sigma_db;
  return mean_rss_dbm(tx_power_dbm, a, b, tx_pos, rx_pos, channel) + fading;
}

}  // namespace digs
