#include "phy/propagation.h"

#include <algorithm>
#include <cmath>

namespace digs {

double Propagation::mean_rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                                 const Position& tx_pos,
                                 const Position& rx_pos,
                                 PhysicalChannel channel) const {
  MeanEntry* entry = nullptr;
  if (cacheable(a, b, channel)) {
    entry = &mean_cache_[cache_index(a, b, channel)];
    for (int i = 0; i < entry->count; ++i) {
      if (entry->power[i] == tx_power_dbm) return entry->mean[i];
    }
  }
  const double d =
      std::max(distance(tx_pos, rx_pos), config_.reference_distance_m);
  const double path_loss =
      config_.path_loss_ref_db +
      10.0 * config_.path_loss_exponent *
          std::log10(d / config_.reference_distance_m);
  const double floors =
      floors_crossed(tx_pos, rx_pos, config_.floor_height_m) *
      config_.floor_penetration_db;

  const std::uint64_t key = link_key(a, b);
  constexpr std::uint64_t kShadowTag = 0x5AAD;
  constexpr std::uint64_t kChannelTag = 0xC0FF;
  const double shadowing =
      hashed_normal(hash_mix(key, kShadowTag)) * config_.shadowing_sigma_db;
  const double channel_offset =
      hashed_normal(hash_mix(key, kChannelTag, channel)) *
      config_.channel_offset_sigma_db;

  const double mean =
      tx_power_dbm - path_loss - floors + shadowing + channel_offset;
  if (entry != nullptr && entry->count < 2) {
    entry->power[entry->count] = tx_power_dbm;
    entry->mean[entry->count] = mean;
    ++entry->count;
  }
  return mean;
}

double Propagation::fading_db(NodeId a, NodeId b, PhysicalChannel channel,
                              std::uint64_t slot) const {
  // Stateless recompute, no memo: beacon/routing traffic revisits a given
  // (link, channel) on slotframe cadences longer than the coherence block,
  // so a per-(link, channel) block cache misses nearly always and costs a
  // multi-MB random probe per call. The draw itself is one small-table load,
  // one hash, and an inverse-CDF normal.
  const std::uint64_t key =
      link_keys_.empty() || a.value >= num_nodes_ || b.value >= num_nodes_
          ? link_key(a, b)
          : link_keys_[a.value * num_nodes_ + b.value];
  return fading_from_key(key, channel, fading_block(slot));
}

double Propagation::rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                            const Position& tx_pos, const Position& rx_pos,
                            PhysicalChannel channel,
                            std::uint64_t slot) const {
  return mean_rss_dbm(tx_power_dbm, a, b, tx_pos, rx_pos, channel) +
         fading_db(a, b, channel, slot);
}

}  // namespace digs
