// Indoor radio propagation: log-distance path loss with per-link lognormal
// shadowing, per-(link, channel) frequency-selective offsets (the reason TSCH
// channel hopping helps), and block temporal fading.
//
// All random components are *hash-derived* from (seed, link, channel, time
// block): the model is stateless and a given run is exactly reproducible.
// Links are symmetric in the static components; temporal fading is symmetric
// too (same coherence block draw both directions), which matches the
// reciprocity of narrowband channels on the timescale of a slot.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

struct PropagationConfig {
  /// Path loss at the reference distance (dB). ~40 dB at 1 m for 2.4 GHz.
  double path_loss_ref_db = 40.0;
  double reference_distance_m = 1.0;
  /// Indoor office environments: exponent ~3.
  double path_loss_exponent = 3.0;
  /// Static per-link lognormal shadowing (dB).
  double shadowing_sigma_db = 4.0;
  /// Attenuation per floor boundary crossed (dB).
  double floor_penetration_db = 12.0;
  double floor_height_m = 4.0;
  /// Per-(link, channel) static frequency-selective offset (dB). This is
  /// what makes some channels good and others bad on the same link.
  double channel_offset_sigma_db = 4.0;
  /// Temporal fading sigma (dB), redrawn once per coherence block. Together
  /// with the channel offsets this creates the wide "gray region" of real
  /// indoor 802.15.4 links.
  double temporal_fading_sigma_db = 3.0;
  /// Coherence time of the temporal fading in TSCH slots (100 slots = 1 s).
  std::uint64_t coherence_slots = 100;
};

/// Computes received signal strength for a (tx, rx, channel, slot) tuple.
class Propagation {
 public:
  Propagation(const PropagationConfig& config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  /// RSS in dBm at `rx_pos` for a transmission from `tx_pos` at
  /// `tx_power_dbm`. `a`/`b` identify the link endpoints for the hash-derived
  /// shadowing; channel and slot select the frequency/temporal components.
  [[nodiscard]] double rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                               const Position& tx_pos, const Position& rx_pos,
                               PhysicalChannel channel,
                               std::uint64_t slot) const;

  /// Deterministic (static-only) RSS with no temporal fading; used for
  /// expected-topology computations and tests.
  [[nodiscard]] double mean_rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                                    const Position& tx_pos,
                                    const Position& rx_pos,
                                    PhysicalChannel channel) const;

  [[nodiscard]] const PropagationConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t link_key(NodeId a, NodeId b) const;

  PropagationConfig config_;
  std::uint64_t seed_;
};

}  // namespace digs
