// Indoor radio propagation: log-distance path loss with per-link lognormal
// shadowing, per-(link, channel) frequency-selective offsets (the reason TSCH
// channel hopping helps), and block temporal fading.
//
// All random components are *hash-derived* from (seed, link, channel, time
// block): the model is stateless and a given run is exactly reproducible.
// Links are symmetric in the static components; temporal fading is symmetric
// too (same coherence block draw both directions), which matches the
// reciprocity of narrowband channels on the timescale of a slot.
//
// Because every component is a pure function of its inputs and node
// positions never move, results are memoized: the static per-(link, channel,
// power) mean and the per-(link, channel) fading draw of the current
// coherence block. The caches return the exact double computed on first
// evaluation, so memoization cannot change any result bit.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

struct PropagationConfig {
  /// Path loss at the reference distance (dB). ~40 dB at 1 m for 2.4 GHz.
  double path_loss_ref_db = 40.0;
  double reference_distance_m = 1.0;
  /// Indoor office environments: exponent ~3.
  double path_loss_exponent = 3.0;
  /// Static per-link lognormal shadowing (dB).
  double shadowing_sigma_db = 4.0;
  /// Attenuation per floor boundary crossed (dB).
  double floor_penetration_db = 12.0;
  double floor_height_m = 4.0;
  /// Per-(link, channel) static frequency-selective offset (dB). This is
  /// what makes some channels good and others bad on the same link.
  double channel_offset_sigma_db = 4.0;
  /// Temporal fading sigma (dB), redrawn once per coherence block. Together
  /// with the channel offsets this creates the wide "gray region" of real
  /// indoor 802.15.4 links.
  double temporal_fading_sigma_db = 3.0;
  /// Coherence time of the temporal fading in TSCH slots (100 slots = 1 s).
  std::uint64_t coherence_slots = 100;
};

/// Computes received signal strength for a (tx, rx, channel, slot) tuple.
class Propagation {
 public:
  /// `num_nodes` enables the memoization caches (ids are dense 0..n-1 and
  /// positions are static); 0 disables caching.
  Propagation(const PropagationConfig& config, std::uint64_t seed,
              std::size_t num_nodes = 0)
      : config_(config), seed_(seed), num_nodes_(num_nodes) {
    if (num_nodes_ > 0) {
      const std::size_t pairs = num_nodes_ * (num_nodes_ + 1) / 2;
      mean_cache_.resize(pairs * kNumChannels);
      fading_cache_.resize(pairs * kNumChannels);
    }
  }

  /// RSS in dBm at `rx_pos` for a transmission from `tx_pos` at
  /// `tx_power_dbm`. `a`/`b` identify the link endpoints for the hash-derived
  /// shadowing; channel and slot select the frequency/temporal components.
  [[nodiscard]] double rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                               const Position& tx_pos, const Position& rx_pos,
                               PhysicalChannel channel,
                               std::uint64_t slot) const;

  /// Deterministic (static-only) RSS with no temporal fading; used for
  /// expected-topology computations and tests.
  [[nodiscard]] double mean_rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                                    const Position& tx_pos,
                                    const Position& rx_pos,
                                    PhysicalChannel channel) const;

  [[nodiscard]] const PropagationConfig& config() const { return config_; }

 private:
  [[nodiscard]] std::uint64_t link_key(NodeId a, NodeId b) const;

  /// True when (a, b, channel) falls inside the flat caches.
  [[nodiscard]] bool cacheable(NodeId a, NodeId b,
                               PhysicalChannel channel) const {
    return a.value < num_nodes_ && b.value < num_nodes_ &&
           channel < kNumChannels;
  }

  /// Flat index of the unordered pair (a, b) and channel: links are
  /// symmetric, so the pair space is triangular (lo <= hi).
  [[nodiscard]] std::size_t cache_index(NodeId a, NodeId b,
                                        PhysicalChannel channel) const {
    const std::size_t lo = std::min(a.value, b.value);
    const std::size_t hi = std::max(a.value, b.value);
    const std::size_t pair = lo * num_nodes_ - lo * (lo - 1) / 2 + (hi - lo);
    return pair * kNumChannels + channel;
  }

  PropagationConfig config_;
  std::uint64_t seed_;
  std::size_t num_nodes_{0};

  // Static means per (link, channel); a link is only ever evaluated at a
  // couple of distinct tx powers (the network-wide power and the 0 dBm
  // default used by tools), so two inline slots suffice — anything beyond
  // is computed uncached.
  struct MeanEntry {
    int count{0};
    double power[2];
    double mean[2];
  };
  // Fading draw of one coherence block per (link, channel); replaced when
  // the block advances.
  struct FadingEntry {
    std::uint64_t block{~std::uint64_t{0}};
    double value{0};
  };
  mutable std::vector<MeanEntry> mean_cache_;
  mutable std::vector<FadingEntry> fading_cache_;
};

}  // namespace digs
