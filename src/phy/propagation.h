// Indoor radio propagation: log-distance path loss with per-link lognormal
// shadowing, per-(link, channel) frequency-selective offsets (the reason TSCH
// channel hopping helps), and block temporal fading.
//
// All random components are *hash-derived* from (seed, link, channel, time
// block): the model is stateless and a given run is exactly reproducible.
// Links are symmetric in the static components; temporal fading is symmetric
// too (same coherence block draw both directions), which matches the
// reciprocity of narrowband channels on the timescale of a slot.
//
// Because every component is a pure function of its inputs and node
// positions never move, the static per-(link, channel, power) mean is
// memoized (the cache returns the exact double computed on first evaluation,
// so memoization cannot change any result bit). The temporal fading draw is
// recomputed statelessly per call: it is one table load, one hash, and an
// inverse-CDF normal — cheaper than the multi-MB cache probe a per-(link,
// channel) block memo costs at realistic revisit cadences.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

/// dBm -> mW. The exp2 form of 10^(dbm/10) is several times faster than
/// pow(10, x) on glibc. Every SINR power-summing path converts through this
/// one helper, so the cached per-slot resolver and the reference
/// per-pair evaluation produce identical doubles by construction.
[[nodiscard]] inline double dbm_to_mw(double dbm) {
  constexpr double kLog2Of10Over10 = 0.33219280948873623;  // log2(10)/10
  return std::exp2(dbm * kLog2Of10Over10);
}

struct PropagationConfig {
  /// Path loss at the reference distance (dB). ~40 dB at 1 m for 2.4 GHz.
  double path_loss_ref_db = 40.0;
  double reference_distance_m = 1.0;
  /// Indoor office environments: exponent ~3.
  double path_loss_exponent = 3.0;
  /// Static per-link lognormal shadowing (dB).
  double shadowing_sigma_db = 4.0;
  /// Attenuation per floor boundary crossed (dB).
  double floor_penetration_db = 12.0;
  double floor_height_m = 4.0;
  /// Per-(link, channel) static frequency-selective offset (dB). This is
  /// what makes some channels good and others bad on the same link.
  double channel_offset_sigma_db = 4.0;
  /// Temporal fading sigma (dB), redrawn once per coherence block. Together
  /// with the channel offsets this creates the wide "gray region" of real
  /// indoor 802.15.4 links.
  double temporal_fading_sigma_db = 3.0;
  /// Coherence time of the temporal fading in TSCH slots (100 slots = 1 s).
  std::uint64_t coherence_slots = 100;
};

/// Temporal fading draws are truncated at this many standard deviations
/// (|N| <= 6, P(|N| > 6) ~ 2e-9 for the untruncated normal — beyond any
/// physical multipath gain). The bound is what makes reachability pruning
/// *provable*: instantaneous RSS never exceeds
///   mean_rss_dbm + kFadingNormalBound * temporal_fading_sigma_db,
/// so a pair whose best-channel mean RSS sits below the sensitivity minus
/// that margin can never be decoded.
inline constexpr double kFadingNormalBound = 6.0;

/// Computes received signal strength for a (tx, rx, channel, slot) tuple.
class Propagation {
 public:
  /// `num_nodes` enables the memoization caches (ids are dense 0..n-1 and
  /// positions are static); 0 disables caching.
  Propagation(const PropagationConfig& config, std::uint64_t seed,
              std::size_t num_nodes = 0)
      : config_(config), seed_(seed), num_nodes_(num_nodes) {
    if (num_nodes_ > 0) {
      const std::size_t pairs = num_nodes_ * (num_nodes_ + 1) / 2;
      mean_cache_.resize(pairs * kNumChannels);
      // Dense link-key table: the busy-slot path evaluates fading for every
      // (listener, transmitter) pair each slot, so the per-call hash chain
      // of link_key() is replaced by one small-table load (the keys are the
      // exact values link_key() computes).
      link_keys_.resize(num_nodes_ * num_nodes_);
      for (std::uint16_t a = 0; a < num_nodes_; ++a) {
        for (std::uint16_t b = 0; b < num_nodes_; ++b) {
          link_keys_[a * num_nodes_ + b] = link_key(NodeId{a}, NodeId{b});
        }
      }
    }
  }

  /// RSS in dBm at `rx_pos` for a transmission from `tx_pos` at
  /// `tx_power_dbm`. `a`/`b` identify the link endpoints for the hash-derived
  /// shadowing; channel and slot select the frequency/temporal components.
  [[nodiscard]] double rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                               const Position& tx_pos, const Position& rx_pos,
                               PhysicalChannel channel,
                               std::uint64_t slot) const;

  /// The temporal-fading component alone (dB) for (link, channel, slot):
  /// the exact value rss_dbm() adds on top of mean_rss_dbm(). Exposed so
  /// callers holding a precomputed mean (Medium's flat mean table) can
  /// reconstruct rss_dbm() = mean + fading without the mean-cache probe.
  [[nodiscard]] double fading_db(NodeId a, NodeId b, PhysicalChannel channel,
                                 std::uint64_t slot) const;

  /// Coherence block index of `slot` (the temporal unit of fading redraws).
  [[nodiscard]] std::uint64_t fading_block(std::uint64_t slot) const {
    return slot / std::max<std::uint64_t>(config_.coherence_slots, 1);
  }

  /// Contiguous row of precomputed link keys for node `a`
  /// (`row[b] == link_key(a, b)`), or nullptr when ids are not dense.
  /// Lets a per-listener loop hoist the row lookup out of its pair walk.
  [[nodiscard]] const std::uint64_t* link_key_row(NodeId a) const {
    return !link_keys_.empty() && a.value < num_nodes_
               ? link_keys_.data() + a.value * num_nodes_
               : nullptr;
  }

  /// Pre-mixed (tag, channel, block) suffix of the fading hash; constant
  /// across a listener's pair walk.
  [[nodiscard]] std::uint64_t fading_tail(PhysicalChannel channel,
                                          std::uint64_t block) const {
    constexpr std::uint64_t kFadingTag = 0xFAD0;
    return hash_mix(kFadingTag, channel, block);
  }

  /// The fading draw from a link key and a pre-mixed fading_tail(): exactly
  /// fading_db()'s value at one splitmix64 per call.
  [[nodiscard]] double fading_from_tail(std::uint64_t key,
                                        std::uint64_t tail) const {
    return fading_from_hash(hash_mix_tail(key, tail));
  }

  /// fading_from_tail() with the (key, tail) mix already folded in: the
  /// draw is a pure function of this one 64-bit hash. That purity is what
  /// makes SlotReception's draw memo exact — equal hashes give equal draws
  /// by construction, so a full-hash-keyed cache can never change a double.
  [[nodiscard]] double fading_from_hash(std::uint64_t h) const {
    // Truncated at kFadingNormalBound sigma so the margin in
    // max_fading_db() is a hard guarantee (see the constant's comment).
    const double n = hashed_normal_fast(h);
    return std::clamp(n, -kFadingNormalBound, kFadingNormalBound) *
           config_.temporal_fading_sigma_db;
  }

  /// fading_db() with the link key and coherence block already resolved:
  /// the exact same draw, for callers that hoisted both invariants.
  [[nodiscard]] double fading_from_key(std::uint64_t key,
                                       PhysicalChannel channel,
                                       std::uint64_t block) const {
    return fading_from_tail(key, fading_tail(channel, block));
  }

  /// Deterministic (static-only) RSS with no temporal fading; used for
  /// expected-topology computations and tests.
  [[nodiscard]] double mean_rss_dbm(double tx_power_dbm, NodeId a, NodeId b,
                                    const Position& tx_pos,
                                    const Position& rx_pos,
                                    PhysicalChannel channel) const;

  [[nodiscard]] const PropagationConfig& config() const { return config_; }

  /// Largest fading excursion any rss_dbm() call can add on top of
  /// mean_rss_dbm() (dB); see kFadingNormalBound.
  [[nodiscard]] double max_fading_db() const {
    return kFadingNormalBound * config_.temporal_fading_sigma_db;
  }

  /// The symmetric per-link hash key all static draws derive from. Public
  /// so Medium's sparse (CSR) rows can precompute per-pair keys when the
  /// dense link_keys_ table is disabled (compact mode at large N). Inline:
  /// the per-slot resolver recomputes it per candidate (three splitmix
  /// rounds beat a missed cache line on the stored-key row).
  [[nodiscard]] std::uint64_t link_key(NodeId a, NodeId b) const {
    // Symmetric: (a, b) and (b, a) share all static draws.
    const std::uint64_t lo = std::min(a.value, b.value);
    const std::uint64_t hi = std::max(a.value, b.value);
    return hash_mix(seed_, lo, hi);
  }

 private:

  /// True when (a, b, channel) falls inside the flat caches.
  [[nodiscard]] bool cacheable(NodeId a, NodeId b,
                               PhysicalChannel channel) const {
    return a.value < num_nodes_ && b.value < num_nodes_ &&
           channel < kNumChannels;
  }

  /// Flat index of the unordered pair (a, b) and channel: links are
  /// symmetric, so the pair space is triangular (lo <= hi).
  [[nodiscard]] std::size_t cache_index(NodeId a, NodeId b,
                                        PhysicalChannel channel) const {
    const std::size_t lo = std::min(a.value, b.value);
    const std::size_t hi = std::max(a.value, b.value);
    const std::size_t pair = lo * num_nodes_ - lo * (lo - 1) / 2 + (hi - lo);
    return pair * kNumChannels + channel;
  }

  PropagationConfig config_;
  std::uint64_t seed_;
  std::size_t num_nodes_{0};

  // Static means per (link, channel); a link is only ever evaluated at a
  // couple of distinct tx powers (the network-wide power and the 0 dBm
  // default used by tools), so two inline slots suffice — anything beyond
  // is computed uncached.
  struct MeanEntry {
    int count{0};
    double power[2];
    double mean[2];
  };
  mutable std::vector<MeanEntry> mean_cache_;
  // Precomputed link_key(a, b) for dense ids, indexed [a * N + b].
  std::vector<std::uint64_t> link_keys_;
};

}  // namespace digs
