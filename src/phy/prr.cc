#include "phy/prr.h"

#include <algorithm>
#include <cmath>

namespace digs {

namespace {

// C(16, k) for k = 0..16.
constexpr double kBinomial16[17] = {
    1,    16,   120,  560,   1820,  4368, 8008, 11440, 12870,
    11440, 8008, 4368, 1820, 560,   120,  16,   1};

}  // namespace

double ieee802154_ber(double sinr_linear) {
  if (sinr_linear <= 0.0) return 0.5;
  double acc = 0.0;
  for (int k = 2; k <= 16; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    acc += sign * kBinomial16[k] *
           std::exp(20.0 * sinr_linear * (1.0 / k - 1.0));
  }
  const double ber = (8.0 / 15.0) * (1.0 / 16.0) * acc;
  return std::clamp(ber, 0.0, 0.5);
}

double ieee802154_prr(double sinr_db, int frame_bytes) {
  const double sinr_linear = std::pow(10.0, sinr_db / 10.0);
  const double ber = ieee802154_ber(sinr_linear);
  return std::pow(1.0 - ber, 8.0 * frame_bytes);
}

PrrTable::PrrTable(int frame_bytes) : frame_bytes_(frame_bytes) {
  for (int i = 0; i < kEntries; ++i) {
    table_[static_cast<std::size_t>(i)] =
        ieee802154_prr(kMinDb + i * kStepDb, frame_bytes);
  }
}

double PrrTable::prr(double sinr_db) const {
  if (sinr_db < kMinDb) return 0.0;
  if (sinr_db >= kMaxDb) return table_.back();
  const double idx = (sinr_db - kMinDb) / kStepDb;
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, table_.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return table_[lo] * (1.0 - frac) + table_[hi] * frac;
}

}  // namespace digs
