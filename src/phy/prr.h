// SINR -> packet reception ratio for IEEE 802.15.4 O-QPSK/DSSS.
//
// Bit error rate follows the standard 2.4 GHz 802.15.4 model
//   BER(sinr) = (8/15) * (1/16) * sum_{k=2}^{16} (-1)^k C(16,k)
//               * exp(20 * sinr * (1/k - 1))
// with sinr in linear scale, and PRR = (1 - BER)^(8 * frame_bytes).
// A lookup table over SINR dB makes the per-slot evaluation cheap.
#pragma once

#include <array>

namespace digs {

/// Frame lengths (bytes, over-the-air) whose PRR tables Medium builds
/// eagerly at construction, ascending. Must cover every length the
/// simulated stack transmits — net/frame.h static-asserts that each
/// FrameSizes constant appears here — so the per-slot hot path never takes
/// the overflow-table lock.
inline constexpr std::array<int, 9> kPrebuiltPrrFrameBytes = {
    20, 26, 30, 40, 50, 60, 80, 90, 110};

[[nodiscard]] constexpr bool is_prebuilt_prr_size(int frame_bytes) {
  for (const int bytes : kPrebuiltPrrFrameBytes) {
    if (bytes == frame_bytes) return true;
  }
  return false;
}

/// Raw bit error rate for a linear SINR value.
[[nodiscard]] double ieee802154_ber(double sinr_linear);

/// Packet reception ratio for a frame of `frame_bytes` at `sinr_db`.
/// Exact evaluation (no table); use PrrTable for hot paths.
[[nodiscard]] double ieee802154_prr(double sinr_db, int frame_bytes);

/// Precomputed PRR over SINR in [-10, +20] dB at 0.1 dB resolution for one
/// frame length. Below range -> 0, above -> computed at +20 dB (≈1).
class PrrTable {
 public:
  explicit PrrTable(int frame_bytes);

  [[nodiscard]] double prr(double sinr_db) const;
  [[nodiscard]] int frame_bytes() const { return frame_bytes_; }

  static constexpr double kMinDb = -10.0;
  static constexpr double kMaxDb = 20.0;
  static constexpr double kStepDb = 0.1;
  static constexpr int kEntries =
      static_cast<int>((kMaxDb - kMinDb) / kStepDb) + 1;

 private:
  int frame_bytes_;
  std::array<double, kEntries> table_{};
};

}  // namespace digs
