#include "phy/reactive_jammer.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "phy/jammer.h"

namespace digs {

namespace {

ReactiveJammerConfig sanitize(ReactiveJammerConfig config) {
  // Same emitter-domain rules as sanitize_jammer_config: negative dBm is a
  // legitimate weak emitter, only non-finite values fall back.
  if (!std::isfinite(config.tx_power_dbm)) config.tx_power_dbm = 10.0;
  config.tx_power_dbm = std::clamp(config.tx_power_dbm, -60.0, 36.0);
  if (!std::isfinite(config.sniff_threshold_dbm)) {
    config.sniff_threshold_dbm = -90.0;
  }
  if (config.period_slots == 0) config.period_slots = 1;
  config.epoch_slots = std::max<std::uint32_t>(
      config.epoch_slots, config.period_slots);
  const std::uint32_t cells =
      static_cast<std::uint32_t>(config.period_slots) * kNumChannels;
  config.top_k = std::min(config.top_k, cells);
  return config;
}

}  // namespace

ReactiveJammer::ReactiveJammer(const ReactiveJammerConfig& config,
                               std::uint64_t seed)
    : config_(sanitize(config)),
      seed_(seed),
      sniff_floor_mw_(std::pow(10.0, config_.sniff_threshold_dbm / 10.0)),
      histogram_(static_cast<std::size_t>(config_.period_slots) *
                 kNumChannels),
      jam_set_(histogram_.size(), 0) {}

std::size_t ReactiveJammer::bin(std::uint64_t slot,
                                PhysicalChannel channel) const {
  // hop_channel(asn, offset) = (asn + offset) % 16, so the schedule-fixed
  // channel offset is (channel - slot) mod 16.
  const std::uint32_t choff =
      (static_cast<std::uint32_t>(channel) + kNumChannels -
       static_cast<std::uint32_t>(slot % kNumChannels)) %
      kNumChannels;
  return static_cast<std::size_t>(slot % config_.period_slots) * kNumChannels +
         choff;
}

bool ReactiveJammer::begin_slot(std::uint64_t slot, SimTime slot_start) {
  if (slot_start < config_.start) return false;
  if (!observing_) {
    observing_ = true;
    next_epoch_boundary_ =
        (slot / config_.epoch_slots + 1) * config_.epoch_slots;
  } else if (slot >= next_epoch_boundary_) {
    // Roll the epoch *before* recording this slot: the jam set used while
    // slot `s` executes derives only from observations strictly before the
    // boundary <= s. One rebuild per elapsed boundary (the decay advances
    // per epoch even across idle stretches the wake-heap engine skips, so
    // the polled and engine drivers agree).
    do {
      rebuild_jam_set();
      next_epoch_boundary_ += config_.epoch_slots;
    } while (slot >= next_epoch_boundary_);
  }
  return true;
}

void ReactiveJammer::hear(std::uint64_t slot, PhysicalChannel channel) {
  ++heard_;
  ++histogram_[bin(slot, channel)];
}

void ReactiveJammer::rebuild_jam_set() {
  ++epochs_;
  std::vector<std::uint32_t> order(histogram_.size());
  std::iota(order.begin(), order.end(), 0U);
  const std::uint64_t seed = seed_;
  const std::uint32_t epoch = epochs_;
  // Count-descending; ties (notably the all-zero tail before the victim's
  // ladder has been heard) break by a seeded hash so the remainder of the
  // duty budget lands on reproducible pseudo-random cells, then by index.
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (histogram_[a] != histogram_[b]) {
                return histogram_[a] > histogram_[b];
              }
              const std::uint64_t ha = hash_mix(seed, epoch, a);
              const std::uint64_t hb = hash_mix(seed, epoch, b);
              if (ha != hb) return ha < hb;
              return a < b;
            });
  std::fill(jam_set_.begin(), jam_set_.end(), 0);
  jam_cells_ = std::min<std::size_t>(config_.top_k, order.size());
  for (std::size_t i = 0; i < jam_cells_; ++i) jam_set_[order[i]] = 1;
  // Exponential decay so the histogram tracks a randomizing schedule
  // instead of averaging over every stale epoch.
  for (std::uint32_t& count : histogram_) count >>= 1;
}

bool ReactiveJammer::active(PhysicalChannel channel, std::uint64_t slot,
                            SimTime slot_start) const {
  if (slot_start < config_.start) return false;
  return jam_set_[bin(slot, channel)] != 0;
}

double ReactiveJammer::received_power_mw(const Position& rx,
                                         double path_loss_ref_db,
                                         double path_loss_exponent,
                                         double floor_penetration_db,
                                         double floor_height_m) const {
  return path_loss_power_mw(config_.position, rx, config_.tx_power_dbm,
                            path_loss_ref_db, path_loss_exponent,
                            floor_penetration_db, floor_height_m);
}

}  // namespace digs
