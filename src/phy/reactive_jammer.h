// Reactive (learning) jamming adversary. Unlike the oblivious JamLab-style
// Jammer — whose activity is a pure function of (config, seed, channel,
// slot), blind to the victim — a ReactiveJammer passively *listens*: an
// energy-detection sniffer "hears" any transmission attempt whose received
// power at the jammer position clears a threshold (pure path loss, same
// curve as jammer emissions), accumulates a periodic activity histogram
// keyed to the victim's slotframe length, and at each adaptation-epoch
// boundary selects the top-K hottest (slot-offset, channel-offset) cells to
// jam for the next epoch.
//
// The channel offset is recoverable because TSCH hopping is
// hop_channel(asn, offset) = (asn + offset) % 16: an eavesdropper that sees
// (slot, channel) learns offset = (channel - slot) mod 16, which is exactly
// the coordinate in which periodic schedules repeat. Dedicated cells of a
// periodic flow hit the same (slot % L, channel_offset) bin every cycle and
// dominate the histogram, so the jam set converges onto the victim's ladder.
//
// Determinism: the histogram is fed once per executed slot at the serial
// on-air seam (identically in the polled driver, the serial engine, and the
// sharded pipeline's serial gather), epoch rollover happens *before* the
// current slot is recorded, and top-K selection breaks count ties by a
// seeded hash — so the jam set is a pure function of (seed, observation
// history) and runs stay reproducible at every shard/thread setting.
// active() is const and safe to query from shard workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "phy/geometry.h"

namespace digs {

struct ReactiveJammerConfig {
  Position position;
  double tx_power_dbm = 10.0;
  /// Energy-detection threshold: an attempt is overheard iff its pure
  /// path-loss received power at the jammer clears this. The default sits
  /// just above the -95 dBm noise floor, i.e. the jammer hears essentially
  /// everything it could physically detect.
  double sniff_threshold_dbm = -90.0;
  /// Period of the activity histogram in slots — the victim's application
  /// slotframe length (DiGS/WirelessHART 151, Orchestra unicast length).
  std::uint16_t period_slots = 151;
  /// Slots per adaptation epoch. The jam set is recomputed at each epoch
  /// boundary from observations made strictly before it; the first epoch
  /// after `start` is a pure learning window (nothing jammed yet).
  std::uint32_t epoch_slots = 1510;
  /// Number of hottest (slot offset, channel offset) cells jammed per
  /// epoch. Duty cycle over the (slot, channel) grid is top_k /
  /// (period_slots * 16) — e.g. 423/2416 ~= 0.175 matches the oblivious
  /// kWifiStreaming jammer's expected duty.
  std::uint32_t top_k = 423;
  /// The jammer neither listens nor jams before `start`.
  SimTime start{0};
};

class ReactiveJammer {
 public:
  ReactiveJammer(const ReactiveJammerConfig& config, std::uint64_t seed);

  /// Opens observation of one executed slot: gates on `start`, and rolls
  /// the adaptation epoch (rebuilding the jam set, then decaying the
  /// histogram) when `slot` crosses the next epoch boundary. Returns false
  /// while the jammer is not yet listening, letting callers skip the
  /// per-attempt sniff loop. Call once per slot, before any active() query
  /// for that slot, from serial code only.
  bool begin_slot(std::uint64_t slot, SimTime slot_start);

  /// Records one overheard attempt (already sniff-filtered by the caller)
  /// for the slot last passed to begin_slot.
  void hear(std::uint64_t slot, PhysicalChannel channel);

  /// Sniff threshold in mW, precomputed for the caller's filter.
  [[nodiscard]] double sniff_floor_mw() const { return sniff_floor_mw_; }

  /// True if this jammer corrupts the given channel during the given slot.
  /// Const and read-only: safe to call concurrently from shard workers
  /// while no begin_slot/hear is in flight.
  [[nodiscard]] bool active(PhysicalChannel channel, std::uint64_t slot,
                            SimTime slot_start) const;

  /// Interference power in mW received at `rx` when active (path loss
  /// only, like the oblivious Jammer).
  [[nodiscard]] double received_power_mw(const Position& rx,
                                         double path_loss_ref_db,
                                         double path_loss_exponent,
                                         double floor_penetration_db,
                                         double floor_height_m) const;

  [[nodiscard]] const ReactiveJammerConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t attempts_heard() const { return heard_; }
  [[nodiscard]] std::uint32_t epochs_completed() const { return epochs_; }
  /// Number of (offset, channel-offset) cells currently jammed (0 until
  /// the first epoch boundary).
  [[nodiscard]] std::size_t jam_cells() const { return jam_cells_; }

 private:
  [[nodiscard]] std::size_t bin(std::uint64_t slot,
                                PhysicalChannel channel) const;
  void rebuild_jam_set();

  ReactiveJammerConfig config_;
  std::uint64_t seed_;
  double sniff_floor_mw_;
  /// Activity counts and current jam set, both indexed
  /// [slot % period_slots][(channel - slot) mod 16] flattened row-major.
  std::vector<std::uint32_t> histogram_;
  std::vector<std::uint8_t> jam_set_;
  std::size_t jam_cells_{0};
  std::uint64_t next_epoch_boundary_{0};
  bool observing_{false};
  std::uint32_t epochs_{0};
  std::uint64_t heard_{0};
};

}  // namespace digs
