#include "phy/reception.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace digs {

void SlotReception::begin_slot(std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> attempts,
                               const CellAttemptIndex* cells) {
  slot_ = slot;
  slot_start_ = slot_start;
  attempts_ = attempts;
  rss_dbm_.resize(attempts.size());
  mw_.resize(attempts.size());
  // Invalidate every per-attempt entry: gen_ restarts above any stamp.
  stamp_.assign(attempts.size(), 0);
  gen_ = 0;
  if (cells != nullptr) {
    cells_ = cells;
  } else {
    own_cells_.build(medium_->grid(), attempts);
    cells_ = &own_cells_;
  }
}

void SlotReception::begin_listener(NodeId rx, PhysicalChannel channel,
                                   double rx_clock_offset_us,
                                   double guard_us) {
  (void)begin_listener_gather(rx, channel, rx_clock_offset_us, guard_us);
  accumulate_gathered();
}

std::span<const std::uint32_t> SlotReception::begin_listener_gather(
    NodeId rx, PhysicalChannel channel, double rx_clock_offset_us,
    double guard_us) {
  rx_ = rx;
  channel_ = channel;
  rx_clock_offset_us_ = rx_clock_offset_us;
  guard_us_ = guard_us;
  ++gen_;
  // --- candidate gather ---
  // The cell buckets hand back exactly the grid-coupled attempts (plus
  // conservatively-coupled out-of-range senders); sorting restores the
  // ascending attempt order the reference accumulation uses. When the grid
  // filter is inactive every pair couples and the full scan is the gather.
  cand_.clear();
  if (cells_ != nullptr && cells_->active() &&
      rx.value < medium_->num_nodes()) {
    cells_->gather(static_cast<std::uint16_t>(rx.value), channel, cand_);
    // The buckets are channel-native, but overflow entries are not: drop
    // self/cross-channel attempts BEFORE sorting. Same surviving set, same
    // ascending order after the sort.
    std::size_t w = 0;
    for (const std::uint32_t t : cand_) {
      const TransmissionAttempt& other = attempts_[t];
      if (other.sender == rx || other.channel != channel) continue;
      cand_[w++] = t;
    }
    cand_.resize(w);
    // Typical candidate lists are a couple dozen entries (one 3×3 cell
    // neighborhood), where a branch-light insertion sort beats std::sort's
    // introsort dispatch; large lists still go through std::sort.
    if (w <= 32) {
      for (std::size_t j = 1; j < w; ++j) {
        const std::uint32_t v = cand_[j];
        std::size_t k = j;
        for (; k > 0 && cand_[k - 1] > v; --k) cand_[k] = cand_[k - 1];
        cand_[k] = v;
      }
    } else {
      std::sort(cand_.begin(), cand_.end());
    }
  } else {
    for (std::uint32_t t = 0; t < attempts_.size(); ++t) {
      const TransmissionAttempt& other = attempts_[t];
      if (other.sender == rx || other.channel != channel) continue;
      if (!medium_->coupled(other.sender, rx)) continue;
      cand_.push_back(t);
    }
  }
  prime_candidate_rows();
  return cand_;
}

void SlotReception::prime_candidate_rows() {
  const NodeId rx = rx_;
  const std::size_t n = medium_->num_nodes();
  primed_ = medium_->primed_power_dbm();
  flat_row_ = medium_->mean_row(rx, channel_, primed_);
  flat_keys_ = medium_->propagation().link_key_row(rx);
  smeans_ = nullptr;
  csr_path_ = false;
  if (flat_row_ != nullptr && flat_keys_ != nullptr) return;
  const Medium::SparseRow srow = medium_->sparse_row(rx, primed_);
  if (srow.len == 0) return;
  csr_path_ = true;
  smeans_ = srow.means + static_cast<std::size_t>(channel_) * srow.len;
  // Merge-join cursor walk: resolve each candidate's row index now — a
  // serial, cheap scan over the uint16 cols array — and prefetch the matched
  // mean entries so the scattered loads overlap whatever the caller does
  // between gather and accumulate.
  const std::size_t num_cand = cand_.size();
  cand_idx_.resize(num_cand);
  constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;
  std::size_t ri = 0;
  std::size_t prev_sender = 0;
  for (std::size_t i = 0; i < num_cand; ++i) {
    const TransmissionAttempt& other = attempts_[cand_[i]];
    const std::size_t sender = other.sender.value;
    if (sender >= n || other.tx_power_dbm != primed_) {
      cand_idx_[i] = kNoEntry;
      continue;
    }
    std::size_t idx;
    if (sender >= prev_sender) {
      // In-engine attempts are ascending in sender id (participant
      // order), so the cursor only walks forward — O(T_local + row_len)
      // for the whole candidate set.
      while (ri < srow.len && srow.cols[ri] < sender) ++ri;
      idx = ri;
    } else {
      // Out-of-order sender (standalone callers): re-seat by search.
      idx = static_cast<std::size_t>(
          std::lower_bound(srow.cols, srow.cols + srow.len,
                           static_cast<std::uint16_t>(sender)) -
          srow.cols);
      ri = idx;
    }
    prev_sender = sender;
    if (idx < srow.len && srow.cols[idx] == sender) {
      cand_idx_[i] = static_cast<std::uint32_t>(idx);
      __builtin_prefetch(smeans_ + idx);
    } else {
      cand_idx_[i] = kNoEntry;
    }
  }
}

void SlotReception::accumulate_gathered() {
  const NodeId rx = rx_;
  const PhysicalChannel channel = channel_;
  // --- pass 1: per-candidate (mean, fading key), or slow-path RSS ---
  // Same per-term arithmetic as Medium's reference paths: the mean row
  // (when the attempts are at the primed power) is the same table rss_dbm()
  // reads, so mean + fading reproduces its exact doubles.
  const Propagation& prop = medium_->propagation();
  const std::size_t n = medium_->num_nodes();
  const double primed = primed_;
  const double* row = flat_row_;
  const std::uint64_t* keys = flat_keys_;
  const std::uint64_t ftail =
      prop.fading_tail(channel, prop.fading_block(slot_));
  const bool flat = row != nullptr && keys != nullptr;
  const std::size_t num_cand = cand_.size();
  cand_rss_.resize(num_cand);
  cand_mean_.resize(num_cand);
  cand_key_.resize(num_cand);
  cand_fast_.resize(num_cand);
  bool all_fast = true;
  if (csr_path_) {
    // CSR path: prime_candidate_rows() already resolved cand_idx_ and
    // prefetched the mean entries; the loads here are independent per
    // iteration, so the prefetched lines and the out-of-order window
    // overlap the misses instead of serializing them behind the cursor.
    // Same entries, same doubles — only the load schedule changes.
    const double* smeans = smeans_;
    constexpr std::uint32_t kNoEntry = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < num_cand; ++i) {
      const std::uint32_t idx = cand_idx_[i];
      if (idx != kNoEntry) {
        cand_mean_[i] = smeans[idx];
        // Recompute the link key (three splitmix rounds) instead of loading
        // csr_keys_[idx]: the ALU beats a second missed cache line per
        // entry, and link_key() is exactly what the stored key holds.
        cand_key_[i] =
            prop.link_key(rx, attempts_[cand_[i]].sender);
        cand_fast_[i] = 1;
      } else {
        const TransmissionAttempt& other = attempts_[cand_[i]];
        cand_rss_[i] = medium_->rss_dbm(other.sender, rx, channel, slot_,
                                        other.tx_power_dbm);
        cand_fast_[i] = 0;
        all_fast = false;
      }
    }
  } else {
    for (std::size_t i = 0; i < num_cand; ++i) {
      const TransmissionAttempt& other = attempts_[cand_[i]];
      const std::size_t sender = other.sender.value;
      if (flat && sender < n && other.tx_power_dbm == primed) {
        cand_mean_[i] = row[sender];
        cand_key_[i] = keys[sender];
        cand_fast_[i] = 1;
        continue;
      }
      cand_rss_[i] = medium_->rss_dbm(other.sender, rx, channel, slot_,
                                      other.tx_power_dbm);
      cand_fast_[i] = 0;
      all_fast = false;
    }
  }
  // --- pass 2: batched fading (hash + inverse-CDF) over the candidates ---
  // The draws are stateless per (link key, tail), so batching them changes
  // no double; the all-fast loop is branch-free over the gathered arrays.
  // (A full-hash draw memo was tried here and measured ~0% hits on the
  // city row: channel hopping means a (link, channel) pair almost never
  // recurs within one coherence block, so recomputing is cheaper.)
  if (all_fast) {
    for (std::size_t i = 0; i < num_cand; ++i) {
      cand_rss_[i] = cand_mean_[i] + prop.fading_from_tail(cand_key_[i], ftail);
    }
  } else {
    for (std::size_t i = 0; i < num_cand; ++i) {
      if (cand_fast_[i] != 0) {
        cand_rss_[i] =
            cand_mean_[i] + prop.fading_from_tail(cand_key_[i], ftail);
      }
    }
  }
  // --- pass 3: mW conversion + accumulation, ascending attempt index ---
  // Identical order and per-term arithmetic to Medium::interference_mw()
  // (which skips the same uncoupled terms via `continue` — they were never
  // added there either), so the totals and every decode() subtraction match
  // it bit-for-bit.
  double total_mw = 0.0;
  for (std::size_t i = 0; i < num_cand; ++i) {
    const std::uint32_t t = cand_[i];
    const double rss = cand_rss_[i];
    const double mw = dbm_to_mw(rss);
    rss_dbm_[t] = rss;
    mw_[t] = mw;
    stamp_[t] = gen_;
    total_mw += mw;
  }
  total_mw_ = total_mw;
  jammer_mw_ = medium_->jammer_mw(rx, channel, slot_, slot_start_);
}

SlotReception::DecodeOutcome SlotReception::decode_candidates(
    std::uint64_t slot_draw_seed) const {
  DecodeOutcome out;
  // Every candidate is stamped (self/cross-channel were filtered in the
  // gather), so the per-call stamp/self checks of decode() are vacuous here;
  // the remaining sequence below is decode()'s, term for term.
  const double sensitivity = medium_->config().sensitivity_dbm;
  const double noise_mw = medium_->noise_floor_mw();
  const double total_mw = total_mw_;
  const double jammer_mw = jammer_mw_;
  const double rx_offset_us = rx_clock_offset_us_;
  const double guard_us = guard_us_;
  const NodeId rx = rx_;
  const std::size_t num_cand = cand_.size();
  for (std::size_t i = 0; i < num_cand; ++i) {
    const std::uint32_t t = cand_[i];
    const TransmissionAttempt& tx = attempts_[t];
    // Reachability pruning: a pruned pair's probability is exactly 0 on
    // every channel and slot, and its empty decode carries no guard miss —
    // skipping it changes no outcome.
    if (!medium_->maybe_reachable(tx.sender, rx)) continue;
    const double signal_dbm = cand_rss_[i];
    // Guard check before the sensitivity cut, as in decode(): a guard miss
    // is counted even for sub-threshold signals.
    if (std::fabs(tx.clock_offset_us - rx_offset_us) > guard_us) {
      ++out.guard_misses;
      continue;
    }
    if (signal_dbm < sensitivity) continue;
    if (medium_->link_blacked_out(tx.sender, rx)) continue;
    const double signal_mw = mw_[t];
    double interf_mw = total_mw - signal_mw;
    if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
    interf_mw += jammer_mw;
    const double sinr_db =
        10.0 * std::log10(signal_mw / (noise_mw + interf_mw));
    const double probability = medium_->prr(tx.frame_bytes, sinr_db);
    // Draw only for decodable pairs: chance(0) is false in any keying, so
    // skipping the hash for the common below-threshold case is outcome-free.
    if (!(probability > 0.0)) continue;
    const double draw = hashed_uniform(
        hash_mix(slot_draw_seed, rx.value, tx.sender.value));
    if (!(draw < probability)) continue;
    if (signal_dbm > out.best_rss) {
      out.best_rss = signal_dbm;
      out.best_tx = static_cast<std::int32_t>(t);
    }
  }
  return out;
}

Medium::ReceptionCheck SlotReception::decode(std::size_t t) const {
  const TransmissionAttempt& tx = attempts_[t];
  if (tx.sender == rx_) return {};
  // Not a candidate of the current listener (grid cutoff or wrong channel):
  // same empty outcome — no guard miss, no probability — as
  // Medium::check_reception()'s early return.
  if (stamp_[t] != gen_) return {};
  const double signal_dbm = rss_dbm_[t];
  // Same guard-miss check at the same sequence point as
  // Medium::check_reception(): after the RSS, before the sensitivity cut.
  if (std::fabs(tx.clock_offset_us - rx_clock_offset_us_) > guard_us_) {
    return {0.0, signal_dbm, true};
  }
  if (signal_dbm < medium_->config().sensitivity_dbm) return {0.0, signal_dbm};
  if (medium_->link_blacked_out(tx.sender, rx_)) return {0.0, signal_dbm};

  double interf_mw = total_mw_ - mw_[t];
  if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
  interf_mw += jammer_mw_;
  const double signal_mw = mw_[t];
  const double sinr_db =
      10.0 * std::log10(signal_mw / (medium_->noise_floor_mw() + interf_mw));
  return {medium_->prr(tx.frame_bytes, sinr_db), signal_dbm};
}

}  // namespace digs
