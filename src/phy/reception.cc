#include "phy/reception.h"

#include <cmath>

namespace digs {

void SlotReception::begin_slot(std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> attempts) {
  slot_ = slot;
  slot_start_ = slot_start;
  attempts_ = attempts;
  rss_dbm_.resize(attempts.size());
  mw_.resize(attempts.size());
}

void SlotReception::begin_listener(NodeId rx, PhysicalChannel channel,
                                   double rx_clock_offset_us,
                                   double guard_us) {
  rx_ = rx;
  channel_ = channel;
  rx_clock_offset_us_ = rx_clock_offset_us;
  guard_us_ = guard_us;
  // Same accumulation order and per-term arithmetic as
  // Medium::interference_mw(); the totals (and therefore every decode()'s
  // subtraction result) match it bit-for-bit. The mean row (when the
  // attempts are at the primed power) is the same flat table rss_dbm()'s
  // fast path reads, so mean + fading reproduces its exact doubles.
  const Propagation& prop = medium_->propagation();
  // Loop invariants, hoisted: the listener's mean-RSS row and link-key row
  // and the fading coherence block are the same for every attempt.
  const std::size_t n = medium_->num_nodes();
  const double primed = medium_->primed_power_dbm();
  const double* row = medium_->mean_row(rx, channel, primed);
  const std::uint64_t* keys = prop.link_key_row(rx);
  const std::uint64_t ftail =
      prop.fading_tail(channel, prop.fading_block(slot_));
  const bool fast = row != nullptr && keys != nullptr;
  double total_mw = 0.0;
  for (std::size_t t = 0; t < attempts_.size(); ++t) {
    const TransmissionAttempt& other = attempts_[t];
    if (other.sender == rx || other.channel != channel) {
      mw_[t] = 0.0;
      continue;
    }
    const double rss =
        fast && other.sender.value < n && other.tx_power_dbm == primed
            ? row[other.sender.value] +
                  prop.fading_from_tail(keys[other.sender.value], ftail)
            : medium_->rss_dbm(other.sender, rx, channel, slot_,
                               other.tx_power_dbm);
    const double mw = dbm_to_mw(rss);
    rss_dbm_[t] = rss;
    mw_[t] = mw;
    total_mw += mw;
  }
  total_mw_ = total_mw;
  jammer_mw_ = medium_->jammer_mw(rx, channel, slot_, slot_start_);
}

Medium::ReceptionCheck SlotReception::decode(std::size_t t) const {
  const TransmissionAttempt& tx = attempts_[t];
  if (tx.sender == rx_) return {};
  const double signal_dbm = rss_dbm_[t];
  // Same guard-miss check at the same sequence point as
  // Medium::check_reception(): after the RSS, before the sensitivity cut.
  if (std::fabs(tx.clock_offset_us - rx_clock_offset_us_) > guard_us_) {
    return {0.0, signal_dbm, true};
  }
  if (signal_dbm < medium_->config().sensitivity_dbm) return {0.0, signal_dbm};
  if (medium_->link_blacked_out(tx.sender, rx_)) return {0.0, signal_dbm};

  double interf_mw = total_mw_ - mw_[t];
  if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
  interf_mw += jammer_mw_;
  const double signal_mw = mw_[t];
  const double sinr_db =
      10.0 * std::log10(signal_mw / (medium_->noise_floor_mw() + interf_mw));
  return {medium_->prr(tx.frame_bytes, sinr_db), signal_dbm};
}

}  // namespace digs
