#include "phy/reception.h"

#include <algorithm>
#include <cmath>

namespace digs {

namespace {
// Sentinel RSS for attempts beyond the grid's coupling cutoff: no physical
// RSS approaches it, decode() keys its early-out on it, and the mW
// contribution is exactly 0 — matching Medium::check_reception()'s empty
// return and interference_mw()'s skip for the same pair.
constexpr double kUncoupledRss = -1.0e9;
}  // namespace

void SlotReception::begin_slot(std::uint64_t slot, SimTime slot_start,
                               std::span<const TransmissionAttempt> attempts) {
  slot_ = slot;
  slot_start_ = slot_start;
  attempts_ = attempts;
  rss_dbm_.resize(attempts.size());
  mw_.resize(attempts.size());
}

void SlotReception::begin_listener(NodeId rx, PhysicalChannel channel,
                                   double rx_clock_offset_us,
                                   double guard_us) {
  rx_ = rx;
  channel_ = channel;
  rx_clock_offset_us_ = rx_clock_offset_us;
  guard_us_ = guard_us;
  // Same accumulation order and per-term arithmetic as
  // Medium::interference_mw(); the totals (and therefore every decode()'s
  // subtraction result) match it bit-for-bit. The mean row (when the
  // attempts are at the primed power) is the same flat table rss_dbm()'s
  // fast path reads, so mean + fading reproduces its exact doubles.
  const Propagation& prop = medium_->propagation();
  // Loop invariants, hoisted: the listener's mean-RSS row and link-key row
  // and the fading coherence block are the same for every attempt.
  const std::size_t n = medium_->num_nodes();
  const double primed = medium_->primed_power_dbm();
  const double* row = medium_->mean_row(rx, channel, primed);
  const std::uint64_t* keys = prop.link_key_row(rx);
  const std::uint64_t ftail =
      prop.fading_tail(channel, prop.fading_block(slot_));
  const bool fast = row != nullptr && keys != nullptr;
  // Compact-mode fast path: the listener's CSR neighborhood row replaces the
  // dense mean/key rows. The channel's means are contiguous at
  // srow.means[channel * len ...]; sender lookup is a binary search over the
  // ascending cols (every coupled sender is in the row by construction).
  const Medium::SparseRow srow = medium_->sparse_row(rx, primed);
  const double* smeans =
      srow.len > 0 ? srow.means + static_cast<std::size_t>(channel) * srow.len
                   : nullptr;
  double total_mw = 0.0;
  for (std::size_t t = 0; t < attempts_.size(); ++t) {
    const TransmissionAttempt& other = attempts_[t];
    if (other.sender == rx || other.channel != channel) {
      mw_[t] = 0.0;
      continue;
    }
    // Grid coupling cutoff, identical to Medium's reference path: the
    // attempt neither decodes nor contributes interference here.
    if (!medium_->coupled(other.sender, rx)) {
      rss_dbm_[t] = kUncoupledRss;
      mw_[t] = 0.0;
      continue;
    }
    double rss;
    if (fast && other.sender.value < n && other.tx_power_dbm == primed) {
      rss = row[other.sender.value] +
            prop.fading_from_tail(keys[other.sender.value], ftail);
    } else if (smeans != nullptr && other.sender.value < n &&
               other.tx_power_dbm == primed) {
      const auto* begin = srow.cols;
      const auto* end = srow.cols + srow.len;
      const auto* it = std::lower_bound(begin, end, other.sender.value);
      rss = it != end && *it == other.sender.value
                ? smeans[it - begin] +
                      prop.fading_from_tail(srow.keys[it - begin], ftail)
                : medium_->rss_dbm(other.sender, rx, channel, slot_,
                                   other.tx_power_dbm);
    } else {
      rss = medium_->rss_dbm(other.sender, rx, channel, slot_,
                             other.tx_power_dbm);
    }
    const double mw = dbm_to_mw(rss);
    rss_dbm_[t] = rss;
    mw_[t] = mw;
    total_mw += mw;
  }
  total_mw_ = total_mw;
  jammer_mw_ = medium_->jammer_mw(rx, channel, slot_, slot_start_);
}

Medium::ReceptionCheck SlotReception::decode(std::size_t t) const {
  const TransmissionAttempt& tx = attempts_[t];
  if (tx.sender == rx_) return {};
  // Uncoupled pair (grid cutoff): same empty outcome — no guard miss, no
  // probability — as Medium::check_reception()'s early return.
  if (rss_dbm_[t] == kUncoupledRss) return {};
  const double signal_dbm = rss_dbm_[t];
  // Same guard-miss check at the same sequence point as
  // Medium::check_reception(): after the RSS, before the sensitivity cut.
  if (std::fabs(tx.clock_offset_us - rx_clock_offset_us_) > guard_us_) {
    return {0.0, signal_dbm, true};
  }
  if (signal_dbm < medium_->config().sensitivity_dbm) return {0.0, signal_dbm};
  if (medium_->link_blacked_out(tx.sender, rx_)) return {0.0, signal_dbm};

  double interf_mw = total_mw_ - mw_[t];
  if (interf_mw < 0.0) interf_mw = 0.0;  // FP guard for the subtraction
  interf_mw += jammer_mw_;
  const double signal_mw = mw_[t];
  const double sinr_db =
      10.0 * std::log10(signal_mw / (medium_->noise_floor_mw() + interf_mw));
  return {medium_->prr(tx.frame_bytes, sinr_db), signal_dbm};
}

}  // namespace digs
