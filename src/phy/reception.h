// Per-slot reception resolver: the O(L*T) busy-slot pipeline.
//
// Medium::check_reception() is the per-pair reference: every call re-sums
// interference over all T concurrent transmitters, so resolving one slot
// with L listeners costs O(L*T^2) with a dBm->mW pow() per term. This
// resolver computes each attempt's RSS and mW at a listener exactly once,
// keeps a per-(listener, channel) total-power accumulator, and derives each
// pair's interference by subtracting the wanted sender's own contribution —
// O(T) per listener, O(L*T) per slot.
//
// The arithmetic is ordered to match Medium::check_reception() term for
// term (same accumulation order, same subtract-then-clamp, same jammer sum
// appended last), so the two paths return IDENTICAL doubles; the
// reception_pipeline_test pins this over randomized busy slots.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/time.h"
#include "phy/medium.h"

namespace digs {

/// Resolves all receptions of one TSCH slot against a Medium. Reusable
/// scratch: construct once, call begin_slot() per slot, begin_listener()
/// per listener, then decode() per candidate attempt.
class SlotReception {
 public:
  explicit SlotReception(const Medium& medium) : medium_(&medium) {}

  /// Starts a new slot over `attempts` (all frames on the air). The span
  /// must stay valid until the next begin_slot().
  void begin_slot(std::uint64_t slot, SimTime slot_start,
                  std::span<const TransmissionAttempt> attempts);

  /// Computes the per-attempt RSS/mW at `rx` on `channel` and the listener's
  /// interference accumulators (one pass over the attempts).
  /// `rx_clock_offset_us`/`guard_us` feed the guard-time miss model exactly
  /// as in Medium::check_reception(); the defaults keep the listener
  /// guard-exempt (pre-drift behavior).
  void begin_listener(
      NodeId rx, PhysicalChannel channel, double rx_clock_offset_us = 0.0,
      double guard_us = std::numeric_limits<double>::infinity());

  /// Decode check of attempts[t] for the current listener. Identical doubles
  /// to Medium::check_reception(attempts[t], rx, ...). attempts[t] must be
  /// on the listener's channel and not sent by the listener itself.
  [[nodiscard]] Medium::ReceptionCheck decode(std::size_t t) const;

 private:
  const Medium* medium_;
  std::uint64_t slot_{0};
  SimTime slot_start_{};
  std::span<const TransmissionAttempt> attempts_;

  // Current listener's state.
  NodeId rx_;
  PhysicalChannel channel_{0};
  double rx_clock_offset_us_{0.0};
  double guard_us_{std::numeric_limits<double>::infinity()};
  std::vector<double> rss_dbm_;  // per attempt; only co-channel entries valid
  std::vector<double> mw_;       // per attempt; 0 for skipped entries
  double total_mw_{0.0};         // sum of mw_ (co-channel, non-self)
  double jammer_mw_{0.0};
};

}  // namespace digs
