// Per-slot reception resolver: the cell-indexed busy-slot pipeline.
//
// Medium::check_reception() is the per-pair reference: every call re-sums
// interference over all T concurrent transmitters, so resolving one slot
// with L listeners costs O(L*T^2) with a dBm->mW pow() per term. This
// resolver computes each attempt's RSS and mW at a listener exactly once,
// keeps a per-(listener, channel) total-power accumulator, and derives each
// pair's interference by subtracting the wanted sender's own contribution.
//
// On top of that, each listener only ever visits the attempts of its 3×3
// grid-cell neighborhood (via a per-slot CellAttemptIndex): everything
// farther away is uncoupled — exactly 0.0 mW, never decoded — in the
// reference path too, so the bucket walk changes no double. Per listener the
// cost is O(T_local); candidate (mean, fading-key) pairs are resolved by a
// sender-sorted merge-join against the listener's CSR row, and the hash +
// inverse-CDF fading draws are evaluated in one batched pass over the
// gathered candidates.
//
// The arithmetic is ordered to match Medium::check_reception() term for
// term (accumulation ascending by attempt index, same subtract-then-clamp,
// same jammer sum appended last), so the two paths return IDENTICAL
// doubles; the reception_pipeline_test pins this over randomized busy slots
// on single- and multi-cell layouts.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/time.h"
#include "phy/cell_index.h"
#include "phy/medium.h"

namespace digs {

/// Resolves all receptions of one TSCH slot against a Medium. Reusable
/// scratch: construct once, call begin_slot() per slot, begin_listener()
/// per listener, then decode() per candidate attempt.
class SlotReception {
 public:
  explicit SlotReception(const Medium& medium) : medium_(&medium) {}

  /// Starts a new slot over `attempts` (all frames on the air). The span
  /// must stay valid until the next begin_slot(). `cells` is the slot's
  /// attempt index; pass the one Network built so N shard resolvers share a
  /// single bucket build. nullptr builds a private index (standalone use).
  void begin_slot(std::uint64_t slot, SimTime slot_start,
                  std::span<const TransmissionAttempt> attempts,
                  const CellAttemptIndex* cells = nullptr);

  /// Computes the per-attempt RSS/mW at `rx` on `channel` and the listener's
  /// interference accumulators (one pass over the neighborhood's attempts).
  /// `rx_clock_offset_us`/`guard_us` feed the guard-time miss model exactly
  /// as in Medium::check_reception(); the defaults keep the listener
  /// guard-exempt (pre-drift behavior). Equivalent to begin_listener_gather()
  /// followed by accumulate_gathered().
  void begin_listener(
      NodeId rx, PhysicalChannel channel, double rx_clock_offset_us = 0.0,
      double guard_us = std::numeric_limits<double>::infinity());

  /// Stage 1 of begin_listener(): switches to the new listener and gathers
  /// its candidate list (cell buckets + channel/self filter + sort), WITHOUT
  /// the RSS/fading/mW accumulation. Returns candidates(). Callers that can
  /// prove the listener's outcome is empty from the candidate ids alone —
  /// Network skips listeners none of whose candidates are maybe_reachable(),
  /// since a pruned pair's decode is the zero outcome with no guard miss —
  /// avoid stage 2 entirely. decode() MUST NOT be called until
  /// accumulate_gathered() has run for the current listener.
  [[nodiscard]] std::span<const std::uint32_t> begin_listener_gather(
      NodeId rx, PhysicalChannel channel, double rx_clock_offset_us = 0.0,
      double guard_us = std::numeric_limits<double>::infinity());

  /// Stage 2 of begin_listener(): the batched mean/merge-join -> fading ->
  /// mW accumulation over the gathered candidates, after which decode() is
  /// valid for the current listener.
  void accumulate_gathered();

  /// The current listener's candidate attempts (ascending attempt index):
  /// every co-channel, non-self, grid-coupled entry of the slot's attempt
  /// span. decode() of anything else returns the empty outcome, so callers
  /// can drive their decode loop off this instead of rescanning the slot.
  [[nodiscard]] std::span<const std::uint32_t> candidates() const {
    return cand_;
  }

  /// Decode check of attempts[t] for the current listener. Identical doubles
  /// to Medium::check_reception(attempts[t], rx, ...). Attempts outside
  /// candidates() (self, cross-channel, uncoupled) return the same empty
  /// outcome as the reference.
  [[nodiscard]] Medium::ReceptionCheck decode(std::size_t t) const;

  /// Result of decode_candidates(): the winning transmitter (attempt index,
  /// -1 when nothing decoded) with its RSS, plus the listener's guard-miss
  /// count for the slot.
  struct DecodeOutcome {
    std::int32_t best_tx{-1};
    double best_rss{-1e9};
    std::uint32_t guard_misses{0};
  };

  /// Batched decode of the whole candidate list for the current listener:
  /// per candidate ascending, maybe_reachable() prune -> guard-miss count ->
  /// sensitivity cut -> blackout -> SINR/PRR -> Bernoulli draw hashed from
  /// (slot_draw_seed, rx, sender); the strongest-RSS passer wins. One
  /// sequential walk over the gathered arrays with the per-call constants
  /// (sensitivity, noise floor, totals) hoisted — identical doubles and
  /// identical guard-miss accounting to calling decode() per candidate with
  /// the same prune, just without L*T scattered calls. Requires
  /// accumulate_gathered() for the current listener.
  [[nodiscard]] DecodeOutcome decode_candidates(
      std::uint64_t slot_draw_seed) const;

 private:
  // Runs at the tail of begin_listener_gather(): resolves each candidate's
  // CSR row index with the serial merge-join cursor (a cheap forward scan
  // over the uint16 cols array) and issues prefetches for the matched mean
  // entries. Doing this in stage 1 lets the caller's work between the two
  // stages (Network's reachability pre-scan) overlap the scattered mean-row
  // loads that dominate stage 2.
  void prime_candidate_rows();

  const Medium* medium_;
  std::uint64_t slot_{0};
  SimTime slot_start_{};
  std::span<const TransmissionAttempt> attempts_;
  const CellAttemptIndex* cells_{nullptr};
  CellAttemptIndex own_cells_;  // built only when begin_slot gets no index

  // Current listener's state.
  NodeId rx_;
  PhysicalChannel channel_{0};
  double rx_clock_offset_us_{0.0};
  double guard_us_{std::numeric_limits<double>::infinity()};
  std::vector<double> rss_dbm_;  // per attempt; valid iff stamped
  std::vector<double> mw_;       // per attempt; valid iff stamped
  // Explicit coupled-candidate mask: stamp_[t] == gen_ marks the entries
  // begin_listener() resolved for the current listener; everything else
  // (uncoupled, cross-channel) holds stale data decode() must not read.
  // Replaces the former -1.0e9 in-band RSS sentinel.
  std::vector<std::uint32_t> stamp_;
  std::uint32_t gen_{0};
  // Candidate scratch (per listener): attempt indices ascending, and the
  // parallel arrays the batched mean/key -> fading -> mW passes fill.
  std::vector<std::uint32_t> cand_;
  std::vector<std::uint32_t> cand_idx_;  // CSR row index per candidate
  // Row pointers resolved by prime_candidate_rows() for the current
  // listener, consumed by accumulate_gathered().
  const double* flat_row_{nullptr};
  const std::uint64_t* flat_keys_{nullptr};
  const double* smeans_{nullptr};  // CSR mean row for (rx, channel)
  double primed_{0.0};
  bool csr_path_{false};
  std::vector<double> cand_rss_;
  std::vector<double> cand_mean_;
  std::vector<std::uint64_t> cand_key_;
  std::vector<std::uint8_t> cand_fast_;
  double total_mw_{0.0};  // sum of candidate mw, ascending attempt order
  double jammer_mw_{0.0};
};

}  // namespace digs
