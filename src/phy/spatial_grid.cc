#include "phy/spatial_grid.h"

#include <algorithm>
#include <cmath>

namespace digs {

SpatialGrid::SpatialGrid(const std::vector<Position>& positions,
                         double cell_size_m)
    : cell_size_m_(cell_size_m) {
  const std::size_t n = positions.size();
  cell_x_.assign(n, 0);
  cell_y_.assign(n, 0);
  if (n == 0 || cell_size_m <= 0.0) {
    cells_.assign(1, {});
    for (std::uint16_t i = 0; i < n; ++i) cells_[0].push_back(i);
    return;
  }
  double max_x = positions[0].x;
  double max_y = positions[0].y;
  min_x_ = positions[0].x;
  min_y_ = positions[0].y;
  for (const Position& p : positions) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const auto span_cells = [cell_size_m](double span) {
    return static_cast<std::uint32_t>(
        std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::floor(span / cell_size_m)) + 1));
  };
  cols_ = span_cells(max_x - min_x_);
  rows_ = span_cells(max_y - min_y_);
  active_ = cols_ >= 3 || rows_ >= 3;
  cells_.assign(num_cells(), {});
  for (std::size_t i = 0; i < n; ++i) {
    const auto cx = static_cast<std::uint16_t>(std::min<std::uint32_t>(
        cols_ - 1,
        static_cast<std::uint32_t>((positions[i].x - min_x_) / cell_size_m)));
    const auto cy = static_cast<std::uint16_t>(std::min<std::uint32_t>(
        rows_ - 1,
        static_cast<std::uint32_t>((positions[i].y - min_y_) / cell_size_m)));
    cell_x_[i] = cx;
    cell_y_[i] = cy;
    cells_[static_cast<std::size_t>(cy) * cols_ + cx].push_back(
        static_cast<std::uint16_t>(i));
  }
}

void SpatialGrid::neighborhood(std::uint16_t i,
                               std::vector<std::uint16_t>& out) const {
  out.clear();
  if (!built()) return;
  const std::uint32_t cx = cell_x_[i];
  const std::uint32_t cy = cell_y_[i];
  const std::uint32_t x0 = cx == 0 ? 0 : cx - 1;
  const std::uint32_t x1 = std::min(cols_ - 1, cx + 1);
  const std::uint32_t y0 = cy == 0 ? 0 : cy - 1;
  const std::uint32_t y1 = std::min(rows_ - 1, cy + 1);
  for (std::uint32_t y = y0; y <= y1; ++y) {
    for (std::uint32_t x = x0; x <= x1; ++x) {
      const auto& cell = cells_[static_cast<std::size_t>(y) * cols_ + x];
      out.insert(out.end(), cell.begin(), cell.end());
    }
  }
  std::sort(out.begin(), out.end());
}

}  // namespace digs
