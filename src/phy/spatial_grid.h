// Uniform 2D cell partition of the node positions, sized by the radio's
// provable decode radius (PR 2's ±6σ fading margin inverted through the
// pure path-loss curve). Two nodes can only couple — decode each other or
// contribute co-channel interference — when their cells are within one
// step in x and y (the 3×3 "neighborhood"). That cutoff is what turns the
// O(N²) medium tables into per-cell sparse rows and lets per-slot
// receptions resolve shard-parallel with only boundary-cell cross terms.
//
// The filter is part of the propagation model, applied identically in
// every reception path and at every shard count, so results are invariant
// to sharding. It only becomes active when the deployment spans at least
// three cells along some axis; every paper-scale layout (Testbed A/B,
// Cooja-150) fits within a 2×2 block, where all cells are mutually
// adjacent and the filter admits every pair — those runs stay bit-identical
// to the pre-grid model.
#pragma once

#include <cstdint>
#include <vector>

#include "phy/geometry.h"

namespace digs {

class SpatialGrid {
 public:
  /// Inactive grid: every pair is coupled.
  SpatialGrid() = default;

  /// Partitions `positions` (x, y only; floors attenuate but never widen
  /// the decode radius) into square cells of `cell_size_m`.
  SpatialGrid(const std::vector<Position>& positions, double cell_size_m);

  [[nodiscard]] bool built() const { return !cell_x_.empty(); }

  /// True when the 3×3-neighborhood filter can prune at least one cell
  /// pair (three or more cells along some axis). While inactive, coupled()
  /// is constant-true and the grid only provides the cell lists.
  [[nodiscard]] bool active() const { return active_; }

  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  /// Number of partitioned nodes (0 while unbuilt).
  [[nodiscard]] std::size_t num_nodes() const { return cell_x_.size(); }
  [[nodiscard]] std::size_t num_cells() const {
    return static_cast<std::size_t>(cols_) * rows_;
  }
  [[nodiscard]] double cell_size_m() const { return cell_size_m_; }

  /// Flat cell index of node `i` (row-major).
  [[nodiscard]] std::uint32_t cell_of(std::uint16_t i) const {
    return static_cast<std::uint32_t>(cell_y_[i]) * cols_ + cell_x_[i];
  }

  /// Node ids in cell `cell`, ascending.
  [[nodiscard]] const std::vector<std::uint16_t>& cell_nodes(
      std::uint32_t cell) const {
    return cells_[cell];
  }

  /// True when `a` and `b` are within one cell step in both axes (or the
  /// filter is inactive). This is the model's coupling cutoff.
  [[nodiscard]] bool coupled(std::uint16_t a, std::uint16_t b) const {
    if (!active_) return true;
    const int dx = static_cast<int>(cell_x_[a]) - static_cast<int>(cell_x_[b]);
    const int dy = static_cast<int>(cell_y_[a]) - static_cast<int>(cell_y_[b]);
    return dx >= -1 && dx <= 1 && dy >= -1 && dy <= 1;
  }

  /// All node ids in the 3×3 neighborhood around `i`'s cell (including `i`
  /// itself), ascending. When the grid is unbuilt or inactive this is every
  /// node — the degenerate case where sparse rows are simply dense.
  void neighborhood(std::uint16_t i, std::vector<std::uint16_t>& out) const;

  /// Cell coordinates an arbitrary position (e.g. a jammer, which is not a
  /// node) falls into, clamped to the grid extent so off-map sources land in
  /// the nearest border cell. Clamping only shrinks the per-axis separation
  /// to every grid cell, so distance lower bounds derived from these
  /// coordinates stay valid for off-map positions. Only meaningful while
  /// built().
  void cell_coords_of(const Position& p, std::uint32_t& cx,
                      std::uint32_t& cy) const {
    const auto clamp_axis = [](double v, double min_v, double cell,
                               std::uint32_t n) -> std::uint32_t {
      if (cell <= 0.0 || n == 0) return 0;
      const double f = (v - min_v) / cell;
      if (f <= 0.0) return 0;
      const auto c = static_cast<std::uint32_t>(f);
      return c >= n ? n - 1 : c;
    };
    cx = clamp_axis(p.x, min_x_, cell_size_m_, cols_);
    cy = clamp_axis(p.y, min_y_, cell_size_m_, rows_);
  }

 private:
  std::uint32_t cols_{1};
  std::uint32_t rows_{1};
  double cell_size_m_{0.0};
  double min_x_{0.0};
  double min_y_{0.0};
  bool active_{false};
  std::vector<std::uint16_t> cell_x_;
  std::vector<std::uint16_t> cell_y_;
  std::vector<std::vector<std::uint16_t>> cells_;
};

}  // namespace digs
