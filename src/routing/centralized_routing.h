// Routing state for the centralized WirelessHART baseline: the node holds
// whatever the Network Manager last installed — it computes nothing itself,
// sends no join-ins, and performs no local repair. When a parent dies the
// node keeps using the stale assignment until the manager pushes new routes,
// which is exactly the sluggishness the paper's Section III/IV describes
// ("the network during the update has to operate under compromised routes").
#pragma once

#include <vector>

#include "routing/routing.h"

namespace digs {

class CentralizedRouting final : public RoutingProtocol {
 public:
  explicit CentralizedRouting(NodeId id, bool is_access_point, Env env)
      : id_(id), is_access_point_(is_access_point), env_(std::move(env)) {}

  /// Installs a manager-computed assignment (routes + child table + rank).
  void set_assignment(NodeId best_parent, NodeId second_best_parent,
                      std::uint16_t rank, std::vector<ChildEntry> children,
                      SimTime now) {
    best_parent_ = best_parent;
    second_best_parent_ = second_best_parent;
    rank_ = is_access_point_ ? kAccessPointRank : rank;
    children_ = std::move(children);
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  }

  void start(SimTime now) override {
    if (is_access_point_) {
      rank_ = kAccessPointRank;
      if (env_.on_topology_changed) env_.on_topology_changed(now);
    }
  }

  void stop(SimTime now) override {
    // A desynchronized node keeps its installed routes (the manager, not
    // the node, owns them) but cannot use them until it re-syncs.
    (void)now;
  }

  void power_down(SimTime now) override {
    // Power loss wipes the installed assignment; the manager reinstalls
    // routes on its next recompute after the node revives.
    best_parent_ = kNoNode;
    second_best_parent_ = kNoNode;
    children_.clear();
    if (!is_access_point_) rank_ = kInfiniteRank;
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  }

  void handle_frame(const Frame&, double, SimTime) override {}
  void on_tx_result(NodeId, FrameType, bool, SimTime) override {}
  void touch_child(NodeId, SimTime) override {}

  [[nodiscard]] NodeId best_parent() const override { return best_parent_; }
  [[nodiscard]] NodeId second_best_parent() const override {
    return second_best_parent_;
  }
  [[nodiscard]] std::uint16_t rank() const override { return rank_; }
  [[nodiscard]] double advertised_cost() const override { return 0.0; }
  [[nodiscard]] std::span<const ChildEntry> children() const override {
    return children_;
  }
  [[nodiscard]] bool joined() const override {
    return is_access_point_ || best_parent_.valid();
  }

 private:
  NodeId id_;
  bool is_access_point_;
  Env env_;
  NodeId best_parent_;
  NodeId second_best_parent_;
  std::uint16_t rank_{kInfiniteRank};
  std::vector<ChildEntry> children_;
};

}  // namespace digs
