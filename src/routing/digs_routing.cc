#include "routing/digs_routing.h"

#include <algorithm>
#include <cmath>

#include "common/log.h"

namespace digs {

DigsRouting::DigsRouting(Simulator& sim, NodeId id, bool is_access_point,
                         NeighborTable& neighbors,
                         const DigsRoutingConfig& config, Rng rng, Env env)
    : sim_(sim),
      id_(id),
      is_access_point_(is_access_point),
      neighbors_(neighbors),
      config_(config),
      env_(std::move(env)),
      trickle_(sim, config.trickle, rng.fork("trickle"),
               [this] { send_join_in(); }),
      prune_timer_(sim, seconds(static_cast<std::int64_t>(30)),
                   [this] {
                     prune_children(sim_.now());
                     prune_descendants(sim_.now());
                   }),
      solicit_timer_(
          sim,
          SimDuration{5'000'000 +
                      static_cast<std::int64_t>(
                          rng.fork("solicit").uniform(0.0, 4e6))},
          [this] {
            if (started_ && !joined()) {
              env_.send_routing(make_frame(FrameType::kJoinSolicit, id_,
                                           kNoNode, JoinSolicitPayload{}));
            }
          }),
      confirm_timer_(
          sim,
          SimDuration{8'000'000 +
                      static_cast<std::int64_t>(
                          rng.fork("confirm").uniform(0.0, 3e6))},
          [this] {
            if (!started_) return;
            reconfirm_roles();
            // Keepalive: an ACKed unicast probes a parent link (feeding
            // ETX/failure detection) and refreshes its child table — but
            // only for links with no recent unicast feedback of their own,
            // so the shared routing slot is not flooded at scale (Contiki
            // TSCH keepalives behave the same way).
            const SimTime now = sim_.now();
            const SimDuration idle = seconds(static_cast<std::int64_t>(45));
            if (best_parent_.valid() && now - last_bp_feedback_ > idle) {
              send_callback(best_parent_, /*as_best=*/true);
              last_bp_feedback_ = now;  // pace retries
            }
            if (second_best_parent_.valid() &&
                now - last_sbp_feedback_ > idle) {
              send_callback(second_best_parent_, /*as_best=*/false);
              last_sbp_feedback_ = now;
            }
          }),
      advert_timer_(
          sim,
          SimDuration{config.dest_advert_period.us +
                      static_cast<std::int64_t>(
                          rng.fork("advert").uniform(
                              0.0, 0.4 * config.dest_advert_period.us))},
          [this] {
            if (started_) send_dest_advert();
          }) {}

void DigsRouting::start(SimTime now) {
  started_ = true;
  if (!is_access_point_) {
    solicit_timer_.start();
    confirm_timer_.start();
    if (config_.enable_downlink) advert_timer_.start();
  }
  if (is_access_point_) {
    // Algorithm 1: access points initialize rank to 1 and ETXw to 0 and
    // begin broadcasting join-in messages.
    rank_ = kAccessPointRank;
    etxw_ = 0.0;
    trickle_.start();
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  }
  prune_timer_.start();
}

void DigsRouting::stop(SimTime now) {
  started_ = false;
  trickle_.stop();
  prune_timer_.stop();
  solicit_timer_.stop();
  confirm_timer_.stop();
  advert_timer_.stop();
  advert_soon_.cancel();
  assign_parents(kNoNode, kNoNode);
  if (!is_access_point_) {
    rank_ = NeighborInfo::kInfiniteRank;
    etxw_ = NeighborInfo::kInfiniteEtx;
  }
  // Children are soft state refreshed by callbacks; keep them so a brief
  // desync does not orphan downstream nodes.
  if (env_.on_topology_changed) env_.on_topology_changed(now);
}

void DigsRouting::power_down(SimTime now) {
  stop(now);
  // Power loss is not a brief desync: the child and descendant tables die
  // with the node, so a revival restarts cold. advert_seq_ survives — it
  // must stay monotonic across reboots so ancestors prefer the revived
  // node's fresh adverts over stale pre-crash branches (freshest-wins).
  children_.clear();
  descendants_.clear();
}

void DigsRouting::handle_frame(const Frame& frame, double /*rss_dbm*/,
                               SimTime now) {
  switch (frame.type) {
    case FrameType::kJoinIn:
      process_join_in(frame.src, frame.as<JoinInPayload>(), now);
      break;
    case FrameType::kJoinSolicit:
      // A parentless neighbor asks for advertisements: answer promptly by
      // resetting Trickle (RFC 6550 DIS semantics).
      if (joined()) trickle_.hear_inconsistent();
      break;
    case FrameType::kJoinedCallback:
      if (frame.dst == id_) {
        process_callback(frame.src, frame.as<JoinedCallbackPayload>(), now);
      }
      break;
    case FrameType::kDestAdvert:
      if (frame.dst == id_ && config_.enable_downlink) {
        process_dest_advert(frame.src, frame.as<DestAdvertPayload>(), now);
      }
      break;
    default:
      break;
  }
}

NodeId DigsRouting::next_hop_down(NodeId dest) const {
  if (!config_.enable_downlink || !dest.valid()) return kNoNode;
  const auto it = descendants_.find(dest.value);
  return it == descendants_.end() ? kNoNode : it->second.via;
}

std::int64_t DigsRouting::downlink_freshness(NodeId dest) const {
  if (!config_.enable_downlink || !dest.valid()) return -1;
  const auto it = descendants_.find(dest.value);
  return it == descendants_.end() ? -1
                                  : static_cast<std::int64_t>(it->second.seq);
}

void DigsRouting::schedule_advert_soon() {
  if (!config_.enable_downlink || is_access_point_) return;
  if (advert_soon_.pending()) return;
  advert_soon_ = sim_.schedule_after(
      seconds(static_cast<std::int64_t>(2)), [this] {
        if (started_) send_dest_advert();
      });
}

void DigsRouting::process_dest_advert(NodeId from,
                                      const DestAdvertPayload& payload,
                                      SimTime now) {
  if (!is_child(from)) return;  // only children extend our subtree
  touch_child(from, now);  // an advert proves the child still uses us
  bool changed = false;
  for (const auto& adv : payload.destinations) {
    if (!adv.dest.valid() || adv.dest == id_) continue;  // loop guard
    auto it = descendants_.find(adv.dest.value);
    if (it == descendants_.end()) {
      descendants_[adv.dest.value] = Descendant{from, now, adv.seq};
      changed = true;
      continue;
    }
    Descendant& entry = it->second;
    // Freshest-wins (DAO-sequence semantics): an older advert from another
    // branch must not overwrite a newer route; a refresh from the same
    // child always applies.
    if (entry.via == from || adv.seq >= entry.seq) {
      if (entry.via != from || entry.seq != adv.seq) changed = true;
      entry.via = from;
      entry.refreshed = now;
      entry.seq = adv.seq;
    }
  }
  // Adverts carry the child's COMPLETE destination set, so anything we
  // previously learned via this child that is now absent has left its
  // subtree — erase it (RPL's No-Path DAO semantics). Without this,
  // re-homed subtrees leave stale descent branches that blackhole
  // downlink traffic.
  std::erase_if(descendants_, [&](const auto& kv) {
    if (kv.second.via != from) return false;
    for (const auto& adv : payload.destinations) {
      if (adv.dest.value == kv.first) return false;
    }
    changed = true;
    return true;
  });
  // Subtree grew or re-homed: push the update towards the root promptly
  // (triggered DAO semantics); the periodic advert only refreshes.
  if (changed) schedule_advert_soon();
}

void DigsRouting::send_dest_advert() {
  if (!config_.enable_downlink || !joined() || is_access_point_) return;
  prune_descendants(sim_.now());
  DestAdvertPayload payload;
  payload.destinations.push_back({id_, advert_seq_});
  for (const auto& [dest, entry] : descendants_) {
    payload.destinations.push_back({NodeId{dest}, entry.seq});
  }
  env_.send_routing(
      make_frame(FrameType::kDestAdvert, id_, best_parent_, payload));
}

double DigsRouting::accumulated(NodeId id) const {
  const NeighborInfo* info = neighbors_.find(id);
  if (info == nullptr) return NeighborInfo::kInfiniteEtx;
  return info->accumulated_etx();
}

void DigsRouting::invalidate_neighbor(NodeId id) {
  if (NeighborInfo* info = neighbors_.find(id)) {
    info->advertised_etxw = NeighborInfo::kInfiniteEtx;
    info->rank = NeighborInfo::kInfiniteRank;
  }
}

bool DigsRouting::recompute(SimTime /*now*/) {
  const std::uint16_t old_rank = rank_;
  const double old_etxw = etxw_;

  if (is_access_point_) {
    rank_ = kAccessPointRank;
    etxw_ = 0.0;
    return false;
  }
  if (!best_parent_.valid()) {
    rank_ = NeighborInfo::kInfiniteRank;
    etxw_ = NeighborInfo::kInfiniteEtx;
    return old_rank != rank_;
  }

  const NeighborInfo* bp = neighbors_.find(best_parent_);
  if (bp == nullptr || bp->rank == NeighborInfo::kInfiniteRank) {
    // Best parent no longer usable; caller handles failover.
    return false;
  }
  rank_ = static_cast<std::uint16_t>(bp->rank + 1);

  // Enforce the rank rule on the second-best parent after any rank change.
  if (second_best_parent_.valid()) {
    const NeighborInfo* sbp = neighbors_.find(second_best_parent_);
    if (sbp == nullptr || sbp->rank >= rank_ ||
        sbp->advertised_etxw >= NeighborInfo::kInfiniteEtx) {
      second_best_parent_ = kNoNode;
      sbp_confirmed_ = ConfirmedRole::kNone;
    }
  }

  const double acc_bp = bp->accumulated_etx();
  const double acc_sbp = second_best_parent_.valid()
                             ? accumulated(second_best_parent_)
                             : acc_bp + config_.missing_backup_penalty;
  etxw_ = config_.use_weighted_etx
              ? weighted_etx(bp->etx.value(), acc_bp, acc_sbp)
              : acc_bp;

  return old_rank != rank_ ||
         std::abs(old_etxw - etxw_) > config_.cost_epsilon;
}

bool DigsRouting::is_child(NodeId id) const {
  for (const ChildEntry& child : children_) {
    if (child.id == id) return true;
  }
  return false;
}

NodeId DigsRouting::select_second_best() const {
  const NeighborInfo* pick = neighbors_.best(
      [](const NeighborInfo& n) { return n.accumulated_etx(); },
      [this](const NeighborInfo& n) {
        return n.id == best_parent_ || n.id == id_ ||
               n.rank >= rank_ ||  // strictly smaller rank required
               is_child(n.id) ||
               n.advertised_etxw >= NeighborInfo::kInfiniteEtx;
      });
  return pick ? pick->id : kNoNode;
}

void DigsRouting::assign_parents(NodeId new_bp, NodeId new_sbp) {
  const NodeId old_bp = best_parent_;
  const NodeId old_sbp = second_best_parent_;
  const ConfirmedRole old_bp_role = bp_confirmed_;
  const ConfirmedRole old_sbp_role = sbp_confirmed_;

  const auto carried_role = [&](NodeId id) {
    if (id == old_bp) return old_bp_role;
    if (id == old_sbp) return old_sbp_role;
    return ConfirmedRole::kNone;
  };
  bp_confirmed_ = new_bp.valid() ? carried_role(new_bp) : ConfirmedRole::kNone;
  sbp_confirmed_ =
      new_sbp.valid() ? carried_role(new_sbp) : ConfirmedRole::kNone;
  best_parent_ = new_bp;
  second_best_parent_ = new_sbp;
}

void DigsRouting::reconfirm_roles() {
  if (best_parent_.valid() && bp_confirmed_ != ConfirmedRole::kPrimary) {
    send_callback(best_parent_, /*as_best=*/true);
  }
  if (second_best_parent_.valid() &&
      sbp_confirmed_ != ConfirmedRole::kBackup) {
    send_callback(second_best_parent_, /*as_best=*/false);
  }
}

void DigsRouting::process_join_in(NodeId from, const JoinInPayload& payload,
                                  SimTime now) {
  if (is_access_point_) return;  // APs are the DODAG roots

  // Poisoning: our parent advertising an infinite rank equals failure.
  if (payload.rank == NeighborInfo::kInfiniteRank) {
    if (from == best_parent_ || from == second_best_parent_) {
      handle_parent_failure(from, now);
    }
    return;
  }

  const NodeId old_bp = best_parent_;
  const NodeId old_sbp = second_best_parent_;
  const double etxa_i = accumulated(from);

  if (is_child(from)) return;  // our own subtree cannot be a parent

  if (!best_parent_.valid()) {
    // First join-in: the sender becomes the best parent (Algorithm 1).
    assign_parents(from, second_best_parent_);
  } else if (from != best_parent_) {
    const double etx_min = accumulated(best_parent_);
    const NeighborInfo* candidate = neighbors_.find(from);
    const bool rank_ok =
        candidate != nullptr && candidate->rank < rank_;
    // Algorithm 1 switches the best parent purely on accumulated ETX (the
    // rank constraint applies only to the second-best parent); hysteresis
    // (absolute, plus relative at deep-network cost scales) prevents
    // flapping.
    const double hysteresis =
        std::max(config_.parent_switch_hysteresis, 0.15 * etx_min);
    if (etxa_i + hysteresis < etx_min) {
      // Better primary route: demote the current best parent to second-best
      // (Algorithm 1) and adopt the sender.
      assign_parents(from, best_parent_);
      ++parent_switches_;
    } else if (rank_ok && etxa_i >= etx_min &&
               (from == second_best_parent_ ||
                etxa_i < accumulated(second_best_parent_))) {
      // Algorithm 1's second branch:
      //   ETXa(node, sbp) > ETXa(node, i) >= ETXmin and Rank(i) < Rank(node)
      if (from != second_best_parent_) {
        assign_parents(best_parent_, from);
      }
    }
  }

  bool recomputed = recompute(now);

  // A node missing its backup parent fills it from the neighbor table:
  // eligible advertisements may have been heard before we had a rank (or
  // before this sender became eligible), and waiting for each candidate's
  // next Trickle-paced join-in would stretch joining by up to Imax.
  if (!second_best_parent_.valid() && best_parent_.valid()) {
    const NodeId candidate = select_second_best();
    if (candidate.valid()) {
      assign_parents(best_parent_, candidate);
      recomputed = recompute(now) || recomputed;
    }
  }

  const bool parents_changed =
      best_parent_ != old_bp || second_best_parent_ != old_sbp;
  if (parents_changed) reconfirm_roles();
  after_update(parents_changed || recomputed, now);
}

void DigsRouting::after_update(bool changed, SimTime now) {
  if (!joined()) return;
  if (!trickle_.running()) trickle_.start();
  if (changed) {
    trickle_.hear_inconsistent();
    ++advert_seq_;           // our routes re-homed: newer than any old branch
    schedule_advert_soon();  // re-home our subtree under the new parent
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  } else {
    trickle_.hear_consistent();
  }
}

void DigsRouting::process_callback(NodeId from,
                                   const JoinedCallbackPayload& payload,
                                   SimTime now) {
  for (ChildEntry& child : children_) {
    if (child.id == from) {
      const bool changed = child.as_best != payload.as_best_parent;
      child.as_best = payload.as_best_parent;
      child.last_refresh = now;
      if (changed && env_.on_topology_changed) env_.on_topology_changed(now);
      return;
    }
  }
  children_.push_back(ChildEntry{from, payload.as_best_parent, now});
  if (env_.on_topology_changed) env_.on_topology_changed(now);
}

void DigsRouting::on_tx_result(NodeId peer, FrameType type, bool acked,
                               SimTime now) {
  if (peer == best_parent_) last_bp_feedback_ = now;
  if (peer == second_best_parent_) last_sbp_feedback_ = now;
  if (type == FrameType::kJoinedCallback && acked) {
    // The parent acknowledged our role announcement: its RX cells for the
    // matching attempt slots are (or will be, on its next rebuild) in
    // place, so the scheduler may now use those attempts.
    bool changed = false;
    if (peer == best_parent_ && bp_confirmed_ != ConfirmedRole::kPrimary) {
      bp_confirmed_ = ConfirmedRole::kPrimary;
      changed = true;
    } else if (peer == second_best_parent_ &&
               sbp_confirmed_ != ConfirmedRole::kBackup) {
      sbp_confirmed_ = ConfirmedRole::kBackup;
      changed = true;
    }
    if (changed && env_.on_topology_changed) env_.on_topology_changed(now);
    return;
  }
  if (acked) return;
  const NeighborInfo* info = neighbors_.find(peer);
  if (info == nullptr) return;
  const bool dead = info->consecutive_noacks >= config_.parent_fail_noacks ||
                    info->etx.value() >= config_.parent_fail_etx;
  if (!dead) return;
  if (peer == best_parent_ || peer == second_best_parent_) {
    handle_parent_failure(peer, now);
  }
}

void DigsRouting::handle_parent_failure(NodeId failed, SimTime now) {
  invalidate_neighbor(failed);

  if (failed == best_parent_) {
    if (second_best_parent_.valid()) {
      // Seamless failover: the backup route becomes primary. Data keeps
      // flowing through it on the attempt slots it already confirmed
      // (ConfirmedRole carries over), so no outage occurs while the role
      // upgrade is re-confirmed.
      assign_parents(second_best_parent_, kNoNode);
      ++parent_switches_;
      recompute(now);
      assign_parents(best_parent_, select_second_best());
      reconfirm_roles();
      recompute(now);
      after_update(true, now);
      return;
    }
    // No backup: fall back to the best remaining neighbor, if any.
    assign_parents(kNoNode, kNoNode);
    recompute(now);
    const NeighborInfo* candidate = neighbors_.best(
        [](const NeighborInfo& n) { return n.accumulated_etx(); },
        [this](const NeighborInfo& n) {
          return n.id == id_ || is_child(n.id) ||
                 n.advertised_etxw >= NeighborInfo::kInfiniteEtx;
        });
    if (candidate != nullptr) {
      assign_parents(candidate->id, kNoNode);
      ++parent_switches_;
      recompute(now);
      assign_parents(best_parent_, select_second_best());
      reconfirm_roles();
      recompute(now);
      after_update(true, now);
    } else {
      // Detached: poison so children stop routing through us.
      send_poison();
      trickle_.stop();
      if (env_.on_topology_changed) env_.on_topology_changed(now);
    }
    return;
  }

  if (failed == second_best_parent_) {
    assign_parents(best_parent_, select_second_best());
    reconfirm_roles();
    recompute(now);
    after_update(true, now);
  }
}

void DigsRouting::send_join_in() {
  if (!joined()) return;
  JoinInPayload payload;
  payload.rank = rank_;
  payload.etxw = etxw_;
  env_.send_routing(
      make_frame(FrameType::kJoinIn, id_, kNoNode, payload));
}

void DigsRouting::send_poison() {
  JoinInPayload payload;
  payload.rank = NeighborInfo::kInfiniteRank;
  payload.etxw = NeighborInfo::kInfiniteEtx;
  env_.send_routing(
      make_frame(FrameType::kJoinIn, id_, kNoNode, payload));
}

void DigsRouting::send_callback(NodeId parent, bool as_best) {
  if (!parent.valid()) return;
  JoinedCallbackPayload payload;
  payload.as_best_parent = as_best;
  env_.send_routing(
      make_frame(FrameType::kJoinedCallback, id_, parent, payload));
}

void DigsRouting::touch_child(NodeId from, SimTime now) {
  for (ChildEntry& child : children_) {
    if (child.id == from) {
      child.last_refresh = now;
      return;
    }
  }
}

void DigsRouting::prune_descendants(SimTime now) {
  if (!config_.enable_downlink) return;
  std::erase_if(descendants_, [&](const auto& kv) {
    return now - kv.second.refreshed > config_.descendant_timeout ||
           !is_child(kv.second.via);
  });
}

void DigsRouting::prune_children(SimTime now) {
  const auto before = children_.size();
  std::erase_if(children_, [&](const ChildEntry& child) {
    return now - child.last_refresh > config_.child_timeout;
  });
  if (children_.size() != before && env_.on_topology_changed) {
    env_.on_topology_changed(now);
  }
}

}  // namespace digs
