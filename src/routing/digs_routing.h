// DiGS distributed graph routing (paper Section V, Algorithm 1).
//
// Every field device maintains a best parent and a second-best parent chosen
// by accumulated ETX towards the access points; ranks grow away from the
// APs and a (second-best) parent must have a strictly smaller rank than the
// node — equal-rank links are never used for routing, the paper's
// loop-avoidance rule. The advertised path cost is the weighted ETX of
// Eq. (1)-(3), which accounts for the WirelessHART retransmission split
// (attempts 1-2 on the primary path, attempt 3 on the backup path).
//
// Join-in messages are paced by Trickle; joined-callback messages inform a
// selected parent of its new child and role so it can install the matching
// RX cells.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "routing/routing.h"
#include "routing/trickle.h"
#include "sim/simulator.h"

namespace digs {

struct DigsRoutingConfig {
  TrickleConfig trickle;
  /// Accumulated-ETX improvement required before switching best parent
  /// (standard distance-vector hysteresis; prevents parent flapping).
  double parent_switch_hysteresis = 0.5;
  /// A parent is declared dead on a long run of consecutive unicast
  /// failures, or when its EWMA link ETX degrades past a threshold —
  /// evidence-weighted, so a partially jammed link (channel hopping still
  /// succeeds on clean channels) does not trigger spurious churn.
  int parent_fail_noacks = 10;
  double parent_fail_etx = 8.0;
  /// Surrogate extra cost used for ETXw while no second-best parent exists
  /// (ETXasbp := ETXabp + penalty), so single-parented nodes advertise a
  /// worse cost than fully backed-up ones.
  double missing_backup_penalty = 1.0;
  /// Children not heard from for this long are pruned.
  SimDuration child_timeout = seconds(static_cast<std::int64_t>(180));
  /// Advertised rank/cost changes below these thresholds count as
  /// consistent for Trickle.
  double cost_epsilon = 0.25;
  /// Ablation switch: when false, advertise the plain accumulated ETX via
  /// the best parent instead of the paper's weighted ETX (Eq. 1-3).
  bool use_weighted_etx = true;
  /// Downlink graph (paper footnote 2): when enabled, nodes advertise their
  /// subtree destinations to the best parent (RPL storing-mode DAO style)
  /// and forward downlink packets via the learned child tables.
  bool enable_downlink = false;
  SimDuration dest_advert_period = seconds(static_cast<std::int64_t>(45));
  SimDuration descendant_timeout = seconds(static_cast<std::int64_t>(90));
};

class DigsRouting final : public RoutingProtocol {
 public:
  DigsRouting(Simulator& sim, NodeId id, bool is_access_point,
              NeighborTable& neighbors, const DigsRoutingConfig& config,
              Rng rng, Env env);

  void start(SimTime now) override;
  void stop(SimTime now) override;
  void power_down(SimTime now) override;
  void handle_frame(const Frame& frame, double rss_dbm, SimTime now) override;
  void on_tx_result(NodeId peer, FrameType type, bool acked,
                    SimTime now) override;
  void touch_child(NodeId from, SimTime now) override;

  [[nodiscard]] NodeId best_parent() const override { return best_parent_; }
  [[nodiscard]] NodeId second_best_parent() const override {
    return second_best_parent_;
  }
  [[nodiscard]] ConfirmedRole best_parent_confirmed() const override {
    return bp_confirmed_;
  }
  [[nodiscard]] ConfirmedRole second_best_parent_confirmed() const override {
    return sbp_confirmed_;
  }
  [[nodiscard]] NodeId next_hop_down(NodeId dest) const override;
  [[nodiscard]] std::int64_t downlink_freshness(NodeId dest) const override;
  [[nodiscard]] std::uint16_t rank() const override { return rank_; }
  [[nodiscard]] double advertised_cost() const override { return etxw_; }
  [[nodiscard]] std::span<const ChildEntry> children() const override {
    return children_;
  }
  [[nodiscard]] bool joined() const override {
    return is_access_point_ ? rank_ == kAccessPointRank
                            : best_parent_.valid();
  }

  /// True when both preferred parents are set (the DiGS join criterion used
  /// for Fig. 13).
  [[nodiscard]] bool fully_joined() const {
    return is_access_point_ ||
           (best_parent_.valid() && second_best_parent_.valid());
  }

  // Diagnostics for tests and ablations.
  [[nodiscard]] std::uint64_t parent_switches() const {
    return parent_switches_;
  }
  [[nodiscard]] const Trickle& trickle() const { return trickle_; }

  /// Read-only view of one downlink-table entry, for the invariant monitor
  /// and tests (the table itself stays private).
  struct DescendantView {
    NodeId dest;
    NodeId via;
    SimTime refreshed;
  };
  [[nodiscard]] std::vector<DescendantView> descendant_entries() const {
    std::vector<DescendantView> out;
    out.reserve(descendants_.size());
    for (const auto& [dest, entry] : descendants_) {
      out.push_back({NodeId{dest}, entry.via, entry.refreshed});
    }
    return out;
  }
  [[nodiscard]] const DigsRoutingConfig& config() const { return config_; }

 private:
  /// Runs the Algorithm 1 update for a join-in received from `from`.
  void process_join_in(NodeId from, const JoinInPayload& payload, SimTime now);
  void process_callback(NodeId from, const JoinedCallbackPayload& payload,
                        SimTime now);
  void handle_parent_failure(NodeId failed, SimTime now);

  void send_join_in();
  void send_callback(NodeId parent, bool as_best);
  void send_poison();
  void send_dest_advert();
  void process_dest_advert(NodeId from, const DestAdvertPayload& payload,
                           SimTime now);

  /// Accumulated ETX to the APs through neighbor `id`
  /// (paper: ETXa(node, i) = ETX(node, i) + ETXw(i)).
  [[nodiscard]] double accumulated(NodeId id) const;
  /// Recomputes rank_ and etxw_ from the current parents. Returns true if
  /// either changed materially.
  bool recompute(SimTime now);
  /// Picks the lowest-cost eligible second-best parent from the neighbor
  /// table (rank < ours, not the best parent). Returns kNoNode if none.
  [[nodiscard]] NodeId select_second_best() const;
  /// True if `id` is currently in our child table. A child's route passes
  /// through us, so adopting it as a parent would form a routing loop
  /// (the distance-vector count-to-infinity); children are never parent
  /// candidates.
  [[nodiscard]] bool is_child(NodeId id) const;
  /// Marks a neighbor unusable until it is heard from again.
  void invalidate_neighbor(NodeId id);
  void prune_children(SimTime now);
  /// Drops subtree routes that were not refreshed or whose via-child left.
  void prune_descendants(SimTime now);
  void after_update(bool changed, SimTime now);

  Simulator& sim_;
  NodeId id_;
  bool is_access_point_;
  NeighborTable& neighbors_;
  DigsRoutingConfig config_;
  Env env_;

  /// Reassigns bp/sbp while carrying each parent's confirmed role along
  /// with its identity (a demoted parent keeps its confirmed kPrimary role
  /// until it ACKs the downgrade, and vice versa).
  void assign_parents(NodeId new_bp, NodeId new_sbp);
  /// Sends callbacks for any parent whose confirmed role does not match
  /// its current assignment (initial joins, promotions, demotions, and
  /// retries after lost callbacks).
  void reconfirm_roles();

  NodeId best_parent_;
  NodeId second_best_parent_;
  ConfirmedRole bp_confirmed_{ConfirmedRole::kNone};
  ConfirmedRole sbp_confirmed_{ConfirmedRole::kNone};
  std::uint16_t rank_{NeighborInfo::kInfiniteRank};
  double etxw_{NeighborInfo::kInfiniteEtx};
  std::vector<ChildEntry> children_;

  Trickle trickle_;
  PeriodicTimer prune_timer_;
  /// DIS-analogue pacing: while synchronized but parentless, solicit
  /// join-ins so Trickle-suppressed neighbors answer promptly.
  PeriodicTimer solicit_timer_;
  /// Retries joined-callbacks for parents that have not confirmed their
  /// current role (lost callbacks would otherwise leave attempt slots
  /// unusable forever).
  PeriodicTimer confirm_timer_;
  /// Downlink graph: dest id -> (child next hop, last refresh).
  struct Descendant {
    NodeId via;
    SimTime refreshed;
    std::uint32_t seq{0};
  };
  std::unordered_map<std::uint16_t, Descendant> descendants_;
  /// Our own DAO-sequence: bumped whenever we re-home (best parent
  /// changes), so ancestors can tell fresh routes from stale branches.
  std::uint32_t advert_seq_{0};
  PeriodicTimer advert_timer_;
  /// Triggered advert (the RPL "DAO on change" behaviour): scheduled a
  /// couple of seconds after the subtree or the best parent changes.
  EventHandle advert_soon_;
  void schedule_advert_soon();
  SimTime last_bp_feedback_{};
  SimTime last_sbp_feedback_{};
  bool started_{false};
  std::uint64_t parent_switches_{0};
};

}  // namespace digs
