// Common interface of the two routing protocols: DiGS distributed graph
// routing (paper Section V) and the RPL-like single-parent baseline that
// Orchestra schedules on top of.
//
// The protocol object is pure control plane: it consumes routing frames and
// link feedback, and exposes the current parents / rank / advertised cost /
// child table. The Node wires its outputs (join-in and joined-callback
// frames) into the MAC routing queue and tells the scheduler when topology
// changed.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "net/frame.h"
#include "net/neighbor_table.h"

namespace digs {

/// The attempt-slot role a parent has *acknowledged* serving for us, i.e.
/// the role carried by the last joined-callback that parent ACKed. Until a
/// role is confirmed the parent has no RX cells for the matching attempt
/// slots, so transmitting there would be wasted; and when a backup parent
/// is promoted it keeps listening on the old backup slots until it confirms
/// the upgrade — which is what makes DiGS failover seamless.
enum class ConfirmedRole : std::uint8_t {
  kNone,     // parent has not acknowledged any role yet
  kPrimary,  // parent listens on attempt slots 1..A-1
  kBackup,   // parent listens on attempt slot A
};

/// A downstream node that selected us as one of its parents, learned from
/// its joined-callback message. The role decides which of the child's
/// transmission-attempt cells we must listen on.
struct ChildEntry {
  NodeId id;
  /// True: we are the child's best parent (attempts 1..2).
  /// False: second-best parent (attempt 3).
  bool as_best{true};
  SimTime last_refresh{};

  friend bool operator==(const ChildEntry&, const ChildEntry&) = default;
};

class RoutingProtocol {
 public:
  /// Wiring provided by the owning Node.
  struct Env {
    /// Enqueue a routing frame (join-in broadcast or joined-callback
    /// unicast) for transmission in the shared routing slot.
    std::function<void(const Frame&)> send_routing;
    /// Topology output changed: parents, rank or children. The node reacts
    /// by rebuilding its autonomous schedule, updating the time source, and
    /// recording join-time milestones (Fig. 13).
    std::function<void(SimTime now)> on_topology_changed;
  };

  virtual ~RoutingProtocol() = default;

  /// Begins operation (node synchronized). Access points join immediately;
  /// field devices wait for join-in messages.
  virtual void start(SimTime now) = 0;

  /// Halts operation (node desynchronized); forgets parents but keeps the
  /// neighbor table (owned by the Node).
  virtual void stop(SimTime now) = 0;

  /// The node lost power (failure injection): unlike stop(), downstream
  /// soft state (child / descendant tables) must die with the node so a
  /// later revival restarts cold instead of resuming pre-crash routes.
  virtual void power_down(SimTime now) { stop(now); }

  /// Handles a received routing frame (join-in / joined-callback). The
  /// neighbor table has already been updated with the frame's RSS and
  /// advertisement by the Node.
  virtual void handle_frame(const Frame& frame, double rss_dbm,
                            SimTime now) = 0;

  /// Link-layer feedback for a unicast towards `peer` (drives failure
  /// detection; ETX bookkeeping lives in the neighbor table).
  virtual void on_tx_result(NodeId peer, FrameType type, bool acked,
                            SimTime now) = 0;

  /// Any frame heard from `from` proves the node is alive; refreshes the
  /// child-table entry so steadily forwarding children are never pruned.
  virtual void touch_child(NodeId from, SimTime now) = 0;

  /// Downlink graph support (paper footnote 2): the child through which
  /// `dest` is reachable, learned from destination advertisements.
  /// kNoNode when unknown or when the protocol has no downlink support.
  [[nodiscard]] virtual NodeId next_hop_down(NodeId dest) const {
    (void)dest;
    return kNoNode;
  }
  /// Freshness of the downlink route to `dest` (-1 = no route). Higher is
  /// newer; the gateway backbone uses it to pick the right access point
  /// when a destination recently re-homed between AP subtrees.
  [[nodiscard]] virtual std::int64_t downlink_freshness(NodeId dest) const {
    (void)dest;
    return -1;
  }

  [[nodiscard]] virtual NodeId best_parent() const = 0;
  [[nodiscard]] virtual NodeId second_best_parent() const = 0;
  /// Roles the current parents have acknowledged (see ConfirmedRole).
  [[nodiscard]] virtual ConfirmedRole best_parent_confirmed() const {
    return best_parent().valid() ? ConfirmedRole::kPrimary
                                 : ConfirmedRole::kNone;
  }
  [[nodiscard]] virtual ConfirmedRole second_best_parent_confirmed() const {
    return second_best_parent().valid() ? ConfirmedRole::kBackup
                                        : ConfirmedRole::kNone;
  }
  [[nodiscard]] virtual std::uint16_t rank() const = 0;
  /// Path cost advertised in join-in messages (ETXw for DiGS, accumulated
  /// ETX for the RPL baseline).
  [[nodiscard]] virtual double advertised_cost() const = 0;
  [[nodiscard]] virtual std::span<const ChildEntry> children() const = 0;
  /// True once the node has selected its preferred parent(s).
  [[nodiscard]] virtual bool joined() const = 0;
};

/// Rank of access points (paper Section V: "All access points set their
/// ranks to 1").
inline constexpr std::uint16_t kAccessPointRank = 1;

/// Weighting factors of the paper's Eq. (1)-(3):
///   w1 = 1 - (1 - 1/ETXbp)^2   (P[delivery within the first two attempts])
///   w2 = (1 - 1/ETXbp)^2       (P[the first two attempts fail])
struct EtxwWeights {
  double w1{1.0};
  double w2{0.0};
};

[[nodiscard]] inline EtxwWeights etxw_weights(double etx_to_best_parent) {
  const double etx = etx_to_best_parent < 1.0 ? 1.0 : etx_to_best_parent;
  const double miss = 1.0 - 1.0 / etx;
  EtxwWeights w;
  w.w2 = miss * miss;
  w.w1 = 1.0 - w.w2;
  return w;
}

/// The paper's weighted ETX (Eq. 1) given the accumulated costs through the
/// two parents and the link ETX to the best parent.
[[nodiscard]] inline double weighted_etx(double etx_to_best_parent,
                                         double accumulated_best,
                                         double accumulated_second_best) {
  const EtxwWeights w = etxw_weights(etx_to_best_parent);
  return w.w1 * accumulated_best + w.w2 * accumulated_second_best;
}

}  // namespace digs
