#include "routing/rpl_routing.h"

#include <cmath>

namespace digs {

RplRouting::RplRouting(Simulator& sim, NodeId id, bool is_access_point,
                       NeighborTable& neighbors,
                       const RplRoutingConfig& config, Rng rng, Env env)
    : sim_(sim),
      id_(id),
      is_access_point_(is_access_point),
      neighbors_(neighbors),
      config_(config),
      env_(std::move(env)),
      trickle_(sim, config.trickle, rng.fork("trickle"),
               [this] { send_join_in(); }),
      prune_timer_(sim, seconds(static_cast<std::int64_t>(30)),
                   [this] { prune_children(sim_.now()); }),
      solicit_timer_(
          sim,
          SimDuration{5'000'000 +
                      static_cast<std::int64_t>(
                          rng.fork("solicit").uniform(0.0, 4e6))},
          [this] {
            if (started_ && !joined()) {
              env_.send_routing(make_frame(FrameType::kJoinSolicit, id_,
                                           kNoNode, JoinSolicitPayload{}));
            }
          }),
      confirm_timer_(
          sim,
          SimDuration{8'000'000 +
                      static_cast<std::int64_t>(
                          rng.fork("confirm").uniform(0.0, 3e6))},
          [this] {
            if (!started_ || !parent_.valid()) return;
            const SimTime now = sim_.now();
            const SimDuration idle = seconds(static_cast<std::int64_t>(45));
            if (parent_confirmed_ != ConfirmedRole::kPrimary ||
                now - last_parent_feedback_ > idle) {
              // Unconfirmed: retry the announcement. Idle link: keepalive
              // probing the parent (TSCH keepalive semantics) and
              // refreshing its child table.
              send_callback(parent_);
              last_parent_feedback_ = now;
            }
          }) {}

void RplRouting::start(SimTime now) {
  started_ = true;
  if (!is_access_point_) {
    solicit_timer_.start();
    confirm_timer_.start();
  }
  if (is_access_point_) {
    rank_ = kAccessPointRank;
    cost_ = 0.0;
    trickle_.start();
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  }
  prune_timer_.start();
}

void RplRouting::stop(SimTime now) {
  started_ = false;
  trickle_.stop();
  prune_timer_.stop();
  solicit_timer_.stop();
  confirm_timer_.stop();
  parent_ = kNoNode;
  parent_confirmed_ = ConfirmedRole::kNone;
  if (!is_access_point_) {
    rank_ = NeighborInfo::kInfiniteRank;
    cost_ = NeighborInfo::kInfiniteEtx;
  }
  if (env_.on_topology_changed) env_.on_topology_changed(now);
}

void RplRouting::power_down(SimTime now) {
  stop(now);
  // Power loss: the child table dies with the node (stop() keeps it so a
  // brief desync does not orphan downstream nodes; a reboot must not).
  children_.clear();
}

void RplRouting::handle_frame(const Frame& frame, double /*rss_dbm*/,
                              SimTime now) {
  switch (frame.type) {
    case FrameType::kJoinIn:
      process_join_in(frame.src, frame.as<JoinInPayload>(), now);
      break;
    case FrameType::kJoinSolicit:
      if (joined()) trickle_.hear_inconsistent();  // RFC 6550 DIS
      break;
    case FrameType::kJoinedCallback:
      if (frame.dst == id_) {
        process_callback(frame.src, frame.as<JoinedCallbackPayload>(), now);
      }
      break;
    default:
      break;
  }
}

double RplRouting::accumulated(NodeId id) const {
  const NeighborInfo* info = neighbors_.find(id);
  return info == nullptr ? NeighborInfo::kInfiniteEtx
                         : info->accumulated_etx();
}

void RplRouting::invalidate_neighbor(NodeId id) {
  if (NeighborInfo* info = neighbors_.find(id)) {
    info->advertised_etxw = NeighborInfo::kInfiniteEtx;
    info->rank = NeighborInfo::kInfiniteRank;
  }
}

bool RplRouting::recompute(SimTime /*now*/) {
  const std::uint16_t old_rank = rank_;
  const double old_cost = cost_;
  if (is_access_point_) {
    rank_ = kAccessPointRank;
    cost_ = 0.0;
    return false;
  }
  if (!parent_.valid()) {
    rank_ = NeighborInfo::kInfiniteRank;
    cost_ = NeighborInfo::kInfiniteEtx;
    return old_rank != rank_;
  }
  const NeighborInfo* parent = neighbors_.find(parent_);
  if (parent == nullptr || parent->rank == NeighborInfo::kInfiniteRank) {
    return false;
  }
  rank_ = static_cast<std::uint16_t>(parent->rank + 1);
  cost_ = parent->accumulated_etx();
  return old_rank != rank_ ||
         std::abs(old_cost - cost_) > config_.cost_epsilon;
}

bool RplRouting::is_child(NodeId id) const {
  for (const ChildEntry& child : children_) {
    if (child.id == id) return true;
  }
  return false;
}

void RplRouting::process_join_in(NodeId from, const JoinInPayload& payload,
                                 SimTime now) {
  if (is_access_point_) return;

  if (payload.rank == NeighborInfo::kInfiniteRank) {
    if (from == parent_) handle_parent_failure(from, now);
    return;
  }
  if (is_child(from)) return;

  const NodeId old_parent = parent_;
  if (!parent_.valid()) {
    parent_ = from;
    parent_confirmed_ = ConfirmedRole::kNone;
    send_callback(from);
  } else if (from != parent_) {
    const NeighborInfo* candidate = neighbors_.find(from);
    const bool rank_ok = candidate != nullptr && candidate->rank < rank_;
    const double cost_parent = accumulated(parent_);
    const double hysteresis =
        std::max(config_.parent_switch_hysteresis, 0.15 * cost_parent);
    if (rank_ok && accumulated(from) + hysteresis < cost_parent) {
      parent_ = from;
      parent_confirmed_ = ConfirmedRole::kNone;
      ++parent_switches_;
      send_callback(from);
    }
  }

  const bool recomputed = recompute(now);
  after_update(parent_ != old_parent || recomputed, now);
}

void RplRouting::after_update(bool changed, SimTime now) {
  if (!joined()) return;
  if (!trickle_.running()) trickle_.start();
  if (changed) {
    trickle_.hear_inconsistent();
    if (env_.on_topology_changed) env_.on_topology_changed(now);
  } else {
    trickle_.hear_consistent();
  }
}

void RplRouting::process_callback(NodeId from,
                                  const JoinedCallbackPayload& /*payload*/,
                                  SimTime now) {
  for (ChildEntry& child : children_) {
    if (child.id == from) {
      child.last_refresh = now;
      return;
    }
  }
  children_.push_back(ChildEntry{from, /*as_best=*/true, now});
  if (env_.on_topology_changed) env_.on_topology_changed(now);
}

void RplRouting::on_tx_result(NodeId peer, FrameType type, bool acked,
                              SimTime now) {
  if (peer == parent_) last_parent_feedback_ = now;
  if (type == FrameType::kJoinedCallback && acked) {
    if (peer == parent_ && parent_confirmed_ != ConfirmedRole::kPrimary) {
      parent_confirmed_ = ConfirmedRole::kPrimary;
      if (env_.on_topology_changed) env_.on_topology_changed(now);
    }
    return;
  }
  if (acked || peer != parent_) return;
  const NeighborInfo* info = neighbors_.find(peer);
  if (info == nullptr) return;
  if (info->consecutive_noacks >= config_.parent_fail_noacks ||
      info->etx.value() >= config_.parent_fail_etx) {
    handle_parent_failure(peer, now);
  }
}

void RplRouting::handle_parent_failure(NodeId failed, SimTime now) {
  invalidate_neighbor(failed);
  if (failed != parent_) return;
  parent_ = kNoNode;
  parent_confirmed_ = ConfirmedRole::kNone;
  recompute(now);

  const NeighborInfo* candidate = neighbors_.best(
      [](const NeighborInfo& n) { return n.accumulated_etx(); },
      [this](const NeighborInfo& n) {
        return n.id == id_ || is_child(n.id) ||
               n.advertised_etxw >= NeighborInfo::kInfiniteEtx;
      });
  if (candidate != nullptr) {
    parent_ = candidate->id;
    parent_confirmed_ = ConfirmedRole::kNone;
    ++parent_switches_;
    send_callback(parent_);
    recompute(now);
    after_update(true, now);
    return;
  }
  // Detached: poison the sub-DODAG and go quiet until a fresh join-in
  // arrives (local repair).
  send_poison();
  trickle_.stop();
  if (env_.on_topology_changed) env_.on_topology_changed(now);
}

void RplRouting::send_join_in() {
  if (!joined()) return;
  JoinInPayload payload;
  payload.rank = rank_;
  payload.etxw = cost_;
  env_.send_routing(make_frame(FrameType::kJoinIn, id_, kNoNode, payload));
}

void RplRouting::send_poison() {
  JoinInPayload payload;
  payload.rank = NeighborInfo::kInfiniteRank;
  payload.etxw = NeighborInfo::kInfiniteEtx;
  env_.send_routing(make_frame(FrameType::kJoinIn, id_, kNoNode, payload));
}

void RplRouting::send_callback(NodeId parent) {
  if (!parent.valid()) return;
  JoinedCallbackPayload payload;
  payload.as_best_parent = true;
  env_.send_routing(
      make_frame(FrameType::kJoinedCallback, id_, parent, payload));
}

void RplRouting::touch_child(NodeId from, SimTime now) {
  for (ChildEntry& child : children_) {
    if (child.id == from) {
      child.last_refresh = now;
      return;
    }
  }
}

void RplRouting::prune_children(SimTime now) {
  const auto before = children_.size();
  std::erase_if(children_, [&](const ChildEntry& child) {
    return now - child.last_refresh > config_.child_timeout;
  });
  if (children_.size() != before && env_.on_topology_changed) {
    env_.on_topology_changed(now);
  }
}

}  // namespace digs
