// RPL-like single-parent distance-vector routing: the baseline the paper
// compares against (Orchestra runs on top of it). Each node keeps one
// preferred parent (minimum accumulated ETX with hysteresis, candidate rank
// strictly below its own), advertises its accumulated ETX in Trickle-paced
// join-ins (DIO equivalents), and repairs by re-selecting a parent after
// consecutive ACK failures — with rank poisoning when it detaches.
//
// There is deliberately no second-best parent and no backup route: the
// repair gap this creates under interference and node failure is the
// phenomenon measured in paper Figs. 4, 5, 9 and 11.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "routing/routing.h"
#include "routing/trickle.h"
#include "sim/simulator.h"

namespace digs {

struct RplRoutingConfig {
  TrickleConfig trickle;
  double parent_switch_hysteresis = 0.5;
  /// Same evidence-weighted failure detection as DiGS (see
  /// DigsRoutingConfig) for a fair baseline.
  int parent_fail_noacks = 10;
  double parent_fail_etx = 8.0;
  SimDuration child_timeout = seconds(static_cast<std::int64_t>(180));
  double cost_epsilon = 0.25;
};

class RplRouting final : public RoutingProtocol {
 public:
  RplRouting(Simulator& sim, NodeId id, bool is_access_point,
             NeighborTable& neighbors, const RplRoutingConfig& config,
             Rng rng, Env env);

  void start(SimTime now) override;
  void stop(SimTime now) override;
  void power_down(SimTime now) override;
  void handle_frame(const Frame& frame, double rss_dbm, SimTime now) override;
  void on_tx_result(NodeId peer, FrameType type, bool acked,
                    SimTime now) override;
  void touch_child(NodeId from, SimTime now) override;

  [[nodiscard]] NodeId best_parent() const override { return parent_; }
  [[nodiscard]] NodeId second_best_parent() const override { return kNoNode; }
  [[nodiscard]] ConfirmedRole best_parent_confirmed() const override {
    return parent_confirmed_;
  }
  [[nodiscard]] ConfirmedRole second_best_parent_confirmed() const override {
    return ConfirmedRole::kNone;
  }
  [[nodiscard]] std::uint16_t rank() const override { return rank_; }
  [[nodiscard]] double advertised_cost() const override { return cost_; }
  [[nodiscard]] std::span<const ChildEntry> children() const override {
    return children_;
  }
  [[nodiscard]] bool joined() const override {
    return is_access_point_ ? rank_ == kAccessPointRank : parent_.valid();
  }

  [[nodiscard]] std::uint64_t parent_switches() const {
    return parent_switches_;
  }
  [[nodiscard]] const Trickle& trickle() const { return trickle_; }

 private:
  void process_join_in(NodeId from, const JoinInPayload& payload, SimTime now);
  void process_callback(NodeId from, const JoinedCallbackPayload& payload,
                        SimTime now);
  void handle_parent_failure(NodeId failed, SimTime now);
  [[nodiscard]] double accumulated(NodeId id) const;
  bool recompute(SimTime now);
  void after_update(bool changed, SimTime now);
  void send_join_in();
  void send_poison();
  void send_callback(NodeId parent);
  void invalidate_neighbor(NodeId id);
  void prune_children(SimTime now);
  /// Children route through us; they are never parent candidates.
  [[nodiscard]] bool is_child(NodeId id) const;

  Simulator& sim_;
  NodeId id_;
  bool is_access_point_;
  NeighborTable& neighbors_;
  RplRoutingConfig config_;
  Env env_;

  NodeId parent_;
  /// kPrimary once the parent ACKed our joined-callback (it then has the
  /// RX cell for our unicast slot); kNone otherwise.
  ConfirmedRole parent_confirmed_{ConfirmedRole::kNone};
  std::uint16_t rank_{NeighborInfo::kInfiniteRank};
  double cost_{NeighborInfo::kInfiniteEtx};
  std::vector<ChildEntry> children_;

  Trickle trickle_;
  PeriodicTimer prune_timer_;
  /// RPL DIS pacing: while synchronized but parentless, solicit DIOs.
  PeriodicTimer solicit_timer_;
  /// Retries the joined-callback until the parent confirms membership.
  PeriodicTimer confirm_timer_;
  SimTime last_parent_feedback_{};
  bool started_{false};
  std::uint64_t parent_switches_{0};
};

}  // namespace digs
