#include "routing/trickle.h"

namespace digs {

Trickle::Trickle(Simulator& sim, const TrickleConfig& config, Rng rng,
                 std::function<void()> transmit)
    : sim_(sim),
      config_(config),
      rng_(std::move(rng)),
      transmit_(std::move(transmit)) {}

Trickle::~Trickle() { stop(); }

void Trickle::start() {
  stop();
  running_ = true;
  interval_ = config_.imin;
  begin_interval();
}

void Trickle::stop() {
  fire_event_.cancel();
  end_event_.cancel();
  running_ = false;
}

void Trickle::begin_interval() {
  counter_ = 0;
  // t uniform in [I/2, I).
  const std::int64_t half = interval_.us / 2;
  const std::int64_t t = half + rng_.uniform_int(0, half - 1);
  fire_event_ = sim_.schedule_after(SimDuration{t}, [this] { fire(); });
  end_event_ = sim_.schedule_after(interval_, [this] { interval_end(); });
}

void Trickle::fire() {
  if (config_.redundancy_k > 0 && counter_ >= config_.redundancy_k) {
    ++suppressions_;
    return;
  }
  ++transmissions_;
  transmit_();
}

void Trickle::interval_end() {
  const SimDuration doubled{interval_.us * 2};
  interval_ = doubled < imax() ? doubled : imax();
  begin_interval();
}

void Trickle::hear_consistent() {
  if (running_) ++counter_;
}

void Trickle::hear_inconsistent() {
  if (!running_) return;
  if (interval_ == config_.imin) return;  // RFC 6206: only reset if I > Imin
  fire_event_.cancel();
  end_event_.cancel();
  interval_ = config_.imin;
  begin_interval();
}

}  // namespace digs
