// The Trickle algorithm (RFC 6206), used by both DiGS and the RPL baseline
// to pace join-in transmissions (paper Section V): the interval starts at
// Imin, doubles up to Imax, transmits at a random point in the second half
// of the interval unless suppressed by redundancy, and resets to Imin on
// inconsistency (e.g. a parent change).
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace digs {

struct TrickleConfig {
  SimDuration imin = seconds(static_cast<std::int64_t>(1));
  /// Number of doublings: Imax = Imin * 2^doublings.
  int doublings = 6;
  /// Redundancy constant k: suppress transmission after hearing k
  /// consistent messages in the current interval. 0 disables suppression.
  int redundancy_k = 3;
};

class Trickle {
 public:
  /// `transmit` fires when the algorithm decides to send this interval.
  Trickle(Simulator& sim, const TrickleConfig& config, Rng rng,
          std::function<void()> transmit);
  ~Trickle();
  Trickle(const Trickle&) = delete;
  Trickle& operator=(const Trickle&) = delete;

  /// Starts with I = Imin (restarts if already running).
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  /// A consistent message was heard (counts towards suppression).
  void hear_consistent();

  /// An inconsistency was detected: reset the interval to Imin (RFC 6206
  /// step 6). No-op if already at Imin per the RFC.
  void hear_inconsistent();

  [[nodiscard]] SimDuration current_interval() const { return interval_; }
  [[nodiscard]] SimDuration imax() const {
    return SimDuration{config_.imin.us << config_.doublings};
  }
  [[nodiscard]] std::uint64_t transmissions() const { return transmissions_; }
  [[nodiscard]] std::uint64_t suppressions() const { return suppressions_; }

 private:
  void begin_interval();
  void fire();
  void interval_end();

  Simulator& sim_;
  TrickleConfig config_;
  Rng rng_;
  std::function<void()> transmit_;

  bool running_{false};
  SimDuration interval_{};
  int counter_{0};
  EventHandle fire_event_;
  EventHandle end_event_;
  std::uint64_t transmissions_{0};
  std::uint64_t suppressions_{0};
};

}  // namespace digs
