#include "routing/tunnel.h"

#include <algorithm>

namespace digs {

namespace {

/// Climbs the parent DAG from `below` (exclusive) until an alive access
/// point, appending to `up` (which already holds the path so far, deepest
/// node last). At each step the best and second-best parents are both
/// candidates; one avoiding `avoid` (the primary interior) is preferred,
/// maximizing node-disjointness. `visited` enforces loop freedom. Returns
/// true when an access point terminated the climb.
bool climb(const TunnelManager::Env& env, std::vector<NodeId>& up,
           std::vector<std::uint8_t>& backup_edge_up,
           std::vector<std::uint8_t>& visited,
           const std::vector<std::uint8_t>* avoid) {
  std::size_t steps = 0;
  while (true) {
    const NodeId cur = up.back();
    if (cur.value < env.num_access_points) return true;  // reached an AP
    if (++steps > env.num_nodes) return false;           // hop cap
    const NodeId best = env.best_parent(cur);
    const NodeId second = env.second_best_parent(cur);
    NodeId next = kNoNode;
    bool via_backup = false;
    // Candidate order (best first) is the tiebreak; an avoid-set hit only
    // reorders, never excludes — a shared relay costs disjointness, not the
    // path.
    struct Cand {
      NodeId id;
      bool backup;
    };
    const Cand cands[2] = {{best, false}, {second, true}};
    for (int pass = 0; pass < 2 && !next.valid(); ++pass) {
      for (const Cand& cand : cands) {
        if (!cand.id.valid() || !env.alive(cand.id)) continue;
        if (cand.id.value < env.num_nodes && visited[cand.id.value] != 0) {
          continue;
        }
        if (pass == 0 && avoid != nullptr &&
            cand.id.value < avoid->size() && (*avoid)[cand.id.value] != 0) {
          continue;  // first pass: only parents off the primary interior
        }
        next = cand.id;
        via_backup = cand.backup;
        break;
      }
    }
    if (!next.valid()) return false;  // dead end
    if (next.value < env.num_nodes) visited[next.value] = 1;
    // The edge is next -> cur going downlink; record the role cur assigned
    // to next (it decides which tunnel ladder next transmits on).
    backup_edge_up.push_back(via_backup ? 1 : 0);
    up.push_back(next);
  }
}

/// Reverses an upward (dest-first) hop list into a TunnelPath (AP first).
TunnelPath reversed(std::vector<NodeId> up,
                    std::vector<std::uint8_t> backup_edge_up) {
  TunnelPath path;
  path.hops.assign(up.rbegin(), up.rend());
  path.backup_edge.assign(backup_edge_up.rbegin(), backup_edge_up.rend());
  return path;
}

}  // namespace

TunnelPair TunnelManager::derive(NodeId dest) const {
  TunnelPair out;
  if (!dest.valid() || dest.value < env_.num_access_points ||
      !env_.alive(dest)) {
    return out;  // tunnels run AP -> field device only
  }

  std::vector<std::uint8_t> visited(env_.num_nodes, 0);
  if (dest.value < env_.num_nodes) visited[dest.value] = 1;

  // Primary: the best-parent chain (the same spine uplink attempts 1..A-1
  // ride, so its quality is already being maintained by live traffic). The
  // climb prefers best parents and falls back to second-best ones, so a
  // dead best parent degrades the primary instead of killing the tunnel.
  {
    std::vector<NodeId> up{dest};
    std::vector<std::uint8_t> backup_edge_up;
    std::vector<std::uint8_t> primary_visited = visited;
    if (!climb(env_, up, backup_edge_up, primary_visited, nullptr)) {
      return out;
    }
    out.primary = reversed(std::move(up), std::move(backup_edge_up));
  }

  // Interior of the primary (everything between the AP and the dest): the
  // avoid-set the backup climb steers around.
  std::vector<std::uint8_t> primary_interior(env_.num_nodes, 0);
  for (std::size_t k = 1; k + 1 < out.primary.hops.size(); ++k) {
    const NodeId hop = out.primary.hops[k];
    if (hop.value < env_.num_nodes) primary_interior[hop.value] = 1;
  }

  // Backup: leaves through the second-best parent, then prefers parents off
  // the primary interior. No second-best parent (RPL, a thin spot in the
  // DAG) => graceful single-path pair. When the primary already had to use
  // the second-best exit (dead best parent), there is no disjoint exit
  // edge left and the pair degrades to single-path too.
  const NodeId primary_exit = out.primary.hops[out.primary.hops.size() - 2];
  const NodeId second = env_.second_best_parent(dest);
  if (second.valid() && env_.alive(second) && second != primary_exit) {
    std::vector<NodeId> up{dest};
    std::vector<std::uint8_t> backup_edge_up;
    std::vector<std::uint8_t> backup_visited = visited;
    if (second.value < env_.num_nodes) backup_visited[second.value] = 1;
    backup_edge_up.push_back(1);
    up.push_back(second);
    if (climb(env_, up, backup_edge_up, backup_visited, &primary_interior)) {
      out.backup = reversed(std::move(up), std::move(backup_edge_up));
    }
  }

  if (out.backup.valid()) {
    out.disjoint = true;
    for (std::size_t k = 1; k + 1 < out.backup.hops.size(); ++k) {
      const NodeId hop = out.backup.hops[k];
      if (hop.value < env_.num_nodes && primary_interior[hop.value] != 0) {
        out.disjoint = false;
        break;
      }
    }
  }
  return out;
}

TunnelManager::State& TunnelManager::slot_for(NodeId dest) {
  for (std::size_t i = 0; i < dests_.size(); ++i) {
    if (dests_[i] == dest) return states_[i];
  }
  dests_.push_back(dest);
  states_.emplace_back();
  return states_.back();
}

void TunnelManager::rederive(State& state, NodeId dest, SimTime now) {
  TunnelPair fresh = derive(dest);
  if (fresh.valid()) {
    if (state.pair.valid() && !(fresh.primary.hops == state.pair.primary.hops &&
                                fresh.backup.hops == state.pair.backup.hops)) {
      ++rebuilds_;
    }
    if (!fresh.replicated()) ++fallback_derivations_;
    if (state.broken_since.us >= 0) {
      repair_times_s_.push_back(
          static_cast<double>((now - state.broken_since).us) / 1e6);
      state.broken_since = SimTime{-1};
    }
  } else if (state.pair.valid() && state.broken_since.us < 0) {
    // A previously working tunnel just lost its last path: open the outage
    // window the next successful derivation closes.
    state.broken_since = now;
  }
  if (fresh.valid() || !state.pair.valid()) {
    state.pair = std::move(fresh);
  }
  // A broken pair keeps its last-good hops (state.pair) so diagnostics can
  // see what broke, but refresh()/pair() callers observe validity through
  // broken_since-driven re-derivation on the next call.
}

const TunnelPair& TunnelManager::refresh(NodeId dest, SimTime now) {
  State& state = slot_for(dest);
  rederive(state, dest, now);
  return state.pair;
}

void TunnelManager::maintain(SimTime now) {
  for (std::size_t i = 0; i < dests_.size(); ++i) {
    rederive(states_[i], dests_[i], now);
  }
}

const TunnelPair* TunnelManager::pair(NodeId dest) const {
  for (std::size_t i = 0; i < dests_.size(); ++i) {
    if (dests_[i] == dest) return &states_[i].pair;
  }
  return nullptr;
}

}  // namespace digs
