// Node-disjoint multipath downlink tunnels (ROADMAP item 4).
//
// DiGS keeps a best and a second-best parent with strictly smaller rank at
// every field device (paper Section V). This module turns that DAG into
// downlink determinism: for each critical destination it extracts two
// maximally node-disjoint AP->device paths — the best-parent chain, plus a
// backup that leaves through the second-best parent and greedily avoids the
// primary's interior — over which the network source-routes replicated
// copies. Suites without a second-best parent (RPL/Orchestra) degrade
// gracefully to a single path; the fallback is counted, never asserted.
//
// The manager is pure control plane over a read-only routing view: it never
// touches node state, so re-derivation can run from any serial seam (packet
// injection, the maintenance timer, fault handling) while shard workers are
// parked at a barrier.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace digs {

/// One source route: ingress access point first, destination last.
struct TunnelPath {
  std::vector<NodeId> hops;
  /// Per-edge parent role, aligned with edges (hops[k] -> hops[k+1]): true
  /// when the transmitter hops[k] is hops[k+1]'s second-best parent, which
  /// selects the backup-role tunnel ladder on that hop.
  std::vector<std::uint8_t> backup_edge;

  [[nodiscard]] bool valid() const { return hops.size() >= 2; }

  friend bool operator==(const TunnelPath&, const TunnelPath&) = default;
};

/// The (up to) two tunnels of one destination.
struct TunnelPair {
  TunnelPath primary;
  TunnelPath backup;
  /// True when both paths are valid and their interiors (every hop except
  /// the AP endpoints and the destination) share no node.
  bool disjoint{false};

  [[nodiscard]] bool valid() const { return primary.valid(); }
  [[nodiscard]] bool replicated() const { return backup.valid(); }

  friend bool operator==(const TunnelPair&, const TunnelPair&) = default;
};

class TunnelManager {
 public:
  /// Read-only view of the live routing state. Callbacks must return
  /// kNoNode / false for dead or out-of-range nodes.
  struct Env {
    std::function<NodeId(NodeId)> best_parent;
    std::function<NodeId(NodeId)> second_best_parent;
    std::function<bool(NodeId)> alive;
    std::uint16_t num_access_points{0};
    std::size_t num_nodes{0};
  };

  explicit TunnelManager(Env env) : env_(std::move(env)) {}

  /// Derives the tunnel pair for `dest` from the current parent DAG. Pure:
  /// no counters move. An invalid primary means no tunnel exists right now
  /// (destination dead, partitioned, or not yet joined).
  [[nodiscard]] TunnelPair derive(NodeId dest) const;

  /// Current pair for `dest`, re-derived from the live DAG (lazy churn
  /// handling: every injection sees the newest parents). Registers the
  /// destination on first use; bumps the rebuild counter when the hop lists
  /// changed and resolves repair timing when a broken pair becomes valid.
  const TunnelPair& refresh(NodeId dest, SimTime now);

  /// Re-derives every registered destination — the maintenance seam, also
  /// the anchor for repair timing when traffic is sparse.
  void maintain(SimTime now);

  /// Registered destinations in registration order.
  [[nodiscard]] const std::vector<NodeId>& destinations() const {
    return dests_;
  }
  [[nodiscard]] const TunnelPair* pair(NodeId dest) const;

  /// Times a pair derived with a valid primary differed from the previous
  /// derivation of the same destination.
  [[nodiscard]] std::uint64_t rebuilds() const { return rebuilds_; }
  /// Derivations that produced a primary but no backup path (single-path
  /// degradation, e.g. RPL's missing second-best parent).
  [[nodiscard]] std::uint64_t fallback_derivations() const {
    return fallback_derivations_;
  }
  /// Broken->valid durations, one per repaired outage of any destination.
  [[nodiscard]] const std::vector<double>& repair_times_s() const {
    return repair_times_s_;
  }

 private:
  struct State {
    TunnelPair pair;
    SimTime broken_since{-1};
  };

  State& slot_for(NodeId dest);
  void rederive(State& state, NodeId dest, SimTime now);

  Env env_;
  std::vector<NodeId> dests_;
  std::vector<State> states_;  // parallel to dests_
  std::uint64_t rebuilds_{0};
  std::uint64_t fallback_derivations_{0};
  std::vector<double> repair_times_s_;
};

}  // namespace digs
