#include "sched/conflict_analysis.h"

#include <cmath>

namespace digs {

double shared_slot_contention_probability(double traffic_load, int num_nodes,
                                          int slotframe_len) {
  if (traffic_load <= 0.0 || num_nodes <= 0 || slotframe_len <= 0) return 0.0;
  if (slotframe_len >= num_nodes) {
    return 1.0 - std::exp(-traffic_load * slotframe_len / num_nodes);
  }
  return 1.0 - std::exp(-traffic_load);
}

double slotframe_skip_probability(const SlotframeLoad& target,
                                  const std::vector<SlotframeLoad>& all) {
  double survive = 1.0;
  for (const SlotframeLoad& other : all) {
    if (other.priority >= target.priority) continue;  // smaller = higher
    if (other.length <= 0) continue;
    const double p_conf =
        std::min(1.0, static_cast<double>(other.cells_per_frame) /
                          static_cast<double>(other.length));
    survive *= 1.0 - p_conf;
  }
  return 1.0 - survive;
}

double measured_skip_rate(const Schedule& schedule, TrafficClass traffic,
                          std::uint64_t window) {
  std::uint64_t active = 0;
  std::uint64_t skipped = 0;
  for (std::uint64_t asn = 0; asn < window; ++asn) {
    if (schedule.class_cells(traffic, asn).empty()) continue;
    ++active;
    if (schedule.skipped(traffic, asn)) ++skipped;
  }
  if (active == 0) return 0.0;
  return static_cast<double>(skipped) / static_cast<double>(active);
}

}  // namespace digs
