#include "sched/conflict_analysis.h"

#include <algorithm>
#include <cmath>

namespace digs {

double shared_slot_contention_probability(double traffic_load, int num_nodes,
                                          int slotframe_len) {
  if (traffic_load <= 0.0 || num_nodes <= 0 || slotframe_len <= 0) return 0.0;
  if (slotframe_len >= num_nodes) {
    return 1.0 - std::exp(-traffic_load * slotframe_len / num_nodes);
  }
  return 1.0 - std::exp(-traffic_load);
}

double slotframe_skip_probability(const SlotframeLoad& target,
                                  const std::vector<SlotframeLoad>& all) {
  double survive = 1.0;
  for (const SlotframeLoad& other : all) {
    if (other.priority >= target.priority) continue;  // smaller = higher
    if (other.length <= 0) continue;
    const double p_conf =
        std::min(1.0, static_cast<double>(other.cells_per_frame) /
                          static_cast<double>(other.length));
    survive *= 1.0 - p_conf;
  }
  return 1.0 - survive;
}

double measured_skip_rate(const Schedule& schedule, TrafficClass traffic,
                          std::uint64_t window) {
  std::uint64_t active = 0;
  std::uint64_t skipped = 0;
  for (std::uint64_t asn = 0; asn < window; ++asn) {
    if (schedule.class_cells(traffic, asn).empty()) continue;
    ++active;
    if (schedule.skipped(traffic, asn)) ++skipped;
  }
  if (active == 0) return 0.0;
  return static_cast<double>(skipped) / static_cast<double>(active);
}

bool is_slot_permutation(std::span<const std::uint16_t> perm) {
  std::vector<std::uint8_t> seen(perm.size(), 0);
  for (const std::uint16_t v : perm) {
    if (v >= perm.size() || seen[v] != 0) return false;
    seen[v] = 1;
  }
  return true;
}

namespace {

struct MinMax {
  std::uint16_t min;
  std::uint16_t max;
};

MinMax mapped_min_max(std::span<const std::uint16_t> offsets,
                      std::span<const std::uint16_t> perm) {
  MinMax mm{static_cast<std::uint16_t>(0xFFFF), 0};
  for (const std::uint16_t o : offsets) {
    const std::uint16_t v = perm.empty() ? o : perm[o];
    mm.min = std::min(mm.min, v);
    mm.max = std::max(mm.max, v);
  }
  return mm;
}

}  // namespace

namespace {

struct TunnelCellUse {
  std::uint16_t slot;
  ChannelOffset channel;
  NodeId tx;
  NodeId rx;
};

void expand_tunnel_cells(const TunnelPath& path, const DigsScheduler& sched,
                         std::uint16_t num_access_points,
                         std::span<const std::uint16_t> perm,
                         std::vector<TunnelCellUse>& out) {
  if (!path.valid()) return;
  for (std::size_t k = 0; k + 1 < path.hops.size(); ++k) {
    const NodeId child = path.hops[k + 1];
    const bool backup_role =
        k < path.backup_edge.size() && path.backup_edge[k] != 0;
    for (int p = 1; p <= sched.config().attempts; ++p) {
      TunnelCellUse use;
      use.slot = sched.tunnel_slot(child, num_access_points, p, backup_role);
      if (use.slot < perm.size()) use.slot = perm[use.slot];
      use.channel = DigsScheduler::tunnel_channel(child, p, backup_role);
      use.tx = path.hops[k];
      use.rx = child;
      out.push_back(use);
    }
  }
}

}  // namespace

bool tunnel_pair_conflict_free(const TunnelPair& pair,
                               const DigsScheduler& sched,
                               std::uint16_t num_access_points,
                               std::span<const std::uint16_t> perm) {
  std::vector<TunnelCellUse> primary;
  std::vector<TunnelCellUse> backup;
  expand_tunnel_cells(pair.primary, sched, num_access_points, perm, primary);
  expand_tunnel_cells(pair.backup, sched, num_access_points, perm, backup);
  for (const TunnelCellUse& a : primary) {
    for (const TunnelCellUse& b : backup) {
      if (a.slot != b.slot || a.channel != b.channel) continue;
      if (a.tx == b.tx && a.rx == b.rx) continue;  // shared edge, same cell
      return false;
    }
  }
  return true;
}

bool permutation_preserves_precedence(std::span<const std::uint16_t> perm,
                                      std::span<const PrecedenceEdge> edges) {
  for (const PrecedenceEdge& edge : edges) {
    if (edge.child_tx.empty() || edge.parent_tx.empty()) continue;
    for (const std::uint16_t o : edge.child_tx) {
      if (o >= perm.size()) return false;
    }
    for (const std::uint16_t o : edge.parent_tx) {
      if (o >= perm.size()) return false;
    }
    const MinMax base_child = mapped_min_max(edge.child_tx, {});
    const MinMax base_parent = mapped_min_max(edge.parent_tx, {});
    if (base_child.min >= base_parent.max) continue;  // no base ordering
    const MinMax child = mapped_min_max(edge.child_tx, perm);
    const MinMax parent = mapped_min_max(edge.parent_tx, perm);
    if (child.min >= parent.max) return false;
  }
  return true;
}

}  // namespace digs
