// Analytic models of paper Section VI-B:
//   Eq. 5 — contention probability of the shared routing slot under Poisson
//           traffic load,
//   Eq. 6 — probability that a slotframe's cell is skipped because a
//           higher-priority slotframe claims the same slot during schedule
//           combination,
// plus a measured counterpart computed by sweeping a real Schedule, used by
// the ablation bench to validate the model.
// This header also hosts the validators the SlotSwapper randomization layer
// runs before committing a candidate slot permutation: bijectivity (which is
// what preserves per-node and Eq. 4 cross-node conflict-freedom — distinct
// slot offsets stay distinct under any bijection applied network-wide) and
// route-precedence preservation (a child's uplink TX must still be able to
// precede its parent's forwarding TX within one slotframe cycle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mac/schedule.h"
#include "routing/tunnel.h"
#include "sched/digs_scheduler.h"

namespace digs {

/// Eq. 5: p_c = 1 - e^(-T*L/N) when L >= N, else 1 - e^(-T), where T is the
/// average traffic load on the slot (Poisson), N the number of nodes and L
/// the slotframe length.
[[nodiscard]] double shared_slot_contention_probability(double traffic_load,
                                                        int num_nodes,
                                                        int slotframe_len);

/// One slotframe as seen by the skip model: `cells_per_frame` cells
/// installed in a slotframe of `length` slots, with priority `priority`
/// (smaller = higher, as TrafficClass).
struct SlotframeLoad {
  int length{1};
  int cells_per_frame{0};
  int priority{0};
};

/// Eq. 6: probability that a given cell of slotframe `target` is skipped
/// due to a conflict with any higher-priority slotframe. For coprime
/// lengths, a random slot of A meets a cell of B with probability
/// n_B / L_B.
[[nodiscard]] double slotframe_skip_probability(
    const SlotframeLoad& target, const std::vector<SlotframeLoad>& all);

/// Empirical skip rate of `traffic` cells in `schedule` over `window`
/// consecutive slots: skipped-slots / active-slots.
[[nodiscard]] double measured_skip_rate(const Schedule& schedule,
                                        TrafficClass traffic,
                                        std::uint64_t window);

/// True when `perm` is a bijection on [0, perm.size()): every value occurs
/// exactly once. A network-wide bijection over slot offsets maps distinct
/// offsets to distinct offsets, so it preserves per-node conflict-freedom
/// and the Eq. 4 cross-node uplink-slot uniqueness by construction; this
/// check is what the SlotSwapper runs before committing an epoch.
[[nodiscard]] bool is_slot_permutation(std::span<const std::uint16_t> perm);

/// One route edge for the precedence validator: the child's dedicated
/// uplink-TX slot offsets and its forwarding parent's, both from the *base*
/// (pre-permutation) schedules.
struct PrecedenceEdge {
  std::vector<std::uint16_t> child_tx;
  std::vector<std::uint16_t> parent_tx;
};

/// Route-precedence preservation: for every edge where the base schedule
/// lets the parent forward in the same slotframe cycle (the child's earliest
/// uplink TX strictly precedes the parent's latest), the permuted schedule
/// must too. Edges without that base property impose no constraint — the
/// suite already relies on the next cycle there (e.g. Orchestra's
/// sender-based ladder), and a permutation cannot be required to create an
/// ordering the base schedule never had.
[[nodiscard]] bool permutation_preserves_precedence(
    std::span<const std::uint16_t> perm, std::span<const PrecedenceEdge> edges);

/// Tunnel self-collision validator: the replicated copies of one packet —
/// one descending the primary, one the backup — must never be transmitted
/// by *different* links in the same (slot, channel). Expands every edge of
/// both paths into its full tunnel-ladder attempt set (role-keyed slots and
/// channels derived by `sched`) and cross-checks primary against backup; a
/// shared edge (non-disjoint pair) occupies the same cell by the same
/// transmitter and is not a collision. `perm`, when non-empty, maps slot
/// offsets through the current SlotSwapper epoch first, so the check proves
/// Eq. 4-style conflict-freedom holds in the permuted frame too (a bijection
/// preserves it, which this verifies rather than assumes).
[[nodiscard]] bool tunnel_pair_conflict_free(
    const TunnelPair& pair, const DigsScheduler& sched,
    std::uint16_t num_access_points, std::span<const std::uint16_t> perm = {});

}  // namespace digs
