// Analytic models of paper Section VI-B:
//   Eq. 5 — contention probability of the shared routing slot under Poisson
//           traffic load,
//   Eq. 6 — probability that a slotframe's cell is skipped because a
//           higher-priority slotframe claims the same slot during schedule
//           combination,
// plus a measured counterpart computed by sweeping a real Schedule, used by
// the ablation bench to validate the model.
#pragma once

#include <cstdint>
#include <vector>

#include "mac/schedule.h"

namespace digs {

/// Eq. 5: p_c = 1 - e^(-T*L/N) when L >= N, else 1 - e^(-T), where T is the
/// average traffic load on the slot (Poisson), N the number of nodes and L
/// the slotframe length.
[[nodiscard]] double shared_slot_contention_probability(double traffic_load,
                                                        int num_nodes,
                                                        int slotframe_len);

/// One slotframe as seen by the skip model: `cells_per_frame` cells
/// installed in a slotframe of `length` slots, with priority `priority`
/// (smaller = higher, as TrafficClass).
struct SlotframeLoad {
  int length{1};
  int cells_per_frame{0};
  int priority{0};
};

/// Eq. 6: probability that a given cell of slotframe `target` is skipped
/// due to a conflict with any higher-priority slotframe. For coprime
/// lengths, a random slot of A meets a cell of B with probability
/// n_B / L_B.
[[nodiscard]] double slotframe_skip_probability(
    const SlotframeLoad& target, const std::vector<SlotframeLoad>& all);

/// Empirical skip rate of `traffic` cells in `schedule` over `window`
/// consecutive slots: skipped-slots / active-slots.
[[nodiscard]] double measured_skip_rate(const Schedule& schedule,
                                        TrafficClass traffic,
                                        std::uint64_t window);

}  // namespace digs
