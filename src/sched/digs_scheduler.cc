#include "sched/digs_scheduler.h"

namespace digs {

std::uint16_t DigsScheduler::app_tx_slot(NodeId id,
                                         std::uint16_t num_access_points,
                                         int attempt) const {
  // Paper Eq. 4 with 0-based ids (access points occupy ids
  // [0, num_access_points)): s = A * (id - N_AP) + p.
  const int device_index = id.value - num_access_points;
  const int slot = config_.attempts * device_index + attempt;
  return static_cast<std::uint16_t>(slot % config_.app_slotframe_len);
}

std::uint16_t DigsScheduler::downlink_slot(NodeId child,
                                           std::uint16_t num_access_points,
                                           int attempt) const {
  const std::uint16_t up = app_tx_slot(child, num_access_points, attempt);
  return static_cast<std::uint16_t>(
      (up + config_.app_slotframe_len / 2) % config_.app_slotframe_len);
}

std::uint16_t DigsScheduler::tunnel_slot(NodeId child,
                                         std::uint16_t num_access_points,
                                         int attempt, bool backup_role) const {
  const std::uint16_t up = app_tx_slot(child, num_access_points, attempt);
  const std::uint16_t shift =
      backup_role ? static_cast<std::uint16_t>(3 * config_.app_slotframe_len /
                                               4)
                  : static_cast<std::uint16_t>(config_.app_slotframe_len / 4);
  return static_cast<std::uint16_t>((up + shift) % config_.app_slotframe_len);
}

void DigsScheduler::rebuild(Schedule& schedule,
                            const RoutingView& view) const {
  // --- Synchronization slotframe ---
  Slotframe sync;
  sync.traffic = TrafficClass::kSync;
  sync.length = config_.sync_slotframe_len;
  {
    Cell eb_tx;
    eb_tx.slot_offset =
        static_cast<std::uint16_t>(view.id.value % sync.length);
    eb_tx.channel_offset = tx_channel_offset(view.id);
    eb_tx.option = CellOption::kTx;
    eb_tx.traffic = TrafficClass::kSync;
    eb_tx.peer = kNoNode;  // EBs are broadcast
    sync.cells.push_back(eb_tx);
  }
  if (view.best_parent.valid()) {
    Cell eb_rx;
    eb_rx.slot_offset =
        static_cast<std::uint16_t>(view.best_parent.value % sync.length);
    eb_rx.channel_offset = tx_channel_offset(view.best_parent);
    eb_rx.option = CellOption::kRx;
    eb_rx.traffic = TrafficClass::kSync;
    eb_rx.peer = view.best_parent;
    sync.cells.push_back(eb_rx);
  }
  schedule.install(std::move(sync));

  // --- Routing slotframe: one shared network-wide cell ---
  Slotframe routing;
  routing.traffic = TrafficClass::kRouting;
  routing.length = config_.routing_slotframe_len;
  {
    Cell shared;
    shared.slot_offset = config_.routing_shared_slot;
    shared.channel_offset = config_.routing_channel_offset;
    shared.option = CellOption::kShared;
    shared.traffic = TrafficClass::kRouting;
    shared.peer = kNoNode;
    routing.cells.push_back(shared);
  }
  schedule.install(std::move(routing));

  // --- Application slotframe ---
  Slotframe app;
  app.traffic = TrafficClass::kApplication;
  app.length = config_.app_slotframe_len;

  if (!view.is_access_point && view.best_parent.valid()) {
    for (int p = 1; p <= config_.attempts; ++p) {
      // Attempts 1..A-1 go to the best parent, attempt A to the
      // second-best parent (WirelessHART rule); with no backup parent the
      // last attempt falls back to the primary.
      const bool backup_slot = (p == config_.attempts);
      const NodeId peer = backup_slot && view.second_best_parent.valid()
                              ? view.second_best_parent
                              : view.best_parent;
      Cell tx;
      tx.slot_offset = app_tx_slot(view.id, view.num_access_points, p);
      tx.channel_offset = attempt_channel_offset(view.id, p);
      tx.option = CellOption::kTx;
      tx.traffic = TrafficClass::kApplication;
      tx.peer = peer;
      tx.attempt = static_cast<std::uint8_t>(p);
      app.cells.push_back(tx);
    }
  }

  for (const ChildEntry& child : view.children) {
    // Mirror RX cells: a parent listens on the child's whole attempt
    // ladder regardless of its current role. Roles change when a child
    // promotes its backup parent, and a parent listening only on its old
    // attempts would be deaf exactly during the failover — the moment the
    // redundancy matters. The idle listening is the energy cost of the
    // graph redundancy (it shows up in the energy figures).
    for (int p = 1; p <= config_.attempts; ++p) {
      Cell rx;
      rx.slot_offset = app_tx_slot(child.id, view.num_access_points, p);
      rx.channel_offset = attempt_channel_offset(child.id, p);
      rx.option = CellOption::kRx;
      rx.traffic = TrafficClass::kApplication;
      rx.peer = child.id;
      rx.attempt = static_cast<std::uint8_t>(p);
      app.cells.push_back(rx);
    }
  }
  if (config_.enable_downlink) {
    // Downlink graph: we transmit to each child on the child's downlink
    // ladder; a field device listens on its own downlink slots for frames
    // from either parent.
    for (const ChildEntry& child : view.children) {
      for (int p = 1; p <= config_.attempts; ++p) {
        Cell tx;
        tx.slot_offset =
            downlink_slot(child.id, view.num_access_points, p);
        tx.channel_offset = attempt_channel_offset(child.id, p + 5);
        tx.option = CellOption::kTx;
        tx.traffic = TrafficClass::kApplication;
        tx.peer = child.id;
        tx.attempt = static_cast<std::uint8_t>(p);
        tx.downlink = true;
        app.cells.push_back(tx);
      }
    }
    if (!view.is_access_point && view.best_parent.valid()) {
      for (int p = 1; p <= config_.attempts; ++p) {
        Cell rx;
        rx.slot_offset = downlink_slot(view.id, view.num_access_points, p);
        rx.channel_offset = attempt_channel_offset(view.id, p + 5);
        rx.option = CellOption::kRx;
        rx.traffic = TrafficClass::kApplication;
        rx.peer = kNoNode;  // either parent may transmit downlink
        rx.attempt = static_cast<std::uint8_t>(p);
        rx.downlink = true;
        app.cells.push_back(rx);
      }
    }
  }
  if (config_.enable_tunnels) {
    // Tunnel ladders: a parent transmits source-routed copies to each child
    // on the ladder of its own role towards that child (best parent =
    // quarter shift, second-best = three-quarter shift); a device listens on
    // the ladder of each parent it actually has. Like every other DiGS
    // cell, both sides derive the (slot, channel) from the child's id and
    // the role alone — no negotiation.
    for (const ChildEntry& child : view.children) {
      for (int p = 1; p <= config_.attempts; ++p) {
        Cell tx;
        tx.slot_offset =
            tunnel_slot(child.id, view.num_access_points, p, !child.as_best);
        tx.channel_offset = tunnel_channel(child.id, p, !child.as_best);
        tx.option = CellOption::kTx;
        tx.traffic = TrafficClass::kApplication;
        tx.peer = child.id;
        tx.attempt = static_cast<std::uint8_t>(p);
        tx.downlink = true;
        tx.tunnel = true;
        app.cells.push_back(tx);
      }
    }
    if (!view.is_access_point) {
      const bool roles[2] = {false, true};
      for (const bool backup_role : roles) {
        const NodeId parent =
            backup_role ? view.second_best_parent : view.best_parent;
        if (!parent.valid()) continue;
        for (int p = 1; p <= config_.attempts; ++p) {
          Cell rx;
          rx.slot_offset =
              tunnel_slot(view.id, view.num_access_points, p, backup_role);
          rx.channel_offset = tunnel_channel(view.id, p, backup_role);
          rx.option = CellOption::kRx;
          rx.traffic = TrafficClass::kApplication;
          rx.peer = kNoNode;  // roles can lag at the parent during churn
          rx.attempt = static_cast<std::uint8_t>(p);
          rx.downlink = true;
          rx.tunnel = true;
          app.cells.push_back(rx);
        }
      }
    }
  }
  schedule.install(std::move(app));
}

}  // namespace digs
