// The DiGS autonomous scheduling approach (paper Section VI).
//
//  - Synchronization slotframe: node i broadcasts its EB in slot i and
//    listens in slot j of its best parent j.
//  - Routing slotframe: one network-wide shared slot for join-in and
//    joined-callback messages (contention; Trickle limits the load).
//  - Application slotframe: the p-th transmission attempt of node NodeID
//    uses slot  s = A*(NodeID - N_AP) - A + p  (Eq. 4, with the paper's
//    1-based device numbering; equivalently A*(id - N_AP) + p for our
//    0-based ids). Attempts 1..A-1 are directed at the best parent and
//    attempt A at the second-best parent; a parent installs the mirror RX
//    cells for each child it learned via joined-callback.
//
// Everything is derived from node ids and the local routing table — no
// negotiation (the salient property evaluated in the paper).
#pragma once

#include "sched/scheduler.h"

namespace digs {

class DigsScheduler final : public Scheduler {
 public:
  explicit DigsScheduler(const SchedulerConfig& config) : config_(config) {}

  void rebuild(Schedule& schedule, const RoutingView& view) const override;

  [[nodiscard]] const SchedulerConfig& config() const override {
    return config_;
  }

  /// Slot offset of attempt `p` (1-based) for transmitter `id`, Eq. 4.
  [[nodiscard]] std::uint16_t app_tx_slot(NodeId id,
                                          std::uint16_t num_access_points,
                                          int attempt) const;

  /// Downlink ladder: the slot in which `child`'s parent transmits the
  /// p-th downlink attempt to it — the Eq. 4 slot shifted by half the
  /// slotframe, derivable by both sides from the child's id alone.
  [[nodiscard]] std::uint16_t downlink_slot(NodeId child,
                                            std::uint16_t num_access_points,
                                            int attempt) const;

  /// Tunnel ladder: the slot in which a parent transmits the p-th
  /// source-routed attempt to `child`. Two role-keyed ladders — the child's
  /// best parent uses the quarter-frame shift, its second-best parent the
  /// three-quarter shift — so the final hops of a primary and a backup
  /// tunnel copy (same child, different parents) land in different slots.
  [[nodiscard]] std::uint16_t tunnel_slot(NodeId child,
                                          std::uint16_t num_access_points,
                                          int attempt, bool backup_role) const;

  /// Channel offset of the tunnel ladder cell for `child`'s p-th attempt,
  /// decorrelated from the uplink (p) and downlink (p + 5) ladders and
  /// between the two parent roles.
  [[nodiscard]] static ChannelOffset tunnel_channel(NodeId child, int attempt,
                                                    bool backup_role) {
    return attempt_channel_offset(child, attempt + (backup_role ? 12 : 9));
  }

 private:
  SchedulerConfig config_;
};

}  // namespace digs
