#include "sched/orchestra_scheduler.h"

namespace digs {

void OrchestraScheduler::rebuild(Schedule& schedule,
                                 const RoutingView& view) const {
  // --- EB (synchronization) slotframe: sender-based ---
  Slotframe sync;
  sync.traffic = TrafficClass::kSync;
  sync.length = config_.sync_slotframe_len;
  {
    Cell eb_tx;
    eb_tx.slot_offset =
        static_cast<std::uint16_t>(view.id.value % sync.length);
    eb_tx.channel_offset = tx_channel_offset(view.id);
    eb_tx.option = CellOption::kTx;
    eb_tx.traffic = TrafficClass::kSync;
    eb_tx.peer = kNoNode;
    sync.cells.push_back(eb_tx);
  }
  if (view.best_parent.valid()) {
    Cell eb_rx;
    eb_rx.slot_offset =
        static_cast<std::uint16_t>(view.best_parent.value % sync.length);
    eb_rx.channel_offset = tx_channel_offset(view.best_parent);
    eb_rx.option = CellOption::kRx;
    eb_rx.traffic = TrafficClass::kSync;
    eb_rx.peer = view.best_parent;
    sync.cells.push_back(eb_rx);
  }
  schedule.install(std::move(sync));

  // --- Common shared slotframe for routing traffic ---
  Slotframe routing;
  routing.traffic = TrafficClass::kRouting;
  routing.length = config_.routing_slotframe_len;
  {
    Cell shared;
    shared.slot_offset = config_.routing_shared_slot;
    shared.channel_offset = config_.routing_channel_offset;
    shared.option = CellOption::kShared;
    shared.traffic = TrafficClass::kRouting;
    shared.peer = kNoNode;
    routing.cells.push_back(shared);
  }
  schedule.install(std::move(routing));

  // --- Unicast slotframe ---
  Slotframe app;
  app.traffic = TrafficClass::kApplication;
  app.length = config_.orchestra_unicast_len;

  if (sender_based_) {
    // Our own TX slot towards the RPL parent (the parent starts listening
    // once it processes our joined-callback; until then transmissions are
    // wasted, which the callback retry bounds to a few seconds).
    if (!view.is_access_point && view.best_parent.valid()) {
      Cell tx;
      tx.slot_offset = unicast_slot(view.id);
      tx.channel_offset = tx_channel_offset(view.id);
      tx.option = CellOption::kTx;
      tx.traffic = TrafficClass::kApplication;
      tx.peer = view.best_parent;
      tx.attempt = 1;
      app.cells.push_back(tx);
    }
    // One RX slot per child, on the child's own slot.
    for (const ChildEntry& child : view.children) {
      Cell rx;
      rx.slot_offset = unicast_slot(child.id);
      rx.channel_offset = tx_channel_offset(child.id);
      rx.option = CellOption::kRx;
      rx.traffic = TrafficClass::kApplication;
      rx.peer = child.id;
      app.cells.push_back(rx);
    }
  } else {
    // Receiver-based: always-on RX slot; TX in the parent's slot.
    Cell rx;
    rx.slot_offset = unicast_slot(view.id);
    rx.channel_offset = tx_channel_offset(view.id);
    rx.option = CellOption::kRx;
    rx.traffic = TrafficClass::kApplication;
    rx.peer = kNoNode;  // any sender
    app.cells.push_back(rx);
    if (!view.is_access_point && view.best_parent.valid()) {
      Cell tx;
      tx.slot_offset = unicast_slot(view.best_parent);
      tx.channel_offset = tx_channel_offset(view.best_parent);
      tx.option = CellOption::kTx;
      tx.traffic = TrafficClass::kApplication;
      tx.peer = view.best_parent;
      tx.attempt = 1;
      app.cells.push_back(tx);
    }
  }
  schedule.install(std::move(app));
}

}  // namespace digs
