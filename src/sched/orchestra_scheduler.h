// Orchestra baseline scheduler (Duquennoy et al., SenSys'15), as used by the
// paper's comparison (the authors' Contiki implementation).
//
//  - EB slotframe: sender-based — node i transmits its EB in a slot derived
//    from its own id and listens in its time source's slot.
//  - Common shared slotframe for routing traffic (RPL control messages).
//  - Unicast slotframe, two variants:
//      * sender-based (default, Contiki's unicast_per_neighbor rule with
//        RPL storing mode): every node owns one TX slot derived from its own
//        id, directed at its RPL parent; the parent listens on each child's
//        slot (children are learned from joined-callback messages). Distinct
//        senders never collide.
//      * receiver-based: every node owns one always-on RX slot; senders
//        transmit in their parent's slot. Zero signalling, but children of
//        the same parent contend for one slot.
//    Either way: one attempt per slotframe cycle, always through the single
//    RPL parent — no backup route, which is what DiGS adds.
#pragma once

#include "sched/scheduler.h"

namespace digs {

class OrchestraScheduler final : public Scheduler {
 public:
  explicit OrchestraScheduler(const SchedulerConfig& config,
                              bool sender_based = true)
      : config_(config), sender_based_(sender_based) {}

  void rebuild(Schedule& schedule, const RoutingView& view) const override;

  [[nodiscard]] const SchedulerConfig& config() const override {
    return config_;
  }
  [[nodiscard]] bool sender_based() const { return sender_based_; }

  /// The unicast slot owned by `id` (TX slot when sender-based, RX slot
  /// when receiver-based).
  [[nodiscard]] std::uint16_t unicast_slot(NodeId id) const {
    return static_cast<std::uint16_t>(hash_mix(0x0C4A, id.value) %
                                      config_.orchestra_unicast_len);
  }

 private:
  SchedulerConfig config_;
  bool sender_based_;
};

}  // namespace digs
