// Autonomous schedulers: build a node's TSCH schedule purely from local
// information (node id, traffic demand, routing table) — no negotiation or
// schedule sharing between neighbors (the key property of paper Section VI).
//
// Two implementations:
//   - DigsScheduler: the paper's contribution (id-derived attempt ladder).
//   - OrchestraScheduler: the receiver-based Orchestra baseline.
#pragma once

#include <cstdint>
#include <span>

#include "common/rng.h"
#include "common/types.h"
#include "mac/schedule.h"
#include "routing/routing.h"

namespace digs {

struct SchedulerConfig {
  /// Slotframe lengths; the paper uses 557 / 47 / 151 for all experiments
  /// (Section VII) and 61 / 11 / 7 in the worked example (Fig. 7).
  /// Pairwise coprime lengths ensure no traffic class is starved.
  std::uint16_t sync_slotframe_len = 557;
  std::uint16_t routing_slotframe_len = 47;
  std::uint16_t app_slotframe_len = 151;
  /// Total transmission attempts per packet per slotframe cycle (A in the
  /// paper's Eq. 4). Attempts 1..A-1 use the best parent, attempt A the
  /// second-best parent (WirelessHART rule).
  int attempts = 3;
  /// Orchestra's unicast slotframe length. The paper configures the
  /// application slotframe to 151 slots "for all experiments", which is
  /// what makes DiGS's 3-attempt ladder pay off in latency; a shorter
  /// Contiki-default-style frame (e.g. 53) gives Orchestra more service
  /// bandwidth and is available here for ablations.
  std::uint16_t orchestra_unicast_len = 151;
  /// Downlink graph cells (paper footnote 2 extension): when enabled, each
  /// parent gets TX cells towards every child on a second Eq. 4-style
  /// ladder (shifted by half the application slotframe), and every device
  /// listens on its own downlink slots.
  bool enable_downlink = false;
  /// Dedicated tunnel cells for source-routed multipath downlink: two more
  /// Eq. 4-style ladders (quarter- and three-quarter-frame shifts, one per
  /// parent role) so the replicated copies of a packet never collide with
  /// each other or with the table-routed downlink ladder. Requires
  /// enable_downlink-style child tables; DiGS-layout schedulers only.
  bool enable_tunnels = false;
  /// Slot offset of the network-wide shared routing cell ("All nodes in the
  /// network use the same time slot offset for the routing traffic").
  std::uint16_t routing_shared_slot = 0;
  ChannelOffset routing_channel_offset = 0;
};

/// Snapshot of the routing state a scheduler may read — local info only.
struct RoutingView {
  NodeId id;
  bool is_access_point{false};
  std::uint16_t num_access_points{2};
  NodeId best_parent;
  NodeId second_best_parent;
  std::span<const ChildEntry> children;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Rebuilds all three slotframes of `schedule` from the routing view.
  virtual void rebuild(Schedule& schedule, const RoutingView& view) const = 0;

  [[nodiscard]] virtual const SchedulerConfig& config() const = 0;
};

/// Channel offset derived from the transmitting node's id; computed
/// identically by sender and receiver so dedicated cells agree without any
/// exchange.
[[nodiscard]] inline ChannelOffset tx_channel_offset(NodeId sender) {
  return static_cast<ChannelOffset>(hash_mix(0xA55, sender.value) %
                                    kNumChannels);
}

/// Per-attempt channel offset: successive attempts of the same packet land
/// on decorrelated channels so a frequency-local interferer (one WiFi
/// channel = four 802.15.4 channels) cannot kill a whole attempt ladder —
/// the WirelessHART channel-diversity rule.
[[nodiscard]] inline ChannelOffset attempt_channel_offset(NodeId sender,
                                                          int attempt) {
  return static_cast<ChannelOffset>(
      hash_mix(0xA77, sender.value, attempt) % kNumChannels);
}

}  // namespace digs
