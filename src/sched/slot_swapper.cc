#include "sched/slot_swapper.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/rng.h"

namespace digs {

namespace {

SlotSwapperConfig sanitize(SlotSwapperConfig config) {
  if (config.frame_len == 0) config.frame_len = 1;
  if (config.max_retries == 0) config.max_retries = 1;
  return config;
}

}  // namespace

SlotSwapper::SlotSwapper(const SlotSwapperConfig& config)
    : config_(sanitize(config)), perm_(config_.frame_len) {
  std::iota(perm_.begin(), perm_.end(), static_cast<std::uint16_t>(0));
}

const std::vector<std::uint16_t>& SlotSwapper::advance_epoch(
    std::uint64_t epoch, const std::vector<PrecedenceEdge>& edges) {
  ++epochs_;
  const std::uint16_t len = config_.frame_len;
  perm_.assign(len, 0);
  std::iota(perm_.begin(), perm_.end(), static_cast<std::uint16_t>(0));
  for (std::uint32_t swap = 0; swap < config_.swaps_per_epoch; ++swap) {
    for (std::uint32_t retry = 0; retry < config_.max_retries; ++retry) {
      const std::uint64_t h = hash_mix(config_.seed, 0x5109, epoch,
                                       (std::uint64_t{swap} << 32) | retry);
      const auto a = static_cast<std::uint16_t>(h % len);
      const auto b = static_cast<std::uint16_t>((h >> 20) % len);
      if (a == b) {
        ++rejected_;
        continue;
      }
      std::swap(perm_[a], perm_[b]);
      if (permutation_preserves_precedence(perm_, edges)) {
        ++applied_;
        break;
      }
      std::swap(perm_[a], perm_[b]);  // roll back the rejected candidate
      ++rejected_;
    }
  }
  // Transpositions of a bijection stay bijective; assert it anyway — the
  // epoch is only published if the full validation passes.
  if (!is_slot_permutation(perm_)) {
    perm_.assign(len, 0);
    std::iota(perm_.begin(), perm_.end(), static_cast<std::uint16_t>(0));
  }
  return perm_;
}

}  // namespace digs
