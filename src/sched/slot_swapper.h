// SlotSwapper-style schedule randomization (after "SlotSwapper: A Schedule
// Randomization Protocol for Real-Time WirelessHART Networks"): each epoch
// the network draws a fresh seeded permutation of the application
// slotframe's slot offsets and re-derives every node's schedule through it,
// so a reactive jammer's learned (slot-offset, channel-offset) histogram
// goes stale every epoch.
//
// Safety: the permutation is built from candidate transpositions, each
// validated through conflict_analysis before commit —
//   - bijectivity (is_slot_permutation) is maintained by construction and
//     asserted per epoch; applied network-wide it maps distinct offsets to
//     distinct offsets, preserving per-node conflict-freedom and the Eq. 4
//     cross-node uplink-slot uniqueness,
//   - route precedence (permutation_preserves_precedence): a child's uplink
//     TX must still be able to precede its forwarding parent's uplink TX
//     within one slotframe cycle wherever the base schedule ordered them.
// Rejected swaps are retried a bounded number of times with fresh draws;
// rejection counts are exported for the experiment metrics.
//
// Determinism: candidate draws come from hash_mix(seed, epoch, swap, retry),
// so the epoch permutation is a pure function of (seed, epoch, precedence
// edges) and runs stay reproducible at every shard/thread setting.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/conflict_analysis.h"

namespace digs {

struct SlotSwapperConfig {
  /// Application slotframe length the permutation ranges over.
  std::uint16_t frame_len = 151;
  /// Candidate transpositions attempted per epoch.
  std::uint32_t swaps_per_epoch = 48;
  /// Fresh draws per candidate before it is abandoned.
  std::uint32_t max_retries = 8;
  std::uint64_t seed = 1;
};

class SlotSwapper {
 public:
  explicit SlotSwapper(const SlotSwapperConfig& config);

  /// Builds epoch `epoch`'s permutation from scratch (identity +
  /// swaps_per_epoch validated transpositions) against the given base
  /// precedence edges, and returns it. The result stays valid until the
  /// next call.
  const std::vector<std::uint16_t>& advance_epoch(
      std::uint64_t epoch, const std::vector<PrecedenceEdge>& edges);

  [[nodiscard]] const std::vector<std::uint16_t>& permutation() const {
    return perm_;
  }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t swaps_applied() const { return applied_; }
  [[nodiscard]] std::uint64_t swaps_rejected() const { return rejected_; }

 private:
  SlotSwapperConfig config_;
  std::vector<std::uint16_t> perm_;
  std::uint64_t epochs_{0};
  std::uint64_t applied_{0};
  std::uint64_t rejected_{0};
};

}  // namespace digs
