// Small-buffer move-only callable for simulator events.
//
// The simulator fires millions of events per run; storing each callback in a
// std::function costs a heap allocation whenever the capture exceeds the
// implementation's tiny inline buffer (16 bytes on libstdc++ — two captured
// pointers already spill). EventFn keeps captures up to kInlineCapacity bytes
// inline in the event record itself and only boxes larger callables, so the
// recurring slot-engine and timer events never touch the allocator.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace digs {

class EventFn {
 public:
  /// Captures up to this many bytes live inline; larger callables are boxed
  /// on the heap. 48 bytes fit every capture list in the simulator (the
  /// common ones are one or two pointers plus a small index).
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for
                     // std::function at every schedule_* call site.
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineCapacity &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (storage_) Fn(std::forward<F>(fn));
      ops_ = &inline_ops<Fn>;
    } else {
      ::new (storage_) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &boxed_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(std::move(other)); }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(std::move(other));
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst from src, then destroys src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops inline_ops{
      [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
      [](void* dst, void* src) noexcept {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops boxed_ops{
      [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
      },
      [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};

  void move_from(EventFn&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_{nullptr};
};

}  // namespace digs
