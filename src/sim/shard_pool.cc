#include "sim/shard_pool.h"

namespace digs {

ShardPool::ShardPool(std::size_t extra_workers) {
  workers_.reserve(extra_workers);
  for (std::size_t i = 0; i < extra_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardPool::run(std::size_t tasks,
                    const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mutex_);
  fn_ = &fn;
  total_ = tasks;
  next_ = 0;
  pending_ = tasks;
  ++generation_;
  work_cv_.notify_all();
  // The caller participates: claim tasks like any worker, then wait on the
  // barrier for the ones other threads still hold.
  while (next_ < total_) {
    const std::size_t i = next_++;
    lock.unlock();
    fn(i);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
}

void ShardPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  std::uint64_t seen = 0;
  while (true) {
    work_cv_.wait(lock, [this, seen] {
      return stop_ || (generation_ != seen && fn_ != nullptr);
    });
    if (stop_) return;
    seen = generation_;
    const auto* fn = fn_;
    while (next_ < total_) {
      const std::size_t i = next_++;
      lock.unlock();
      (*fn)(i);
      lock.lock();
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace digs
