#include "sim/shard_pool.h"

#include "common/prof.h"

namespace digs {

namespace {

/// Spin iterations before a worker parks / between yields at a barrier.
/// Yield on spin-out so oversubscribed runs (shards*threads > cores, the
/// determinism matrix on small machines) stay live instead of burning a
/// quantum; regions are microseconds apart, so a parked worker's futex
/// round trip would otherwise dominate small slots.
constexpr int kSpinRounds = 4096;

}  // namespace

ShardPool::ShardPool(std::size_t extra_workers) {
  workers_.reserve(extra_workers);
  for (std::size_t i = 0; i < extra_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ShardPool::~ShardPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pairs with a parking worker's sleepers_ bump: either the worker saw
    // stop_ before waiting, or it is inside wait() and the notify below
    // reaches it.
    const std::lock_guard<std::mutex> lock(mutex_);
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardPool::run(std::size_t tasks,
                    const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (workers_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  fn_ = &fn;
  total_ = tasks;
  next_.store(0, std::memory_order_relaxed);
  remaining_.store(tasks, std::memory_order_relaxed);
  checked_out_.store(0, std::memory_order_relaxed);
  // Publish: workers read fn_/total_ only after observing the new
  // generation (acquire), so the plain writes above are ordered.
  generation_.fetch_add(1, std::memory_order_release);
  if (sleepers_.load(std::memory_order_relaxed) > 0) {
    // A sleeper either re-checks the generation under this same mutex and
    // returns to work, or is about to wait and will see the bump in the
    // predicate — no missed wakeup either way.
    const std::lock_guard<std::mutex> lock(mutex_);
    work_cv_.notify_all();
  }
  // The caller participates: claim tasks like any worker.
  std::size_t done_here = 0;
  while (true) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= total_) break;
    fn(i);
    ++done_here;
  }
  if (done_here > 0) {
    remaining_.fetch_sub(done_here, std::memory_order_release);
  }
  // Barrier: wait until (a) every task completed — the acquire pairs with
  // the workers' release decrements, making every shard's writes visible
  // to the post-barrier merge — and (b) every worker checked out of this
  // generation. (b) is what makes resetting next_ for the NEXT region
  // safe: without it, a worker delayed between observing this generation
  // and its first claim could consume a ticket of the following region
  // against this region's stale fn/total.
  const std::size_t workers = workers_.size();
  if (remaining_.load(std::memory_order_acquire) > 0 ||
      checked_out_.load(std::memory_order_acquire) < workers) {
    const bool pf = prof::enabled();
    const std::uint64_t t0 = pf ? prof::now_ns() : 0;
    int spins = 0;
    while (remaining_.load(std::memory_order_acquire) > 0 ||
           checked_out_.load(std::memory_order_acquire) < workers) {
      if (++spins >= kSpinRounds) {
        spins = 0;
        std::this_thread::yield();
      }
    }
    if (pf) prof::add(prof::kBarrierWait, prof::now_ns() - t0);
  }
  fn_ = nullptr;
}

void ShardPool::worker_loop() {
  std::uint64_t seen = 0;
  while (true) {
    // Wait for the next generation: spin (with yields), then park.
    std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen && !stop_.load(std::memory_order_acquire)) {
      const bool pf = prof::enabled();
      const std::uint64_t t0 = pf ? prof::now_ns() : 0;
      int spins = 0;
      while ((gen = generation_.load(std::memory_order_acquire)) == seen &&
             !stop_.load(std::memory_order_acquire)) {
        if (++spins >= kSpinRounds) {
          spins = 0;
          std::this_thread::yield();
          std::unique_lock<std::mutex> lock(mutex_);
          sleepers_.fetch_add(1, std::memory_order_relaxed);
          work_cv_.wait(lock, [this, seen] {
            return stop_.load(std::memory_order_relaxed) ||
                   generation_.load(std::memory_order_acquire) != seen;
          });
          sleepers_.fetch_sub(1, std::memory_order_relaxed);
        }
      }
      if (pf) prof::add(prof::kWorkerIdle, prof::now_ns() - t0);
    }
    if (stop_.load(std::memory_order_acquire)) return;
    seen = gen;
    const auto* fn = fn_;
    const std::size_t total = total_;
    std::size_t done = 0;
    while (true) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      (*fn)(i);
      ++done;
    }
    if (done > 0) remaining_.fetch_sub(done, std::memory_order_release);
    checked_out_.fetch_add(1, std::memory_order_release);
  }
}

}  // namespace digs
