// Minimal slot-synchronous worker pool for intra-trial sharding.
//
// Network resolves each busy slot's receptions in parallel across spatial
// shards: run(tasks, fn) invokes fn(0..tasks-1) across the pool's workers
// plus the calling thread, and returns only when every task finished — the
// per-slot barrier. Shards write to disjoint per-listener result slots and
// all merging happens on the caller after the barrier, so determinism never
// depends on scheduling.
//
// The pool is deliberately tiny (mutex + two condvars + a claim counter):
// a slot's fan-out is a few tasks a few thousand times per simulated
// second, so low dispatch latency matters more than work-stealing
// sophistication. With zero workers (DIGS_SHARDS=1) run() degenerates to an
// inline loop — today's exact serial behavior with no synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace digs {

class ShardPool {
 public:
  /// Spawns `extra_workers` threads (the caller is the +1st worker).
  explicit ShardPool(std::size_t extra_workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Runs fn(0), ..., fn(tasks - 1) across the workers and the calling
  /// thread; blocks until all of them completed. Tasks are claimed
  /// dynamically (load balancing across uneven shards). fn must not call
  /// run() reentrantly.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_{nullptr};
  std::size_t total_{0};
  std::size_t next_{0};
  std::size_t pending_{0};
  std::uint64_t generation_{0};
  bool stop_{false};
  std::vector<std::thread> workers_;
};

}  // namespace digs
