// Persistent slot-synchronous worker pool for intra-trial sharding.
//
// Network runs each slot's parallel phases (plan/gather, reception resolve,
// deliver, energy, wake refresh) as fork-join regions: run(tasks, fn)
// invokes fn(0..tasks-1) across the pool's workers plus the calling thread,
// and returns only when every task finished — the per-region barrier.
// Shards write to disjoint per-node state and per-shard defer buffers, and
// all ordered merging happens on the caller after the barrier, so
// determinism never depends on scheduling.
//
// A slot fans out a handful of tasks every few hundred microseconds of
// wall time, so dispatch latency dominates: work is published with one
// release store of a generation counter, tasks are claimed with an atomic
// fetch-add, and completion is a lock-free countdown the caller spins on.
// Workers spin briefly (yielding, so oversubscribed runs stay live) before
// parking on a condvar; the caller never parks — regions are short and the
// next one follows immediately. With zero workers run() degenerates to an
// inline loop — the exact serial behavior with no synchronization.
//
// The worker count is decoupled from the shard count (DIGS_SHARD_THREADS
// vs. DIGS_SHARDS): many cell-shards can load-balance over few cores via
// the dynamic claim order, which affects wall-clock only, never results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace digs {

class ShardPool {
 public:
  /// Spawns `extra_workers` threads (the caller is the +1st worker).
  explicit ShardPool(std::size_t extra_workers);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// Runs fn(0), ..., fn(tasks - 1) across the workers and the calling
  /// thread; blocks until all of them completed. Tasks are claimed
  /// dynamically (load balancing across uneven shards). fn must not call
  /// run() reentrantly. With the DIGS_PROF profiler on, the caller's wait
  /// at the completion barrier is charged to prof::kBarrierWait and worker
  /// out-of-work time to prof::kWorkerIdle.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t num_workers() const { return workers_.size(); }

 private:
  void worker_loop();

  // Work descriptor, published by the release store of generation_ and read
  // by workers after their acquire load: fn_/total_ are plain because they
  // are written only before the publish and read only after it.
  const std::function<void(std::size_t)>* fn_{nullptr};
  std::size_t total_{0};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::size_t> remaining_{0};
  // Workers that finished claiming for the current generation; run()
  // returns only when all checked out, so the next region's counter reset
  // can never race a straggler's stale claim.
  std::atomic<std::size_t> checked_out_{0};
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<bool> stop_{false};

  // Park/unpark (slow path only): a worker that spun out takes the mutex,
  // bumps sleepers_, and waits; run() only touches the mutex when a sleeper
  // might miss the generation bump.
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::atomic<int> sleepers_{0};

  std::vector<std::thread> workers_;
};

}  // namespace digs
