#include "sim/simulator.h"

#include <utility>

namespace digs {

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->live_.contains(id_);
}

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->live_.erase(id_);
  sim_ = nullptr;
  id_ = 0;
}

EventHandle Simulator::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  heap_.push_back(Event{at, next_seq_++, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  live_.insert(id);
  return EventHandle{this, id};
}

void Simulator::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!fires_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && fires_before(heap_[right], heap_[left])) best = right;
    if (!fires_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Simulator::Event Simulator::pop_min() {
  Event min = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return min;
}

bool Simulator::has_pending_at(SimTime t) {
  while (!heap_.empty() && !live_.contains(heap_.front().id)) {
    (void)pop_min();
  }
  return !heap_.empty() && heap_.front().at == t;
}

void Simulator::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    Event ev = pop_min();
    if (live_.erase(ev.id) == 0) continue;  // was cancelled
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!heap_.empty()) {
    run_until(heap_.front().at);
  }
}

void PeriodicTimer::start() {
  handle_.cancel();
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicTimer::fire() {
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
  fn_();
}

}  // namespace digs
