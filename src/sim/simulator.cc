#include "sim/simulator.h"

namespace digs {

bool EventHandle::pending() const {
  return sim_ != nullptr && sim_->live_.contains(id_);
}

void EventHandle::cancel() {
  if (sim_ != nullptr) sim_->live_.erase(id_);
  sim_ = nullptr;
  id_ = 0;
}

EventHandle Simulator::schedule_at(SimTime at, std::function<void()> fn) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_++;
  queue_.push(Event{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return EventHandle{this, id};
}

void Simulator::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().at <= until) {
    // priority_queue::top() is const; moving out is safe because we pop
    // immediately and never touch the moved-from element.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (live_.erase(ev.id) == 0) continue;  // was cancelled
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!queue_.empty()) {
    run_until(queue_.top().at);
  }
}

void PeriodicTimer::start() {
  handle_.cancel();
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicTimer::fire() {
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
  fn_();
}

}  // namespace digs
