#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace digs {

namespace {

// The calling thread's open defer window, if any. Thread-local (not
// per-Simulator): a thread runs at most one simulation at a time, and the
// window only spans one fork-join region of one slot.
thread_local Simulator::DeferBuffer* t_defer = nullptr;

}  // namespace

void Simulator::set_defer_buffer(DeferBuffer* buf) { t_defer = buf; }

bool EventHandle::pending() const {
  if (sim_ == nullptr) return false;
  if (Simulator::DeferBuffer* buf = t_defer; buf != nullptr) {
    // Events of a node live on that node's shard, so every not-yet-replayed
    // op touching this id is in *this* thread's buffer; the latest one wins.
    for (auto it = buf->ops_.rbegin(); it != buf->ops_.rend(); ++it) {
      if (it->id == id_) return !it->cancel;
    }
  }
  return sim_->live_.contains(id_);
}

void EventHandle::cancel() {
  if (sim_ != nullptr) {
    if (Simulator::DeferBuffer* buf = t_defer; buf != nullptr) {
      buf->ops_.push_back(Simulator::DeferBuffer::Op{
          buf->next_key(), SimTime{}, id_, EventFn{}, /*cancel=*/true});
    } else {
      sim_->live_.erase(id_);
    }
  }
  sim_ = nullptr;
  id_ = 0;
}

EventHandle Simulator::schedule_at(SimTime at, EventFn fn) {
  if (at < now_) at = now_;
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  if (DeferBuffer* buf = t_defer; buf != nullptr) {
    buf->ops_.push_back(DeferBuffer::Op{buf->next_key(), at, id,
                                        std::move(fn), /*cancel=*/false});
    return EventHandle{this, id};
  }
  heap_.push_back(Event{at, next_seq_++, id, std::move(fn)});
  sift_up(heap_.size() - 1);
  live_.insert(id);
  return EventHandle{this, id};
}

void Simulator::replay_deferred(DeferBuffer* bufs, std::size_t n) {
  // Gather all shards' ops and sort into serial program order. Stable so
  // same-key ops (impossible by construction, but cheap insurance) keep
  // buffer order.
  replay_scratch_.clear();
  for (std::size_t s = 0; s < n; ++s) {
    for (auto& op : bufs[s].ops_) replay_scratch_.push_back(&op);
  }
  std::stable_sort(replay_scratch_.begin(), replay_scratch_.end(),
                   [](const DeferBuffer::Op* a, const DeferBuffer::Op* b) {
                     return a->key < b->key;
                   });
  for (DeferBuffer::Op* op : replay_scratch_) {
    if (op->cancel) {
      live_.erase(op->id);  // heap tombstone, exactly as a serial cancel
    } else {
      heap_.push_back(Event{op->at, next_seq_++, op->id, std::move(op->fn)});
      sift_up(heap_.size() - 1);
      live_.insert(op->id);
    }
  }
  replay_scratch_.clear();
  for (std::size_t s = 0; s < n; ++s) bufs[s].ops_.clear();
}

void Simulator::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!fires_before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void Simulator::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * i + 1;
    if (left >= n) break;
    std::size_t best = left;
    const std::size_t right = left + 1;
    if (right < n && fires_before(heap_[right], heap_[left])) best = right;
    if (!fires_before(heap_[best], heap_[i])) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Simulator::Event Simulator::pop_min() {
  Event min = std::move(heap_.front());
  heap_.front() = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
  return min;
}

bool Simulator::has_pending_at(SimTime t) {
  while (!heap_.empty() && !live_.contains(heap_.front().id)) {
    (void)pop_min();
  }
  return !heap_.empty() && heap_.front().at == t;
}

void Simulator::run_until(SimTime until) {
  while (!heap_.empty() && heap_.front().at <= until) {
    Event ev = pop_min();
    if (live_.erase(ev.id) == 0) continue;  // was cancelled
    now_ = ev.at;
    ++events_executed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!heap_.empty()) {
    run_until(heap_.front().at);
  }
}

void PeriodicTimer::start() {
  handle_.cancel();
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
}

void PeriodicTimer::fire() {
  handle_ = sim_.schedule_after(period_, [this] { fire(); });
  fn_();
}

}  // namespace digs
