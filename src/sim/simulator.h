// Discrete-event simulation kernel.
//
// A Simulator owns a binary min-heap of timestamped events. Events scheduled
// for the same instant fire in scheduling order (FIFO via a sequence number),
// which keeps runs deterministic. Events can be cancelled through the handle
// returned at scheduling time.
//
// The heap is owned directly (not a std::priority_queue) so the executing
// event can be moved out of the structure safely — priority_queue::top() is
// const and forcing a move out of it is undefined-behaviour-adjacent.
// Callbacks are EventFn (small-buffer, move-only), so recurring events — the
// slot engine, periodic timers, flow generators — pay no heap allocation.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "sim/event_fn.h"

namespace digs {

class Simulator;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles do not own the event; cancelling after the
/// event fired is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

  /// Cancels the event if still pending.
  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint64_t id) : sim_(sim), id_(id) {}

  Simulator* sim_{nullptr};
  std::uint64_t id_{0};
};

/// Single-threaded discrete-event simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; times in the past are clamped to
  /// now (fires immediately on the next run step).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` after the given delay (>= 0).
  EventHandle schedule_after(SimDuration delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `until` is reached; the clock
  /// advances to `until` even if the queue drains earlier.
  void run_until(SimTime until);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events executed so far (for diagnostics/benchmarks).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently pending (scheduled, not fired, not
  /// cancelled).
  [[nodiscard]] std::size_t pending_events() const { return live_.size(); }

  /// True if a live event is queued for exactly time `t`. Used by the slot
  /// engine to decide whether it must yield to same-instant events to keep
  /// FIFO order identical to the polled loop. Lazily discards cancelled
  /// tombstones from the top of the heap (observable behaviour unchanged —
  /// run_until skips them anyway).
  [[nodiscard]] bool has_pending_at(SimTime t);

 private:
  friend class EventHandle;

  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    EventFn fn;
  };

  /// True if `a` fires strictly before `b`.
  static bool fires_before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes and returns the earliest event (heap must be non-empty).
  Event pop_min();

  SimTime now_{};
  std::uint64_t next_seq_{0};
  std::uint64_t next_id_{1};
  std::uint64_t events_executed_{0};
  // Binary min-heap ordered by fires_before.
  std::vector<Event> heap_;
  // Ids of events that are queued and neither fired nor cancelled.
  std::unordered_set<std::uint64_t> live_;
};

/// Repeating timer built on the simulator; fires every `period` until
/// stopped. Restartable. Non-copyable (the callback captures `this`).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after one period.
  void start();
  void stop() { handle_.cancel(); }
  [[nodiscard]] bool running() const { return handle_.pending(); }

  void set_period(SimDuration period) { period_ = period; }
  [[nodiscard]] SimDuration period() const { return period_; }

 private:
  void fire();

  Simulator& sim_;
  SimDuration period_;
  EventFn fn_;
  EventHandle handle_;
};

}  // namespace digs
