// Discrete-event simulation kernel.
//
// A Simulator owns a binary min-heap of timestamped events. Events scheduled
// for the same instant fire in scheduling order (FIFO via a sequence number),
// which keeps runs deterministic. Events can be cancelled through the handle
// returned at scheduling time.
//
// The heap is owned directly (not a std::priority_queue) so the executing
// event can be moved out of the structure safely — priority_queue::top() is
// const and forcing a move out of it is undefined-behaviour-adjacent.
// Callbacks are EventFn (small-buffer, move-only), so recurring events — the
// slot engine, periodic timers, flow generators — pay no heap allocation.
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/time.h"
#include "sim/event_fn.h"

namespace digs {

class Simulator;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Handles do not own the event; cancelling after the
/// event fired is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

  /// Cancels the event if still pending.
  void cancel();

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint64_t id) : sim_(sim), id_(id) {}

  Simulator* sim_{nullptr};
  std::uint64_t id_{0};
};

/// Single-threaded discrete-event simulator — with one concession to the
/// parallel slot pipeline: a *defer window*. While a thread has a
/// DeferBuffer installed (Simulator::set_defer_buffer), schedule_at() and
/// EventHandle::cancel() do not touch the heap or the live-id set; they
/// record the operation in the buffer under a caller-supplied ordering key
/// and the caller replays all buffers after the fork-join barrier, in
/// ascending key order — reproducing the exact event sequence (and seq
/// numbers) the serial execution would have produced. pending() answers
/// from the thread's own buffer first (an id belongs to exactly one node,
/// and a node to exactly one shard, so the local view is complete), then
/// from the live set, which is read-only during a window because cancels
/// are deferred too. Event *ids* are allocated from an atomic counter, so
/// their values may differ between thread counts — harmless: ordering uses
/// only (at, seq), and the id set is never iterated.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Per-shard buffer of deferred schedule/cancel operations recorded
  /// during one parallel region. Keys are (site << 16 | sub): the caller
  /// sets the site — the op's global serial-order rank (reception index,
  /// transmitter index, participant rank...) — before invoking node code,
  /// and each recorded op takes the next sub-counter value. Sites ascend
  /// within a shard and never collide across shards, so a stable sort over
  /// all buffers is exactly the serial program order.
  class DeferBuffer {
   public:
    /// Starts a new op site; resets the intra-site sub-counter.
    void set_site(std::uint64_t site) {
      site_ = site;
      sub_ = 0;
    }
    /// Consumes the next key of the current site. Callers with their own
    /// deferred side-buffers (e.g. stat records) draw keys from the same
    /// sequence so their replay interleaves in serial order too.
    [[nodiscard]] std::uint64_t next_key() { return (site_ << 16) | sub_++; }
    [[nodiscard]] bool empty() const { return ops_.empty(); }
    void clear() { ops_.clear(); }

   private:
    friend class Simulator;
    friend class EventHandle;
    struct Op {
      std::uint64_t key;
      SimTime at;       // schedule ops only
      std::uint64_t id;
      EventFn fn;       // empty for cancels
      bool cancel{false};
    };

    std::vector<Op> ops_;
    std::uint64_t site_{0};
    std::uint64_t sub_{0};
  };

  /// Installs `buf` as the calling thread's defer sink (nullptr closes the
  /// window for this thread). Only the slot pipeline's fork-join regions
  /// use this; everything else runs with no buffer installed and sees the
  /// plain single-threaded behavior.
  static void set_defer_buffer(DeferBuffer* buf);

  /// Applies every deferred op from `bufs[0..n)` in ascending key order:
  /// schedules enter the heap with freshly assigned seq numbers (the same
  /// values the serial execution would have assigned — no other schedule
  /// can interleave) and cancels erase from the live set (leaving the heap
  /// tombstone a serial cancel would leave). Clears the buffers.
  void replay_deferred(DeferBuffer* bufs, std::size_t n);

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `at`; times in the past are clamped to
  /// now (fires immediately on the next run step).
  EventHandle schedule_at(SimTime at, EventFn fn);

  /// Schedules `fn` after the given delay (>= 0).
  EventHandle schedule_after(SimDuration delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains or `until` is reached; the clock
  /// advances to `until` even if the queue drains earlier.
  void run_until(SimTime until);

  /// Runs until the event queue is empty.
  void run();

  /// Number of events executed so far (for diagnostics/benchmarks).
  [[nodiscard]] std::uint64_t events_executed() const {
    return events_executed_;
  }

  /// Number of events currently pending (scheduled, not fired, not
  /// cancelled).
  [[nodiscard]] std::size_t pending_events() const { return live_.size(); }

  /// True if a live event is queued for exactly time `t`. Used by the slot
  /// engine to decide whether it must yield to same-instant events to keep
  /// FIFO order identical to the polled loop. Lazily discards cancelled
  /// tombstones from the top of the heap (observable behaviour unchanged —
  /// run_until skips them anyway).
  [[nodiscard]] bool has_pending_at(SimTime t);

 private:
  friend class EventHandle;

  struct Event {
    SimTime at;
    std::uint64_t seq;
    std::uint64_t id;
    EventFn fn;
  };

  /// True if `a` fires strictly before `b`.
  static bool fires_before(const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  /// Removes and returns the earliest event (heap must be non-empty).
  Event pop_min();

  SimTime now_{};
  std::uint64_t next_seq_{0};
  // Atomic so deferred schedules can mint ids inside parallel regions; the
  // *values* handed out may then depend on thread interleaving, which is
  // fine — ids are opaque (never ordered or iterated), only seq orders ties.
  std::atomic<std::uint64_t> next_id_{1};
  std::uint64_t events_executed_{0};
  // Binary min-heap ordered by fires_before.
  std::vector<Event> heap_;
  // Ids of events that are queued and neither fired nor cancelled.
  std::unordered_set<std::uint64_t> live_;
  // Reused by replay_deferred (pointers into the shard buffers).
  std::vector<DeferBuffer::Op*> replay_scratch_;
};

/// Repeating timer built on the simulator; fires every `period` until
/// stopped. Restartable. Non-copyable (the callback captures `this`).
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, SimDuration period, EventFn fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Starts (or restarts) the timer; first firing after one period.
  void start();
  void stop() { handle_.cancel(); }
  [[nodiscard]] bool running() const { return handle_.pending(); }

  void set_period(SimDuration period) { period_ = period; }
  [[nodiscard]] SimDuration period() const { return period_; }

 private:
  void fire();

  Simulator& sim_;
  SimDuration period_;
  EventFn fn_;
  EventHandle handle_;
};

}  // namespace digs
