#include "stats/flow_stats.h"

namespace digs {

PacketRecord* FlowRecord::find(std::uint32_t seq) {
  // Packets are appended in seq order; direct index when dense.
  if (seq < packets.size() && packets[seq].seq == seq) return &packets[seq];
  for (auto& packet : packets) {
    if (packet.seq == seq) return &packet;
  }
  return nullptr;
}

const PacketRecord* FlowRecord::find(std::uint32_t seq) const {
  return const_cast<FlowRecord*>(this)->find(seq);
}

void FlowStatsCollector::register_flow(FlowId flow, NodeId source) {
  if (index_.contains(flow.value)) return;
  index_[flow.value] = flows_.size();
  FlowRecord record;
  record.id = flow;
  record.source = source;
  flows_.push_back(std::move(record));
}

FlowRecord* FlowStatsCollector::get(FlowId flow) {
  const auto it = index_.find(flow.value);
  return it == index_.end() ? nullptr : &flows_[it->second];
}

const FlowRecord* FlowStatsCollector::flow(FlowId id) const {
  const auto it = index_.find(id.value);
  return it == index_.end() ? nullptr : &flows_[it->second];
}

void FlowStatsCollector::on_generated(FlowId flow, std::uint32_t seq,
                                      SimTime now) {
  FlowRecord* record = get(flow);
  if (record == nullptr) return;
  PacketRecord packet;
  packet.seq = seq;
  packet.generated = now;
  record->packets.push_back(packet);
}

void FlowStatsCollector::on_delivered(FlowId flow, std::uint32_t seq,
                                      SimTime now) {
  FlowRecord* record = get(flow);
  if (record == nullptr) return;
  PacketRecord* packet = record->find(seq);
  if (packet == nullptr || packet->received()) return;  // duplicate
  packet->delivered = now;
}

void FlowStatsCollector::on_dropped(FlowId flow, std::uint32_t seq,
                                    SimTime now, DropReason reason) {
  (void)now;
  FlowRecord* record = get(flow);
  if (record == nullptr) return;
  // A drop on one path is not a loss if another copy made it through.
  PacketRecord* packet = record->find(seq);
  if (packet == nullptr || packet->received()) return;
  if (!packet->dropped) packet->drop_reason = reason;
  packet->dropped = true;
}

double FlowStatsCollector::pdr(FlowId flow, SimTime from, SimTime to) const {
  const FlowRecord* record = this->flow(flow);
  if (record == nullptr) return 0.0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  for (const PacketRecord& packet : record->packets) {
    if (packet.generated < from || packet.generated >= to) continue;
    ++generated;
    if (packet.received()) ++delivered;
  }
  if (generated == 0) return 1.0;
  return static_cast<double>(delivered) / static_cast<double>(generated);
}

double FlowStatsCollector::overall_pdr(SimTime from, SimTime to) const {
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  for (const FlowRecord& record : flows_) {
    for (const PacketRecord& packet : record.packets) {
      if (packet.generated < from || packet.generated >= to) continue;
      ++generated;
      if (packet.received()) ++delivered;
    }
  }
  if (generated == 0) return 1.0;
  return static_cast<double>(delivered) / static_cast<double>(generated);
}

std::vector<double> FlowStatsCollector::latencies_ms(SimTime from,
                                                     SimTime to) const {
  std::vector<double> out;
  for (const FlowRecord& record : flows_) {
    for (const PacketRecord& packet : record.packets) {
      if (packet.generated < from || packet.generated >= to) continue;
      if (packet.received()) out.push_back(packet.latency().millis());
    }
  }
  return out;
}

bool FlowStatsCollector::was_delivered(FlowId flow, std::uint32_t seq) const {
  const FlowRecord* record = this->flow(flow);
  if (record == nullptr) return false;
  const PacketRecord* packet = record->find(seq);
  return packet != nullptr && packet->received();
}

std::optional<SimDuration> FlowStatsCollector::outage_after(
    FlowId flow, SimTime event) const {
  const FlowRecord* record = this->flow(flow);
  if (record == nullptr) return std::nullopt;

  std::optional<SimTime> outage_start;
  std::optional<SimDuration> longest;
  for (const PacketRecord& packet : record->packets) {
    if (packet.generated < event) continue;
    if (!packet.received()) {
      if (!outage_start) outage_start = packet.generated;
      continue;
    }
    if (outage_start) {
      const SimDuration outage = *packet.delivered - *outage_start;
      if (!longest || outage > *longest) longest = outage;
      outage_start.reset();
    }
  }
  // An outage still open at the end of the trace counts to the last
  // generated packet (the flow never recovered).
  if (outage_start && !record->packets.empty()) {
    const SimDuration outage =
        record->packets.back().generated - *outage_start;
    if (outage.us > 0 && (!longest || outage > *longest)) longest = outage;
  }
  return longest;
}

std::uint64_t FlowStatsCollector::total_generated() const {
  std::uint64_t n = 0;
  for (const FlowRecord& record : flows_) n += record.packets.size();
  return n;
}

std::uint64_t FlowStatsCollector::total_delivered() const {
  std::uint64_t n = 0;
  for (const FlowRecord& record : flows_) {
    for (const PacketRecord& packet : record.packets) {
      if (packet.received()) ++n;
    }
  }
  return n;
}

std::uint64_t FlowStatsCollector::total_dropped() const {
  std::uint64_t n = 0;
  for (const FlowRecord& record : flows_) {
    for (const PacketRecord& packet : record.packets) {
      if (packet.dropped && !packet.received()) ++n;
    }
  }
  return n;
}

std::uint64_t FlowStatsCollector::dropped_by(DropReason reason) const {
  std::uint64_t n = 0;
  for (const FlowRecord& record : flows_) {
    for (const PacketRecord& packet : record.packets) {
      if (packet.dropped && !packet.received() &&
          packet.drop_reason == reason) {
        ++n;
      }
    }
  }
  return n;
}

}  // namespace digs
