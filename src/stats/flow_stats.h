// End-to-end flow accounting: per-packet generation / delivery / drop
// records, from which every evaluation metric in the paper derives —
// PDR (reliability), latency, repair time (outage after a disturbance),
// and per-packet micro-benchmarks (Figs. 9(f), 11(b)).
//
// Deliveries are de-duplicated per (flow, seq): graph routing can deliver a
// packet over both the primary and the backup path, or a lost ACK can cause
// a duplicate; the first arrival counts, as at a WirelessHART gateway.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "common/types.h"

namespace digs {

struct PacketRecord {
  std::uint32_t seq{0};
  SimTime generated;
  std::optional<SimTime> delivered;
  bool dropped{false};
  /// Why the packet was first declared lost (meaningful only when
  /// `dropped`); later copies dropped for other reasons do not overwrite.
  DropReason drop_reason{DropReason::kOther};

  [[nodiscard]] bool received() const { return delivered.has_value(); }
  [[nodiscard]] SimDuration latency() const {
    return received() ? *delivered - generated : SimDuration{0};
  }
};

struct FlowRecord {
  FlowId id;
  NodeId source;
  std::vector<PacketRecord> packets;

  [[nodiscard]] PacketRecord* find(std::uint32_t seq);
  [[nodiscard]] const PacketRecord* find(std::uint32_t seq) const;
};

class FlowStatsCollector {
 public:
  void register_flow(FlowId flow, NodeId source);

  void on_generated(FlowId flow, std::uint32_t seq, SimTime now);
  /// Records a delivery; duplicates (same flow+seq) are ignored.
  void on_delivered(FlowId flow, std::uint32_t seq, SimTime now);
  void on_dropped(FlowId flow, std::uint32_t seq, SimTime now,
                  DropReason reason = DropReason::kOther);

  [[nodiscard]] const std::vector<FlowRecord>& flows() const { return flows_; }
  [[nodiscard]] const FlowRecord* flow(FlowId id) const;

  /// PDR of one flow, counting packets generated in [from, to).
  [[nodiscard]] double pdr(FlowId flow, SimTime from = SimTime{0},
                           SimTime to = SimTime{INT64_MAX}) const;
  /// PDR over all flows (packet-weighted).
  [[nodiscard]] double overall_pdr(SimTime from = SimTime{0},
                                   SimTime to = SimTime{INT64_MAX}) const;

  /// Latencies (ms) of delivered packets across all flows.
  [[nodiscard]] std::vector<double> latencies_ms(
      SimTime from = SimTime{0}, SimTime to = SimTime{INT64_MAX}) const;

  /// True if the packet was delivered (for micro-benchmarks).
  [[nodiscard]] bool was_delivered(FlowId flow, std::uint32_t seq) const;

  /// Longest outage of a flow starting at or after `event`: the time from
  /// the generation of the first lost packet to the delivery time of the
  /// next delivered packet. nullopt if no packet was lost after `event`.
  /// Used for repair-time measurement (paper Fig. 4).
  [[nodiscard]] std::optional<SimDuration> outage_after(FlowId flow,
                                                        SimTime event) const;

  [[nodiscard]] std::uint64_t total_generated() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  [[nodiscard]] std::uint64_t total_dropped() const;
  /// Effectively-lost packets (dropped, never delivered) whose *first* drop
  /// carried this reason. Sums to total_dropped() across all reasons.
  [[nodiscard]] std::uint64_t dropped_by(DropReason reason) const;

 private:
  FlowRecord* get(FlowId flow);

  std::vector<FlowRecord> flows_;
  std::unordered_map<std::uint16_t, std::size_t> index_;
};

}  // namespace digs
