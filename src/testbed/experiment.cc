#include "testbed/experiment.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "common/stats.h"
#include "core/invariant_monitor.h"

namespace digs {

std::vector<double> repair_times_after(const FlowStatsCollector& stats,
                                       SimTime event) {
  std::vector<double> out;
  for (const FlowRecord& flow : stats.flows()) {
    const auto outage = stats.outage_after(flow.id, event);
    if (outage) out.push_back(outage->seconds());
  }
  return out;
}

std::vector<double> repair_window_pdrs(const FlowStatsCollector& stats,
                                       SimTime event, SimDuration window) {
  std::vector<double> out;
  out.reserve(stats.flows().size());
  for (const FlowRecord& flow : stats.flows()) {
    out.push_back(stats.pdr(flow.id, event, event + window));
  }
  return out;
}

NodeConfig ExperimentRunner::default_node_config() {
  NodeConfig config;
  // Paper Section VII: slotframe lengths 557 / 47 / 151 for all
  // experiments; 3 attempts per packet per cycle (WirelessHART rule).
  config.scheduler.sync_slotframe_len = 557;
  config.scheduler.routing_slotframe_len = 47;
  config.scheduler.app_slotframe_len = 151;
  config.scheduler.attempts = 3;
  return config;
}

MediumConfig ExperimentRunner::default_medium_config() {
  return MediumConfig{};
}

ExperimentRunner::ExperimentRunner(const TestbedLayout& layout,
                                   const ExperimentConfig& config)
    : layout_(layout), config_(config) {
  NetworkConfig net;
  net.suite = config.suite;
  net.num_access_points = layout.num_access_points;
  net.seed = config.seed;
  net.node = default_node_config();
  net.node.scheduler = config.scheduler;
  // Per-packet persistence: DiGS offers `attempts` tries per 151-slot
  // cycle; Orchestra one try per (shorter) unicast cycle. Both get
  // max_delivery_cycles of their own cycles, bounded by Contiki TSCH's
  // 8-retransmission default for the Orchestra baseline.
  net.node.mac.max_data_transmissions =
      config.suite == ProtocolSuite::kDigs
          ? config.scheduler.attempts * config.max_delivery_cycles
          : std::min(config.max_delivery_cycles, 8);
  net.node.mac.tx_power_dbm = layout.tx_power_dbm;
  if (config.trickle.has_value()) {
    net.node.digs_routing.trickle = *config.trickle;
    net.node.rpl_routing.trickle = *config.trickle;
  }
  net.node.digs_routing.use_weighted_etx = config.use_weighted_etx;
  net.node.mac.oscillator.ppm = config.clock_ppm;
  net.node.mac.oscillator.walk_ppm = config.clock_walk_ppm;
  net.node.orchestra_sender_based = config.orchestra_sender_based;
  net.medium = default_medium_config();
  net.medium.propagation.path_loss_exponent = layout.path_loss_exponent;
  if (config.medium_flat_table_max_nodes.has_value()) {
    net.medium.flat_table_max_nodes = *config.medium_flat_table_max_nodes;
  }
  net.node.etx.admission_rss_dbm = layout.admission_rss_dbm;
  net.use_slot_engine = config.use_slot_engine;
  net.monitor_invariants = config.monitor_invariants;
  net.shards = config.shards;
  net.shard_threads = config.shard_threads;
  net.randomization.enabled = config.randomize_schedule;
  net.randomization.epoch = config.randomize_epoch;
  net.randomization.seed = config.randomize_seed;
  net.randomization.swaps_per_epoch = config.randomize_swaps;
  net.randomization.max_retries = config.randomize_max_retries;
  if (config.enable_tunnels || config.control_loops > 0) {
    // Tunnels source-route over dedicated cells, but their table-routed
    // fallback (and the control workload's actuation flows) need the
    // downlink extension's destination advertisements.
    net.node.enable_downlink = true;
  }
  net.node.enable_tunnels = config.enable_tunnels;
  net.tunnel_replication = config.tunnel_replication;

  network_ = std::make_unique<Network>(net, layout.positions);

  if (config.control_loops > 0) {
    PlantConfig plant;
    plant.period = config.control_period;
    plant.deadline = config.control_deadline;
    plant.seed = hash_mix(config.seed, 0x91D5);
    plant_ = std::make_unique<PlantWorkload>(
        *network_, plant,
        pick_sources(layout, config.control_loops,
                     hash_mix(config.seed, 0xC7A1)));
  }

  // Flows: sources drawn deterministically from the experiment seed,
  // periods staggered so sources do not phase-align.
  const auto sources =
      pick_sources(layout, config.num_flows, hash_mix(config.seed, 0xF10));
  Rng stagger_rng(hash_mix(config.seed, 0x57A6));
  for (std::size_t i = 0; i < sources.size(); ++i) {
    FlowSpec flow;
    flow.id = FlowId{static_cast<std::uint16_t>(i)};
    flow.source = sources[i];
    flow.period = config.flow_period;
    flow.start_offset =
        config.warmup +
        SimDuration{static_cast<std::int64_t>(
            stagger_rng.uniform(0.0, config.flow_period.seconds()) * 1e6)};
    network_->add_flow(flow);
  }

  // Jammers.
  if (config.num_jammers > 0 && config.jammer_start_after.has_value()) {
    const SimTime jam_start =
        SimTime{0} + config.warmup + *config.jammer_start_after;
    const std::size_t count =
        std::min(config.num_jammers, layout.jammer_positions.size());
    for (std::size_t j = 0; j < count; ++j) {
      JammerConfig jammer;
      jammer.position = layout.jammer_positions[j];
      jammer.tx_power_dbm = config.jammer_tx_power_dbm;
      jammer.pattern = config.jammer_pattern;
      jammer.wifi_block_start = static_cast<int>((j * 4) % 13);
      jammer.start = jam_start;
      jammer.on_duration = config.jammer_on;
      jammer.off_duration = config.jammer_off;
      network_->add_jammer(jammer);
    }
  }

  // Reactive jammers: same layout positions and start offset as the
  // oblivious ones, so reactive-vs-oblivious comparisons differ only in
  // the targeting policy.
  if (config.num_reactive_jammers > 0 &&
      config.jammer_start_after.has_value()) {
    const SimTime jam_start =
        SimTime{0} + config.warmup + *config.jammer_start_after;
    const std::size_t count =
        std::min(config.num_reactive_jammers, layout.jammer_positions.size());
    for (std::size_t j = 0; j < count; ++j) {
      ReactiveJammerConfig jammer;
      jammer.position = layout.jammer_positions[j];
      jammer.tx_power_dbm = config.jammer_tx_power_dbm;
      jammer.sniff_threshold_dbm = config.reactive_sniff_dbm;
      jammer.period_slots = config.reactive_period_slots;
      jammer.epoch_slots = config.reactive_epoch_slots;
      jammer.top_k = config.reactive_top_k;
      jammer.start = jam_start;
      network_->add_reactive_jammer(jammer);
    }
  }
}

ExperimentResult ExperimentRunner::run() {
  Network& net = *network_;
  net.start();

  // Failure injections (offsets from network start).
  for (const FailureEvent& failure : config_.failures) {
    net.sim().schedule_after(failure.at, [&net, failure] {
      net.set_node_alive(failure.node, failure.alive);
    });
  }

  // Control loops start with the measurement traffic.
  if (plant_) plant_->start(config_.warmup);

  // Tunnel-relay crash: the victim is picked at fire time from the live
  // interior of the first tunnel destination's primary path (deterministic
  // — the tunnel state at that instant is a pure function of the run), so
  // the crash severs the path actually carrying the primary copies.
  if (config_.crash_tunnel_relay_after.has_value()) {
    const SimDuration downtime = config_.crash_tunnel_relay_downtime;
    const int cycles = std::max(1, config_.crash_tunnel_relay_cycles);
    for (int strike = 0; strike < cycles; ++strike) {
      net.sim().schedule_after(
          config_.warmup + *config_.crash_tunnel_relay_after +
              2 * strike * downtime,
          [&net, downtime] {
            const TunnelManager* tunnels = net.tunnel_manager();
            if (tunnels == nullptr) return;
            // Deepest primary path wins: a destination adjacent to its AP
            // has no interior relay to kill, so scanning (rather than taking
            // the first destination) keeps the fault meaningful on every
            // topology the flow picker produces.
            const TunnelPair* victim_pair = nullptr;
            for (const NodeId dest : tunnels->destinations()) {
              const TunnelPair* pair = tunnels->pair(dest);
              if (pair == nullptr || pair->primary.hops.size() < 3) continue;
              if (victim_pair == nullptr ||
                  pair->primary.hops.size() >
                      victim_pair->primary.hops.size()) {
                victim_pair = pair;
              }
            }
            if (victim_pair == nullptr) return;
            const NodeId relay =
                victim_pair->primary.hops[victim_pair->primary.hops.size() /
                                          2];
            net.set_node_alive(relay, false);
            net.sim().schedule_after(downtime, [&net, relay] {
              net.set_node_alive(relay, true);
            });
          });
    }
  }

  // Warmup: let the mesh form.
  net.run_for(config_.warmup);
  measure_start_ = net.sim().now();
  net.reset_energy();

  // Fault script: installed now, so event offsets are relative to warmup
  // end (faults hit a converged network, like the paper's disturbances).
  if (!config_.faults.empty()) config_.faults.install(net);

  net.run_for(config_.duration + config_.stat_drain);
  // Packets *generated* within the window count; the drain time only gives
  // the last generations a chance to arrive.
  const SimTime measure_end = measure_start_ + config_.duration;

  ExperimentResult result;
  const FlowStatsCollector& stats = net.stats();
  result.overall_pdr = stats.overall_pdr(measure_start_, measure_end);
  for (const FlowRecord& flow : stats.flows()) {
    result.flow_ids.push_back(flow.id);
    result.flow_pdrs.push_back(stats.pdr(flow.id, measure_start_,
                                         measure_end));
  }
  result.latencies_ms = stats.latencies_ms(measure_start_, measure_end);

  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  for (const FlowRecord& flow : stats.flows()) {
    for (const PacketRecord& packet : flow.packets) {
      if (packet.generated < measure_start_ ||
          packet.generated >= measure_end) {
        continue;
      }
      ++generated;
      if (packet.received()) ++delivered;
    }
  }
  result.generated = generated;
  result.delivered = delivered;

  const double energy_mj = net.total_energy_mj();
  result.energy_per_delivered_mj =
      delivered > 0 ? energy_mj / static_cast<double>(delivered) : 0.0;
  result.duty_cycle = net.mean_duty_cycle();
  result.duty_cycle_per_delivered =
      delivered > 0
          ? 100.0 * result.duty_cycle / static_cast<double>(delivered) * 100.0
          : 0.0;

  // Repair times: longest outage after the earliest disturbance (jammer
  // start, first failure, or first fault-script event), per flow that lost
  // packets.
  std::optional<SimTime> disturbance;
  if ((config_.num_jammers > 0 || config_.num_reactive_jammers > 0) &&
      config_.jammer_start_after.has_value()) {
    disturbance = SimTime{0} + config_.warmup + *config_.jammer_start_after;
  }
  for (const FailureEvent& failure : config_.failures) {
    const SimTime at = SimTime{0} + failure.at;
    if (!disturbance || at < *disturbance) disturbance = at;
  }
  for (const SimDuration offset : config_.faults.disturbance_offsets()) {
    const SimTime at = measure_start_ + offset;
    if (!disturbance || at < *disturbance) disturbance = at;
  }
  if (disturbance) {
    result.repair_times_s = repair_times_after(stats, *disturbance);
  }

  // Recovery metrics.
  result.revivals = net.revivals().size();
  for (const ReviveRecord& revival : net.revivals()) {
    if (revival.rejoined_at.us >= 0) {
      result.rejoin_times_s.push_back(
          (revival.rejoined_at - revival.revived_at).seconds());
    }
  }
  result.stale_route_drops = stats.dropped_by(DropReason::kStaleRoute);
  result.guard_misses = net.guard_misses();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const TschMac& mac = net.node(NodeId{static_cast<std::uint16_t>(i)}).mac();
    result.desync_events += mac.desync_events();
    result.keepalives_sent += mac.keepalives_sent();
    result.clock_corrections += mac.clock_corrections();
  }
  if (const NetworkInvariantMonitor* monitor = net.invariant_monitor()) {
    result.invariant_violations = monitor->violations().size();
    result.swap_epoch_audits = monitor->swap_epoch_audits();
    result.swap_epoch_violations = monitor->violations_at_swap_epochs();
    result.tunnel_violations =
        monitor->count(InvariantKind::kTunnelLoop) +
        monitor->count(InvariantKind::kTunnelDisjoint) +
        monitor->count(InvariantKind::kTunnelConflict);
  }

  // Jamming / randomization metrics.
  result.victim_tx_attempts = net.victim_tx_attempts();
  result.victim_tx_jammed = net.victim_tx_jammed();
  result.jam_slot_hit_rate =
      result.victim_tx_attempts > 0
          ? static_cast<double>(result.victim_tx_jammed) /
                static_cast<double>(result.victim_tx_attempts)
          : 0.0;
  result.swap_epochs = net.swap_epochs();
  result.swaps_applied = net.swaps_applied();
  result.swaps_rejected = net.swaps_rejected();

  // PDR dip around each fault-script disturbance: depth below the
  // pre-fault baseline and time until a 10 s bin returns near it.
  const SimDuration bin = seconds(static_cast<std::int64_t>(10));
  for (const SimDuration offset : config_.faults.disturbance_offsets()) {
    const SimTime fault_at = measure_start_ + offset;
    if (fault_at >= measure_end) continue;
    const double baseline = stats.overall_pdr(measure_start_, fault_at);
    ExperimentResult::FaultDip dip;
    dip.at_s = offset.seconds();
    double worst = baseline;
    SimTime recovered_at = measure_end;
    for (SimTime t = fault_at; t < measure_end; t = t + bin) {
      const SimTime bin_end = std::min(t + bin, measure_end);
      const double pdr = stats.overall_pdr(t, bin_end);
      worst = std::min(worst, pdr);
      if (pdr >= baseline - 0.05) {
        recovered_at = t;
        break;
      }
    }
    dip.depth = std::max(0.0, baseline - worst);
    dip.duration_s = (recovered_at - fault_at).seconds();
    result.fault_dips.push_back(dip);
  }

  // Control-loop and tunnel-replication metrics.
  if (plant_) {
    PlantMetrics plant = plant_->harvest(measure_start_, measure_end);
    result.control_cost = plant.control_cost;
    result.actuations = plant.actuations;
    result.actuation_deadline_misses = plant.deadline_misses;
    if (!plant.sensor_actuator_latencies_ms.empty()) {
      Cdf cdf;
      for (const double ms : plant.sensor_actuator_latencies_ms) cdf.add(ms);
      result.p999_sensor_actuator_ms = cdf.percentile(99.9);
    }
    result.sensor_actuator_latencies_ms =
        std::move(plant.sensor_actuator_latencies_ms);
  }
  result.replication_wins = net.replication_wins();
  result.replication_losses = net.replication_losses();
  result.duplicates_suppressed = net.duplicates_suppressed();
  result.single_path_fallbacks = net.single_path_fallbacks();
  if (const TunnelManager* tunnels = net.tunnel_manager()) {
    result.tunnel_rebuilds = tunnels->rebuilds();
    result.tunnel_repair_times_s = tunnels->repair_times_s();
  }

  for (std::size_t i = layout_.num_access_points;
       i < net.join_times().size(); ++i) {
    const SimTime t = net.join_times()[i];
    if (t.us >= 0) result.join_times_s.push_back(t.seconds());
    const SimTime full = net.full_join_times()[i];
    if (full.us >= 0) result.full_join_times_s.push_back(full.seconds());
  }
  return result;
}

std::size_t trial_threads() {
  if (const char* env = std::getenv("DIGS_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::vector<ExperimentResult> run_trials(const std::vector<TrialSpec>& trials,
                                         std::size_t threads) {
  if (threads == 0) threads = trial_threads();
  std::vector<ExperimentResult> results(trials.size());
  const auto run_one = [&](std::size_t i) {
    ExperimentRunner runner(trials[i].layout, trials[i].config);
    results[i] = runner.run();
  };
  const std::size_t workers = std::min(threads, trials.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < trials.size(); ++i) run_one(i);
    return results;
  }
  // Dynamic work stealing off one atomic counter: trials vary widely in
  // cost (warmup + duration differ per config), so static striping would
  // leave workers idle. Every worker writes only results[i] for the
  // indices it claimed, so no synchronization beyond the counter and the
  // joins is needed.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < trials.size();
           i = next.fetch_add(1)) {
        run_one(i);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

}  // namespace digs
