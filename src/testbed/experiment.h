// Experiment harness: assembles a Network from a TestbedLayout and a suite,
// runs warmup -> (optional jammers / node failures) -> measurement window,
// and harvests the metrics the paper reports (per-flow PDR, latency,
// energy per delivered packet, duty cycle, repair times, join times).
//
// Every figure bench is a thin loop over ExperimentRunner with different
// parameters; repeated "flow sets" vary the experiment seed, which varies
// flow sources, fading, and traffic phases.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/fault_script.h"
#include "core/network.h"
#include "testbed/layouts.h"
#include "testbed/plant.h"

namespace digs {

struct FailureEvent {
  SimDuration at;  // offset from network start
  NodeId node;
  bool alive{false};
};

struct ExperimentConfig {
  ProtocolSuite suite = ProtocolSuite::kDigs;
  std::uint64_t seed = 1;

  std::size_t num_flows = 8;
  SimDuration flow_period = seconds(static_cast<std::int64_t>(5));

  /// Network-formation time before traffic and measurement start.
  SimDuration warmup = seconds(static_cast<std::int64_t>(120));
  /// Measurement window.
  SimDuration duration = seconds(static_cast<std::int64_t>(300));
  /// Extra simulated time after the window so packets generated near its
  /// end can still be delivered (they count for the window's PDR).
  SimDuration stat_drain = seconds(static_cast<std::int64_t>(20));

  /// Jammers switch on this long after the measurement window starts
  /// (<0: never).
  std::optional<SimDuration> jammer_start_after =
      seconds(static_cast<std::int64_t>(0));
  std::size_t num_jammers = 0;
  JammerPattern jammer_pattern = JammerPattern::kWifiStreaming;
  /// JamLab runs on motes at the same 0 dBm as the field devices (the
  /// paper raises the jammers' power to emulate 802.11 reach, but CC2420
  /// tops out at 0 dBm); the damage stays local to the jammer, not
  /// floor-wide. Calibrated so the Orchestra baseline's worst-case
  /// flow-set PDR lands near the paper's ~0.76.
  double jammer_tx_power_dbm = -4.0;
  /// Macro on/off cycle for disturbers (Fig. 12: 5 min on / 5 min off);
  /// zero off-duration means continuously on.
  SimDuration jammer_on = seconds(static_cast<std::int64_t>(100000));
  SimDuration jammer_off = seconds(static_cast<std::int64_t>(0));

  /// Reactive (learning) jammers, placed on the same layout positions as
  /// the oblivious ones and switched on at the same jammer_start_after
  /// offset. They sniff per-(slot-offset, channel-offset) activity over
  /// `reactive_epoch_slots`-slot epochs and then jam the
  /// `reactive_top_k` hottest cells of each following epoch
  /// (phy/reactive_jammer.h). The default top_k matches the oblivious
  /// kWifiStreaming duty cycle (0.175 of the 151x16 cell grid), so
  /// reactive-vs-oblivious comparisons hold energy constant.
  std::size_t num_reactive_jammers = 0;
  std::uint32_t reactive_top_k = 423;
  double reactive_sniff_dbm = -90.0;
  std::uint32_t reactive_period_slots = 151;
  std::uint32_t reactive_epoch_slots = 1510;

  /// SlotSwapper-style schedule randomization (sched/slot_swapper.h):
  /// every `randomize_epoch` the network permutes the application
  /// slotframe's slot offsets (validated against conflict-freedom and
  /// route precedence) and reinstalls every schedule, so a reactive
  /// jammer's learned histogram goes stale each epoch.
  bool randomize_schedule = false;
  SimDuration randomize_epoch = seconds(static_cast<std::int64_t>(30));
  std::uint64_t randomize_seed = 1;
  std::uint32_t randomize_swaps = 48;
  std::uint32_t randomize_max_retries = 8;

  std::vector<FailureEvent> failures;

  /// Declarative fault timeline (crash/recover cycles, link blackouts,
  /// AP failover, bursts), installed when the measurement window starts —
  /// offsets in the script are relative to warmup end. Richer than the raw
  /// `failures` list (which stays for offsets relative to network start).
  FaultScript faults;
  /// Runs the NetworkInvariantMonitor during the experiment; violations are
  /// counted in ExperimentResult::invariant_violations.
  bool monitor_invariants = false;

  /// Overrides applied to the default NodeConfig (slotframe lengths etc.).
  SchedulerConfig scheduler;
  /// Per-packet persistence measured in application slotframe cycles, so
  /// both suites keep a packet alive for the same wall-clock time (DiGS
  /// offers `attempts` tries per cycle, Orchestra one). Contiki TSCH's
  /// 8-retry default corresponds to 8 cycles.
  int max_delivery_cycles = 8;
  /// Optional Trickle override for both protocols (ablation).
  std::optional<TrickleConfig> trickle;
  /// Orchestra unicast flavour (sender-based default; see NodeConfig).
  bool orchestra_sender_based = true;
  /// Ablation: disable the paper's weighted-ETX advertisement (Eq. 1-3).
  bool use_weighted_etx = true;
  /// Slot driver selection (see NetworkConfig::use_slot_engine); the
  /// equivalence tests run the same experiment under both drivers.
  bool use_slot_engine = true;

  /// Oscillator drift: static tolerance (ppm) and slow random-walk
  /// amplitude (ppm), both 0 by default — the drift subsystem stays
  /// entirely inactive and runs are bit-identical to pre-drift builds.
  double clock_ppm = 0.0;
  double clock_walk_ppm = 0.0;

  /// Intra-trial spatial shards (see NetworkConfig::shards): 0 defers to
  /// the DIGS_SHARDS environment variable (default 1 = serial).
  std::size_t shards = 0;
  /// Worker threads for the sharded slot pipeline (see
  /// NetworkConfig::shard_threads): 0 defers to DIGS_SHARD_THREADS, then
  /// min(shards, hardware threads).
  std::size_t shard_threads = 0;
  /// Override for MediumConfig::flat_table_max_nodes (the flat-vs-sparse
  /// storage cutover); tests force compact mode with 0 to pin sparse ==
  /// flat bit-identity on small layouts.
  std::optional<std::size_t> medium_flat_table_max_nodes;

  // --- multipath downlink tunnels + closed-loop control workload ---

  /// Builds node-disjoint AP->device tunnels (dedicated tunnel cell
  /// ladders, source-routed frames) for every downlink destination; also
  /// enables the DiGS downlink extension the fallback path needs.
  bool enable_tunnels = false;
  /// Replicate each tunneled packet over both paths (the ablation arm
  /// sends the primary copy only). Ignored unless enable_tunnels.
  bool tunnel_replication = true;
  /// Closed-loop control workload: this many PID-style loops (sensor
  /// device -> AP controller -> actuation downlink), 0 = none. Devices are
  /// drawn deterministically from the experiment seed.
  std::size_t control_loops = 0;
  /// Sampling/actuation period and sensor-to-actuator deadline of every
  /// control loop (see PlantConfig).
  SimDuration control_period = seconds(static_cast<std::int64_t>(1));
  SimDuration control_deadline = seconds(static_cast<std::int64_t>(5));
  /// Crash a relay node picked live from the interior of the first tunnel
  /// destination's primary path this long after the measurement window
  /// starts (nullopt: never), reviving it after the downtime — the
  /// replication-win scenario of the downlink bench.
  std::optional<SimDuration> crash_tunnel_relay_after;
  SimDuration crash_tunnel_relay_downtime =
      seconds(static_cast<std::int64_t>(30));
  /// Number of crash/revive strikes. Strike k fires 2*k*downtime after the
  /// first (one downtime of outage, one of recovery headroom), and re-picks
  /// its victim from the then-current primary path — repeated strikes keep
  /// hitting whatever relay actually carries the primary copies, which is
  /// what separates replicated from single-path delivery above seed noise.
  int crash_tunnel_relay_cycles = 1;
};

struct ExperimentResult {
  double overall_pdr{0};
  std::vector<double> flow_pdrs;
  std::vector<double> latencies_ms;
  /// Radio energy per delivered packet over the measurement window
  /// (mJ/packet), network-wide.
  double energy_per_delivered_mj{0};
  /// Mean radio duty cycle across field devices in the window.
  double duty_cycle{0};
  /// Duty cycle normalized per delivered packet (Fig. 12(c)), in
  /// percent per 100 packets.
  double duty_cycle_per_delivered{0};
  std::uint64_t delivered{0};
  std::uint64_t generated{0};
  /// Longest post-disturbance outage per flow (s); only flows that lost at
  /// least one packet appear.
  std::vector<double> repair_times_s;
  /// Per-device join time (s since network start) until the best parent is
  /// selected, Fig. 13; devices that never joined are absent.
  std::vector<double> join_times_s;
  /// Per-device time until the full parent set (best + second-best for
  /// DiGS); nodes with no eligible backup in radio range are absent.
  std::vector<double> full_join_times_s;
  /// The flow ids in flow_pdrs order, and per-(flow, seq) delivery map for
  /// micro-benchmarks.
  std::vector<FlowId> flow_ids;

  // --- recovery metrics (fault-script experiments) ---

  /// Node revivals injected during the run (crash/recover cycles).
  std::size_t revivals{0};
  /// Time-to-rejoin (s) per revival that rejoined the routing graph; a
  /// revival missing here never rejoined before the run ended (or crashed
  /// again first). Finite recovery for every revived node means
  /// rejoin_times_s.size() == revivals.
  std::vector<double> rejoin_times_s;
  /// PDR dip around one fault-script disturbance: how deep network-wide
  /// PDR fell below the pre-fault baseline and how long it stayed below
  /// (10 s bins; duration capped at the measurement window end).
  struct FaultDip {
    double at_s{0};        // disturbance offset from warmup end (s)
    double depth{0};       // baseline PDR minus the worst 10 s bin
    double duration_s{0};  // time until a bin returns near baseline
  };
  std::vector<FaultDip> fault_dips;
  /// Packets lost to stale routes (an ancestor's outdated downlink table
  /// sent them down a dead branch).
  std::uint64_t stale_route_drops{0};
  /// Violations the invariant monitor recorded (0 when not monitoring).
  std::size_t invariant_violations{0};

  // --- jamming / randomization metrics ---

  /// Data-frame transmission attempts network-wide since start, and how
  /// many launched into a (slot, channel) an active jammer was blasting.
  /// Their ratio (jam_slot_hit_rate) is the jammer's schedule-targeting
  /// efficiency — the quantity randomization is designed to destroy.
  std::uint64_t victim_tx_attempts{0};
  std::uint64_t victim_tx_jammed{0};
  double jam_slot_hit_rate{0};
  /// Randomization epochs completed, and the SlotSwapper's accepted /
  /// rejected transposition counts (all 0 with randomization off).
  std::uint64_t swap_epochs{0};
  std::uint64_t swaps_applied{0};
  std::uint64_t swaps_rejected{0};
  /// Swap-epoch audits run by the invariant monitor and violations they
  /// detected (0 unless both monitoring and randomization are on).
  std::uint64_t swap_epoch_audits{0};
  std::uint64_t swap_epoch_violations{0};

  // --- tunnel / control-loop metrics (all 0 without tunnels / loops) ---

  /// Mean quadratic stage cost per control tick per loop, actuation
  /// commands issued in the window, and how many missed the sensor-to-
  /// actuator deadline (including never-delivered commands).
  double control_cost{0};
  std::uint64_t actuations{0};
  std::uint64_t actuation_deadline_misses{0};
  /// Sensor-sample-to-actuator latencies (ms) of delivered actuations, and
  /// their p99.9 (0 when no samples) — the bounded-tail gate.
  std::vector<double> sensor_actuator_latencies_ms;
  double p999_sensor_actuator_ms{0};
  /// Replication scoreboard (Network counters over the whole run):
  /// deliveries won by the backup copy, redundant copies suppressed at the
  /// egress, all suppressed duplicates, and single-path fallbacks.
  std::uint64_t replication_wins{0};
  std::uint64_t replication_losses{0};
  std::uint64_t duplicates_suppressed{0};
  std::uint64_t single_path_fallbacks{0};
  /// Tunnel derivations that changed a destination's hop lists, and the
  /// broken->repaired durations the maintenance loop observed.
  std::uint64_t tunnel_rebuilds{0};
  std::vector<double> tunnel_repair_times_s;
  /// Monitor violations of the tunnel invariants only (loop-freedom,
  /// disjointness honesty, replication conflict-freedom) — 0 unless
  /// monitor_invariants is on. The acceptance gate on multipath safety.
  std::uint64_t tunnel_violations{0};

  // --- clock-drift metrics (all 0 when drift is disabled) ---

  /// Desynchronizations across all nodes over the whole run (sync timeout,
  /// resync-deadline expiry, or repeated keep-alive failure).
  std::uint64_t desync_events{0};
  /// Receptions lost because the TX/RX relative clock offset exceeded the
  /// guard time.
  std::uint64_t guard_misses{0};
  /// Keep-alive polls enqueued (resync overhead).
  std::uint64_t keepalives_sent{0};
  /// Clock corrections applied from EBs and time-source ACKs.
  std::uint64_t clock_corrections{0};
};

class ExperimentRunner {
 public:
  ExperimentRunner(const TestbedLayout& layout, const ExperimentConfig& config);

  /// Runs the full experiment and returns the harvested metrics. The
  /// Network remains accessible for custom inspection (micro-benchmarks).
  ExperimentResult run();

  [[nodiscard]] Network& network() { return *network_; }
  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  /// Time the measurement window started (valid after run()).
  [[nodiscard]] SimTime measure_start() const { return measure_start_; }

  /// Default node configuration used by all experiments; exposed so tests
  /// and ablations share it.
  [[nodiscard]] static NodeConfig default_node_config();
  [[nodiscard]] static MediumConfig default_medium_config();

  /// The control workload (nullptr unless control_loops > 0).
  [[nodiscard]] PlantWorkload* plant() { return plant_.get(); }

 private:
  TestbedLayout layout_;
  ExperimentConfig config_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<PlantWorkload> plant_;
  SimTime measure_start_{};
};

/// Longest per-flow outage (s) after `event`: the Fig. 4 repair-time
/// measurement (generation of the first lost packet to the next delivery).
/// Flows that lost no packet after `event` are absent.
[[nodiscard]] std::vector<double> repair_times_after(
    const FlowStatsCollector& stats, SimTime event);

/// Per-flow PDR over the repair window [event, event + window): the Fig. 5
/// PDR-during-repair measurement. One entry per registered flow.
[[nodiscard]] std::vector<double> repair_window_pdrs(
    const FlowStatsCollector& stats, SimTime event, SimDuration window);

/// One independent experiment for run_trials().
struct TrialSpec {
  TestbedLayout layout;
  ExperimentConfig config;
};

/// Worker count for run_trials() and the bench parallel_map(): the
/// DIGS_THREADS environment variable when set (>0), otherwise the
/// hardware concurrency (min 1).
[[nodiscard]] std::size_t trial_threads();

/// Runs every trial on a small thread pool and returns the results in
/// submission order. Each trial is an independent ExperimentRunner — a pure
/// function of its spec — so the result vector is bit-identical to running
/// the trials sequentially, whatever `threads` is. `threads == 0` means
/// trial_threads(); `1` runs inline without spawning.
[[nodiscard]] std::vector<ExperimentResult> run_trials(
    const std::vector<TrialSpec>& trials, std::size_t threads = 0);

}  // namespace digs
