#include "testbed/layouts.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "net/etx.h"
#include "phy/medium.h"

namespace digs {

namespace {

/// Fills `layout` with a jittered grid of field devices over
/// [0,w] x [0,h] at height z, after the APs already present.
void add_grid(TestbedLayout& layout, int count, double w, double h, double z,
              Rng& rng) {
  const int cols = static_cast<int>(std::ceil(std::sqrt(count * w / h)));
  const int rows = (count + cols - 1) / cols;
  const double dx = w / std::max(cols - 1, 1);
  const double dy = h / std::max(rows - 1, 1);
  int placed = 0;
  for (int r = 0; r < rows && placed < count; ++r) {
    for (int c = 0; c < cols && placed < count; ++c) {
      Position p;
      p.x = c * dx + rng.uniform(-1.5, 1.5);
      p.y = r * dy + rng.uniform(-1.5, 1.5);
      p.z = z;
      layout.positions.push_back(p);
      ++placed;
    }
  }
}

}  // namespace

TestbedLayout testbed_a(std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xA));
  TestbedLayout layout;
  layout.name = "TestbedA-50";
  layout.num_access_points = 2;
  
  // Both APs near the gateway in the middle corridor (WirelessHART access
  // points are installed together at the gateway and provide redundant
  // first hops) — every AP-adjacent node can reach both.
  layout.positions.push_back(Position{20.0, 12.5, 0.0});
  layout.positions.push_back(Position{40.0, 12.5, 0.0});
  add_grid(layout, 48, 60.0, 25.0, 0.0, rng);
  // Jammers sit on the relay corridors around the APs (paper Fig. 8(a)
  // places them amid the mesh); the 4th is used by the Figs. 4-5 sweeps.
  layout.jammer_positions = {
      Position{15.0, 10.0, 0.0},
      Position{42.0, 16.0, 0.0},
      Position{28.0, 12.0, 0.0},
      Position{22.0, 19.0, 0.0},
  };
  return layout;
}

TestbedLayout half_testbed_a(std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xA1));
  TestbedLayout layout;
  layout.name = "HalfTestbedA-20";
  layout.num_access_points = 2;
  
  layout.positions.push_back(Position{10.0, 12.0, 0.0});
  layout.positions.push_back(Position{22.0, 12.0, 0.0});
  add_grid(layout, 18, 32.0, 25.0, 0.0, rng);
  layout.jammer_positions = {
      Position{6.0, 5.0, 0.0},
      Position{16.0, 20.0, 0.0},
      Position{26.0, 8.0, 0.0},
      Position{12.0, 15.0, 0.0},
  };
  return layout;
}

TestbedLayout testbed_b(std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xB));
  TestbedLayout layout;
  layout.name = "TestbedB-44";
  layout.num_access_points = 2;
  
  // One AP per floor (paper: access points 130 and 128), vertically
  // stacked near the building core so each is reachable from the other's
  // floor through the slab.
  layout.positions.push_back(Position{17.0, 10.0, 0.0});
  layout.positions.push_back(Position{17.0, 10.0, 4.0});
  add_grid(layout, 21, 35.0, 20.0, 0.0, rng);
  add_grid(layout, 21, 35.0, 20.0, 4.0, rng);
  // Paper Fig. 8(b): jammers 124, 141, 138 spread over both floors; ours
  // sit on the relay corridors feeding the stacked APs.
  layout.jammer_positions = {
      Position{13.0, 8.0, 0.0},
      Position{21.0, 12.0, 4.0},
      Position{11.0, 13.0, 0.0},
      Position{24.0, 8.0, 4.0},
  };
  return layout;
}

TestbedLayout half_testbed_b(std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xB1));
  TestbedLayout layout;
  layout.name = "HalfTestbedB-19";
  layout.num_access_points = 2;
  
  layout.positions.push_back(Position{14.0, 10.0, 0.0});
  layout.positions.push_back(Position{21.0, 10.0, 0.0});
  add_grid(layout, 17, 35.0, 20.0, 0.0, rng);
  layout.jammer_positions = {
      Position{8.0, 5.0, 0.0},
      Position{28.0, 15.0, 0.0},
      Position{20.0, 5.0, 0.0},
      Position{14.0, 16.0, 0.0},
  };
  return layout;
}

TestbedLayout cooja_150(std::uint64_t seed) {
  Rng rng(hash_mix(seed, 0xC));
  TestbedLayout layout;
  layout.name = "Cooja-150";
  layout.num_access_points = 2;
  layout.path_loss_exponent = 3.0;  // open area
  layout.admission_rss_dbm = -91.5;
  layout.positions.push_back(Position{120.0, 150.0, 0.0});
  layout.positions.push_back(Position{180.0, 150.0, 0.0});
  for (int i = 0; i < 150; ++i) {
    layout.positions.push_back(
        Position{rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0), 0.0});
  }
  layout.jammer_positions = {
      Position{60.0, 60.0, 0.0},   Position{240.0, 60.0, 0.0},
      Position{150.0, 150.0, 0.0}, Position{60.0, 240.0, 0.0},
      Position{240.0, 240.0, 0.0},
  };
  return layout;
}

std::vector<NodeId> pick_sources(const TestbedLayout& layout,
                                 std::size_t count, std::uint64_t seed) {
  std::vector<NodeId> devices;
  for (std::uint16_t i = layout.num_access_points; i < layout.num_nodes();
       ++i) {
    devices.push_back(NodeId{i});
  }
  Rng rng(hash_mix(seed, 0x50));
  // Fisher-Yates with our deterministic generator.
  for (std::size_t i = devices.size(); i > 1; --i) {
    const std::size_t j = rng.uniform_int(i);
    std::swap(devices[i - 1], devices[j]);
  }
  if (count < devices.size()) devices.resize(count);
  return devices;
}

TopologySnapshot make_topology_snapshot(const TestbedLayout& layout,
                                        std::uint64_t seed,
                                        double min_rss_dbm) {
  const std::uint16_t n = layout.num_nodes();
  TopologySnapshot topo;
  topo.num_nodes = n;
  topo.num_access_points = layout.num_access_points;
  topo.etx.assign(n, std::vector<double>(n, TopologySnapshot::kNoLink));

  MediumConfig medium_config;
  medium_config.propagation.path_loss_exponent = layout.path_loss_exponent;
  Medium medium(medium_config, layout.positions, seed);
  // Mid-band channel as the representative static channel.
  constexpr PhysicalChannel kChannel = 8;
  for (std::uint16_t a = 0; a < n; ++a) {
    for (std::uint16_t b = a + 1; b < n; ++b) {
      const double rss = medium.mean_rss_dbm(NodeId{a}, NodeId{b}, kChannel,
                                             layout.tx_power_dbm);
      if (rss < min_rss_dbm) continue;
      const double etx = etx_from_rss(rss);
      topo.etx[a][b] = etx;
      topo.etx[b][a] = etx;
    }
  }
  return topo;
}

}  // namespace digs
