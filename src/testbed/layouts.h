// Node placements mirroring the paper's deployments (Fig. 8):
//   Testbed A — 50 TelosB motes on one floor at SUNY Binghamton,
//   Testbed B — 44 motes spanning two floors at Washington University,
//   Half A / Half B — the 20- and 19-node subsets used in Fig. 3,
//   Cooja-150 — 150 nodes + 2 APs uniform in 300 m x 300 m (Fig. 12).
//
// Exact coordinates of the physical testbeds are not published; layouts are
// generated deterministically (perturbed grids / uniform) with the same
// scale, node counts, floor structure, AP count and jammer placement logic,
// which is what the algorithms react to.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "manager/graph_router.h"
#include "phy/geometry.h"
#include "phy/jammer.h"

namespace digs {

struct TestbedLayout {
  std::string name;
  std::vector<Position> positions;  // [0, num_access_points) are APs
  std::uint16_t num_access_points{2};
  /// Radio TX power (dBm). TelosB/CC2420 max is 0 dBm, which the paper's
  /// testbeds use.
  double tx_power_dbm{0.0};
  /// Indoor path-loss exponent for this deployment. Cluttered buildings
  /// run 3.5-4; the open 300 m x 300 m simulation area uses 3.0. Chosen so
  /// link RSS spans the paper's ETX seeding range (-60..-90 dBm) and the
  /// deployments are multi-hop like the physical testbeds.
  double path_loss_exponent{3.8};
  /// Neighbor-admission RSS (see EtxConfig): with a low exponent the gray
  /// zone is geometrically wide, so sparse outdoor deployments admit a bit
  /// deeper into it to keep the mesh connected.
  double admission_rss_dbm{-89.0};
  /// Positions for interference sources (paper: 3 jammers on Testbed A/B;
  /// up to 4 used in Figs. 4-5; 5 disturbers in Fig. 12).
  std::vector<Position> jammer_positions;

  [[nodiscard]] std::uint16_t num_nodes() const {
    return static_cast<std::uint16_t>(positions.size());
  }
  [[nodiscard]] std::uint16_t num_field_devices() const {
    return static_cast<std::uint16_t>(positions.size() - num_access_points);
  }
};

/// 50 motes + the 2 APs are part of the 50 (ids 0,1), single floor
/// ~60 m x 25 m.
[[nodiscard]] TestbedLayout testbed_a(std::uint64_t seed = 7);

/// First 20 motes of Testbed A (Fig. 3's "Half Testbed A").
[[nodiscard]] TestbedLayout half_testbed_a(std::uint64_t seed = 7);

/// 44 motes across two floors (~35 m x 20 m each, 4 m apart).
[[nodiscard]] TestbedLayout testbed_b(std::uint64_t seed = 11);

/// 19 motes on one floor of Testbed B (Fig. 3's "Half Testbed B").
[[nodiscard]] TestbedLayout half_testbed_b(std::uint64_t seed = 11);

/// 150 field nodes + 2 APs uniform in 300 m x 300 m (Fig. 12), with 5
/// disturber positions.
[[nodiscard]] TestbedLayout cooja_150(std::uint64_t seed = 13);

/// Picks `count` field-device ids spread across the layout to act as flow
/// sources (deterministic given the seed).
[[nodiscard]] std::vector<NodeId> pick_sources(const TestbedLayout& layout,
                                               std::size_t count,
                                               std::uint64_t seed);

/// Global connectivity/cost view of a layout for the centralized manager
/// baseline: link ETX from the paper's RSS mapping over the expected
/// (static) RSS; links below the audibility threshold are absent.
[[nodiscard]] TopologySnapshot make_topology_snapshot(
    const TestbedLayout& layout, std::uint64_t seed = 1,
    double min_rss_dbm = -92.0);

}  // namespace digs
