#include "testbed/plant.h"

#include <algorithm>

#include "common/rng.h"

namespace digs {

PlantWorkload::PlantWorkload(Network& net, const PlantConfig& config,
                             std::vector<NodeId> devices)
    : net_(net), config_(config) {
  loops_.reserve(devices.size());
  for (std::size_t i = 0; i < devices.size(); ++i) {
    Loop loop;
    loop.device = devices[i];
    loop.sensor_flow =
        FlowId{static_cast<std::uint16_t>(config_.sensor_flow_base + i)};
    loop.act_flow =
        FlowId{static_cast<std::uint16_t>(config_.act_flow_base + i)};
    net_.stats().register_flow(loop.sensor_flow, loop.device);
    // Actuation flows originate at the gateway side; the ingress AP varies
    // per packet (tunnel derivation picks it), so record AP 0 as the
    // nominal source.
    net_.stats().register_flow(loop.act_flow, NodeId{0});
    loops_.push_back(std::move(loop));
  }
}

void PlantWorkload::start(SimDuration initial_delay) {
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    // Deterministic stagger spreads the loops' packets across the period.
    const SimDuration stagger{static_cast<std::int64_t>(
        (config_.period.us * static_cast<std::int64_t>(i)) /
        static_cast<std::int64_t>(std::max<std::size_t>(loops_.size(), 1)))};
    net_.sim().schedule_after(initial_delay + stagger,
                              [this, i] { tick(i); });
  }
}

void PlantWorkload::tick(std::size_t i) {
  Loop& loop = loops_[i];
  const SimTime now = net_.sim().now();
  FlowStatsCollector& stats = net_.stats();

  // 1) Actuator: apply the newest command that has reached the device.
  //    Zero-order hold on the previous command otherwise.
  if (const FlowRecord* acts = stats.flow(loop.act_flow)) {
    for (std::int64_t s = loop.applied_act_seq + 1;
         s < static_cast<std::int64_t>(loop.acts.size()); ++s) {
      const PacketRecord* p = acts->find(static_cast<std::uint32_t>(s));
      if (p != nullptr && p->received()) loop.applied_act_seq = s;
    }
    if (loop.applied_act_seq >= 0) {
      loop.u_applied =
          loop.acts[static_cast<std::size_t>(loop.applied_act_seq)].u;
    }
  }

  // 2) Plant step with deterministic process noise.
  const double w =
      config_.noise *
      hashed_normal(hash_mix(config_.seed, 0x9A57, i, loop.ticks));
  loop.x = config_.a * loop.x + config_.b * loop.u_applied + w;
  loop.costs.emplace_back(
      now, config_.q * loop.x * loop.x +
               config_.r * loop.u_applied * loop.u_applied);

  // 3) Sensor sample (uplink). The stats collector times the generation so
  //    the controller's delivery check below stays purely record-driven.
  const std::uint32_t seq = loop.ticks++;
  loop.x_sent.push_back(loop.x);
  loop.sensor_at.push_back(now);
  stats.on_generated(loop.sensor_flow, seq, now);
  if (net_.node(loop.device).alive()) {
    net_.node(loop.device).generate_packet(loop.sensor_flow, seq, now);
  } else {
    stats.on_dropped(loop.sensor_flow, seq, now, DropReason::kSourceDead);
  }

  // 4) Controller at the gateway: latest sensor sample delivered to an AP.
  if (const FlowRecord* sensors = stats.flow(loop.sensor_flow)) {
    for (std::int64_t s = loop.ctrl_sensor_seq + 1;
         s <= static_cast<std::int64_t>(seq); ++s) {
      const PacketRecord* p = sensors->find(static_cast<std::uint32_t>(s));
      if (p != nullptr && p->received()) loop.ctrl_sensor_seq = s;
    }
  }
  Actuation act;
  act.issued = now;
  if (loop.ctrl_sensor_seq >= 0) {
    const auto s = static_cast<std::size_t>(loop.ctrl_sensor_seq);
    act.u = -config_.gain * loop.x_sent[s];
    act.sensor_seq = loop.ctrl_sensor_seq;
    act.sensor_at = loop.sensor_at[s];
  }
  loop.acts.push_back(act);

  // 5) Actuation downlink: replicated tunnels when available, table routing
  //    otherwise; an AP without any route drops it as stale (the loop keeps
  //    holding the previous command — and accrues the deadline miss).
  stats.on_generated(loop.act_flow, seq, now);
  if (!net_.send_downlink(loop.act_flow, seq, loop.device, now)) {
    stats.on_dropped(loop.act_flow, seq, now, DropReason::kStaleRoute);
  }

  net_.sim().schedule_after(config_.period, [this, i] { tick(i); });
}

PlantMetrics PlantWorkload::harvest(SimTime from, SimTime to) const {
  PlantMetrics out;
  double cost_sum = 0.0;
  std::uint64_t cost_n = 0;
  for (const Loop& loop : loops_) {
    for (const auto& [at, cost] : loop.costs) {
      if (at < from || at >= to) continue;
      cost_sum += cost;
      ++cost_n;
    }
    const FlowRecord* acts = net_.stats().flow(loop.act_flow);
    for (std::size_t s = 0; s < loop.acts.size(); ++s) {
      const Actuation& act = loop.acts[s];
      if (act.issued < from || act.issued >= to) continue;
      ++out.actuations;
      const PacketRecord* p =
          acts != nullptr ? acts->find(static_cast<std::uint32_t>(s))
                          : nullptr;
      if (p == nullptr || !p->received()) {
        ++out.deadline_misses;
        continue;
      }
      // End-to-end age of the applied control decision: sensor sample
      // instant to actuation delivery. Commands issued before any sensor
      // sample arrived carry no measurable sensor age; time them from
      // issue instead (they still face the deadline).
      const SimTime anchor = act.sensor_seq >= 0 ? act.sensor_at : act.issued;
      const SimDuration latency = *p->delivered - anchor;
      if (act.sensor_seq >= 0) {
        out.sensor_actuator_latencies_ms.push_back(latency.seconds() * 1e3);
      }
      if (latency > config_.deadline) ++out.deadline_misses;
    }
  }
  out.control_cost = cost_n > 0 ? cost_sum / static_cast<double>(cost_n) : 0.0;
  return out;
}

}  // namespace digs
