// Closed-loop control workload over the simulated network: a set of scalar
// discrete-time plants (x+ = a*x + b*u + w, slightly unstable open loop),
// each sensed at a field device, controlled at the access points, and
// actuated back at the device over the (optionally tunneled and replicated)
// downlink. The workload scores what a control engineer scores — quadratic
// state/effort cost and actuation deadline misses — so the downlink bench
// can show that multipath replication keeps a control loop inside its cost
// envelope through node crashes and jamming, not merely that PDR stayed up.
//
// Transport realism, not payload simulation: the simulator moves empty
// DataPayloads, so the plant keeps the app-level contents (sampled x per
// sensor seq, commanded u per actuation seq) on the side and consults the
// FlowStatsCollector's per-packet delivery records to learn WHEN each value
// arrived. The controller only uses sensor samples already delivered to an
// AP; the actuator only applies commands already delivered to the device —
// both zero-order holds, as on a real fieldbus.
//
// All ticks run as ordinary simulator events (serial seams), so reading
// network state and injecting packets here is race-free at every shard and
// thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "core/network.h"

namespace digs {

struct PlantConfig {
  /// Sampling/actuation period of every loop (ticks are staggered across
  /// loops so their packets do not phase-align).
  SimDuration period = seconds(static_cast<std::int64_t>(1));
  /// Sensor-sample-to-actuation deadline: a delivered command whose
  /// underlying sensor sample is older than this on application — or a
  /// command that never arrives — counts as a deadline miss.
  SimDuration deadline = seconds(static_cast<std::int64_t>(5));
  /// Plant x+ = a*x + b*u + w. a slightly above 1: the open loop drifts,
  /// so losing actuation for long visibly inflates the quadratic cost.
  double a = 1.02;
  double b = 0.5;
  /// Controller u = -gain * x_est (latest delivered sensor sample);
  /// closed-loop pole a - b*gain = 0.6 with the defaults.
  double gain = 0.84;
  /// Stage cost q*x^2 + r*u^2.
  double q = 1.0;
  double r = 0.1;
  /// Process-noise standard deviation (deterministic per (seed, loop, tick)
  /// hash draw, so trials are bit-reproducible).
  double noise = 0.1;
  std::uint64_t seed = 1;
  /// Flow-id bases; loop i uses sensor_flow_base + i (device -> AP uplink)
  /// and act_flow_base + i (AP -> device downlink).
  std::uint16_t sensor_flow_base = 1000;
  std::uint16_t act_flow_base = 1100;
};

/// Harvested over a measurement window (by actuation issue time).
struct PlantMetrics {
  /// Mean stage cost per tick per loop.
  double control_cost{0};
  std::uint64_t actuations{0};
  std::uint64_t deadline_misses{0};
  /// Sensor-sample-to-actuator-application latency (ms) of every delivered
  /// actuation whose controller had a delivered sensor sample; the p99.9
  /// over these is the bench's tail gate.
  std::vector<double> sensor_actuator_latencies_ms;
};

class PlantWorkload {
 public:
  /// One loop per entry of `devices` (field-device ids). Registers the
  /// sensor and actuation flows with the network's stats collector.
  PlantWorkload(Network& net, const PlantConfig& config,
                std::vector<NodeId> devices);

  /// Schedules every loop's first tick at `initial_delay` plus a per-loop
  /// stagger; each tick reschedules itself every period.
  void start(SimDuration initial_delay);

  [[nodiscard]] PlantMetrics harvest(SimTime from, SimTime to) const;

  [[nodiscard]] std::size_t num_loops() const { return loops_.size(); }

 private:
  struct Actuation {
    double u{0};
    /// Sensor seq the controller used (-1: none delivered yet) and its
    /// sample instant, for the end-to-end latency/deadline accounting.
    std::int64_t sensor_seq{-1};
    SimTime sensor_at{-1};
    SimTime issued{-1};
  };
  struct Loop {
    NodeId device;
    FlowId sensor_flow;
    FlowId act_flow;
    double x{0};
    double u_applied{0};
    std::uint32_t ticks{0};
    std::int64_t applied_act_seq{-1};
    std::int64_t ctrl_sensor_seq{-1};
    std::vector<double> x_sent;       // sampled x per sensor seq
    std::vector<SimTime> sensor_at;   // sample instant per sensor seq
    std::vector<Actuation> acts;      // per actuation seq
    std::vector<std::pair<SimTime, double>> costs;  // (tick, stage cost)
  };

  void tick(std::size_t i);

  Network& net_;
  PlantConfig config_;
  std::vector<Loop> loops_;
};

}  // namespace digs
