// Unit tests for src/common: time arithmetic, deterministic RNG,
// statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "common/stats.h"
#include "common/time.h"
#include "common/types.h"

namespace digs {
namespace {

// --- time ---

TEST(TimeTest, DurationArithmetic) {
  EXPECT_EQ(milliseconds(10).us, 10'000);
  EXPECT_EQ(seconds(static_cast<std::int64_t>(2)).us, 2'000'000);
  EXPECT_EQ((milliseconds(10) + microseconds(5)).us, 10'005);
  EXPECT_EQ((seconds(static_cast<std::int64_t>(1)) - milliseconds(250)).us,
            750'000);
  EXPECT_EQ((milliseconds(10) * 3).us, 30'000);
  EXPECT_EQ(seconds(static_cast<std::int64_t>(1)) / milliseconds(10), 100);
}

TEST(TimeTest, TimePointArithmetic) {
  const SimTime t0{1'000'000};
  const SimTime t1 = t0 + milliseconds(500);
  EXPECT_EQ(t1.us, 1'500'000);
  EXPECT_EQ((t1 - t0).us, 500'000);
  EXPECT_LT(t0, t1);
  EXPECT_DOUBLE_EQ(t1.seconds(), 1.5);
  EXPECT_DOUBLE_EQ(t1.millis(), 1500.0);
}

TEST(TimeTest, SlotDurationIsTenMilliseconds) {
  EXPECT_EQ(kSlotDuration.us, 10'000);
}

TEST(TimeTest, FractionalSeconds) {
  EXPECT_EQ(seconds(1.5).us, 1'500'000);
  EXPECT_EQ(minutes(5).us, 300'000'000);
}

// --- types ---

TEST(TypesTest, NodeIdValidity) {
  EXPECT_FALSE(kNoNode.valid());
  EXPECT_TRUE(NodeId{0}.valid());
  EXPECT_TRUE(NodeId{42}.valid());
  EXPECT_EQ(NodeId{7}, NodeId{7});
  EXPECT_NE(NodeId{7}, NodeId{8});
  EXPECT_LT(NodeId{3}, NodeId{5});
}

TEST(TypesTest, NodeIdHashDistinct) {
  std::set<std::size_t> hashes;
  for (std::uint16_t i = 0; i < 100; ++i) {
    hashes.insert(std::hash<NodeId>{}(NodeId{i}));
  }
  EXPECT_EQ(hashes.size(), 100u);
}

TEST(TypesTest, FlowIdValidity) {
  EXPECT_FALSE(FlowId{}.valid());
  EXPECT_TRUE(FlowId{0}.valid());
}

// --- rng ---

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ForkDecorrelates) {
  Rng root(7);
  Rng a = root.fork("alpha");
  Rng b = root.fork("beta");
  EXPECT_NE(a.next(), b.next());
}

TEST(RngTest, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  Summary s;
  for (int i = 0; i < 20000; ++i) s.add(rng.exponential(3.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.15);
}

TEST(RngTest, ChanceProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, HashMixOrderSensitive) {
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(1, 2, 4));
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
}

TEST(RngTest, HashedNormalIsStandardNormal) {
  Summary s;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    s.add(hashed_normal(hash_mix(99, i)));
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.stddev(), 1.0, 0.03);
}

// --- stats ---

TEST(SummaryTest, Basics) {
  Summary s;
  EXPECT_TRUE(s.empty());
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 6.0);
}

TEST(SummaryTest, SingleSampleVarianceZero) {
  Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(SummaryTest, MergeMatchesCombined) {
  Summary a;
  Summary b;
  Summary all;
  Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal(3.0, 1.5);
    a.add(x);
    all.add(x);
  }
  for (int i = 0; i < 300; ++i) {
    const double x = rng.normal(-1.0, 0.5);
    b.add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(CdfTest, Percentiles) {
  Cdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 100.0);
  EXPECT_NEAR(cdf.median(), 50.5, 1e-9);
  EXPECT_NEAR(cdf.percentile(90), 90.1, 1e-9);
  EXPECT_NEAR(cdf.mean(), 50.5, 1e-9);
}

TEST(CdfTest, At) {
  Cdf cdf;
  for (int i = 1; i <= 10; ++i) cdf.add(i);
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(9.0), 0.1);
}

TEST(CdfTest, UnsortedInsertOrder) {
  Cdf cdf;
  cdf.add(5.0);
  cdf.add(1.0);
  cdf.add(3.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 3.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(CdfTest, Boxplot) {
  Cdf cdf;
  for (int i = 0; i <= 100; ++i) cdf.add(i);
  const BoxplotRow box = cdf.boxplot();
  EXPECT_DOUBLE_EQ(box.min, 0.0);
  EXPECT_DOUBLE_EQ(box.q1, 25.0);
  EXPECT_DOUBLE_EQ(box.median, 50.0);
  EXPECT_DOUBLE_EQ(box.q3, 75.0);
  EXPECT_DOUBLE_EQ(box.max, 100.0);
  EXPECT_EQ(box.n, 101u);
}

TEST(CdfTest, CurveMonotone) {
  Cdf cdf;
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) cdf.add(rng.uniform(0.0, 10.0));
  const auto curve = cdf.curve(21);
  ASSERT_EQ(curve.size(), 21u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second);
  }
  EXPECT_DOUBLE_EQ(curve.front().second, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(CdfTest, EmptySafe) {
  Cdf cdf;
  EXPECT_DOUBLE_EQ(cdf.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(CdfTest, FormatBoxplotContainsFiveNumbers) {
  Cdf cdf;
  for (int i = 0; i <= 4; ++i) cdf.add(i * 10.0);
  const std::string text = format_boxplot(cdf.boxplot(), "latency");
  EXPECT_NE(text.find("latency"), std::string::npos);
  EXPECT_NE(text.find("min="), std::string::npos);
  EXPECT_NE(text.find("med="), std::string::npos);
  EXPECT_NE(text.find("max="), std::string::npos);
  EXPECT_NE(text.find("(n=5)"), std::string::npos);
}

TEST(CdfTest, FormatContainsLabel) {
  Cdf cdf;
  cdf.add(1.0);
  cdf.add(2.0);
  const std::string text = format_cdf(cdf, "latency", "ms", 3);
  EXPECT_NE(text.find("latency"), std::string::npos);
  EXPECT_NE(text.find("ms"), std::string::npos);
}

}  // namespace
}  // namespace digs
