// Tests for the downlink-graph extension (paper footnote 2): destination
// advertisements, the downlink cell ladder, and end-to-end downlink /
// device-to-device delivery via common-ancestor routing.
#include <gtest/gtest.h>

#include "core/network.h"
#include "routing/digs_routing.h"
#include "sched/digs_scheduler.h"
#include "sim/simulator.h"
#include "testbed/experiment.h"

namespace digs {
namespace {

// --- routing: destination advertisements ---

struct DownlinkHarness {
  Simulator sim;
  NeighborTable table;
  std::vector<Frame> sent;
  DigsRoutingConfig config;
  std::unique_ptr<DigsRouting> node;

  DownlinkHarness(NodeId id, bool is_ap = false) {
    config.enable_downlink = true;
    config.dest_advert_period = seconds(static_cast<std::int64_t>(5));
    RoutingProtocol::Env env;
    env.send_routing = [this](const Frame& f) { sent.push_back(f); };
    env.on_topology_changed = [](SimTime) {};
    node = std::make_unique<DigsRouting>(sim, id, is_ap, table, config,
                                         Rng(3), env);
  }

  void join_under(NodeId parent) {
    table.on_heard(parent, -65.0, 1, 0.0, sim.now());
    JoinInPayload payload;
    payload.rank = 1;
    payload.etxw = 0.0;
    node->handle_frame(
        make_frame(FrameType::kJoinIn, parent, kNoNode, payload), -65.0,
        sim.now());
  }

  void add_child(NodeId me, NodeId child) {
    table.on_heard_rss(child, -65.0, sim.now());
    JoinedCallbackPayload payload;
    payload.as_best_parent = true;
    node->handle_frame(
        make_frame(FrameType::kJoinedCallback, child, me, payload), -65.0,
        sim.now());
  }

  void hear_advert(NodeId me, NodeId from, std::vector<NodeId> dests,
                   std::uint32_t seq = 1) {
    DestAdvertPayload payload;
    for (const NodeId d : dests) payload.destinations.push_back({d, seq});
    node->handle_frame(make_frame(FrameType::kDestAdvert, from, me, payload),
                       -65.0, sim.now());
  }
};

TEST(DownlinkRoutingTest, AdvertisesOwnIdUpward) {
  DownlinkHarness h(NodeId{5});
  h.node->start(h.sim.now());
  h.join_under(NodeId{0});
  h.sim.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(30)));
  bool advertised_self = false;
  for (const Frame& f : h.sent) {
    if (f.type != FrameType::kDestAdvert) continue;
    EXPECT_EQ(f.dst, NodeId{0});  // unicast to the best parent
    for (const auto& adv : f.as<DestAdvertPayload>().destinations) {
      if (adv.dest == NodeId{5}) advertised_self = true;
    }
  }
  EXPECT_TRUE(advertised_self);
}

TEST(DownlinkRoutingTest, SubtreeDestinationsPropagate) {
  DownlinkHarness h(NodeId{5});
  h.node->start(h.sim.now());
  h.join_under(NodeId{0});
  h.add_child(NodeId{5}, NodeId{9});
  h.hear_advert(NodeId{5}, NodeId{9}, {NodeId{9}, NodeId{12}});
  EXPECT_EQ(h.node->next_hop_down(NodeId{9}), NodeId{9});
  EXPECT_EQ(h.node->next_hop_down(NodeId{12}), NodeId{9});
  EXPECT_EQ(h.node->next_hop_down(NodeId{33}), kNoNode);

  // The subtree is re-advertised upward on the next advert.
  h.sim.run_until(h.sim.now() + seconds(static_cast<std::int64_t>(30)));
  bool relayed = false;
  for (const Frame& f : h.sent) {
    if (f.type != FrameType::kDestAdvert) continue;
    for (const auto& adv : f.as<DestAdvertPayload>().destinations) {
      if (adv.dest == NodeId{12}) relayed = true;
    }
  }
  EXPECT_TRUE(relayed);
}

TEST(DownlinkRoutingTest, AdvertsFromNonChildrenIgnored) {
  DownlinkHarness h(NodeId{5});
  h.node->start(h.sim.now());
  h.join_under(NodeId{0});
  h.hear_advert(NodeId{5}, NodeId{9}, {NodeId{9}});  // 9 is not our child
  EXPECT_EQ(h.node->next_hop_down(NodeId{9}), kNoNode);
}

TEST(DownlinkRoutingTest, DisabledByDefault) {
  Simulator sim;
  NeighborTable table;
  RoutingProtocol::Env env;
  env.send_routing = [](const Frame&) {};
  env.on_topology_changed = [](SimTime) {};
  DigsRouting node(sim, NodeId{5}, false, table, DigsRoutingConfig{}, Rng(1),
                   env);
  EXPECT_EQ(node.next_hop_down(NodeId{9}), kNoNode);
}

TEST(DownlinkRoutingTest, StaleDescendantsPruned) {
  DownlinkHarness h(NodeId{5});
  h.config.descendant_timeout = seconds(static_cast<std::int64_t>(10));
  // Recreate with the short timeout.
  RoutingProtocol::Env env;
  env.send_routing = [&h](const Frame& f) { h.sent.push_back(f); };
  env.on_topology_changed = [](SimTime) {};
  h.node = std::make_unique<DigsRouting>(h.sim, NodeId{5}, false, h.table,
                                         h.config, Rng(3), env);
  h.node->start(h.sim.now());
  h.join_under(NodeId{0});
  h.add_child(NodeId{5}, NodeId{9});
  h.hear_advert(NodeId{5}, NodeId{9}, {NodeId{9}});
  ASSERT_EQ(h.node->next_hop_down(NodeId{9}), NodeId{9});
  // No refresh for > timeout: pruned at the next advert cycle.
  h.sim.run_until(h.sim.now() + seconds(static_cast<std::int64_t>(30)));
  EXPECT_EQ(h.node->next_hop_down(NodeId{9}), kNoNode);
}

// --- scheduler: downlink ladder ---

TEST(DownlinkSchedulerTest, LadderSharedBetweenParentAndChild) {
  SchedulerConfig config;
  config.enable_downlink = true;
  DigsScheduler scheduler(config);

  Schedule parent;
  std::vector<ChildEntry> children{ChildEntry{NodeId{7}, true, {}}};
  RoutingView parent_view;
  parent_view.id = NodeId{4};
  parent_view.num_access_points = 2;
  parent_view.best_parent = NodeId{0};
  parent_view.children = children;
  scheduler.rebuild(parent, parent_view);

  Schedule child;
  RoutingView child_view;
  child_view.id = NodeId{7};
  child_view.num_access_points = 2;
  child_view.best_parent = NodeId{4};
  scheduler.rebuild(child, child_view);

  // Every downlink TX cell of the parent has a matching RX cell at the
  // child (same slot, same channel offset).
  int matched = 0;
  for (const Cell& tx :
       parent.slotframe(TrafficClass::kApplication)->cells) {
    if (!tx.downlink || tx.option != CellOption::kTx) continue;
    EXPECT_EQ(tx.peer, NodeId{7});
    for (const Cell& rx :
         child.slotframe(TrafficClass::kApplication)->cells) {
      if (rx.downlink && rx.option == CellOption::kRx &&
          rx.slot_offset == tx.slot_offset &&
          rx.channel_offset == tx.channel_offset) {
        ++matched;
      }
    }
  }
  EXPECT_EQ(matched, config.attempts);
}

TEST(DownlinkSchedulerTest, DownlinkSlotsDisjointFromUplink) {
  SchedulerConfig config;  // 151 app slots
  config.enable_downlink = true;
  DigsScheduler scheduler(config);
  for (std::uint16_t id = 2; id < 40; ++id) {
    for (int p = 1; p <= config.attempts; ++p) {
      EXPECT_NE(scheduler.app_tx_slot(NodeId{id}, 2, p),
                scheduler.downlink_slot(NodeId{id}, 2, p));
    }
  }
}

TEST(DownlinkSchedulerTest, NoDownlinkCellsWhenDisabled) {
  SchedulerConfig config;
  DigsScheduler scheduler(config);
  Schedule schedule;
  std::vector<ChildEntry> children{ChildEntry{NodeId{7}, true, {}}};
  RoutingView view;
  view.id = NodeId{4};
  view.num_access_points = 2;
  view.best_parent = NodeId{0};
  view.children = children;
  scheduler.rebuild(schedule, view);
  for (const Cell& cell :
       schedule.slotframe(TrafficClass::kApplication)->cells) {
    EXPECT_FALSE(cell.downlink);
  }
}

// --- end to end ---

TestbedLayout downlink_layout() {
  TestbedLayout layout;
  layout.name = "downlink-10";
  layout.num_access_points = 2;
  layout.positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {30.0, 10.0, 0.0},
      {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
  };
  return layout;
}

TEST(DownlinkEndToEndTest, GatewayToDeviceDelivery) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 21;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  const TestbedLayout layout = downlink_layout();
  Network net(config, layout.positions);

  // Downlink command flow: AP 0 -> device 7 (the far node), every 2 s,
  // starting after formation + advert propagation.
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{0};
  flow.downlink_dest = NodeId{7};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));

  EXPECT_GT(net.stats().pdr(FlowId{0},
                            SimTime{0} + seconds(static_cast<std::int64_t>(185))),
            0.85);
}

TEST(DownlinkEndToEndTest, DeviceToDeviceViaCommonAncestor) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 22;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  Network net(config, downlink_layout().positions);

  // Sensor 2 -> actuator 9: climbs the uplink graph until some ancestor
  // knows a downlink route, then descends.
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{2};
  flow.downlink_dest = NodeId{9};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(330)));

  EXPECT_GT(net.stats().pdr(FlowId{0},
                            SimTime{0} + seconds(static_cast<std::int64_t>(185))),
            0.8);
}

TEST(DownlinkEndToEndTest, UplinkUnaffectedByExtension) {
  // Same uplink flow with and without the extension: PDR stays high.
  for (const bool enabled : {false, true}) {
    NetworkConfig config;
    config.suite = ProtocolSuite::kDigs;
    config.seed = 23;
    config.node = ExperimentRunner::default_node_config();
    config.node.enable_downlink = enabled;
    config.node.mac.tx_power_dbm = 0.0;
    config.medium.propagation.path_loss_exponent = 3.8;
    Network net(config, downlink_layout().positions);
    FlowSpec flow;
    flow.id = FlowId{0};
    flow.source = NodeId{7};
    flow.period = seconds(static_cast<std::int64_t>(2));
    flow.start_offset = seconds(static_cast<std::int64_t>(150));
    net.add_flow(flow);
    net.start();
    net.run_until(SimTime{0} + seconds(static_cast<std::int64_t>(280)));
    EXPECT_GT(net.stats().pdr(FlowId{0}), 0.9) << "enabled=" << enabled;
  }
}

}  // namespace
}  // namespace digs
