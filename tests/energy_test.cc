// Unit tests for the CC2420 radio energy model.
#include <gtest/gtest.h>

#include "energy/energy_meter.h"

namespace digs {
namespace {

TEST(EnergyMeterTest, StartsEmpty) {
  EnergyMeter meter;
  EXPECT_DOUBLE_EQ(meter.energy_mj(), 0.0);
  EXPECT_DOUBLE_EQ(meter.average_power_mw(), 0.0);
  EXPECT_DOUBLE_EQ(meter.duty_cycle(), 0.0);
  EXPECT_EQ(meter.total_time().us, 0);
}

TEST(EnergyMeterTest, ListenEnergyMatchesDatasheet) {
  EnergyMeter meter;
  meter.charge(RadioState::kListen, seconds(static_cast<std::int64_t>(1)));
  // 18.8 mA * 3 V = 56.4 mW -> 56.4 mJ over 1 s.
  EXPECT_NEAR(meter.energy_mj(), 56.4, 1e-9);
  EXPECT_NEAR(meter.average_power_mw(), 56.4, 1e-9);
}

TEST(EnergyMeterTest, TransmitEnergy) {
  EnergyMeter meter;
  meter.charge(RadioState::kTransmit, milliseconds(100));
  // 17.4 mA * 3 V = 52.2 mW * 0.1 s = 5.22 mJ.
  EXPECT_NEAR(meter.energy_mj(), 5.22, 1e-9);
}

TEST(EnergyMeterTest, SleepIsCheap) {
  EnergyMeter meter;
  meter.charge(RadioState::kSleep, seconds(static_cast<std::int64_t>(100)));
  // 21 uA * 3 V = 63 uW * 100 s = 6.3 mJ.
  EXPECT_NEAR(meter.energy_mj(), 6.3, 1e-9);
}

TEST(EnergyMeterTest, DutyCycle) {
  EnergyMeter meter;
  meter.charge(RadioState::kListen, milliseconds(10));
  meter.charge(RadioState::kTransmit, milliseconds(10));
  meter.charge(RadioState::kSleep, milliseconds(80));
  EXPECT_NEAR(meter.duty_cycle(), 0.2, 1e-12);
  EXPECT_EQ(meter.total_time().us, 100'000);
}

TEST(EnergyMeterTest, AccumulatesAcrossCharges) {
  EnergyMeter meter;
  for (int i = 0; i < 10; ++i) {
    meter.charge(RadioState::kListen, milliseconds(1));
  }
  EXPECT_EQ(meter.time_in(RadioState::kListen).us, 10'000);
}

TEST(EnergyMeterTest, ResetClears) {
  EnergyMeter meter;
  meter.charge(RadioState::kTransmit, seconds(static_cast<std::int64_t>(1)));
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.energy_mj(), 0.0);
  EXPECT_EQ(meter.total_time().us, 0);
}

TEST(EnergyMeterTest, CustomProfile) {
  RadioPowerProfile profile;
  profile.listen_ma = 10.0;
  profile.supply_volts = 2.0;
  EnergyMeter meter(profile);
  meter.charge(RadioState::kListen, seconds(static_cast<std::int64_t>(1)));
  EXPECT_NEAR(meter.energy_mj(), 20.0, 1e-9);
}

TEST(EnergyMeterTest, ListenDominatesSleepByOrders) {
  // The whole point of TSCH duty cycling: radio-on is ~1000x sleep.
  RadioPowerProfile profile;
  EXPECT_GT(profile.listen_ma / profile.sleep_ma, 500.0);
}

TEST(EnergyMeterTest, AveragePowerWeighted) {
  EnergyMeter meter;
  meter.charge(RadioState::kListen, milliseconds(50));
  meter.charge(RadioState::kSleep, milliseconds(50));
  // (56.4 + 0.063) / 2
  EXPECT_NEAR(meter.average_power_mw(), (56.4 + 0.063) / 2.0, 1e-9);
}

}  // namespace
}  // namespace digs
