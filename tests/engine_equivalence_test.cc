// The schedule-driven slot engine must be BIT-IDENTICAL to the reference
// polled loop: same ASN sequence, same RNG draw order, same deliveries, same
// energy. Each scenario runs the same experiment under both drivers and
// compares every observable exactly (no tolerances — the engine skips slots,
// it must not change them).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

struct RunSnapshot {
  ExperimentResult result;
  std::uint64_t final_asn{0};
  std::uint64_t events_executed{0};
  std::vector<std::uint64_t> data_tx_attempts;
  std::vector<std::uint64_t> eb_sent;
  std::vector<double> energy_mj;
  std::vector<double> join_times_s;
  std::uint64_t guard_misses{0};
  std::uint64_t desync_events{0};
  std::uint64_t clock_corrections{0};
};

ExperimentConfig small_config(ProtocolSuite suite, std::uint64_t seed) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 4;
  config.warmup = seconds(std::int64_t{60});
  config.duration = seconds(std::int64_t{60});
  config.stat_drain = seconds(std::int64_t{10});
  config.num_jammers = 0;
  return config;
}

RunSnapshot run_once(ExperimentConfig config, bool use_slot_engine) {
  config.use_slot_engine = use_slot_engine;
  ExperimentRunner runner(half_testbed_a(), config);
  RunSnapshot snap;
  snap.result = runner.run();
  Network& net = runner.network();
  snap.final_asn = net.current_asn();
  snap.events_executed = net.sim().events_executed();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{static_cast<std::uint16_t>(i)});
    snap.data_tx_attempts.push_back(node.mac().data_tx_attempts());
    snap.eb_sent.push_back(node.mac().eb_sent());
    snap.energy_mj.push_back(node.meter().energy_mj());
  }
  snap.join_times_s = snap.result.join_times_s;
  snap.guard_misses = snap.result.guard_misses;
  snap.desync_events = snap.result.desync_events;
  snap.clock_corrections = snap.result.clock_corrections;
  return snap;
}

void expect_identical(const RunSnapshot& engine, const RunSnapshot& polled) {
  EXPECT_EQ(engine.final_asn, polled.final_asn);
  EXPECT_EQ(engine.result.generated, polled.result.generated);
  EXPECT_EQ(engine.result.delivered, polled.result.delivered);
  EXPECT_EQ(engine.result.flow_pdrs, polled.result.flow_pdrs);
  EXPECT_EQ(engine.result.latencies_ms, polled.result.latencies_ms);
  EXPECT_EQ(engine.result.overall_pdr, polled.result.overall_pdr);
  EXPECT_EQ(engine.data_tx_attempts, polled.data_tx_attempts);
  EXPECT_EQ(engine.eb_sent, polled.eb_sent);
  EXPECT_EQ(engine.join_times_s, polled.join_times_s);
  // Bit-identical means exactly equal — EXPECT_DOUBLE_EQ's 4-ULP tolerance
  // would mask drift in the accumulation order.
  EXPECT_EQ(engine.energy_mj, polled.energy_mj);
  EXPECT_EQ(engine.result.duty_cycle, polled.result.duty_cycle);
  EXPECT_EQ(engine.guard_misses, polled.guard_misses);
  EXPECT_EQ(engine.desync_events, polled.desync_events);
  EXPECT_EQ(engine.clock_corrections, polled.clock_corrections);
}

class EngineEquivalence
    : public ::testing::TestWithParam<std::tuple<ProtocolSuite, std::uint64_t>> {
};

TEST_P(EngineEquivalence, BitIdenticalToPolledLoop) {
  const auto [suite, seed] = GetParam();
  const ExperimentConfig config = small_config(suite, seed);
  const RunSnapshot engine = run_once(config, /*use_slot_engine=*/true);
  const RunSnapshot polled = run_once(config, /*use_slot_engine=*/false);
  expect_identical(engine, polled);
  // The whole point: the engine executes far fewer simulator events than
  // one-per-slot polling.
  EXPECT_LT(engine.events_executed, polled.events_executed);
}

INSTANTIATE_TEST_SUITE_P(
    SuitesAndSeeds, EngineEquivalence,
    ::testing::Combine(::testing::Values(ProtocolSuite::kDigs,
                                         ProtocolSuite::kOrchestra,
                                         ProtocolSuite::kWirelessHart),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{2},
                                         std::uint64_t{3})),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Clock drift must not break the equivalence: offsets are a closed-form
// function of simulated time (never of how many slots the driver executed),
// drift deadlines ride the same wake heap as sync deadlines, and the guard
// check runs at the same sequence point in both reception paths. Walk
// amplitude is included so the epoch random walk is exercised too.
class EngineEquivalenceDrift : public ::testing::TestWithParam<ProtocolSuite> {
};

TEST_P(EngineEquivalenceDrift, BitIdenticalUnderDrift) {
  ExperimentConfig config = small_config(GetParam(), 7);
  config.clock_ppm = 40.0;
  config.clock_walk_ppm = 5.0;
  const RunSnapshot engine = run_once(config, /*use_slot_engine=*/true);
  const RunSnapshot polled = run_once(config, /*use_slot_engine=*/false);
  expect_identical(engine, polled);
  // The drift path actually engaged: corrections happened.
  EXPECT_GT(engine.clock_corrections, 0u);
}

INSTANTIATE_TEST_SUITE_P(Suites, EngineEquivalenceDrift,
                         ::testing::Values(ProtocolSuite::kDigs,
                                           ProtocolSuite::kOrchestra,
                                           ProtocolSuite::kWirelessHart),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// Failure injection exercises the engine's kill/revive accounting: a dying
// node must freeze mid-window with exactly the polled loop's energy, and a
// revived node must rejoin with identical scan timing.
TEST(EngineEquivalenceFailures, KillAndReviveBitIdentical) {
  ExperimentConfig config = small_config(ProtocolSuite::kDigs, 5);
  // Kill a relay mid-measurement, revive it 30 s later.
  config.failures.push_back(
      FailureEvent{seconds(std::int64_t{80}), NodeId{7}, false});
  config.failures.push_back(
      FailureEvent{seconds(std::int64_t{110}), NodeId{7}, true});
  const RunSnapshot engine = run_once(config, /*use_slot_engine=*/true);
  const RunSnapshot polled = run_once(config, /*use_slot_engine=*/false);
  expect_identical(engine, polled);
}

// Downlink traffic exercises the gateway's cross-node injection: a packet
// queued into a sleeping access point (from another node's slot or a flow
// event) must wake it for its dedicated downlink TX cells.
struct DownlinkSnapshot {
  double pdr{0};
  std::uint64_t final_asn{0};
  std::vector<std::uint64_t> data_tx_attempts;
  std::vector<double> energy_mj;
};

DownlinkSnapshot run_downlink(bool use_slot_engine) {
  NetworkConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 21;
  config.node = ExperimentRunner::default_node_config();
  config.node.enable_downlink = true;
  config.medium.propagation.path_loss_exponent = 3.8;
  config.use_slot_engine = use_slot_engine;

  TestbedLayout layout;
  layout.num_access_points = 2;
  layout.positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {30.0, 10.0, 0.0},
      {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
  };
  Network net(config, layout.positions);

  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{0};  // gateway-originated command
  flow.downlink_dest = NodeId{7};
  flow.period = seconds(std::int64_t{2});
  flow.start_offset = seconds(std::int64_t{180});
  net.add_flow(flow);
  net.start();
  net.run_until(SimTime{0} + seconds(std::int64_t{300}));

  DownlinkSnapshot snap;
  snap.pdr = net.stats().pdr(FlowId{0},
                             SimTime{0} + seconds(std::int64_t{185}));
  snap.final_asn = net.current_asn();
  for (std::size_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{static_cast<std::uint16_t>(i)});
    snap.data_tx_attempts.push_back(node.mac().data_tx_attempts());
    snap.energy_mj.push_back(node.meter().energy_mj());
  }
  return snap;
}

TEST(EngineEquivalenceDownlink, GatewayInjectionBitIdentical) {
  const DownlinkSnapshot engine = run_downlink(true);
  const DownlinkSnapshot polled = run_downlink(false);
  EXPECT_EQ(engine.final_asn, polled.final_asn);
  EXPECT_EQ(engine.pdr, polled.pdr);
  EXPECT_EQ(engine.data_tx_attempts, polled.data_tx_attempts);
  EXPECT_EQ(engine.energy_mj, polled.energy_mj);
  EXPECT_GT(engine.pdr, 0.5);  // the scenario actually delivers traffic
}

}  // namespace
}  // namespace digs
