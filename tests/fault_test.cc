// Fault-injection and robustness tests: the FaultScript engine (crash /
// recover cycles, link blackouts, burst interference), cold-restart
// semantics of revived nodes, AP failover, child/descendant-table pruning
// after a parent dies, and the runtime NetworkInvariantMonitor.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/fault_script.h"
#include "core/invariant_monitor.h"
#include "core/network.h"
#include "routing/centralized_routing.h"
#include "routing/digs_routing.h"
#include "testbed/experiment.h"

namespace digs {
namespace {

[[nodiscard]] SimTime at_s(std::int64_t s) {
  return SimTime{0} + seconds(s);
}

std::vector<Position> line_positions(int devices, double spacing,
                                     double ap_gap = 8.0) {
  // Two APs at the head, then a ladder of devices: two per tier so every
  // hop has the redundancy the protocols are designed around (same layout
  // as network_test.cc).
  std::vector<Position> positions;
  positions.push_back({0.0, 0.0, 0.0});
  positions.push_back({ap_gap, 0.0, 0.0});
  for (int i = 0; i < devices; ++i) {
    const double x = ap_gap + spacing * (i / 2 + 1);
    const double y = (i % 2 == 0) ? -3.0 : 3.0;
    positions.push_back({x, y, 0.0});
  }
  return positions;
}

NetworkConfig base_config(ProtocolSuite suite = ProtocolSuite::kDigs,
                          std::uint64_t seed = 5) {
  NetworkConfig config;
  config.suite = suite;
  config.seed = seed;
  config.node = ExperimentRunner::default_node_config();
  config.node.mac.tx_power_dbm = 0.0;
  config.medium.propagation.path_loss_exponent = 3.8;
  return config;
}

TestbedLayout ladder_layout(int devices, double spacing) {
  TestbedLayout layout;
  layout.name = "fault-ladder";
  layout.num_access_points = 2;
  layout.positions = line_positions(devices, spacing);
  return layout;
}

// --- cold restart (regression for Network::set_node_alive(id, true)) ---

TEST(ColdRestartTest, RevivedNodeRestartsWithColdState) {
  // Three tiers so tier-2 nodes have both parents and children.
  Network net(base_config(), line_positions(6, 14.0));
  net.start();
  net.run_until(at_s(150));

  // Pick a mid-ladder victim that accumulated real state: parents, rank,
  // neighbors, and at least one child.
  NodeId victim = kNoNode;
  for (const std::uint16_t id : {4, 5}) {
    if (!net.node(NodeId{id}).routing().children().empty()) {
      victim = NodeId{id};
      break;
    }
  }
  ASSERT_TRUE(victim.valid()) << "no tier-2 node has children";
  ASSERT_TRUE(net.node(victim).routing().joined());
  ASSERT_LT(net.node(victim).routing().rank(), kInfiniteRank);
  ASSERT_GT(net.node(victim).neighbors().size(), 0u);

  net.set_node_alive(victim, false);
  Node& node = net.node(victim);  // neighbors() has no const overload
  EXPECT_FALSE(node.alive());
  EXPECT_EQ(node.routing().rank(), kInfiniteRank);
  EXPECT_EQ(node.routing().best_parent(), kNoNode);
  EXPECT_EQ(node.routing().second_best_parent(), kNoNode);
  EXPECT_TRUE(node.routing().children().empty());
  EXPECT_EQ(node.neighbors().size(), 0u);
  EXPECT_FALSE(node.mac().synced());

  net.run_until(at_s(180));
  net.set_node_alive(victim, true);
  // Immediately after power-up the node is cold: unsynchronized, infinite
  // rank, no parents, no children — nothing survived the crash.
  EXPECT_TRUE(node.alive());
  EXPECT_FALSE(node.mac().synced());
  EXPECT_EQ(node.routing().rank(), kInfiniteRank);
  EXPECT_EQ(node.routing().best_parent(), kNoNode);
  EXPECT_TRUE(node.routing().children().empty());

  net.run_until(at_s(330));
  EXPECT_TRUE(node.mac().synced());
  EXPECT_TRUE(node.routing().joined());

  // The revival was recorded and the rejoin instant filled in.
  ASSERT_EQ(net.revivals().size(), 1u);
  const ReviveRecord& record = net.revivals()[0];
  EXPECT_EQ(record.node, victim);
  EXPECT_EQ(record.revived_at, at_s(180));
  ASSERT_GE(record.rejoined_at.us, 0);
  EXPECT_GT(record.rejoined_at, record.revived_at);
}

// --- AP failover ---

TEST(ApFailoverTest, TrafficRehomesToSurvivingAp) {
  // One tier of two devices in range of both APs.
  Network net(base_config(ProtocolSuite::kDigs, 9), line_positions(2, 8.0));
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{2};
  flow.period = seconds(static_cast<std::int64_t>(1));
  flow.start_offset = seconds(static_cast<std::int64_t>(60));
  net.add_flow(flow);
  net.start();
  net.run_until(at_s(120));

  const NodeId bp = net.node(NodeId{2}).routing().best_parent();
  ASSERT_TRUE(bp.valid());
  ASSERT_TRUE(net.node(bp).is_access_point());
  const NodeId survivor = bp == NodeId{0} ? NodeId{1} : NodeId{0};

  net.set_node_alive(bp, false);
  net.run_until(at_s(240));

  // The source re-homed to the surviving AP and kept delivering.
  EXPECT_EQ(net.node(NodeId{2}).routing().best_parent(), survivor);
  EXPECT_GT(net.stats().pdr(FlowId{0}, at_s(125), at_s(240)), 0.6);

  // A revived AP is born joined (rank 1), so its rejoin is instantaneous.
  net.set_node_alive(bp, true);
  EXPECT_EQ(net.node(bp).routing().rank(), kAccessPointRank);
  ASSERT_EQ(net.revivals().size(), 1u);
  EXPECT_EQ(net.revivals()[0].node, bp);
  EXPECT_EQ(net.revivals()[0].rejoined_at, net.revivals()[0].revived_at);
}

// --- link blackouts ---

TEST(BlackoutTest, BlackoutSuppressesDecodeSymmetrically) {
  Network net(base_config(), line_positions(2, 8.0));
  Medium& medium = net.medium();

  TransmissionAttempt tx;
  tx.sender = NodeId{0};
  tx.tx_power_dbm = 0.0;
  const auto probability = [&] {
    return medium
        .check_reception(tx, NodeId{1}, 7, at_s(1),
                         std::span<const TransmissionAttempt>{})
        .probability;
  };
  const double before = probability();
  ASSERT_GT(before, 0.0) << "APs 8 m apart must decode each other";

  medium.set_link_blackout(NodeId{0}, NodeId{1}, true);
  EXPECT_TRUE(medium.link_blacked_out(NodeId{0}, NodeId{1}));
  EXPECT_TRUE(medium.link_blacked_out(NodeId{1}, NodeId{0}));
  EXPECT_FALSE(medium.link_blacked_out(NodeId{0}, NodeId{2}));
  EXPECT_EQ(probability(), 0.0);
  // The blacked-out frame still radiates: the signal RSS is reported so it
  // keeps contributing interference at other listeners.
  EXPECT_GT(medium
                .check_reception(tx, NodeId{1}, 7, at_s(1),
                                 std::span<const TransmissionAttempt>{})
                .rss_dbm,
            medium.config().sensitivity_dbm);

  // Clearing restores the exact pre-blackout probability (the blackout
  // consumes no draws and shifts no fading state).
  medium.set_link_blackout(NodeId{0}, NodeId{1}, false);
  EXPECT_FALSE(medium.link_blacked_out(NodeId{0}, NodeId{1}));
  EXPECT_EQ(probability(), before);
}

TEST(BlackoutTest, BestParentBlackoutFailsOverSeamlessly) {
  Network net(base_config(ProtocolSuite::kDigs, 11), line_positions(2, 8.0));
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{2};
  flow.period = seconds(static_cast<std::int64_t>(1));
  flow.start_offset = seconds(static_cast<std::int64_t>(60));
  net.add_flow(flow);
  net.start();
  net.run_until(at_s(120));

  const NodeId bp = net.node(NodeId{2}).routing().best_parent();
  ASSERT_TRUE(bp.valid());
  ASSERT_TRUE(net.node(NodeId{2}).routing().second_best_parent().valid());

  // Black out the best-parent link for 60 s: the backup parent's attempt
  // slots keep the flow alive (the paper's seamless failover).
  FaultScript script;
  script.blackout(seconds(static_cast<std::int64_t>(0)), NodeId{2}, bp,
                  seconds(static_cast<std::int64_t>(60)));
  script.install(net);
  net.run_until(at_s(122));
  EXPECT_TRUE(net.medium().link_blacked_out(NodeId{2}, bp));

  net.run_until(at_s(240));
  EXPECT_FALSE(net.medium().link_blacked_out(NodeId{2}, bp));
  EXPECT_GT(net.stats().pdr(FlowId{0}, at_s(120), at_s(180)), 0.5);
  EXPECT_GT(net.stats().pdr(FlowId{0}, at_s(180), at_s(240)), 0.8);
}

// --- child/descendant pruning after a parent dies ---

TEST(StalePruningTest, DeadParentIsEvictedAndDownlinkRecovers) {
  NetworkConfig config = base_config(ProtocolSuite::kDigs, 13);
  config.node.enable_downlink = true;
  // Short timeouts so eviction happens within the test window (prune timer
  // fires every 30 s); adverts must outpace the shortened timeouts or live
  // entries would be pruned between refreshes.
  config.node.digs_routing.child_timeout =
      seconds(static_cast<std::int64_t>(40));
  config.node.digs_routing.descendant_timeout =
      seconds(static_cast<std::int64_t>(35));
  config.node.digs_routing.dest_advert_period =
      seconds(static_cast<std::int64_t>(10));
  Network net(config, line_positions(6, 14.0));

  // Downlink command flow: AP 0 -> far-tier device 7, multi-hop.
  FlowSpec flow;
  flow.id = FlowId{0};
  flow.source = NodeId{0};
  flow.downlink_dest = NodeId{7};
  flow.period = seconds(static_cast<std::int64_t>(2));
  flow.start_offset = seconds(static_cast<std::int64_t>(180));
  net.add_flow(flow);
  net.start();
  net.run_until(at_s(200));
  ASSERT_GT(net.stats().pdr(FlowId{0}, at_s(185), at_s(200)), 0.5)
      << "downlink must work before the fault";

  // Kill the destination's current best parent (a mid-ladder relay).
  const NodeId victim = net.node(NodeId{7}).routing().best_parent();
  ASSERT_TRUE(victim.valid());
  ASSERT_FALSE(net.node(victim).is_access_point());
  net.set_node_alive(victim, false);

  // child_timeout + one prune period bound the eviction; run past it.
  net.run_until(at_s(330));
  for (std::uint16_t i = 0; i < net.size(); ++i) {
    const Node& node = net.node(NodeId{i});
    if (!node.alive()) continue;
    const auto children = node.routing().children();
    EXPECT_TRUE(std::none_of(
        children.begin(), children.end(),
        [&](const ChildEntry& c) { return c.id == victim; }))
        << "node " << i << " still lists the dead node as a child";
    const auto* routing = dynamic_cast<const DigsRouting*>(&node.routing());
    ASSERT_NE(routing, nullptr);
    for (const DigsRouting::DescendantView& entry :
         routing->descendant_entries()) {
      EXPECT_NE(entry.via, victim)
          << "node " << i << " still routes " << entry.dest.value
          << " through the dead node";
    }
  }

  // The stale branch no longer blackholes: the destination re-homed, fresh
  // adverts replaced the dead via, and downlink delivery recovered. The
  // window is generous — losing the relay can also cost the destination its
  // time source (rescan + resync before it can re-home).
  net.run_until(at_s(450));
  EXPECT_GT(net.stats().pdr(FlowId{0}, at_s(390), at_s(450)), 0.5);
}

// --- fault-script end-to-end through the experiment harness ---

TEST(FaultScriptTest, ChurnCycleYieldsRecoveryMetrics) {
  ExperimentConfig config;
  config.suite = ProtocolSuite::kDigs;
  config.seed = 17;
  config.num_flows = 3;
  config.flow_period = seconds(static_cast<std::int64_t>(2));
  config.warmup = seconds(static_cast<std::int64_t>(150));
  config.duration = seconds(static_cast<std::int64_t>(420));
  config.monitor_invariants = true;
  // Two crash/recover cycles on a mid-ladder relay: crash at +30 and +210,
  // 60 s downtime, 120 s uptime to rejoin before the next crash.
  config.faults.crash_cycle(seconds(static_cast<std::int64_t>(30)), NodeId{4},
                            seconds(static_cast<std::int64_t>(60)),
                            seconds(static_cast<std::int64_t>(120)), 2);

  ExperimentRunner runner(ladder_layout(6, 12.0), config);
  const ExperimentResult result = runner.run();

  EXPECT_EQ(result.revivals, 2u);
  // Finite recovery: every revival rejoined within its up-window.
  ASSERT_EQ(result.rejoin_times_s.size(), result.revivals);
  for (const double t : result.rejoin_times_s) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, 120.0);
  }
  // One dip record per disturbance (the two crashes).
  ASSERT_EQ(result.fault_dips.size(), 2u);
  EXPECT_DOUBLE_EQ(result.fault_dips[0].at_s, 30.0);
  EXPECT_DOUBLE_EQ(result.fault_dips[1].at_s, 210.0);
  for (const auto& dip : result.fault_dips) {
    EXPECT_GE(dip.depth, 0.0);
    EXPECT_GE(dip.duration_s, 0.0);
  }
  // DiGS converges back to a consistent state after every cycle.
  EXPECT_EQ(result.invariant_violations, 0u);
}

// --- invariant monitor ---

TEST(InvariantMonitorTest, HealthyRunRecordsNothing) {
  NetworkConfig config = base_config(ProtocolSuite::kDigs, 19);
  config.monitor_invariants = true;
  config.node.enable_downlink = true;
  Network net(config, line_positions(6, 12.0));
  net.start();
  net.run_until(at_s(300));
  ASSERT_NE(net.invariant_monitor(), nullptr);
  EXPECT_TRUE(net.invariant_monitor()->violations().empty());
}

TEST(InvariantMonitorTest, NotConstructedWhenDisabled) {
  Network net(base_config(), line_positions(2, 10.0));
  EXPECT_EQ(net.invariant_monitor(), nullptr);
}

TEST(InvariantMonitorTest, DetectsPersistentRankInversionAndCycle) {
  // The WirelessHART baseline holds whatever the manager installed, so a
  // corrupt installation persists — plant a mutual-parent pair and let the
  // transient grace expire.
  NetworkConfig config = base_config(ProtocolSuite::kWirelessHart, 23);
  config.monitor_invariants = true;
  Network net(config, line_positions(4, 10.0));
  net.start();
  net.run_until(at_s(90));  // past the manager's initial install

  const SimTime now = net.sim().now();
  auto& a = dynamic_cast<CentralizedRouting&>(net.node(NodeId{4}).routing());
  auto& b = dynamic_cast<CentralizedRouting&>(net.node(NodeId{5}).routing());
  a.set_assignment(NodeId{5}, kNoNode, 3, {}, now);
  b.set_assignment(NodeId{4}, kNoNode, 3, {}, now);

  // Under the 60 s grace both are mere suspects.
  net.run_until(at_s(120));
  const NetworkInvariantMonitor& monitor = *net.invariant_monitor();
  EXPECT_EQ(monitor.count(InvariantKind::kRankRule), 0u);

  // Past the grace the periodic sweep matures them into violations.
  net.run_until(at_s(180));
  EXPECT_GE(monitor.count(InvariantKind::kRankRule), 1u);
  EXPECT_GE(monitor.count(InvariantKind::kParentCycle), 1u);
  // Each (kind, node, other) triple is recorded at most once.
  net.run_until(at_s(240));
  EXPECT_LE(monitor.count(InvariantKind::kRankRule), 2u);
  EXPECT_LE(monitor.count(InvariantKind::kParentCycle), 2u);
}

TEST(InvariantMonitorTest, TransientInversionIsForgiven) {
  // Same planting, but healed before the grace expires: no violation.
  NetworkConfig config = base_config(ProtocolSuite::kWirelessHart, 29);
  config.monitor_invariants = true;
  Network net(config, line_positions(4, 10.0));
  net.start();
  net.run_until(at_s(90));

  auto& a = dynamic_cast<CentralizedRouting&>(net.node(NodeId{4}).routing());
  const NodeId old_bp = a.best_parent();
  const std::uint16_t old_rank = a.rank();
  a.set_assignment(NodeId{5}, kNoNode, net.node(NodeId{5}).routing().rank(),
                   {}, net.sim().now());
  net.run_until(at_s(120));  // observed, but within grace
  a.set_assignment(old_bp, kNoNode, old_rank, {}, net.sim().now());
  net.run_until(at_s(240));
  EXPECT_EQ(net.invariant_monitor()->count(InvariantKind::kRankRule), 0u);
  EXPECT_EQ(net.invariant_monitor()->count(InvariantKind::kParentCycle), 0u);
}

// --- fault-script bookkeeping ---

TEST(FaultScriptTest, DisturbanceOffsetsSkipRecoveries) {
  FaultScript script;
  script.crash_cycle(seconds(static_cast<std::int64_t>(10)), NodeId{4},
                     seconds(static_cast<std::int64_t>(20)),
                     seconds(static_cast<std::int64_t>(30)), 2);
  script.blackout(seconds(static_cast<std::int64_t>(5)), NodeId{2}, NodeId{3},
                  seconds(static_cast<std::int64_t>(15)));
  // crash at 10 and 60, blackout at 5 — recoveries at 30 and 80 excluded.
  const auto offsets = script.disturbance_offsets();
  ASSERT_EQ(offsets.size(), 3u);
  EXPECT_EQ(offsets[0].us, seconds(static_cast<std::int64_t>(10)).us);
  EXPECT_EQ(offsets[1].us, seconds(static_cast<std::int64_t>(60)).us);
  EXPECT_EQ(offsets[2].us, seconds(static_cast<std::int64_t>(5)).us);
  EXPECT_EQ(script.events().size(), 5u);
}

TEST(FaultScriptTest, BurstRegistersJammer) {
  Network net(base_config(), line_positions(2, 10.0));
  net.start();
  net.run_until(at_s(10));
  FaultScript script;
  script.burst(seconds(static_cast<std::int64_t>(5)), Position{12.0, 0.0, 0.0},
               -4.0, seconds(static_cast<std::int64_t>(30)));
  script.install(net);
  EXPECT_EQ(net.medium().num_jammers(), 1u);
}

}  // namespace
}  // namespace digs
