// End-to-end integration tests: the full stack (PHY -> TSCH MAC -> routing
// -> autonomous scheduling) on multi-node networks, for both protocol
// suites. These are the behaviours the paper's evaluation rests on:
// formation, delivery, graph redundancy, failure response, determinism.
#include <gtest/gtest.h>

#include <set>

#include "core/network.h"
#include "manager/graph_router.h"
#include "testbed/experiment.h"
#include "testbed/layouts.h"

namespace digs {
namespace {

/// A compact 12-node single-floor layout for fast tests.
TestbedLayout small_layout() {
  TestbedLayout layout;
  layout.name = "Small-12";
  layout.num_access_points = 2;
  layout.positions = {
      {12.0, 10.0, 0.0}, {24.0, 10.0, 0.0},  // APs near the gateway
      {10.0, 5.0, 0.0},  {10.0, 15.0, 0.0}, {17.0, 8.0, 0.0},
      {17.0, 14.0, 0.0}, {24.0, 6.0, 0.0},  {24.0, 16.0, 0.0},
      {30.0, 10.0, 0.0}, {14.0, 11.0, 0.0}, {27.0, 12.0, 0.0},
      {20.0, 11.0, 0.0},
  };
  layout.jammer_positions = {{17.0, 11.0, 0.0}, {26.0, 9.0, 0.0}};
  return layout;
}

ExperimentConfig quick_config(ProtocolSuite suite, std::uint64_t seed = 3) {
  ExperimentConfig config;
  config.suite = suite;
  config.seed = seed;
  config.num_flows = 4;
  config.flow_period = seconds(static_cast<std::int64_t>(2));
  config.warmup = seconds(static_cast<std::int64_t>(150));
  config.duration = seconds(static_cast<std::int64_t>(120));
  config.num_jammers = 0;
  return config;
}

TEST(IntegrationTest, DigsNetworkFormsAndJoins) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  const ExperimentResult result = runner.run();
  // All 10 field devices eventually joined with both parents; the bulk
  // joins well within the warmup (stragglers acquire the second parent as
  // the mesh settles).
  ASSERT_EQ(result.join_times_s.size(), 10u);
  Cdf join;
  for (const double t : result.join_times_s) join.add(t);
  EXPECT_LT(join.median(), 90.0);
  EXPECT_LT(join.max(), 270.0);
}

TEST(IntegrationTest, OrchestraNetworkForms) {
  ExperimentRunner runner(small_layout(),
                          quick_config(ProtocolSuite::kOrchestra));
  const ExperimentResult result = runner.run();
  EXPECT_EQ(result.join_times_s.size(), 10u);
}

TEST(IntegrationTest, DigsDeliversInCleanEnvironment) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  const ExperimentResult result = runner.run();
  EXPECT_GT(result.generated, 100u);
  EXPECT_GT(result.overall_pdr, 0.95);
  EXPECT_FALSE(result.latencies_ms.empty());
}

TEST(IntegrationTest, OrchestraDeliversInCleanEnvironment) {
  ExperimentRunner runner(small_layout(),
                          quick_config(ProtocolSuite::kOrchestra));
  const ExperimentResult result = runner.run();
  EXPECT_GT(result.overall_pdr, 0.95);
}

TEST(IntegrationTest, DigsNodesHoldTwoParents) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  runner.run();
  Network& net = runner.network();
  int with_backup = 0;
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    const RoutingProtocol& routing = net.node(NodeId{i}).routing();
    EXPECT_TRUE(routing.joined()) << "node " << i;
    if (routing.second_best_parent().valid()) ++with_backup;
  }
  // Dense 12-node network: most nodes hold a backup at any instant (nodes
  // whose rank dropped to 2 in a corner may only reach one AP).
  EXPECT_GE(with_backup, 7);
}

TEST(IntegrationTest, SteadyStateRoutesFormDag) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  runner.run();
  Network& net = runner.network();
  // Follow best-parent pointers from every node: must reach an AP without
  // revisiting (DAG / no routing loops).
  for (std::uint16_t start = 2; start < net.size(); ++start) {
    std::set<std::uint16_t> visited;
    NodeId cursor{start};
    while (cursor.valid() && cursor.value >= 2) {
      EXPECT_TRUE(visited.insert(cursor.value).second)
          << "best-parent loop through node " << cursor.value;
      cursor = net.node(cursor).routing().best_parent();
    }
    EXPECT_TRUE(cursor.valid()) << "node " << start << " detached";
  }
}

TEST(IntegrationTest, RanksDecreaseTowardsAps) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  runner.run();
  Network& net = runner.network();
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    const RoutingProtocol& routing = net.node(NodeId{i}).routing();
    const NodeId bp = routing.best_parent();
    ASSERT_TRUE(bp.valid());
    EXPECT_LT(net.node(bp).routing().rank(), routing.rank());
    const NodeId sbp = routing.second_best_parent();
    if (sbp.valid()) {
      // Paper's rule: second-best parent rank strictly below ours.
      EXPECT_LT(net.node(sbp).routing().rank(), routing.rank());
    }
  }
}

TEST(IntegrationTest, DeterministicGivenSeed) {
  ExperimentRunner a(small_layout(), quick_config(ProtocolSuite::kDigs, 42));
  ExperimentRunner b(small_layout(), quick_config(ProtocolSuite::kDigs, 42));
  const ExperimentResult ra = a.run();
  const ExperimentResult rb = b.run();
  EXPECT_EQ(ra.generated, rb.generated);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_DOUBLE_EQ(ra.overall_pdr, rb.overall_pdr);
  ASSERT_EQ(ra.latencies_ms.size(), rb.latencies_ms.size());
  for (std::size_t i = 0; i < ra.latencies_ms.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.latencies_ms[i], rb.latencies_ms[i]);
  }
}

TEST(IntegrationTest, DifferentSeedsDiffer) {
  ExperimentRunner a(small_layout(), quick_config(ProtocolSuite::kDigs, 1));
  ExperimentRunner b(small_layout(), quick_config(ProtocolSuite::kDigs, 2));
  const ExperimentResult ra = a.run();
  const ExperimentResult rb = b.run();
  // Different sources / fading: latency traces differ.
  EXPECT_NE(ra.latencies_ms, rb.latencies_ms);
}

TEST(IntegrationTest, EnergyMeteredOverMeasurementWindow) {
  ExperimentRunner runner(small_layout(), quick_config(ProtocolSuite::kDigs));
  const ExperimentResult result = runner.run();
  EXPECT_GT(result.energy_per_delivered_mj, 0.0);
  EXPECT_GT(result.duty_cycle, 0.0);
  EXPECT_LT(result.duty_cycle, 0.5);  // TSCH networks are mostly asleep
  // Each field device metered exactly the measurement window plus drain.
  Network& net = runner.network();
  const double metered =
      (runner.config().duration + runner.config().stat_drain).seconds();
  for (std::uint16_t i = 2; i < net.size(); ++i) {
    EXPECT_NEAR(net.node(NodeId{i}).meter().total_time().seconds(), metered,
                0.2);
  }
}

TEST(IntegrationTest, DigsSurvivesRouterFailure) {
  // Kill the most-used relay mid-measurement: DiGS reroutes via backup
  // parents without (much) loss — the Fig. 11 mechanism.
  TestbedLayout layout = small_layout();
  ExperimentConfig config = quick_config(ProtocolSuite::kDigs);
  config.duration = seconds(static_cast<std::int64_t>(200));

  // First, find a busy relay node from a dry run.
  ExperimentRunner probe(layout, config);
  probe.run();
  Network& probe_net = probe.network();
  NodeId relay = kNoNode;
  int most_children = -1;
  for (std::uint16_t i = 2; i < probe_net.size(); ++i) {
    const int kids = static_cast<int>(
        probe_net.node(NodeId{i}).routing().children().size());
    if (kids > most_children) {
      most_children = kids;
      relay = NodeId{i};
    }
  }
  ASSERT_TRUE(relay.valid());

  ExperimentConfig failure_config = config;
  failure_config.failures.push_back(FailureEvent{
      config.warmup + seconds(static_cast<std::int64_t>(60)), relay, false});
  ExperimentRunner runner(layout, failure_config);
  const ExperimentResult result = runner.run();
  // Flows not sourced at the dead node keep a high PDR.
  const auto& stats = runner.network().stats();
  for (const FlowRecord& flow : stats.flows()) {
    if (flow.source == relay) continue;
    EXPECT_GT(stats.pdr(flow.id, runner.measure_start()), 0.85)
        << "flow from node " << flow.source.value;
  }
  (void)result;
}

TEST(IntegrationTest, JammerDegradesOrchestraMoreThanDigs) {
  // The headline comparison (Fig. 9): under interference DiGS holds a
  // higher PDR than Orchestra thanks to route diversity.
  auto run_suite = [&](ProtocolSuite suite) {
    ExperimentConfig config = quick_config(suite, 9);
    config.num_jammers = 2;
    config.jammer_start_after = seconds(static_cast<std::int64_t>(20));
    config.duration = seconds(static_cast<std::int64_t>(240));
    ExperimentRunner runner(small_layout(), config);
    return runner.run().overall_pdr;
  };
  const double digs_pdr = run_suite(ProtocolSuite::kDigs);
  const double orchestra_pdr = run_suite(ProtocolSuite::kOrchestra);
  EXPECT_GT(digs_pdr, orchestra_pdr - 0.02)
      << "DiGS should not be materially worse under interference";
}

TEST(IntegrationTest, HalfTestbedALayoutSane) {
  const TestbedLayout layout = half_testbed_a();
  EXPECT_EQ(layout.num_nodes(), 20);
  EXPECT_EQ(layout.num_access_points, 2);
  EXPECT_GE(layout.jammer_positions.size(), 4u);
}

TEST(IntegrationTest, LayoutSizesMatchPaper) {
  EXPECT_EQ(testbed_a().num_nodes(), 50);
  EXPECT_EQ(testbed_b().num_nodes(), 44);
  EXPECT_EQ(half_testbed_b().num_nodes(), 19);
  EXPECT_EQ(cooja_150().num_nodes(), 152);  // 150 + 2 APs
}

TEST(IntegrationTest, TestbedBSpansTwoFloors) {
  const TestbedLayout layout = testbed_b();
  std::set<double> floors;
  for (const Position& p : layout.positions) floors.insert(p.z);
  EXPECT_EQ(floors.size(), 2u);
}

TEST(IntegrationTest, PickSourcesDistinctAndDeterministic) {
  const TestbedLayout layout = testbed_a();
  const auto a = pick_sources(layout, 8, 5);
  const auto b = pick_sources(layout, 8, 5);
  EXPECT_EQ(a, b);
  const std::set<NodeId> unique(a.begin(), a.end());
  EXPECT_EQ(unique.size(), 8u);
  for (const NodeId id : a) {
    EXPECT_GE(id.value, layout.num_access_points);
  }
  const auto c = pick_sources(layout, 8, 6);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace digs
